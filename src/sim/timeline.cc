#include "sim/timeline.h"

#include <algorithm>

namespace distme::sim {

double ShuffleSeconds(double bytes, int nodes, double nic_bandwidth,
                      double serialization_bandwidth,
                      double serialization_factor) {
  if (bytes <= 0.0 || nodes <= 0) return 0.0;
  const double wire_bytes = bytes * serialization_factor;
  const double per_node = wire_bytes / nodes;
  const double transfer = per_node / nic_bandwidth;
  const double serialize = per_node / serialization_bandwidth;
  // Serialize → send → deserialize pipeline: the slowest stage dominates,
  // plus one pipeline fill of the secondary stage.
  const double bottleneck = std::max(transfer, serialize);
  const double secondary = std::min(transfer, serialize);
  return bottleneck + 0.1 * secondary;
}

double PointToPointSeconds(double bytes, double nic_bandwidth) {
  if (bytes <= 0.0) return 0.0;
  return bytes / nic_bandwidth;
}

}  // namespace distme::sim
