// Virtual-time scheduling primitives for the discrete-event executor.

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace distme::sim {

/// \brief A serially-used resource (a copy engine, a kernel queue): requests
/// are granted in arrival order, each occupying the resource for `duration`.
class ResourceTimeline {
 public:
  /// \brief Schedules work of `duration` seconds not before `earliest`;
  /// returns the start time actually granted.
  double Schedule(double earliest, double duration) {
    const double start = earliest > available_ ? earliest : available_;
    available_ = start + duration;
    return start;
  }

  /// \brief Time at which the resource next becomes free.
  double available() const { return available_; }

  void Reset() { available_ = 0.0; }

 private:
  double available_ = 0.0;
};

/// \brief Schedules task durations onto a fixed number of slots, FIFO in
/// submission order (Spark-style wave execution). Returns the makespan.
class WaveScheduler {
 public:
  explicit WaveScheduler(int slots) : slots_(slots) {}

  /// \brief Submits one task; it starts on the earliest-free slot.
  void Add(double duration) {
    ++num_tasks_;
    if (static_cast<int>(heap_.size()) < slots_) {
      const double finish = duration;
      heap_.push(finish);
      makespan_ = finish > makespan_ ? finish : makespan_;
      return;
    }
    const double slot_free = heap_.top();
    heap_.pop();
    const double finish = slot_free + duration;
    heap_.push(finish);
    makespan_ = finish > makespan_ ? finish : makespan_;
  }

  /// \brief Completion time of the last task.
  double Makespan() const { return makespan_; }

  int64_t num_tasks() const { return num_tasks_; }

 private:
  int slots_;
  // Min-heap of slot next-free times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap_;
  double makespan_ = 0.0;
  int64_t num_tasks_ = 0;
};

/// \brief Time to move `bytes` across the cluster fabric during a shuffle.
///
/// All `nodes` NICs send and receive concurrently; serialization happens on
/// both ends and pipelines with the transfer, so the bottleneck stage rules.
/// `serialization_factor` inflates raw bytes to wire bytes.
double ShuffleSeconds(double bytes, int nodes, double nic_bandwidth,
                      double serialization_bandwidth,
                      double serialization_factor);

/// \brief Time for one node to push `bytes` through its own NIC (broadcast
/// source bottleneck).
double PointToPointSeconds(double bytes, double nic_bandwidth);

}  // namespace distme::sim
