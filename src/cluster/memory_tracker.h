// Per-task memory accounting used by the real executor to enforce θt / θg.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace distme {

/// \brief Tracks allocations against a fixed budget; reports OutOfMemory
/// when the budget would be exceeded.
///
/// One tracker per task (θt) and one per task's GPU working set (θg).
class MemoryTracker {
 public:
  MemoryTracker(std::string label, int64_t budget_bytes)
      : label_(std::move(label)), budget_(budget_bytes) {}

  /// \brief Reserves `bytes`; fails with OutOfMemory if over budget.
  Status Allocate(int64_t bytes) {
    if (used_ + bytes > budget_) {
      return Status::OutOfMemory(label_ + ": requested " +
                                 std::to_string(bytes) + " B with " +
                                 std::to_string(budget_ - used_) +
                                 " B remaining of " + std::to_string(budget_));
    }
    used_ += bytes;
    peak_ = std::max(peak_, used_);
    return Status::OK();
  }

  /// \brief Releases `bytes` previously allocated.
  void Free(int64_t bytes) { used_ = std::max<int64_t>(0, used_ - bytes); }

  int64_t used() const { return used_; }
  int64_t peak() const { return peak_; }
  int64_t budget() const { return budget_; }
  int64_t remaining() const { return budget_ - used_; }

 private:
  std::string label_;
  int64_t budget_;
  int64_t used_ = 0;
  int64_t peak_ = 0;
};

}  // namespace distme
