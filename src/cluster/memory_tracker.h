// Per-task memory accounting used by the real executor to enforce θt / θg.

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace distme {

/// \brief Tracks allocations against a fixed budget; reports OutOfMemory
/// when the budget would be exceeded.
///
/// One tracker per task (θt) and one per task's GPU working set (θg).
class MemoryTracker {
 public:
  MemoryTracker(std::string label, int64_t budget_bytes)
      : label_(std::move(label)), budget_(budget_bytes) {}

  ~MemoryTracker() {
    // Return this tracker's live bytes so a shared used-gauge settles back
    // to the other tasks' footprint.
    if (used_gauge_ != nullptr && used_ > 0) used_gauge_->Add(-used_);
  }

  /// \brief Mirrors this tracker's accounting into shared instruments:
  /// `used` aggregates live bytes across trackers, `peak` records the
  /// largest single-tracker footprint, `oom_rejections` counts refused
  /// allocations. Any pointer may be null.
  void AttachMetrics(obs::Gauge* used, obs::Gauge* peak,
                     obs::Counter* oom_rejections) {
    used_gauge_ = used;
    peak_gauge_ = peak;
    oom_counter_ = oom_rejections;
  }

  /// \brief Mirrors memory high-water marks into a flight recorder: one
  /// event at the first allocation, then one each time the tracker's peak
  /// doubles (bounded event volume — log2(budget) events per task at
  /// worst). `flight` may be null.
  void AttachFlight(obs::FlightRecorder* flight, int node, int slot) {
    flight_ = flight;
    node_ = node;
    slot_ = slot;
  }

  /// \brief Reserves `bytes`; fails with OutOfMemory if over budget.
  [[nodiscard]] Status Allocate(int64_t bytes) {
    if (used_ + bytes > budget_) {
      if (oom_counter_ != nullptr) oom_counter_->Add(1);
      return Status::OutOfMemory(label_ + ": requested " +
                                 std::to_string(bytes) + " B with " +
                                 std::to_string(budget_ - used_) +
                                 " B remaining of " + std::to_string(budget_));
    }
    used_ += bytes;
    peak_ = std::max(peak_, used_);
    if (used_gauge_ != nullptr) used_gauge_->Add(bytes);
    if (peak_gauge_ != nullptr) peak_gauge_->SetMax(peak_);
    if (flight_ != nullptr && peak_ >= next_flight_peak_) {
      flight_->Record(obs::FlightEventType::kMemHighWater, node_, slot_,
                      peak_, budget_);
      // Next event at the doubling of the current peak.
      next_flight_peak_ = std::max<int64_t>(peak_ * 2, 1);
    }
    return Status::OK();
  }

  /// \brief Releases `bytes` previously allocated.
  void Free(int64_t bytes) {
    const int64_t released = std::min(used_, std::max<int64_t>(0, bytes));
    used_ -= released;
    if (used_gauge_ != nullptr && released > 0) used_gauge_->Add(-released);
  }

  int64_t used() const { return used_; }
  int64_t peak() const { return peak_; }
  int64_t budget() const { return budget_; }
  int64_t remaining() const { return budget_ - used_; }

 private:
  std::string label_;
  int64_t budget_;
  int64_t used_ = 0;
  int64_t peak_ = 0;
  obs::Gauge* used_gauge_ = nullptr;
  obs::Gauge* peak_gauge_ = nullptr;
  obs::Counter* oom_counter_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  int node_ = -1;
  int slot_ = -1;
  int64_t next_flight_peak_ = 1;
};

}  // namespace distme
