// Cluster topology and hardware model — the substitution for the paper's
// physical testbed (Section 6.1: one master + nine slaves, 10 GbE, six-core
// 3.5 GHz CPU, 64 GB RAM, 500 GB SSD + 4 TB HDD, one GTX 1080 Ti per node).

#pragma once

#include <cstdint>

#include "common/units.h"

namespace distme {

/// \brief Throughput/latency constants for the simulated hardware.
///
/// Values are calibrated to the paper's testbed; see DESIGN.md §4.3. Only the
/// *relative* magnitudes matter for reproducing the evaluation's shape.
struct HardwareModel {
  /// Dense DGEMM throughput of one CPU task (one core), FLOP/s. Calibrated
  /// to the paper's measured Spark/JVM pipeline (DistME(C) at 40K³ implies
  /// ~1.9 GFLOP/s effective per core), not to raw MKL peak.
  double cpu_gemm_flops = 2e9;
  /// Sparse (CSR) multiply throughput of one CPU task, FLOP/s.
  double cpu_sparse_flops = 0.5e9;
  /// Whole-GPU dense DGEMM throughput (GTX 1080 Ti FP64), FLOP/s.
  double gpu_gemm_flops = 330e9;
  /// Whole-GPU sparse multiply throughput, FLOP/s.
  double gpu_sparse_flops = 45e9;
  /// Effective PCI-E host<->device bandwidth, bytes/s (16 GB/s nominal).
  double pcie_bandwidth = 12.0 * kGiB;
  /// Per-node NIC bandwidth, bytes/s (10 GbE).
  double nic_bandwidth = 1.25 * kGiB;
  /// Disk (shuffle spill) bandwidth per node, bytes/s.
  double disk_bandwidth = 0.5 * kGiB;
  /// Effective memory bandwidth available to one CPU task, bytes/s. Sparse
  /// kernels with dense operands are bandwidth-bound, not FLOP-bound.
  double cpu_memory_bandwidth = 6.0 * kGiB;
  /// Fixed cost to launch one kernel on the GPU, seconds.
  double kernel_launch_overhead = 10e-6;
  /// Fixed cost to schedule one distributed task (Spark overhead), seconds.
  double task_launch_overhead = 15e-3;
  /// Serial per-task driver dispatch cost. With very large task counts
  /// (RMM's T = I·J) the driver becomes the bottleneck — the paper notes
  /// T = I·J·K "incurs some errors due to too many tasks in Spark".
  double driver_dispatch_overhead = 5e-3;
  /// Fixed per-job cost (driver planning, stage setup), seconds.
  double job_overhead = 3.0;
  /// Serialization/deserialization throughput, bytes/s. Shuffled bytes pass
  /// through this on both ends (the paper's Figure 9(b) notes measured
  /// shuffle volume differs from Cost() because of serialization).
  double serialization_bandwidth = 2.0 * kGiB;
  /// Multiplier on serialized shuffle volume vs raw element bytes.
  double serialization_overhead = 1.08;
};

/// \brief GPU device description.
struct GpuSpec {
  /// Total device memory (GTX 1080 Ti: 11 GB).
  int64_t memory_bytes = 11 * kGiB;
  /// Hardware limit on concurrent streams the scheduler honours.
  int max_concurrent_streams = 32;
  /// Whether an MPS-like service lets multiple tasks share the device.
  bool mps_enabled = true;
  /// GPUs per node. The paper's testbed has one; supporting several is the
  /// paper's stated future work ("extend our GPU acceleration method to
  /// exploit multiple GPUs per node") — tasks on a node are spread
  /// round-robin across devices.
  int devices_per_node = 1;
};

/// \brief The cluster a job runs on.
struct ClusterConfig {
  /// Number of worker nodes (M in the paper).
  int num_nodes = 9;
  /// Concurrent tasks per node (Tc in the paper).
  int tasks_per_node = 10;
  /// Main memory per node (paper: 64 GB). Broadcast variables are shared at
  /// node granularity.
  int64_t node_memory_bytes = 64 * kGiB;
  /// Memory budget per task, θt (paper: 6 GB).
  int64_t task_memory_bytes = 6 * kGiB;
  /// GPU memory budget per task, θg (paper: 1 GB).
  int64_t gpu_task_memory_bytes = 1 * kGiB;
  /// Total disk capacity available for shuffle data across the cluster
  /// (paper: 9 × 4 TB = 36 decimal TB; E.D.C. when exceeded).
  int64_t total_disk_bytes = int64_t{36} * 1000 * 1000 * 1000 * 1000;
  /// Wall-clock limit; T.O. when exceeded (paper: 4000 s).
  double timeout_seconds = 4000.0;
  /// Whether nodes have GPUs available.
  bool has_gpu = true;
  GpuSpec gpu;
  HardwareModel hw;

  /// \brief Total concurrent task slots, M × Tc.
  int total_slots() const { return num_nodes * tasks_per_node; }

  /// \brief The paper's testbed (Section 6.1).
  static ClusterConfig Paper() { return ClusterConfig{}; }

  /// \brief A small in-process cluster for real-execution tests: `nodes`
  /// simulated nodes × `tasks` threads, tiny memory budgets so OOM paths can
  /// be exercised at test scale.
  static ClusterConfig Local(int nodes = 2, int tasks = 2) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.tasks_per_node = tasks;
    config.node_memory_bytes = 1 * kGiB;
    config.task_memory_bytes = 256 * kMiB;
    config.gpu_task_memory_bytes = 64 * kMiB;
    config.total_disk_bytes = 16 * kGiB;
    config.timeout_seconds = 300.0;
    return config;
  }
};

}  // namespace distme
