#include "core/planner.h"

namespace distme::core {

Result<std::unique_ptr<mm::Method>> DistmePlanner::Choose(
    const mm::MMProblem& problem, const ClusterConfig& cluster) const {
  DISTME_ASSIGN_OR_RETURN(mm::OptimizedCuboid opt,
                          mm::OptimizeCuboid(problem, cluster, options_));
  return std::unique_ptr<mm::Method>(new mm::CuboidMethod(opt.spec));
}

Result<std::unique_ptr<mm::Method>> MakeMethod(mm::MethodKind kind,
                                               const mm::MMProblem& problem,
                                               const ClusterConfig& cluster) {
  switch (kind) {
    case mm::MethodKind::kBmm:
      return std::unique_ptr<mm::Method>(new mm::BmmMethod());
    case mm::MethodKind::kCpmm:
      return std::unique_ptr<mm::Method>(new mm::CpmmMethod());
    case mm::MethodKind::kRmm:
      return std::unique_ptr<mm::Method>(new mm::RmmMethod());
    case mm::MethodKind::kCuboid: {
      DISTME_ASSIGN_OR_RETURN(mm::OptimizedCuboid opt,
                              mm::OptimizeCuboid(problem, cluster));
      return std::unique_ptr<mm::Method>(new mm::CuboidMethod(opt.spec));
    }
    case mm::MethodKind::kSumma:
      return std::unique_ptr<mm::Method>(new mm::SummaMethod());
    case mm::MethodKind::kSumma25d:
      return std::unique_ptr<mm::Method>(new mm::Summa25dMethod());
    case mm::MethodKind::kCrmm:
      return std::unique_ptr<mm::Method>(new mm::CrmmMethod());
  }
  return Status::Invalid("unknown method kind");
}

Result<std::unique_ptr<mm::Method>> FixedMethodPlanner::Choose(
    const mm::MMProblem& problem, const ClusterConfig& cluster) const {
  return MakeMethod(kind_, problem, cluster);
}

}  // namespace distme::core
