// Paper-scale simulation of complex matrix queries: a descriptor-level
// expression DAG evaluated against the simulated cluster. This is the
// planning-time counterpart of core/expr.h — no data, only shapes and
// sparsities — and generalizes the GNMF simulator to arbitrary queries
// (the "complex query like matrix factorization" capability of Section 1).

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "blas/block_ops.h"
#include "core/planner.h"
#include "engine/sim_executor.h"
#include "mm/descriptor.h"

namespace distme::core {

/// \brief A descriptor-level expression node.
class SimExpr {
 public:
  using Ptr = std::shared_ptr<const SimExpr>;

  enum class Kind { kLeaf, kMultiply, kTranspose, kElementWise, kScale };

  Kind kind() const { return kind_; }
  const mm::MatrixDescriptor& leaf() const { return leaf_; }
  const Ptr& left() const { return operands_[0]; }
  const Ptr& right() const { return operands_[1]; }
  const std::string& name() const { return name_; }

  /// \brief The descriptor of this expression's value, with sparsity
  /// propagated through multiplications (1 − (1 − sa·sb)^k estimate).
  mm::MatrixDescriptor ResultDescriptor() const;

  static Ptr Leaf(mm::MatrixDescriptor descriptor, std::string name = "M");
  static Ptr Multiply(Ptr left, Ptr right);
  static Ptr Transpose(Ptr e);
  static Ptr ElementWise(blas::ElementWiseOp op, Ptr left, Ptr right);
  static Ptr Scale(Ptr e, double factor);

 private:
  SimExpr() = default;

  Kind kind_ = Kind::kLeaf;
  mm::MatrixDescriptor leaf_;
  std::string name_;
  Ptr operands_[2];
};

/// \brief Cost of one physical operator in the simulated plan.
struct SimOpCost {
  std::string description;   ///< e.g. "CuboidMM(4,7,4): Wt x V"
  double seconds = 0;
  double shuffle_bytes = 0;
};

/// \brief Result of simulating a query.
struct SimQueryReport {
  Status outcome;
  double total_seconds = 0;
  double total_shuffle_bytes = 0;
  int64_t multiplications = 0;
  int64_t reused_nodes = 0;  ///< shared subtrees charged once
  std::vector<SimOpCost> operators;
};

/// \brief Options for query simulation.
struct SimQueryOptions {
  ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimOptions sim;
  /// Dependency-aware systems co-partition operator outputs: transposes and
  /// element-wise ops become shuffle-free, multiplications repartition half
  /// as much.
  bool dependency_aware = true;
};

/// \brief Simulates `expr` with `planner` choosing each multiplication's
/// method. Shared subtrees (node identity) are charged once.
[[nodiscard]] Result<SimQueryReport> SimulateQuery(const Planner& planner,
                                     const SimExpr::Ptr& expr,
                                     const SimQueryOptions& options = {});

}  // namespace distme::core
