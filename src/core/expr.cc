#include "core/expr.h"

#include <functional>
#include <limits>
#include <vector>

namespace distme::core {

std::pair<int64_t, int64_t> Expr::Shape() const {
  switch (kind_) {
    case ExprKind::kLeaf:
      return {leaf_.rows(), leaf_.cols()};
    case ExprKind::kMultiply: {
      const auto l = left()->Shape();
      const auto r = right()->Shape();
      return {l.first, r.second};
    }
    case ExprKind::kTranspose: {
      const auto l = left()->Shape();
      return {l.second, l.first};
    }
    case ExprKind::kElementWise:
    case ExprKind::kScale:
      return left()->Shape();
  }
  return {0, 0};
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kLeaf:
      return name_;
    case ExprKind::kMultiply:
      return "(" + left()->ToString() + " x " + right()->ToString() + ")";
    case ExprKind::kTranspose:
      return left()->ToString() + "'";
    case ExprKind::kElementWise: {
      const char* symbol = "?";
      switch (op_) {
        case blas::ElementWiseOp::kAdd:
          symbol = "+";
          break;
        case blas::ElementWiseOp::kSub:
          symbol = "-";
          break;
        case blas::ElementWiseOp::kMul:
          symbol = ".*";
          break;
        case blas::ElementWiseOp::kDiv:
          symbol = "./";
          break;
      }
      return "(" + left()->ToString() + " " + symbol + " " +
             right()->ToString() + ")";
    }
    case ExprKind::kScale:
      return "(" + std::to_string(scalar_) + " * " + left()->ToString() + ")";
  }
  return "?";
}

Expr::Ptr Expr::Leaf(Matrix matrix, std::string name) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kLeaf;
  node->leaf_ = std::move(matrix);
  node->name_ = std::move(name);
  return node;
}

Expr::Ptr Expr::Multiply(Ptr left, Ptr right) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kMultiply;
  node->operands_[0] = std::move(left);
  node->operands_[1] = std::move(right);
  return node;
}

Expr::Ptr Expr::Transpose(Ptr e) {
  // Transpose folding: (eᵀ)ᵀ = e, done at build time so the physical plan
  // never materializes a double transpose.
  if (e->kind() == ExprKind::kTranspose) return e->left();
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kTranspose;
  node->operands_[0] = std::move(e);
  return node;
}

Expr::Ptr Expr::ElementWise(blas::ElementWiseOp op, Ptr left, Ptr right,
                            double epsilon) {
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kElementWise;
  node->op_ = op;
  node->operands_[0] = std::move(left);
  node->operands_[1] = std::move(right);
  node->epsilon_ = epsilon;
  return node;
}

Expr::Ptr Expr::Scale(Ptr e, double factor) {
  // Fold nested scales: a·(b·e) = (a·b)·e.
  if (e->kind() == ExprKind::kScale) {
    return Scale(e->left(), factor * e->scalar());
  }
  auto node = std::shared_ptr<Expr>(new Expr());
  node->kind_ = ExprKind::kScale;
  node->operands_[0] = std::move(e);
  node->scalar_ = factor;
  return node;
}

namespace {

class Evaluator {
 public:
  Evaluator(Session* session, EvalStats* stats)
      : session_(session), stats_(stats) {}

  Result<Matrix> Eval(const Expr::Ptr& expr) {
    auto it = cache_.find(expr.get());
    if (it != cache_.end()) {
      if (stats_ != nullptr) ++stats_->nodes_reused;
      return it->second;
    }
    DISTME_ASSIGN_OR_RETURN(Matrix value, Compute(expr));
    cache_.emplace(expr.get(), value);
    if (stats_ != nullptr) ++stats_->nodes_evaluated;
    return value;
  }

 private:
  Result<Matrix> Compute(const Expr::Ptr& expr) {
    switch (expr->kind()) {
      case ExprKind::kLeaf:
        return expr->leaf();
      case ExprKind::kMultiply: {
        DISTME_ASSIGN_OR_RETURN(Matrix left, Eval(expr->left()));
        DISTME_ASSIGN_OR_RETURN(Matrix right, Eval(expr->right()));
        if (stats_ != nullptr) ++stats_->multiplications;
        return session_->Multiply(left, right);
      }
      case ExprKind::kTranspose: {
        DISTME_ASSIGN_OR_RETURN(Matrix value, Eval(expr->left()));
        return session_->Transpose(value);
      }
      case ExprKind::kElementWise: {
        DISTME_ASSIGN_OR_RETURN(Matrix left, Eval(expr->left()));
        DISTME_ASSIGN_OR_RETURN(Matrix right, Eval(expr->right()));
        return session_->ElementWise(expr->op(), left, right,
                                     expr->epsilon());
      }
      case ExprKind::kScale: {
        DISTME_ASSIGN_OR_RETURN(Matrix value, Eval(expr->left()));
        return session_->Scale(value, expr->scalar());
      }
    }
    return Status::Internal("unknown expression kind");
  }

  Session* session_;
  EvalStats* stats_;
  std::unordered_map<const Expr*, Matrix> cache_;
};

}  // namespace

Result<Matrix> Evaluate(Session* session, const Expr::Ptr& expr,
                        EvalStats* stats) {
  if (session == nullptr || !expr) {
    return Status::Invalid("Evaluate requires a session and an expression");
  }
  Evaluator evaluator(session, stats);
  return evaluator.Eval(expr);
}

namespace {

// Flattens a maximal left/right multiply chain into its factor list.
void CollectChain(const Expr::Ptr& expr, std::vector<Expr::Ptr>* factors) {
  if (expr->kind() == ExprKind::kMultiply) {
    CollectChain(expr->left(), factors);
    CollectChain(expr->right(), factors);
    return;
  }
  factors->push_back(expr);
}

// Classic O(n³) matrix-chain DP over the factors' logical dimensions.
Expr::Ptr RebuildOptimalChain(const std::vector<Expr::Ptr>& factors) {
  const size_t n = factors.size();
  if (n == 1) return factors[0];
  // dims[i], dims[i+1] are factor i's (rows, cols).
  std::vector<double> dims(n + 1);
  dims[0] = static_cast<double>(factors[0]->Shape().first);
  for (size_t i = 0; i < n; ++i) {
    dims[i + 1] = static_cast<double>(factors[i]->Shape().second);
  }
  std::vector<std::vector<double>> cost(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<size_t>> split(n, std::vector<size_t>(n, 0));
  for (size_t len = 2; len <= n; ++len) {
    for (size_t i = 0; i + len <= n; ++i) {
      const size_t j = i + len - 1;
      cost[i][j] = std::numeric_limits<double>::infinity();
      for (size_t k = i; k < j; ++k) {
        const double c = cost[i][k] + cost[k + 1][j] +
                         dims[i] * dims[k + 1] * dims[j + 1];
        if (c < cost[i][j]) {
          cost[i][j] = c;
          split[i][j] = k;
        }
      }
    }
  }
  // Rebuild recursively from the split table.
  std::function<Expr::Ptr(size_t, size_t)> build = [&](size_t i,
                                                       size_t j) -> Expr::Ptr {
    if (i == j) return factors[i];
    const size_t k = split[i][j];
    return Expr::Multiply(build(i, k), build(k + 1, j));
  };
  return build(0, n - 1);
}

Expr::Ptr Rewrite(const Expr::Ptr& expr,
                  std::unordered_map<const Expr*, Expr::Ptr>* memo) {
  auto it = memo->find(expr.get());
  if (it != memo->end()) return it->second;

  Expr::Ptr result;
  switch (expr->kind()) {
    case ExprKind::kLeaf:
      result = expr;
      break;
    case ExprKind::kMultiply: {
      std::vector<Expr::Ptr> factors;
      CollectChain(expr, &factors);
      for (auto& factor : factors) factor = Rewrite(factor, memo);
      result = RebuildOptimalChain(factors);
      break;
    }
    case ExprKind::kTranspose:
      result = Expr::Transpose(Rewrite(expr->left(), memo));
      break;
    case ExprKind::kElementWise:
      result = Expr::ElementWise(expr->op(), Rewrite(expr->left(), memo),
                                 Rewrite(expr->right(), memo),
                                 expr->epsilon());
      break;
    case ExprKind::kScale:
      result = Expr::Scale(Rewrite(expr->left(), memo), expr->scalar());
      break;
  }
  memo->emplace(expr.get(), result);
  return result;
}

double FlopsOf(const Expr::Ptr& expr,
               std::unordered_map<const Expr*, double>* memo) {
  auto it = memo->find(expr.get());
  if (it != memo->end()) return 0.0;  // shared subtree counted once
  double flops = 0.0;
  switch (expr->kind()) {
    case ExprKind::kLeaf:
      break;
    case ExprKind::kMultiply: {
      flops = FlopsOf(expr->left(), memo) + FlopsOf(expr->right(), memo);
      const auto l = expr->left()->Shape();
      const auto r = expr->right()->Shape();
      flops += 2.0 * static_cast<double>(l.first) *
               static_cast<double>(l.second) * static_cast<double>(r.second);
      break;
    }
    default:
      flops = FlopsOf(expr->left(), memo);
      if (expr->kind() == ExprKind::kElementWise) {
        flops += FlopsOf(expr->right(), memo);
      }
      break;
  }
  memo->emplace(expr.get(), flops);
  return flops;
}

}  // namespace

Expr::Ptr OptimizeMultiplicationOrder(const Expr::Ptr& expr) {
  if (!expr) return expr;
  std::unordered_map<const Expr*, Expr::Ptr> memo;
  return Rewrite(expr, &memo);
}

double MultiplicationFlops(const Expr::Ptr& expr) {
  if (!expr) return 0.0;
  std::unordered_map<const Expr*, double> memo;
  return FlopsOf(expr, &memo);
}

}  // namespace distme::core
