// Planner: picks a distributed multiplication method for a problem — the
// per-system policy layer. DistME's planner runs the CuboidMM optimizer;
// comparator systems (Section 6.3-6.5) plug in their own policies.

#pragma once

#include <memory>
#include <string>

#include "cluster/config.h"
#include "common/result.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme::core {

/// \brief Strategy interface: choose the method for one multiplication.
class Planner {
 public:
  virtual ~Planner() = default;
  virtual std::string name() const = 0;

  /// \brief Returns the method to execute `problem` with on `cluster`.
  [[nodiscard]] virtual Result<std::unique_ptr<mm::Method>> Choose(
      const mm::MMProblem& problem, const ClusterConfig& cluster) const = 0;
};

/// \brief DistME's planner: (P*,Q*,R*) CuboidMM via the Section 3.2
/// optimizer.
class DistmePlanner : public Planner {
 public:
  explicit DistmePlanner(mm::OptimizerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "DistME"; }
  [[nodiscard]] Result<std::unique_ptr<mm::Method>> Choose(
      const mm::MMProblem& problem,
      const ClusterConfig& cluster) const override;

 private:
  mm::OptimizerOptions options_;
};

/// \brief Always uses one fixed method kind (for the Figure 6 comparisons).
class FixedMethodPlanner : public Planner {
 public:
  explicit FixedMethodPlanner(mm::MethodKind kind) : kind_(kind) {}

  std::string name() const override { return mm::MethodKindName(kind_); }
  [[nodiscard]] Result<std::unique_ptr<mm::Method>> Choose(
      const mm::MMProblem& problem,
      const ClusterConfig& cluster) const override;

 private:
  mm::MethodKind kind_;
};

/// \brief Instantiates a method of `kind` with its paper-default parameters
/// (BMM: T = I; CPMM: T = K; RMM: T = I·J; CuboidMM: optimized; SUMMA:
/// square grid; CRMM: auto merge factor).
[[nodiscard]] Result<std::unique_ptr<mm::Method>> MakeMethod(mm::MethodKind kind,
                                               const mm::MMProblem& problem,
                                               const ClusterConfig& cluster);

}  // namespace distme::core
