#include "core/sim_query.h"

#include <unordered_map>
#include <unordered_set>

#include "sim/timeline.h"

namespace distme::core {

mm::MatrixDescriptor SimExpr::ResultDescriptor() const {
  switch (kind_) {
    case Kind::kLeaf:
      return leaf_;
    case Kind::kMultiply: {
      const mm::MatrixDescriptor l = left()->ResultDescriptor();
      const mm::MatrixDescriptor r = right()->ResultDescriptor();
      mm::MatrixDescriptor out;
      out.shape = BlockedShape{l.shape.rows, r.shape.cols,
                               l.shape.block_size};
      out.sparsity = engine::EstimateProductDensity(
          l.sparsity, r.sparsity, static_cast<double>(l.shape.cols));
      out.stored_dense = out.sparsity >= 0.4;
      return out;
    }
    case Kind::kTranspose: {
      mm::MatrixDescriptor d = left()->ResultDescriptor();
      std::swap(d.shape.rows, d.shape.cols);
      return d;
    }
    case Kind::kElementWise: {
      // Conservative: the union/intersection of patterns; keep the denser.
      mm::MatrixDescriptor l = left()->ResultDescriptor();
      const mm::MatrixDescriptor r = right()->ResultDescriptor();
      l.sparsity = std::max(l.sparsity, r.sparsity);
      l.stored_dense = l.sparsity >= 0.4;
      return l;
    }
    case Kind::kScale:
      return left()->ResultDescriptor();
  }
  return {};
}

SimExpr::Ptr SimExpr::Leaf(mm::MatrixDescriptor descriptor,
                           std::string name) {
  auto node = std::shared_ptr<SimExpr>(new SimExpr());
  node->kind_ = Kind::kLeaf;
  node->leaf_ = descriptor;
  node->name_ = std::move(name);
  return node;
}

SimExpr::Ptr SimExpr::Multiply(Ptr left, Ptr right) {
  auto node = std::shared_ptr<SimExpr>(new SimExpr());
  node->kind_ = Kind::kMultiply;
  node->operands_[0] = std::move(left);
  node->operands_[1] = std::move(right);
  return node;
}

SimExpr::Ptr SimExpr::Transpose(Ptr e) {
  if (e->kind() == Kind::kTranspose) return e->left();
  auto node = std::shared_ptr<SimExpr>(new SimExpr());
  node->kind_ = Kind::kTranspose;
  node->operands_[0] = std::move(e);
  return node;
}

SimExpr::Ptr SimExpr::ElementWise(blas::ElementWiseOp /*op*/, Ptr left,
                                  Ptr right) {
  auto node = std::shared_ptr<SimExpr>(new SimExpr());
  node->kind_ = Kind::kElementWise;
  node->operands_[0] = std::move(left);
  node->operands_[1] = std::move(right);
  return node;
}

SimExpr::Ptr SimExpr::Scale(Ptr e, double /*factor*/) {
  auto node = std::shared_ptr<SimExpr>(new SimExpr());
  node->kind_ = Kind::kScale;
  node->operands_[0] = std::move(e);
  return node;
}

namespace {

std::string DescribeShape(const mm::MatrixDescriptor& d) {
  return FormatCount(static_cast<double>(d.shape.rows)) + "x" +
         FormatCount(static_cast<double>(d.shape.cols));
}

class QuerySimulator {
 public:
  QuerySimulator(const Planner& planner, const SimQueryOptions& options)
      : planner_(planner), options_(options), executor_(options.cluster) {}

  Status Visit(const SimExpr::Ptr& expr, SimQueryReport* report) {
    if (visited_.count(expr.get()) > 0) {
      ++report->reused_nodes;
      return Status::OK();
    }
    visited_.insert(expr.get());

    switch (expr->kind()) {
      case SimExpr::Kind::kLeaf:
        return Status::OK();
      case SimExpr::Kind::kMultiply: {
        DISTME_RETURN_NOT_OK(Visit(expr->left(), report));
        DISTME_RETURN_NOT_OK(Visit(expr->right(), report));
        mm::MMProblem problem{expr->left()->ResultDescriptor(),
                              expr->right()->ResultDescriptor()};
        auto method = planner_.Choose(problem, options_.cluster);
        if (!method.ok()) return method.status();
        engine::SimOptions sim = options_.sim;
        if (options_.dependency_aware) sim.repartition_factor *= 0.5;
        DISTME_ASSIGN_OR_RETURN(engine::MMReport mm_report,
                                executor_.Run(problem, **method, sim));
        DISTME_RETURN_NOT_OK(mm_report.outcome);
        ++report->multiplications;
        report->total_seconds += mm_report.elapsed_seconds;
        report->total_shuffle_bytes += mm_report.total_shuffle_bytes();
        report->operators.push_back(
            {mm_report.method_name + ": " +
                 DescribeShape(problem.a) + " x " + DescribeShape(problem.b),
             mm_report.elapsed_seconds, mm_report.total_shuffle_bytes()});
        return Status::OK();
      }
      case SimExpr::Kind::kTranspose: {
        DISTME_RETURN_NOT_OK(Visit(expr->left(), report));
        const mm::MatrixDescriptor d = expr->left()->ResultDescriptor();
        double seconds = 0;
        double bytes = 0;
        if (!options_.dependency_aware) {
          // Re-keying shuffles the matrix once.
          bytes = d.StoredBytes();
          seconds = sim::ShuffleSeconds(
              bytes, options_.cluster.num_nodes,
              options_.cluster.hw.nic_bandwidth,
              options_.cluster.hw.serialization_bandwidth,
              options_.cluster.hw.serialization_overhead);
        }
        report->total_seconds += seconds;
        report->total_shuffle_bytes += bytes;
        report->operators.push_back(
            {"transpose: " + DescribeShape(d), seconds, bytes});
        return Status::OK();
      }
      case SimExpr::Kind::kElementWise: {
        DISTME_RETURN_NOT_OK(Visit(expr->left(), report));
        DISTME_RETURN_NOT_OK(Visit(expr->right(), report));
        const mm::MatrixDescriptor l = expr->left()->ResultDescriptor();
        const mm::MatrixDescriptor r = expr->right()->ResultDescriptor();
        double bytes = 0;
        double seconds = (l.StoredBytes() + r.StoredBytes()) /
                         (static_cast<double>(options_.cluster.num_nodes) *
                          2.0 * kGiB);
        if (!options_.dependency_aware) {
          // One operand is shuffled to co-partition with the other.
          bytes = std::min(l.StoredBytes(), r.StoredBytes());
          seconds += sim::ShuffleSeconds(
              bytes, options_.cluster.num_nodes,
              options_.cluster.hw.nic_bandwidth,
              options_.cluster.hw.serialization_bandwidth,
              options_.cluster.hw.serialization_overhead);
        }
        report->total_seconds += seconds;
        report->total_shuffle_bytes += bytes;
        report->operators.push_back(
            {"element-wise: " + DescribeShape(l), seconds, bytes});
        return Status::OK();
      }
      case SimExpr::Kind::kScale: {
        DISTME_RETURN_NOT_OK(Visit(expr->left(), report));
        const mm::MatrixDescriptor d = expr->left()->ResultDescriptor();
        const double seconds =
            d.StoredBytes() /
            (static_cast<double>(options_.cluster.num_nodes) * 4.0 * kGiB);
        report->total_seconds += seconds;
        report->operators.push_back(
            {"scale: " + DescribeShape(d), seconds, 0});
        return Status::OK();
      }
    }
    return Status::Internal("unknown SimExpr kind");
  }

 private:
  const Planner& planner_;
  const SimQueryOptions& options_;
  engine::SimExecutor executor_;
  std::unordered_set<const SimExpr*> visited_;
};

}  // namespace

Result<SimQueryReport> SimulateQuery(const Planner& planner,
                                     const SimExpr::Ptr& expr,
                                     const SimQueryOptions& options) {
  if (!expr) return Status::Invalid("null query expression");
  SimQueryReport report;
  report.outcome = Status::OK();
  QuerySimulator simulator(planner, options);
  Status st = simulator.Visit(expr, &report);
  if (!st.ok()) {
    report.outcome = std::move(st);
  }
  return report;
}

}  // namespace distme::core
