// Gaussian Non-negative Matrix Factorization (Appendix A): the complex-query
// workload of Section 6.4. Factorizes a rating matrix V ≈ W × H with the
// multiplicative updates
//   H ← H ∘ (Wᵀ V) ⊘ (Wᵀ W H),   W ← W ∘ (V Hᵀ) ⊘ (W H Hᵀ),
// using the same query plan as DMac.

#pragma once

#include <vector>

#include "core/session.h"
#include "engine/sim_executor.h"

namespace distme::core {

/// \brief Options for a real (small-scale) GNMF run.
struct GnmfOptions {
  int64_t factor_dim = 200;  ///< columns of W / rows of H
  int iterations = 10;
  /// Added to divisors to avoid division by zero (standard GNMF practice).
  double epsilon = 1e-12;
  uint64_t seed = 7;
  /// Compute ‖V − W·H‖_F after every iteration (collects matrices locally —
  /// test scale only).
  bool track_loss = false;
};

/// \brief Result of a real GNMF run.
struct GnmfResult {
  Matrix w;  ///< users × factor_dim
  Matrix h;  ///< factor_dim × items
  std::vector<double> loss;  ///< per-iteration ‖V − WH‖_F if track_loss
};

/// \brief Runs GNMF on an actual distributed matrix through `session`.
/// Multiplication reports accumulate in session->history().
[[nodiscard]] Result<GnmfResult> RunGnmf(Session* session, const Matrix& v,
                           const GnmfOptions& options);

/// \brief GNMF built as expression DAGs (core/expr.h): within one iteration
/// Wᵀ and Hᵀ are shared subtrees evaluated once — the dependency
/// exploitation of DMac, expressed through DistME's plan generator.
/// Numerically identical to RunGnmf. `stats` (optional) accumulates the
/// evaluator's reuse counters across iterations.
struct GnmfEvalStats {
  int64_t nodes_evaluated = 0;
  int64_t nodes_reused = 0;
  int64_t multiplications = 0;
};
[[nodiscard]] Result<GnmfResult> RunGnmfExpr(Session* session, const Matrix& v,
                               const GnmfOptions& options,
                               GnmfEvalStats* stats = nullptr);

/// \brief Options for a simulated (paper-scale) GNMF run.
struct GnmfSimOptions {
  mm::MatrixDescriptor v;  ///< the rating matrix (users × items, sparse)
  int64_t factor_dim = 200;
  int iterations = 10;
  ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimOptions sim;
  /// If true, the system stores operator outputs pre-partitioned for their
  /// consumers (DMac / MatFast dependency exploitation, and DistME's cuboid
  /// planner): halves repartition volume and makes transposes/element-wise
  /// ops shuffle-free.
  bool dependency_aware = false;
};

/// \brief Per-iteration simulated cost of the GNMF query.
struct GnmfSimReport {
  Status outcome;
  std::vector<double> iteration_seconds;  ///< one entry per iteration
  double total_seconds = 0;
  double total_shuffle_bytes = 0;

  /// \brief Accumulated time through iteration `n` (1-based), as plotted in
  /// Figure 8.
  double AccumulatedSeconds(int n) const;
};

/// \brief Simulates `iterations` GNMF iterations with `planner` choosing the
/// method for each of the six multiplications per iteration.
[[nodiscard]] Result<GnmfSimReport> SimulateGnmf(const Planner& planner,
                                   const GnmfSimOptions& options);

}  // namespace distme::core
