// Lazy matrix expressions and the physical-plan generator — the analogue of
// DistME's SparkSQL-based plan generation (Section 5). Users compose
// expressions; Evaluate() optimizes the DAG (transpose folding, common
// subexpression reuse) and executes it through a Session.

#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/session.h"

namespace distme::core {

/// \brief Node kinds of the expression DAG.
enum class ExprKind { kLeaf, kMultiply, kTranspose, kElementWise, kScale };

/// \brief An immutable expression node. Build with the factory functions
/// below; shared subtrees are evaluated once.
class Expr {
 public:
  using Ptr = std::shared_ptr<const Expr>;

  ExprKind kind() const { return kind_; }
  const Matrix& leaf() const { return leaf_; }
  const Ptr& left() const { return operands_[0]; }
  const Ptr& right() const { return operands_[1]; }
  blas::ElementWiseOp op() const { return op_; }
  double scalar() const { return scalar_; }
  double epsilon() const { return epsilon_; }

  /// \brief Logical (rows, cols) of the expression's value.
  std::pair<int64_t, int64_t> Shape() const;

  /// \brief Human-readable plan, e.g. "((Wt x V) .* H)".
  std::string ToString() const;

  // ---- Factories ----

  /// \brief Wraps a materialized matrix.
  static Ptr Leaf(Matrix matrix, std::string name = "M");

  /// \brief left × right.
  static Ptr Multiply(Ptr left, Ptr right);

  /// \brief eᵀ. Folds immediately: Transpose(Transpose(e)) == e.
  static Ptr Transpose(Ptr e);

  /// \brief Element-wise combine.
  static Ptr ElementWise(blas::ElementWiseOp op, Ptr left, Ptr right,
                         double epsilon = 0.0);

  /// \brief e scaled by a constant.
  static Ptr Scale(Ptr e, double factor);

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLeaf;
  Matrix leaf_;
  std::string name_;
  Ptr operands_[2];
  blas::ElementWiseOp op_ = blas::ElementWiseOp::kAdd;
  double scalar_ = 1.0;
  double epsilon_ = 0.0;
};

/// \brief Statistics of one evaluation.
struct EvalStats {
  int64_t nodes_evaluated = 0;   ///< physical operators executed
  int64_t nodes_reused = 0;      ///< cache hits from shared subtrees
  int64_t multiplications = 0;   ///< distributed multiplications run
};

/// \brief Evaluates an expression DAG through `session`.
///
/// Shared subexpressions (by node identity) are computed once — e.g. in the
/// GNMF update, Wᵀ feeds both WᵀV and WᵀW but is transposed a single time,
/// the dependency exploitation DMac/MatFast perform (Section 7).
[[nodiscard]] Result<Matrix> Evaluate(Session* session, const Expr::Ptr& expr,
                        EvalStats* stats = nullptr);

/// \brief Rewrites maximal multiplication chains in `expr` into the
/// FLOP-optimal association (the classic matrix-chain dynamic program).
/// E.g. A(1M×1K) × B(1K×1K) × x(1K×1) becomes A × (B × x). Non-multiply
/// nodes are preserved; shared subtrees stay shared.
Expr::Ptr OptimizeMultiplicationOrder(const Expr::Ptr& expr);

/// \brief FLOPs of the multiplications in `expr` assuming dense operands
/// (the quantity OptimizeMultiplicationOrder minimizes per chain).
double MultiplicationFlops(const Expr::Ptr& expr);

}  // namespace distme::core
