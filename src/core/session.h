// Session: the DistME public API. Create distributed matrices, multiply
// them (the planner picks the method — CuboidMM for DistME), transpose,
// combine element-wise, and collect results. Mirrors the Scala API the
// paper describes in Section 5, in eager form.

#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blas/block_ops.h"
#include "cluster/config.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/planner.h"
#include "engine/distributed_matrix.h"
#include "engine/explain.h"
#include "engine/real_executor.h"
#include "engine/report.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "obs/comm_matrix.h"
#include "obs/flight_recorder.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace distme::core {

/// \brief A handle to a distributed matrix owned by a Session.
class Matrix {
 public:
  Matrix() = default;

  const BlockedShape& shape() const { return data_->shape(); }
  int64_t rows() const { return data_->shape().rows; }
  int64_t cols() const { return data_->shape().cols; }

  /// \brief Gathers all blocks to a local grid (test scale only).
  BlockGrid Collect() const { return data_->Collect(); }

  /// \brief Planning descriptor (shape + measured sparsity).
  mm::MatrixDescriptor Descriptor() const { return data_->Descriptor(); }

  const engine::DistributedMatrix& distributed() const { return *data_; }

 private:
  friend class Session;
  explicit Matrix(std::shared_ptr<engine::DistributedMatrix> data)
      : data_(std::move(data)) {}
  std::shared_ptr<engine::DistributedMatrix> data_;
};

/// \brief An eager distributed matrix-computation session.
class Session {
 public:
  struct Options {
    ClusterConfig cluster = ClusterConfig::Local();
    /// Compute mode for local multiplication (Section 4's GPU streaming by
    /// default when the cluster has a GPU).
    engine::ComputeMode mode = engine::ComputeMode::kCpu;
    /// Method-selection policy; defaults to DistME's CuboidMM optimizer.
    std::shared_ptr<Planner> planner;
    engine::RealOptions real;
    /// Build an ExplainReport (predicted vs measured, straggler stats) for
    /// every multiplication. Costs two registry snapshots per run; turn off
    /// for overhead-sensitive micro-benchmarks.
    bool collect_explain = true;
    /// Flight-recorder ring capacity (events). Always on — recording is a
    /// few relaxed atomics per event — and the ring doubles as the crash
    /// post-mortem (it dumps to stderr on a fatal Result/Status abort).
    size_t flight_recorder_capacity = 4096;
    /// When non-empty, a failed multiplication dumps the flight-recorder
    /// ring (JSON) to this path before the error Status surfaces.
    std::string flight_dump_path;
    /// When non-empty (and collect_explain is on), every multiplication
    /// (re)writes the last run's explain report — including the
    /// critical-path / bottleneck analysis — as JSON to this path.
    std::string analysis_json_path;
    /// Background sampler period; 0 (the default) disables the sampler.
    int64_t sample_period_ms = 0;
    /// Sampler retention: most-recent snapshots kept in memory.
    size_t sampler_retention = 600;
    /// HTTP scrape endpoint port on 127.0.0.1: -1 (the default) disables
    /// it, 0 binds an ephemeral port (read it back via http_port()).
    int http_port = -1;
    /// Straggler-watchdog scan period; 0 (the default) disables it.
    int64_t watchdog_period_ms = 0;
    /// Watchdog threshold: flag tasks above this multiple of the stage
    /// median task duration.
    double watchdog_threshold = 4.0;
  };

  explicit Session(Options options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const ClusterConfig& cluster() const { return options_.cluster; }

  /// \brief Distributes a local blocked matrix.
  [[nodiscard]] Result<Matrix> FromGrid(const BlockGrid& grid);

  /// \brief Generates a synthetic matrix directly in distributed form.
  [[nodiscard]] Result<Matrix> Generate(const GeneratorOptions& generator);

  /// \brief C = A × B using the session planner. The execution report is
  /// appended to history().
  [[nodiscard]] Result<Matrix> Multiply(const Matrix& a, const Matrix& b);

  /// \brief C = A × B with an explicit method.
  [[nodiscard]] Result<Matrix> MultiplyWith(const Matrix& a, const Matrix& b,
                              const mm::Method& method);

  /// \brief Aᵀ (distributed transpose: block transpose + index swap).
  [[nodiscard]] Result<Matrix> Transpose(const Matrix& a);

  /// \brief Element-wise combine; shapes must match.
  [[nodiscard]] Result<Matrix> ElementWise(blas::ElementWiseOp op, const Matrix& a,
                             const Matrix& b, double epsilon = 0.0);

  /// \brief Multiplies every element by a scalar.
  [[nodiscard]] Result<Matrix> Scale(const Matrix& a, double factor);

  /// \brief Row sums as a rows×1 column vector (same block size).
  [[nodiscard]] Result<Matrix> RowSums(const Matrix& a);

  /// \brief Column sums as a 1×cols row vector.
  [[nodiscard]] Result<Matrix> ColSums(const Matrix& a);

  /// \brief Sum of all elements.
  [[nodiscard]] Result<double> Sum(const Matrix& a);

  /// \brief Frobenius norm, computed block-locally then reduced.
  [[nodiscard]] Result<double> FrobeniusNorm(const Matrix& a);

  /// \brief Checkpoints a matrix to `path` in the binary store format.
  [[nodiscard]] Status Save(const Matrix& a, const std::string& path);

  /// \brief Loads a matrix checkpointed with Save (or any binary store
  /// file) and distributes it across the session's nodes.
  [[nodiscard]] Result<Matrix> Load(const std::string& path);

  /// \brief Reports of every multiplication run in this session.
  const std::vector<engine::MMReport>& history() const { return history_; }
  void ClearHistory() { history_.clear(); }

  /// \brief The session-owned metrics registry; every executor run reports
  /// into it (`distme.*` names — see DESIGN.md "Observability").
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// \brief The session-owned tracer. Disabled by default (spans cost one
  /// relaxed-atomic branch); call EnableTracing() to start recording.
  obs::Tracer& tracer() { return tracer_; }
  void EnableTracing() { tracer_.SetEnabled(true); }

  /// \brief Drains the tracer and writes Chrome trace-event JSON to `path`
  /// (load in chrome://tracing or https://ui.perfetto.dev).
  [[nodiscard]] Status WriteTrace(const std::string& path);

  /// \brief Structured JSON run report of the most recent multiplication,
  /// including the full metrics snapshot. "{}" if nothing has run.
  std::string RunReportJson() const;

  /// \brief Stage-level explain report of the most recent multiplication:
  /// predicted Table-2 bytes vs measured, per-stage timings, straggler
  /// percentiles, and the run's comm matrix. Errors if nothing has run or
  /// Options::collect_explain is off.
  [[nodiscard]] Result<engine::ExplainReport> ExplainLastRun() const;

  /// \brief The session-owned communication matrix; every run's shuffle
  /// traffic accumulates here (per-run views come via ExplainLastRun()).
  obs::CommMatrix& comm() { return comm_; }
  const obs::CommMatrix& comm() const { return comm_; }

  /// \brief The session-owned flight recorder (always on; see
  /// Options::flight_recorder_capacity).
  obs::FlightRecorder& flight() { return flight_; }
  const obs::FlightRecorder& flight() const { return flight_; }

  /// \brief The background sampler, or nullptr when
  /// Options::sample_period_ms is 0.
  obs::Sampler* sampler() { return sampler_.get(); }

  /// \brief The straggler watchdog, or nullptr when
  /// Options::watchdog_period_ms is 0.
  obs::Watchdog* watchdog() { return watchdog_.get(); }

  /// \brief The bound scrape-endpoint port, or -1 when the endpoint is off
  /// (Options::http_port < 0, or the bind failed — see the startup log).
  int http_port() const {
    return endpoint_ != nullptr ? endpoint_->port() : -1;
  }

 private:
  // The Session API itself is single-threaded (one driver thread calls
  // Multiply/Collect/...); the members below are shared only with the
  // telemetry threads, and each one that is states its mechanism.
  Options options_ DISTME_UNSHARED("driver-thread only; set in ctor");
  std::unique_ptr<engine::RealExecutor> executor_
      DISTME_UNSHARED("driver-thread only");
  std::vector<engine::MMReport> history_ DISTME_UNSHARED("driver-thread only");
  obs::MetricsRegistry metrics_
      DISTME_LOCKFREE("internally synchronized (registry mutex + atomics)");
  obs::Tracer tracer_
      DISTME_LOCKFREE("internally synchronized (per-thread buffers)");
  obs::CommMatrix comm_ DISTME_LOCKFREE("internally synchronized (atomics)");
  std::optional<engine::ExplainReport> last_explain_
      DISTME_UNSHARED("driver-thread only; endpoint reads the JSON atomics");
  // Last completed run's explain JSON for the endpoint's GET /explain.
  // Lock-free handoff: the run thread publishes a fresh immutable string,
  // the endpoint thread loads whatever is current (null before first run).
  std::atomic<std::shared_ptr<const std::string>> last_explain_json_;
  // Last run's GPU timeline analysis JSON for GET /gpu — the same
  // obs::GpuTimelineAnalysis the explain report embeds, so the two routes
  // (and distme_analyze.py --gpu on a dump) report identical numbers. Null
  // before the first run that recorded device interval events.
  std::atomic<std::shared_ptr<const std::string>> last_gpu_json_;
  // Telemetry subsystems, declared after the registries they observe so
  // reverse-order destruction tears them down first; ~Session() also stops
  // their threads explicitly (endpoint → watchdog → sampler).
  obs::FlightRecorder flight_
      DISTME_LOCKFREE("internally synchronized (seqlock ring)");
  std::unique_ptr<obs::Sampler> sampler_
      DISTME_UNSHARED("pointer set in ctor; pointee internally synchronized");
  std::unique_ptr<obs::Watchdog> watchdog_
      DISTME_UNSHARED("pointer set in ctor; pointee internally synchronized");
  std::unique_ptr<obs::HttpEndpoint> endpoint_
      DISTME_UNSHARED("pointer set in ctor; pointee internally synchronized");
};

}  // namespace distme::core
