#include "core/session.h"

#include <atomic>
#include <cmath>

#include "blas/local_mm.h"
#include "common/logging.h"
#include "matrix/store.h"
#include "obs/export.h"
#include "obs/prom_export.h"

namespace distme::core {

Session::Session(Options options)
    : options_(std::move(options)),
      flight_(options_.flight_recorder_capacity) {
  if (!options_.planner) {
    options_.planner = std::make_shared<DistmePlanner>();
  }
  executor_ = std::make_unique<engine::RealExecutor>(options_.cluster);
  // A fatal Result/Status abort anywhere in the process dumps this ring to
  // stderr — the crash leaves a telemetry trail.
  flight_.InstallFatalDump();
  if (options_.sample_period_ms > 0) {
    obs::SamplerOptions sampler_options;
    sampler_options.period_ms = options_.sample_period_ms;
    sampler_options.max_samples = options_.sampler_retention;
    sampler_ =
        std::make_unique<obs::Sampler>(&metrics_, &comm_, sampler_options);
    sampler_->Start();
  }
  if (options_.watchdog_period_ms > 0) {
    obs::WatchdogOptions watchdog_options;
    watchdog_options.period_ms = options_.watchdog_period_ms;
    watchdog_options.threshold_factor = options_.watchdog_threshold;
    watchdog_ = std::make_unique<obs::Watchdog>(&metrics_, &flight_,
                                                watchdog_options);
    watchdog_->Start();
  }
  if (options_.http_port >= 0) {
    endpoint_ = std::make_unique<obs::HttpEndpoint>(
        [this](const std::string& path) {
          obs::HttpResponse response;
          if (path == "/metrics" || path == "/") {
            response.content_type =
                "text/plain; version=0.0.4; charset=utf-8";
            response.body = obs::PrometheusText(metrics_.Snapshot());
          } else if (path == "/flight") {
            response.content_type = "application/json";
            response.body = flight_.ToJson();
          } else if (path == "/explain") {
            const std::shared_ptr<const std::string> explain =
                last_explain_json_.load(std::memory_order_acquire);
            if (explain == nullptr) {
              response.status = 404;
              response.body = "no completed run yet\n";
            } else {
              response.content_type = "application/json";
              response.body = *explain;
            }
          } else if (path == "/gpu") {
            const std::shared_ptr<const std::string> gpu =
                last_gpu_json_.load(std::memory_order_acquire);
            if (gpu == nullptr) {
              response.status = 404;
              response.body = "no run with GPU device events yet\n";
            } else {
              response.content_type = "application/json";
              response.body = *gpu;
            }
          } else if (path == "/healthz") {
            response.body = "ok\n";
          } else {
            response.status = 404;
            response.body = "not found\n";
          }
          return response;
        });
    const Status started = endpoint_->Start(options_.http_port);
    if (started.ok()) {
      DISTME_LOG(Info) << "telemetry endpoint on 127.0.0.1:"
                       << endpoint_->port()
                       << " (/metrics, /flight, /explain, /gpu)";
    } else {
      DISTME_LOG(Warning) << "telemetry endpoint disabled: "
                          << started.ToString();
      endpoint_.reset();
    }
  }
}

Session::~Session() {
  // Shutdown ordering: the endpoint's handler reads the registry and the
  // flight ring, and the watchdog/sampler threads read the registry — stop
  // all consumer threads before any observed state goes away, then detach
  // the fatal-dump hook (it must not fire against a dead ring).
  if (endpoint_ != nullptr) endpoint_->Stop();
  if (watchdog_ != nullptr) watchdog_->Stop();
  if (sampler_ != nullptr) sampler_->Stop();
  flight_.UninstallFatalDump();
}

Result<Matrix> Session::FromGrid(const BlockGrid& grid) {
  auto dist = std::make_shared<engine::DistributedMatrix>(
      engine::DistributedMatrix::FromGridHashed(grid,
                                                options_.cluster.num_nodes));
  return Matrix(std::move(dist));
}

Result<Matrix> Session::Generate(const GeneratorOptions& generator) {
  // Each block is generated independently at its home node — no central
  // materialization, as the real system would do with parallelize().
  auto dist = std::make_shared<engine::DistributedMatrix>(
      BlockedShape{generator.rows, generator.cols, generator.block_size},
      options_.cluster.num_nodes,
      engine::Partitioner::Hash(options_.cluster.num_nodes));
  const int64_t block_rows = dist->shape().block_rows();
  const int64_t block_cols = dist->shape().block_cols();
  for (int64_t i = 0; i < block_rows; ++i) {
    for (int64_t j = 0; j < block_cols; ++j) {
      Block b = GenerateUniformBlock(generator, i, j);
      if (b.nnz() > 0) {
        DISTME_RETURN_NOT_OK(dist->Put({i, j}, std::move(b)));
      }
    }
  }
  return Matrix(std::move(dist));
}

Result<Matrix> Session::Multiply(const Matrix& a, const Matrix& b) {
  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
  DISTME_ASSIGN_OR_RETURN(std::unique_ptr<mm::Method> method,
                          options_.planner->Choose(problem,
                                                   options_.cluster));
  return MultiplyWith(a, b, *method);
}

Result<Matrix> Session::MultiplyWith(const Matrix& a, const Matrix& b,
                                     const mm::Method& method) {
  engine::RealOptions real = options_.real;
  real.mode = options_.mode;
  real.metrics = &metrics_;
  real.tracer = &tracer_;
  real.comm = &comm_;
  real.flight = &flight_;
  real.watchdog = watchdog_.get();
  real.flight_dump_path = options_.flight_dump_path;
  // Explain bracketing: snapshot before the run so the report can attribute
  // to this run only its delta of the session-cumulative instruments.
  obs::MetricsSnapshot before;
  obs::CommMatrixSnapshot comm_before;
  uint64_t flight_seq_before = 0;
  if (options_.collect_explain) {
    before = metrics_.Snapshot();
    comm_before = comm_.Snapshot();
    flight_seq_before = flight_.TotalRecorded();
  }
  DISTME_ASSIGN_OR_RETURN(
      engine::RealRunResult run,
      executor_->Run(a.distributed(), b.distributed(), method, real));
  history_.push_back(run.report);
  if (options_.collect_explain) {
    const obs::MetricsSnapshot after = metrics_.Snapshot();
    const obs::CommMatrixSnapshot comm_delta =
        comm_.Snapshot().Delta(comm_before);
    // Flight bracketing: only this run's events feed the causal analysis —
    // without the seq filter a failed run could resurrect the previous
    // run's (complete) event trail.
    std::vector<obs::FlightEvent> flight_events = flight_.Snapshot();
    std::erase_if(flight_events, [flight_seq_before](
                                     const obs::FlightEvent& e) {
      return e.seq <= flight_seq_before;
    });
    engine::ExplainObsInputs inputs;
    inputs.before = &before;
    inputs.after = &after;
    inputs.comm_delta = &comm_delta;
    inputs.flight_events = &flight_events;
    const mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
    Result<engine::ExplainReport> explain = engine::BuildExplainReport(
        run.report, method, problem, options_.cluster, inputs);
    if (explain.ok()) {
      last_explain_ = std::move(*explain);
      auto json =
          std::make_shared<const std::string>(last_explain_->ToJson());
      if (!options_.analysis_json_path.empty()) {
        const Status written =
            obs::WriteTextFile(options_.analysis_json_path, *json);
        if (!written.ok()) {
          DISTME_LOG(Warning) << "analysis JSON export failed: "
                              << written.ToString();
        }
      }
      last_explain_json_.store(std::move(json), std::memory_order_release);
      if (last_explain_->has_gpu) {
        last_gpu_json_.store(std::make_shared<const std::string>(
                                 last_explain_->gpu.ToJson()),
                             std::memory_order_release);
      }
    }
  }
  DISTME_RETURN_NOT_OK(run.report.outcome);
  return Matrix(std::move(run.output));
}

Result<engine::ExplainReport> Session::ExplainLastRun() const {
  if (!last_explain_.has_value()) {
    return Status::Invalid(
        "no explain report: nothing has run, or Options::collect_explain is "
        "off");
  }
  return *last_explain_;
}

Status Session::WriteTrace(const std::string& path) {
  return obs::WriteChromeTrace(tracer_, path);
}

std::string Session::RunReportJson() const {
  if (history_.empty()) return "{}";
  const obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  return engine::RunReportJson(history_.back(), &snapshot);
}

Result<Matrix> Session::Transpose(const Matrix& a) {
  // Blocks are transposed where they live (a map-side operation); only the
  // index swap may re-home a block under the output partitioner.
  auto out = std::make_shared<engine::DistributedMatrix>(
      BlockedShape{a.shape().cols, a.shape().rows, a.shape().block_size},
      options_.cluster.num_nodes,
      engine::Partitioner::Hash(options_.cluster.num_nodes));
  Status status = Status::OK();
  a.distributed().ForEachBlock(
      [&](int /*node*/, BlockIndex idx, const Block& block) {
        if (!status.ok()) return;
        Status st = out->Put({idx.j, idx.i}, blas::TransposeBlock(block));
        if (!st.ok()) status = std::move(st);
      });
  DISTME_RETURN_NOT_OK(status);
  return Matrix(std::move(out));
}

Result<Matrix> Session::ElementWise(blas::ElementWiseOp op, const Matrix& a,
                                    const Matrix& b, double epsilon) {
  if (!(a.shape() == b.shape())) {
    return Status::Invalid("element-wise operands must have the same shape");
  }
  auto out = std::make_shared<engine::DistributedMatrix>(
      a.shape(), options_.cluster.num_nodes,
      engine::Partitioner::Hash(options_.cluster.num_nodes));
  const bool zero_preserving = op == blas::ElementWiseOp::kMul;

  // Cogroup-style: visit A's blocks in place, fetch the matching B block
  // (same index — co-partitioned matrices fetch locally), then cover the
  // blocks present only in B when the op is not zero-preserving on A.
  // Same-operand case (e.g. A ∘ A): the per-node lock is not reentrant, so
  // combine each visited block with itself directly.
  const bool same_operand = &a.distributed() == &b.distributed();

  Status status = Status::OK();
  a.distributed().ForEachBlock([&](int node, BlockIndex idx,
                                   const Block& ba) {
    if (!status.ok()) return;
    Result<Block> bb = same_operand
                           ? Result<Block>(ba)
                           : b.distributed().Get(idx, node, nullptr);
    if (!bb.ok()) {
      status = bb.status();
      return;
    }
    auto combined = blas::ElementWise(op, ba, *bb, epsilon);
    if (!combined.ok()) {
      status = combined.status();
      return;
    }
    if (combined->nnz() > 0) {
      Status st = out->Put(idx, std::move(*combined));
      if (!st.ok()) status = std::move(st);
    }
  });
  DISTME_RETURN_NOT_OK(status);
  if (!zero_preserving && !same_operand) {
    b.distributed().ForEachBlock([&](int node, BlockIndex idx,
                                     const Block& bb) {
      if (!status.ok() || a.distributed().Has(idx)) return;
      const Block za = Block::Zero(bb.rows(), bb.cols());
      auto combined = blas::ElementWise(op, za, bb, epsilon);
      if (!combined.ok()) {
        status = combined.status();
        return;
      }
      (void)node;
      if (combined->nnz() > 0) {
        Status st = out->Put(idx, std::move(*combined));
        if (!st.ok()) status = std::move(st);
      }
    });
    DISTME_RETURN_NOT_OK(status);
  }
  return Matrix(std::move(out));
}

Result<Matrix> Session::Scale(const Matrix& a, double factor) {
  auto out = std::make_shared<engine::DistributedMatrix>(
      a.shape(), options_.cluster.num_nodes,
      engine::Partitioner::Hash(options_.cluster.num_nodes));
  Status status = Status::OK();
  a.distributed().ForEachBlock(
      [&](int /*node*/, BlockIndex idx, const Block& block) {
        if (!status.ok()) return;
        Status st = out->Put(idx, blas::ScaleBlock(block, factor));
        if (!st.ok()) status = std::move(st);
      });
  DISTME_RETURN_NOT_OK(status);
  return Matrix(std::move(out));
}

namespace {

// Applies fn(row, col, value) to every stored element of a block.
template <typename Fn>
void ForEachElement(const Block& block, Fn&& fn) {
  if (block.IsDense()) {
    const DenseMatrix& d = block.dense();
    for (int64_t r = 0; r < d.rows(); ++r) {
      const double* row = d.row(r);
      for (int64_t c = 0; c < d.cols(); ++c) {
        if (row[c] != 0.0) fn(r, c, row[c]);
      }
    }
    return;
  }
  const CsrMatrix& s = block.sparse();
  for (int64_t r = 0; r < s.rows(); ++r) {
    for (int64_t k = s.row_ptr()[r]; k < s.row_ptr()[r + 1]; ++k) {
      fn(r, s.col_idx()[k], s.values()[k]);
    }
  }
}

}  // namespace

Result<Matrix> Session::RowSums(const Matrix& a) {
  // Map: per-block partial row sums; reduce: add along block columns.
  std::vector<double> sums(static_cast<size_t>(a.rows()), 0.0);
  const int64_t bs = a.shape().block_size;
  a.distributed().ForEachBlock(
      [&](int /*node*/, BlockIndex idx, const Block& block) {
        const int64_t row0 = idx.i * bs;
        ForEachElement(block, [&](int64_t r, int64_t /*c*/, double v) {
          sums[static_cast<size_t>(row0 + r)] += v;
        });
      });
  auto out = std::make_shared<engine::DistributedMatrix>(
      BlockedShape{a.rows(), 1, bs}, options_.cluster.num_nodes,
      engine::Partitioner::Hash(options_.cluster.num_nodes));
  for (int64_t bi = 0; bi < out->shape().block_rows(); ++bi) {
    const int64_t rows = out->shape().BlockRowsAt(bi);
    DenseMatrix column(rows, 1);
    for (int64_t r = 0; r < rows; ++r) {
      column.Set(r, 0, sums[static_cast<size_t>(bi * bs + r)]);
    }
    DISTME_RETURN_NOT_OK(out->Put({bi, 0}, Block::Dense(std::move(column))));
  }
  return Matrix(std::move(out));
}

Result<Matrix> Session::ColSums(const Matrix& a) {
  DISTME_ASSIGN_OR_RETURN(Matrix at, Transpose(a));
  DISTME_ASSIGN_OR_RETURN(Matrix sums, RowSums(at));
  return Transpose(sums);
}

Result<double> Session::Sum(const Matrix& a) {
  double total = 0.0;
  a.distributed().ForEachBlock(
      [&](int /*node*/, BlockIndex /*idx*/, const Block& block) {
        ForEachElement(block,
                       [&](int64_t, int64_t, double v) { total += v; });
      });
  return total;
}

Status Session::Save(const Matrix& a, const std::string& path) {
  return WriteBinaryMatrix(a.Collect(), path);
}

Result<Matrix> Session::Load(const std::string& path) {
  DISTME_ASSIGN_OR_RETURN(BlockGrid grid, ReadBinaryMatrix(path));
  return FromGrid(grid);
}

Result<double> Session::FrobeniusNorm(const Matrix& a) {
  double sum_sq = 0.0;
  a.distributed().ForEachBlock(
      [&](int /*node*/, BlockIndex /*idx*/, const Block& block) {
        ForEachElement(block,
                       [&](int64_t, int64_t, double v) { sum_sq += v * v; });
      });
  return std::sqrt(sum_sq);
}

}  // namespace distme::core
