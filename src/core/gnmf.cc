#include "core/gnmf.h"

#include <cmath>

#include "blas/local_mm.h"
#include "core/expr.h"
#include "sim/timeline.h"

namespace distme::core {

namespace {

// ‖V − W·H‖_F computed locally (test scale).
Result<double> FrobeniusLoss(const Matrix& v, const Matrix& w,
                             const Matrix& h) {
  const BlockGrid vg = v.Collect();
  const BlockGrid wg = w.Collect();
  const BlockGrid hg = h.Collect();
  DISTME_ASSIGN_OR_RETURN(BlockGrid wh, blas::LocalMultiply(wg, hg));
  const DenseMatrix dv = vg.ToDense();
  const DenseMatrix dwh = wh.ToDense();
  double sum = 0;
  for (int64_t r = 0; r < dv.rows(); ++r) {
    for (int64_t c = 0; c < dv.cols(); ++c) {
      const double d = dv.At(r, c) - dwh.At(r, c);
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

}  // namespace

Result<GnmfResult> RunGnmf(Session* session, const Matrix& v,
                           const GnmfOptions& options) {
  if (options.factor_dim <= 0) return Status::Invalid("factor_dim must be > 0");
  const int64_t block_size = v.shape().block_size;

  // Random non-negative initial factors W0, H0.
  GeneratorOptions wgen;
  wgen.rows = v.rows();
  wgen.cols = options.factor_dim;
  wgen.block_size = block_size;
  wgen.sparsity = 1.0;
  wgen.seed = options.seed;
  DISTME_ASSIGN_OR_RETURN(Matrix w, session->Generate(wgen));

  GeneratorOptions hgen;
  hgen.rows = options.factor_dim;
  hgen.cols = v.cols();
  hgen.block_size = block_size;
  hgen.sparsity = 1.0;
  hgen.seed = options.seed + 1;
  DISTME_ASSIGN_OR_RETURN(Matrix h, session->Generate(hgen));

  GnmfResult result;
  for (int iter = 0; iter < options.iterations; ++iter) {
    // H ← H ∘ (Wᵀ V) ⊘ (Wᵀ W H)
    DISTME_ASSIGN_OR_RETURN(Matrix wt, session->Transpose(w));
    DISTME_ASSIGN_OR_RETURN(Matrix wtv, session->Multiply(wt, v));
    DISTME_ASSIGN_OR_RETURN(Matrix wtw, session->Multiply(wt, w));
    DISTME_ASSIGN_OR_RETURN(Matrix wtwh, session->Multiply(wtw, h));
    DISTME_ASSIGN_OR_RETURN(
        Matrix h_num,
        session->ElementWise(blas::ElementWiseOp::kMul, h, wtv));
    DISTME_ASSIGN_OR_RETURN(
        h, session->ElementWise(blas::ElementWiseOp::kDiv, h_num, wtwh,
                                options.epsilon));

    // W ← W ∘ (V Hᵀ) ⊘ (W H Hᵀ)
    DISTME_ASSIGN_OR_RETURN(Matrix ht, session->Transpose(h));
    DISTME_ASSIGN_OR_RETURN(Matrix vht, session->Multiply(v, ht));
    DISTME_ASSIGN_OR_RETURN(Matrix hht, session->Multiply(h, ht));
    DISTME_ASSIGN_OR_RETURN(Matrix whht, session->Multiply(w, hht));
    DISTME_ASSIGN_OR_RETURN(
        Matrix w_num,
        session->ElementWise(blas::ElementWiseOp::kMul, w, vht));
    DISTME_ASSIGN_OR_RETURN(
        w, session->ElementWise(blas::ElementWiseOp::kDiv, w_num, whht,
                                options.epsilon));

    if (options.track_loss) {
      DISTME_ASSIGN_OR_RETURN(double loss, FrobeniusLoss(v, w, h));
      result.loss.push_back(loss);
    }
  }
  result.w = std::move(w);
  result.h = std::move(h);
  return result;
}

Result<GnmfResult> RunGnmfExpr(Session* session, const Matrix& v,
                               const GnmfOptions& options,
                               GnmfEvalStats* stats) {
  if (options.factor_dim <= 0) return Status::Invalid("factor_dim must be > 0");
  const int64_t block_size = v.shape().block_size;

  GeneratorOptions wgen;
  wgen.rows = v.rows();
  wgen.cols = options.factor_dim;
  wgen.block_size = block_size;
  wgen.seed = options.seed;
  DISTME_ASSIGN_OR_RETURN(Matrix w, session->Generate(wgen));

  GeneratorOptions hgen;
  hgen.rows = options.factor_dim;
  hgen.cols = v.cols();
  hgen.block_size = block_size;
  hgen.seed = options.seed + 1;
  DISTME_ASSIGN_OR_RETURN(Matrix h, session->Generate(hgen));

  GnmfResult result;
  const auto v_leaf = Expr::Leaf(v, "V");
  for (int iter = 0; iter < options.iterations; ++iter) {
    EvalStats h_stats;
    {
      // H ← H ∘ (Wᵀ V) ⊘ ((Wᵀ W) H): Wᵀ is one shared subtree.
      const auto w_leaf = Expr::Leaf(w, "W");
      const auto h_leaf = Expr::Leaf(h, "H");
      const auto wt = Expr::Transpose(w_leaf);
      const auto update = Expr::ElementWise(
          blas::ElementWiseOp::kDiv,
          Expr::ElementWise(blas::ElementWiseOp::kMul, h_leaf,
                            Expr::Multiply(wt, v_leaf)),
          Expr::Multiply(Expr::Multiply(wt, w_leaf), h_leaf),
          options.epsilon);
      DISTME_ASSIGN_OR_RETURN(h, Evaluate(session, update, &h_stats));
    }
    EvalStats w_stats;
    {
      // W ← W ∘ (V Hᵀ) ⊘ (W (H Hᵀ)): Hᵀ is one shared subtree.
      const auto w_leaf = Expr::Leaf(w, "W");
      const auto h_leaf = Expr::Leaf(h, "H");
      const auto ht = Expr::Transpose(h_leaf);
      const auto update = Expr::ElementWise(
          blas::ElementWiseOp::kDiv,
          Expr::ElementWise(blas::ElementWiseOp::kMul, w_leaf,
                            Expr::Multiply(v_leaf, ht)),
          Expr::Multiply(w_leaf, Expr::Multiply(h_leaf, ht)),
          options.epsilon);
      DISTME_ASSIGN_OR_RETURN(w, Evaluate(session, update, &w_stats));
    }
    if (stats != nullptr) {
      stats->nodes_evaluated +=
          h_stats.nodes_evaluated + w_stats.nodes_evaluated;
      stats->nodes_reused += h_stats.nodes_reused + w_stats.nodes_reused;
      stats->multiplications +=
          h_stats.multiplications + w_stats.multiplications;
    }
    if (options.track_loss) {
      DISTME_ASSIGN_OR_RETURN(double loss, FrobeniusLoss(v, w, h));
      result.loss.push_back(loss);
    }
  }
  result.w = std::move(w);
  result.h = std::move(h);
  return result;
}

double GnmfSimReport::AccumulatedSeconds(int n) const {
  double sum = 0;
  for (int i = 0; i < n && i < static_cast<int>(iteration_seconds.size());
       ++i) {
    sum += iteration_seconds[static_cast<size_t>(i)];
  }
  return sum;
}

Result<GnmfSimReport> SimulateGnmf(const Planner& planner,
                                   const GnmfSimOptions& options) {
  const int64_t bs = options.v.shape.block_size;
  const int64_t users = options.v.shape.rows;
  const int64_t items = options.v.shape.cols;
  const int64_t f = options.factor_dim;

  const mm::MatrixDescriptor v = options.v;
  mm::MatrixDescriptor vt = v;
  vt.shape = BlockedShape{items, users, bs};
  const auto w = mm::MatrixDescriptor::Dense(users, f, bs);
  const auto wt = mm::MatrixDescriptor::Dense(f, users, bs);
  const auto h = mm::MatrixDescriptor::Dense(f, items, bs);
  const auto ht = mm::MatrixDescriptor::Dense(items, f, bs);
  const auto ff = mm::MatrixDescriptor::Dense(f, f, bs);

  // The six multiplications of one iteration (DMac's plan):
  //   WᵀV, WᵀW, (WᵀW)H, VHᵀ, HHᵀ, W(HHᵀ).
  const std::vector<mm::MMProblem> multiplies = {
      {wt, v}, {wt, w}, {ff, h}, {v, ht}, {h, ht}, {w, ff}};

  engine::SimExecutor executor(options.cluster);
  GnmfSimReport report;
  report.outcome = Status::OK();

  // Naive systems (MatFast's available version) materialize the transpose:
  // W and Wᵀ are both resident while re-keying, so 2·|W| (or 2·|H|) must
  // fit one task's memory. This is what caps the factor dimension in
  // Figure 8(d).
  if (options.sim.materialize_map_outputs) {
    const double budget = static_cast<double>(
                              options.cluster.task_memory_bytes) *
                          options.sim.memory_slack;
    const double transpose_resident =
        2.0 * std::max(w.StoredBytes(), h.StoredBytes());
    if (transpose_resident > budget) {
      report.outcome = Status::OutOfMemory(
          "materialized transpose of the factor matrix exceeds task memory");
      return report;
    }
  }

  double iteration_seconds = 0;
  double iteration_bytes = 0;
  for (const mm::MMProblem& problem : multiplies) {
    auto method = planner.Choose(problem, options.cluster);
    if (!method.ok()) {
      // Planner infeasibility (e.g. no method fits memory) is an O.O.M.
      report.outcome = method.status();
      return report;
    }
    engine::SimOptions sim = options.sim;
    if (options.dependency_aware) sim.repartition_factor *= 0.5;
    DISTME_ASSIGN_OR_RETURN(engine::MMReport mm_report,
                            executor.Run(problem, **method, sim));
    if (!mm_report.outcome.ok()) {
      report.outcome = mm_report.outcome;
      return report;
    }
    iteration_seconds += mm_report.elapsed_seconds;
    iteration_bytes += mm_report.total_shuffle_bytes();
  }

  // Transposes (Wᵀ, Hᵀ) and the four element-wise updates. Dependency-aware
  // systems store both layouts / co-partition, making these shuffle-free.
  const HardwareModel& hw = options.cluster.hw;
  const double ew_bytes = 2.0 * (w.StoredBytes() + h.StoredBytes());
  const double ew_seconds =
      ew_bytes / (static_cast<double>(options.cluster.num_nodes) * 2.0 * kGiB) +
      4.0 * hw.task_launch_overhead;
  iteration_seconds += ew_seconds;
  if (!options.dependency_aware) {
    const double shuffle_bytes = w.StoredBytes() + h.StoredBytes();
    iteration_seconds += sim::ShuffleSeconds(
        shuffle_bytes, options.cluster.num_nodes, hw.nic_bandwidth,
        hw.serialization_bandwidth, hw.serialization_overhead);
    iteration_bytes += shuffle_bytes;
  }

  report.iteration_seconds.assign(static_cast<size_t>(options.iterations),
                                  iteration_seconds);
  report.total_seconds = iteration_seconds * options.iterations;
  report.total_shuffle_bytes = iteration_bytes * options.iterations;
  return report;
}

}  // namespace distme::core
