#include "matrix/block.h"

namespace distme {

Block Block::Dense(DenseMatrix m) {
  Block b;
  b.rows_ = m.rows();
  b.cols_ = m.cols();
  b.payload_ = std::make_shared<DenseMatrix>(std::move(m));
  return b;
}

Block Block::Sparse(CsrMatrix m) {
  Block b;
  b.rows_ = m.rows();
  b.cols_ = m.cols();
  b.payload_ = std::make_shared<CsrMatrix>(std::move(m));
  return b;
}

Block Block::Zero(int64_t rows, int64_t cols) {
  CsrMatrix empty = *CsrMatrix::FromTriplets(rows, cols, {});
  return Sparse(std::move(empty));
}

int64_t Block::nnz() const {
  if (empty()) return 0;
  return IsDense() ? dense().CountNonZeros() : sparse().nnz();
}

int64_t Block::SizeBytes() const {
  if (empty()) return 0;
  return IsDense() ? dense().SizeBytes() : sparse().SizeBytes();
}

double Block::At(int64_t r, int64_t c) const {
  return IsDense() ? dense().At(r, c) : sparse().At(r, c);
}

DenseMatrix Block::ToDense() const {
  return IsDense() ? dense() : sparse().ToDense();
}

Block Block::Densified() const {
  if (IsDense()) return *this;
  return Dense(sparse().ToDense());
}

Block Block::Compacted(double threshold) const {
  if (IsSparse()) return *this;
  if (dense().Sparsity() < threshold) {
    return Sparse(CsrMatrix::FromDense(dense()));
  }
  return *this;
}

}  // namespace distme
