// Block (de)serialization — what actually crosses the wire during shuffle.
//
// The real executor serializes blocks into byte buffers when they move
// between nodes, so communication-cost counters measure genuine serialized
// bytes (the paper notes measured shuffle volume differs slightly from the
// analytic Cost() due to serialization — Figure 9(b)).

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "matrix/block.h"

namespace distme {

/// \brief Serializes a block into a self-describing byte buffer.
std::vector<uint8_t> SerializeBlock(const Block& block);

/// \brief Parses a buffer produced by SerializeBlock.
[[nodiscard]] Result<Block> DeserializeBlock(const std::vector<uint8_t>& buffer);

/// \brief Exact number of bytes SerializeBlock would produce, without
/// serializing (used by the cost simulator).
int64_t SerializedBlockBytes(const Block& block);

}  // namespace distme
