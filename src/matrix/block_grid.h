// BlockGrid: a local (single-process) blocked matrix — the logical matrix as
// an I × J grid of fixed-size blocks. Used as ground truth in tests and as
// the staging representation before distribution.

#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/result.h"
#include "matrix/block.h"

namespace distme {

/// \brief Logical shape of a blocked matrix.
struct BlockedShape {
  int64_t rows = 0;        ///< total element rows
  int64_t cols = 0;        ///< total element cols
  int64_t block_size = 0;  ///< block side length (blocks are square except edges)

  /// \brief Number of block-rows (I in the paper).
  int64_t block_rows() const { return CeilDiv(rows, block_size); }
  /// \brief Number of block-cols (J or K in the paper).
  int64_t block_cols() const { return CeilDiv(cols, block_size); }

  /// \brief Element rows in block-row i (edge blocks may be smaller).
  int64_t BlockRowsAt(int64_t i) const {
    return std::min(block_size, rows - i * block_size);
  }
  /// \brief Element cols in block-col j.
  int64_t BlockColsAt(int64_t j) const {
    return std::min(block_size, cols - j * block_size);
  }

  int64_t num_elements() const { return rows * cols; }

  static int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

  bool operator==(const BlockedShape& o) const {
    return rows == o.rows && cols == o.cols && block_size == o.block_size;
  }
};

/// \brief A local blocked matrix: shape plus a sparse map of blocks.
///
/// Missing blocks are implicit zeros, so sparse matrices with empty tiles
/// cost nothing to store or ship.
class BlockGrid {
 public:
  BlockGrid() = default;
  explicit BlockGrid(BlockedShape shape) : shape_(shape) {}

  const BlockedShape& shape() const { return shape_; }
  int64_t block_rows() const { return shape_.block_rows(); }
  int64_t block_cols() const { return shape_.block_cols(); }

  /// \brief Number of materialized (non-implicit-zero) blocks.
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }

  /// \brief Inserts or replaces a block; validates dimensions.
  [[nodiscard]] Status Put(BlockIndex idx, Block block);

  /// \brief True if a block is materialized at idx.
  bool Has(BlockIndex idx) const { return blocks_.count(idx) > 0; }

  /// \brief Block at idx; implicit zero block if missing.
  Block Get(BlockIndex idx) const;

  const std::unordered_map<BlockIndex, Block, BlockIndexHash>& blocks() const {
    return blocks_;
  }

  /// \brief Total bytes of all materialized blocks.
  int64_t SizeBytes() const;

  /// \brief Total non-zeros across blocks.
  int64_t TotalNnz() const;

  /// \brief Assembles the full matrix densely (test-scale only).
  DenseMatrix ToDense() const;

  /// \brief Splits a dense matrix into blocks.
  static BlockGrid FromDense(const DenseMatrix& m, int64_t block_size);

  /// \brief Splits a CSR matrix into (sparse) blocks.
  static BlockGrid FromCsr(const CsrMatrix& m, int64_t block_size);

 private:
  BlockedShape shape_;
  std::unordered_map<BlockIndex, Block, BlockIndexHash> blocks_;
};

}  // namespace distme
