// Binary blocked-matrix store — the stand-in for the paper's Parquet-on-HDFS
// persistence (Section 5): a self-describing container of serialized blocks
// with an index, much faster and more compact than MatrixMarket text.

#pragma once

#include <string>

#include "common/result.h"
#include "matrix/block_grid.h"

namespace distme {

/// \brief Writes a blocked matrix to `path` in the DistME binary format:
/// header (magic, shape, block size, block count) followed by an index of
/// (i, j, offset, length) entries and the serialized blocks.
[[nodiscard]] Status WriteBinaryMatrix(const BlockGrid& grid, const std::string& path);

/// \brief Reads a matrix written by WriteBinaryMatrix.
[[nodiscard]] Result<BlockGrid> ReadBinaryMatrix(const std::string& path);

/// \brief Reads only the header: shape and materialized-block count —
/// enough for the planner to build a descriptor without touching payloads.
struct BinaryMatrixInfo {
  BlockedShape shape;
  int64_t num_blocks = 0;
  int64_t total_nnz = 0;
};
[[nodiscard]] Result<BinaryMatrixInfo> ReadBinaryMatrixInfo(const std::string& path);

}  // namespace distme
