#include "matrix/store.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "matrix/serialize.h"

namespace distme {

namespace {

constexpr uint64_t kStoreMagic = 0xD157ABCD00B10C45ULL;

struct Header {
  uint64_t magic;
  int64_t rows;
  int64_t cols;
  int64_t block_size;
  int64_t num_blocks;
  int64_t total_nnz;
};

struct IndexEntry {
  int64_t i;
  int64_t j;
  int64_t offset;  // from file start
  int64_t length;
};

class FileCloser {
 public:
  explicit FileCloser(std::FILE* f) : f_(f) {}
  ~FileCloser() {
    if (f_ != nullptr) std::fclose(f_);
  }

  /// \brief Closes now and reports failure (flush errors surface at close;
  /// write paths must call this instead of relying on the destructor, which
  /// has nowhere to report to).
  [[nodiscard]] Status CloseChecked(const std::string& path) {
    std::FILE* f = f_;
    f_ = nullptr;
    if (f != nullptr && std::fclose(f) != 0) {
      return Status::IOError("close failed (data may be lost): " + path);
    }
    return Status::OK();
  }

 private:
  std::FILE* f_;
};

}  // namespace

Status WriteBinaryMatrix(const BlockGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  FileCloser closer(f);

  Header header{kStoreMagic,         grid.shape().rows,
                grid.shape().cols,   grid.shape().block_size,
                grid.num_blocks(),   grid.TotalNnz()};
  std::vector<IndexEntry> index;
  index.reserve(static_cast<size_t>(grid.num_blocks()));

  // Lay out: header, index, payloads.
  int64_t offset = static_cast<int64_t>(sizeof(Header)) +
                   grid.num_blocks() * static_cast<int64_t>(sizeof(IndexEntry));
  std::vector<std::vector<uint8_t>> payloads;
  payloads.reserve(static_cast<size_t>(grid.num_blocks()));
  for (const auto& [idx, block] : grid.blocks()) {
    payloads.push_back(SerializeBlock(block));
    const int64_t length = static_cast<int64_t>(payloads.back().size());
    index.push_back({idx.i, idx.j, offset, length});
    offset += length;
  }

  if (std::fwrite(&header, sizeof(Header), 1, f) != 1) {
    return Status::IOError("short write (header)");
  }
  if (!index.empty() &&
      std::fwrite(index.data(), sizeof(IndexEntry), index.size(), f) !=
          index.size()) {
    return Status::IOError("short write (index)");
  }
  for (const auto& payload : payloads) {
    if (std::fwrite(payload.data(), 1, payload.size(), f) != payload.size()) {
      return Status::IOError("short write (payload)");
    }
  }
  return closer.CloseChecked(path);
}

Result<BinaryMatrixInfo> ReadBinaryMatrixInfo(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  FileCloser closer(f);
  Header header;
  if (std::fread(&header, sizeof(Header), 1, f) != 1) {
    return Status::IOError("truncated header: " + path);
  }
  if (header.magic != kStoreMagic) {
    return Status::IOError("not a DistME binary matrix: " + path);
  }
  BinaryMatrixInfo info;
  info.shape = BlockedShape{header.rows, header.cols, header.block_size};
  info.num_blocks = header.num_blocks;
  info.total_nnz = header.total_nnz;
  return info;
}

Result<BlockGrid> ReadBinaryMatrix(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  FileCloser closer(f);

  Header header;
  if (std::fread(&header, sizeof(Header), 1, f) != 1) {
    return Status::IOError("truncated header: " + path);
  }
  if (header.magic != kStoreMagic) {
    return Status::IOError("not a DistME binary matrix: " + path);
  }
  if (header.num_blocks < 0 || header.rows < 0 || header.cols < 0 ||
      header.block_size <= 0) {
    return Status::IOError("corrupt header: " + path);
  }

  std::vector<IndexEntry> index(static_cast<size_t>(header.num_blocks));
  if (!index.empty() &&
      std::fread(index.data(), sizeof(IndexEntry), index.size(), f) !=
          index.size()) {
    return Status::IOError("truncated index: " + path);
  }

  BlockGrid grid(BlockedShape{header.rows, header.cols, header.block_size});
  for (const IndexEntry& entry : index) {
    if (entry.length <= 0) return Status::IOError("corrupt index entry");
    if (std::fseek(f, static_cast<long>(entry.offset), SEEK_SET) != 0) {
      return Status::IOError("seek failed");
    }
    std::vector<uint8_t> buffer(static_cast<size_t>(entry.length));
    if (std::fread(buffer.data(), 1, buffer.size(), f) != buffer.size()) {
      return Status::IOError("truncated payload");
    }
    DISTME_ASSIGN_OR_RETURN(Block block, DeserializeBlock(buffer));
    DISTME_RETURN_NOT_OK(grid.Put({entry.i, entry.j}, std::move(block)));
  }
  return grid;
}

}  // namespace distme
