#include "matrix/dense_matrix.h"

#include <algorithm>
#include <cmath>

namespace distme {

void DenseMatrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

int64_t DenseMatrix::CountNonZeros() const {
  int64_t nnz = 0;
  for (double v : data_) {
    if (v != 0.0) ++nnz;
  }
  return nnz;
}

double DenseMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

DenseMatrix DenseMatrix::Transpose() const {
  DenseMatrix out(cols_, rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    const double* src = row(r);
    for (int64_t c = 0; c < cols_; ++c) {
      out.mutable_data()[c * rows_ + r] = src[c];
    }
  }
  return out;
}

double DenseMatrix::MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double max_diff = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    max_diff = std::max(max_diff, std::abs(pa[i] - pb[i]));
  }
  return max_diff;
}

bool DenseMatrix::ApproxEquals(const DenseMatrix& a, const DenseMatrix& b,
                               double tol) {
  return MaxAbsDiff(a, b) <= tol;
}

DenseMatrix DenseMatrix::Random(int64_t rows, int64_t cols, Rng* rng,
                                double lo, double hi) {
  DenseMatrix m(rows, cols);
  double* p = m.mutable_data();
  for (int64_t i = 0; i < rows * cols; ++i) p[i] = rng->NextUniform(lo, hi);
  return m;
}

DenseMatrix DenseMatrix::Identity(int64_t n) {
  DenseMatrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m.Set(i, i, 1.0);
  return m;
}

}  // namespace distme
