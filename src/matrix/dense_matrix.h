// DenseMatrix: row-major double-precision matrix, the basic local format.

#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/units.h"

namespace distme {

/// \brief A dense, row-major matrix of doubles.
///
/// This is the local (single-task) representation of a dense block, matching
/// the DenseMatrix class DistME stores in Spark RDD records.
class DenseMatrix {
 public:
  DenseMatrix() : rows_(0), cols_(0) {}

  /// \brief Creates a zero-initialized rows × cols matrix.
  DenseMatrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {}

  /// \brief Creates from existing row-major data (must be rows*cols long).
  DenseMatrix(int64_t rows, int64_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {}

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t num_elements() const { return rows_ * cols_; }
  int64_t SizeBytes() const { return num_elements() * kElementBytes; }

  double At(int64_t r, int64_t c) const { return data_[r * cols_ + c]; }
  void Set(int64_t r, int64_t c, double v) { data_[r * cols_ + c] = v; }
  void Add(int64_t r, int64_t c, double v) { data_[r * cols_ + c] += v; }

  const double* data() const { return data_.data(); }
  double* mutable_data() { return data_.data(); }
  const double* row(int64_t r) const { return data_.data() + r * cols_; }
  double* mutable_row(int64_t r) { return data_.data() + r * cols_; }

  /// \brief Sets every element to `value`.
  void Fill(double value);

  /// \brief Number of non-zero elements.
  int64_t CountNonZeros() const;

  /// \brief Fraction of non-zero elements in [0, 1].
  double Sparsity() const {
    return num_elements() == 0
               ? 0.0
               : static_cast<double>(CountNonZeros()) / num_elements();
  }

  /// \brief Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Returns the transpose as a new matrix.
  DenseMatrix Transpose() const;

  /// \brief Element-wise |a - b| max over both matrices; requires same shape.
  static double MaxAbsDiff(const DenseMatrix& a, const DenseMatrix& b);

  /// \brief True if same shape and all elements within `tol` of each other.
  static bool ApproxEquals(const DenseMatrix& a, const DenseMatrix& b,
                           double tol = 1e-9);

  /// \brief Uniform random matrix with entries in [lo, hi).
  static DenseMatrix Random(int64_t rows, int64_t cols, Rng* rng,
                            double lo = 0.0, double hi = 1.0);

  /// \brief Identity matrix of order n.
  static DenseMatrix Identity(int64_t n);

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

}  // namespace distme
