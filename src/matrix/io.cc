#include "matrix/io.h"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

namespace distme {

Status WriteMatrixMarket(const BlockGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  std::fprintf(f, "%%%%MatrixMarket matrix coordinate real general\n");
  std::fprintf(f, "%" PRId64 " %" PRId64 " %" PRId64 "\n", grid.shape().rows,
               grid.shape().cols, grid.TotalNnz());
  const int64_t bs = grid.shape().block_size;
  for (const auto& [idx, block] : grid.blocks()) {
    const int64_t row0 = idx.i * bs;
    const int64_t col0 = idx.j * bs;
    if (block.IsDense()) {
      const DenseMatrix& d = block.dense();
      for (int64_t r = 0; r < d.rows(); ++r) {
        for (int64_t c = 0; c < d.cols(); ++c) {
          const double v = d.At(r, c);
          if (v != 0.0) {
            std::fprintf(f, "%" PRId64 " %" PRId64 " %.17g\n", row0 + r + 1,
                         col0 + c + 1, v);
          }
        }
      }
    } else {
      const CsrMatrix& s = block.sparse();
      for (int64_t r = 0; r < s.rows(); ++r) {
        for (int64_t k = s.row_ptr()[r]; k < s.row_ptr()[r + 1]; ++k) {
          std::fprintf(f, "%" PRId64 " %" PRId64 " %.17g\n", row0 + r + 1,
                       col0 + s.col_idx()[k] + 1, s.values()[k]);
        }
      }
    }
  }
  // fprintf failures (ENOSPC — the paper's E.D.C. condition) latch the
  // stream error flag; a failed fclose means buffered data never hit disk.
  const bool write_error = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_error) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

Result<BlockGrid> ReadMatrixMarket(const std::string& path,
                                   int64_t block_size) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);

  char line[512];
  bool array_format = false;
  // Header line.
  if (std::fgets(line, sizeof(line), f) == nullptr) {
    std::fclose(f);
    return Status::IOError("empty MatrixMarket file");
  }
  std::string header(line);
  if (header.rfind("%%MatrixMarket", 0) != 0) {
    std::fclose(f);
    return Status::IOError("missing MatrixMarket banner");
  }
  if (header.find("array") != std::string::npos) array_format = true;
  if (header.find("complex") != std::string::npos ||
      header.find("pattern") != std::string::npos) {
    std::fclose(f);
    return Status::NotImplemented("only real-valued matrices supported");
  }

  // Skip comments.
  long data_pos = std::ftell(f);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] != '%') break;
    data_pos = std::ftell(f);
  }
  std::fseek(f, data_pos, SEEK_SET);

  int64_t rows = 0;
  int64_t cols = 0;
  int64_t nnz = 0;
  if (array_format) {
    if (std::fscanf(f, "%" SCNd64 " %" SCNd64, &rows, &cols) != 2) {
      std::fclose(f);
      return Status::IOError("bad array header");
    }
  } else {
    if (std::fscanf(f, "%" SCNd64 " %" SCNd64 " %" SCNd64, &rows, &cols,
                    &nnz) != 3) {
      std::fclose(f);
      return Status::IOError("bad coordinate header");
    }
  }

  if (array_format) {
    DenseMatrix dense(rows, cols);
    // Array format is column-major per the MatrixMarket spec.
    for (int64_t c = 0; c < cols; ++c) {
      for (int64_t r = 0; r < rows; ++r) {
        double v = 0.0;
        if (std::fscanf(f, "%lf", &v) != 1) {
          std::fclose(f);
          return Status::IOError("truncated array data");
        }
        dense.Set(r, c, v);
      }
    }
    std::fclose(f);
    return BlockGrid::FromDense(dense, block_size);
  }

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(nnz));
  for (int64_t n = 0; n < nnz; ++n) {
    int64_t r = 0;
    int64_t c = 0;
    double v = 0.0;
    if (std::fscanf(f, "%" SCNd64 " %" SCNd64 " %lf", &r, &c, &v) != 3) {
      std::fclose(f);
      return Status::IOError("truncated coordinate data");
    }
    triplets.push_back({r - 1, c - 1, v});  // 1-based → 0-based
  }
  std::fclose(f);
  DISTME_ASSIGN_OR_RETURN(CsrMatrix csr,
                          CsrMatrix::FromTriplets(rows, cols,
                                                  std::move(triplets)));
  return BlockGrid::FromCsr(csr, block_size);
}

}  // namespace distme
