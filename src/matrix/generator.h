// Synthetic matrix generators reproducing the paper's dataset types
// (Section 6.1): uniformly distributed non-zeros at a target sparsity, plus
// rating-matrix shapes matching Table 3 (MovieLens / Netflix / YahooMusic).

#pragma once

#include <cstdint>
#include <string>

#include "matrix/block_grid.h"

namespace distme {

/// \brief Parameters for a synthetic blocked matrix.
struct GeneratorOptions {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t block_size = 1000;
  /// Fraction of non-zero elements in [0,1]; 1.0 means fully dense.
  double sparsity = 1.0;
  uint64_t seed = 42;
  /// Blocks denser than this are stored dense, sparser stored CSR.
  double dense_threshold = 0.4;
  /// Zipf-like skew across block rows: density of block row i is
  /// proportional to (i+1)^(-row_skew), normalized so the overall sparsity
  /// stays `sparsity`. 0 = uniform (the paper's synthetic datasets); > 0
  /// models heavy-head rating matrices (a few very active users).
  double row_skew = 0.0;
};

/// \brief Generates a blocked matrix with uniformly-random non-zeros.
///
/// Generation is per-block and keyed on (seed, i, j), so any single block can
/// be regenerated independently — this is how the distributed engine creates
/// matrices in parallel without materializing them centrally.
BlockGrid GenerateUniform(const GeneratorOptions& options);

/// \brief Generates one block of the matrix described by `options`.
///
/// Deterministic: equals the (i, j) block of GenerateUniform(options).
Block GenerateUniformBlock(const GeneratorOptions& options, int64_t block_i,
                           int64_t block_j);

/// \brief Statistics of the paper's real rating datasets (Table 3).
struct RatingDataset {
  std::string name;
  int64_t users;    ///< matrix rows
  int64_t items;    ///< matrix cols
  int64_t ratings;  ///< non-zeros
};

/// \brief MovieLens: 27,753,444 ratings, 283,228 users, 58,098 items.
RatingDataset MovieLens();
/// \brief Netflix: 100,480,507 ratings, 480,189 users, 17,770 items.
RatingDataset Netflix();
/// \brief YahooMusic: 717,872,016 ratings, 1,823,179 users, 136,736 items.
RatingDataset YahooMusic();

/// \brief Derives GeneratorOptions for a rating dataset (optionally scaled
/// down by `scale` in both dimensions for real-execution tests).
GeneratorOptions RatingMatrixOptions(const RatingDataset& dataset,
                                     int64_t block_size = 1000,
                                     double scale = 1.0);

}  // namespace distme
