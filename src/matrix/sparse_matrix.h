// Compressed sparse row/column matrix formats (CSR / CSC), as referenced in
// Section 2.1 of the paper for sparse block representation.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "matrix/dense_matrix.h"

namespace distme {

/// \brief A (row, col, value) entry used when assembling sparse matrices.
struct Triplet {
  int64_t row;
  int64_t col;
  double value;
};

/// \brief Compressed Sparse Row matrix.
class CsrMatrix {
 public:
  CsrMatrix() : rows_(0), cols_(0) { row_ptr_.push_back(0); }

  /// \brief Builds a CSR matrix from unordered triplets (duplicates summed).
  [[nodiscard]] static Result<CsrMatrix> FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets);

  /// \brief Converts a dense matrix, keeping only non-zero entries.
  static CsrMatrix FromDense(const DenseMatrix& dense);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  /// \brief Storage footprint: values + column indices + row pointers.
  int64_t SizeBytes() const {
    return nnz() * (kElementBytes + static_cast<int64_t>(sizeof(int64_t))) +
           static_cast<int64_t>(row_ptr_.size() * sizeof(int64_t));
  }

  double Sparsity() const {
    const int64_t total = rows_ * cols_;
    return total == 0 ? 0.0 : static_cast<double>(nnz()) / total;
  }

  const std::vector<int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<int64_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// \brief Value at (r, c); O(log nnz_row) via binary search.
  double At(int64_t r, int64_t c) const;

  /// \brief Materializes to dense.
  DenseMatrix ToDense() const;

  /// \brief Returns the transpose (still CSR).
  CsrMatrix Transpose() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> row_ptr_;  // length rows_ + 1
  std::vector<int64_t> col_idx_;  // length nnz
  std::vector<double> values_;    // length nnz
};

/// \brief Compressed Sparse Column matrix.
class CscMatrix {
 public:
  CscMatrix() : rows_(0), cols_(0) { col_ptr_.push_back(0); }

  [[nodiscard]] static Result<CscMatrix> FromTriplets(int64_t rows, int64_t cols,
                                        std::vector<Triplet> triplets);
  static CscMatrix FromCsr(const CsrMatrix& csr);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(values_.size()); }

  int64_t SizeBytes() const {
    return nnz() * (kElementBytes + static_cast<int64_t>(sizeof(int64_t))) +
           static_cast<int64_t>(col_ptr_.size() * sizeof(int64_t));
  }

  const std::vector<int64_t>& col_ptr() const { return col_ptr_; }
  const std::vector<int64_t>& row_idx() const { return row_idx_; }
  const std::vector<double>& values() const { return values_; }

  DenseMatrix ToDense() const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> col_ptr_;  // length cols_ + 1
  std::vector<int64_t> row_idx_;  // length nnz
  std::vector<double> values_;    // length nnz
};

}  // namespace distme
