// Matrix Market I/O — the interchange format DistME reads datasets from in
// this reproduction (standing in for the paper's Parquet-on-HDFS loader).

#pragma once

#include <string>

#include "common/result.h"
#include "matrix/block_grid.h"

namespace distme {

/// \brief Writes a blocked matrix as MatrixMarket coordinate format.
[[nodiscard]] Status WriteMatrixMarket(const BlockGrid& grid, const std::string& path);

/// \brief Reads a MatrixMarket coordinate or array file into a blocked
/// matrix with the given block size.
[[nodiscard]] Result<BlockGrid> ReadMatrixMarket(const std::string& path,
                                   int64_t block_size);

}  // namespace distme
