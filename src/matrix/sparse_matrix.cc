#include "matrix/sparse_matrix.h"

#include <algorithm>

namespace distme {

namespace {

Status ValidateTriplets(int64_t rows, int64_t cols,
                        const std::vector<Triplet>& triplets) {
  for (const Triplet& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::Invalid("triplet index out of range");
    }
  }
  return Status::OK();
}

}  // namespace

Result<CsrMatrix> CsrMatrix::FromTriplets(int64_t rows, int64_t cols,
                                          std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) return Status::Invalid("negative dimensions");
  DISTME_RETURN_NOT_OK(ValidateTriplets(rows, cols, triplets));
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<size_t>(rows) + 1, 0);

  size_t i = 0;
  while (i < triplets.size()) {
    // Sum duplicates at the same (row, col).
    int64_t r = triplets[i].row;
    int64_t c = triplets[i].col;
    double v = triplets[i].value;
    size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == r &&
           triplets[j].col == c) {
      v += triplets[j].value;
      ++j;
    }
    if (v != 0.0) {
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
      ++m.row_ptr_[static_cast<size_t>(r) + 1];
    }
    i = j;
  }
  for (size_t r = 1; r < m.row_ptr_.size(); ++r) {
    m.row_ptr_[r] += m.row_ptr_[r - 1];
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const DenseMatrix& dense) {
  CsrMatrix m;
  m.rows_ = dense.rows();
  m.cols_ = dense.cols();
  m.row_ptr_.assign(static_cast<size_t>(dense.rows()) + 1, 0);
  for (int64_t r = 0; r < dense.rows(); ++r) {
    const double* src = dense.row(r);
    for (int64_t c = 0; c < dense.cols(); ++c) {
      if (src[c] != 0.0) {
        m.col_idx_.push_back(c);
        m.values_.push_back(src[c]);
      }
    }
    m.row_ptr_[static_cast<size_t>(r) + 1] =
        static_cast<int64_t>(m.values_.size());
  }
  return m;
}

double CsrMatrix::At(int64_t r, int64_t c) const {
  const int64_t begin = row_ptr_[static_cast<size_t>(r)];
  const int64_t end = row_ptr_[static_cast<size_t>(r) + 1];
  auto it = std::lower_bound(col_idx_.begin() + begin, col_idx_.begin() + end, c);
  if (it != col_idx_.begin() + end && *it == c) {
    return values_[static_cast<size_t>(it - col_idx_.begin())];
  }
  return 0.0;
}

DenseMatrix CsrMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out.Set(r, col_idx_[k], values_[k]);
    }
  }
  return out;
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix out;
  out.rows_ = cols_;
  out.cols_ = rows_;
  out.row_ptr_.assign(static_cast<size_t>(cols_) + 1, 0);
  out.col_idx_.resize(values_.size());
  out.values_.resize(values_.size());

  // Counting sort by column index.
  for (int64_t c : col_idx_) ++out.row_ptr_[static_cast<size_t>(c) + 1];
  for (size_t i = 1; i < out.row_ptr_.size(); ++i) {
    out.row_ptr_[i] += out.row_ptr_[i - 1];
  }
  std::vector<int64_t> cursor(out.row_ptr_.begin(), out.row_ptr_.end() - 1);
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const int64_t pos = cursor[static_cast<size_t>(col_idx_[k])]++;
      out.col_idx_[pos] = r;
      out.values_[pos] = values_[k];
    }
  }
  return out;
}

Result<CscMatrix> CscMatrix::FromTriplets(int64_t rows, int64_t cols,
                                          std::vector<Triplet> triplets) {
  if (rows < 0 || cols < 0) return Status::Invalid("negative dimensions");
  DISTME_RETURN_NOT_OK(ValidateTriplets(rows, cols, triplets));
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });
  CscMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.col_ptr_.assign(static_cast<size_t>(cols) + 1, 0);
  size_t i = 0;
  while (i < triplets.size()) {
    int64_t r = triplets[i].row;
    int64_t c = triplets[i].col;
    double v = triplets[i].value;
    size_t j = i + 1;
    while (j < triplets.size() && triplets[j].col == c &&
           triplets[j].row == r) {
      v += triplets[j].value;
      ++j;
    }
    if (v != 0.0) {
      m.row_idx_.push_back(r);
      m.values_.push_back(v);
      ++m.col_ptr_[static_cast<size_t>(c) + 1];
    }
    i = j;
  }
  for (size_t c = 1; c < m.col_ptr_.size(); ++c) {
    m.col_ptr_[c] += m.col_ptr_[c - 1];
  }
  return m;
}

CscMatrix CscMatrix::FromCsr(const CsrMatrix& csr) {
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(csr.nnz()));
  for (int64_t r = 0; r < csr.rows(); ++r) {
    for (int64_t k = csr.row_ptr()[r]; k < csr.row_ptr()[r + 1]; ++k) {
      triplets.push_back({r, csr.col_idx()[k], csr.values()[k]});
    }
  }
  return *CscMatrix::FromTriplets(csr.rows(), csr.cols(), std::move(triplets));
}

DenseMatrix CscMatrix::ToDense() const {
  DenseMatrix out(rows_, cols_);
  for (int64_t c = 0; c < cols_; ++c) {
    for (int64_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      out.Set(row_idx_[k], c, values_[k]);
    }
  }
  return out;
}

}  // namespace distme
