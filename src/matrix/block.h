// Block: the fixed-size tile that distributed matrices are partitioned into
// (Section 2.1 of the paper; typically 1000×1000 elements). A block may be
// stored dense or sparse (CSR).

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <variant>

#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace distme {

/// \brief (row, column) index of a block within a blocked matrix.
struct BlockIndex {
  int64_t i = 0;
  int64_t j = 0;

  bool operator==(const BlockIndex& other) const {
    return i == other.i && j == other.j;
  }
  bool operator<(const BlockIndex& other) const {
    return i != other.i ? i < other.i : j < other.j;
  }
};

struct BlockIndexHash {
  size_t operator()(const BlockIndex& idx) const {
    // 64-bit mix of the two coordinates.
    uint64_t h = static_cast<uint64_t>(idx.i) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(idx.j) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// \brief Storage format of a block.
enum class BlockFormat { kDense, kSparseCsr };

/// \brief A matrix tile stored dense or sparse.
///
/// Blocks are value types but hold their payload in a shared_ptr so that
/// replication during shuffle (RMM replicates each A block J times!) does not
/// deep-copy the data, matching Spark's immutable-RDD-record semantics.
class Block {
 public:
  Block() : rows_(0), cols_(0) {}

  /// \brief Wraps a dense matrix.
  static Block Dense(DenseMatrix m);

  /// \brief Wraps a CSR matrix.
  static Block Sparse(CsrMatrix m);

  /// \brief A rows×cols all-zero block stored sparse (zero payload bytes).
  static Block Zero(int64_t rows, int64_t cols);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  BlockFormat format() const {
    return std::holds_alternative<std::shared_ptr<DenseMatrix>>(payload_)
               ? BlockFormat::kDense
               : BlockFormat::kSparseCsr;
  }
  bool IsDense() const { return format() == BlockFormat::kDense; }
  bool IsSparse() const { return format() == BlockFormat::kSparseCsr; }

  /// \brief Underlying dense payload; requires IsDense().
  const DenseMatrix& dense() const {
    return *std::get<std::shared_ptr<DenseMatrix>>(payload_);
  }
  /// \brief Underlying sparse payload; requires IsSparse().
  const CsrMatrix& sparse() const {
    return *std::get<std::shared_ptr<CsrMatrix>>(payload_);
  }

  /// \brief Number of stored non-zeros (dense blocks count actual non-zeros).
  int64_t nnz() const;

  /// \brief Serialized/in-memory footprint in bytes.
  int64_t SizeBytes() const;

  /// \brief Value at (r, c) regardless of format.
  double At(int64_t r, int64_t c) const;

  /// \brief Materializes to a dense matrix (copy).
  DenseMatrix ToDense() const;

  /// \brief Returns a dense version of this block (no-op if already dense).
  Block Densified() const;

  /// \brief Converts to sparse if sparsity is below `threshold` (default the
  /// conventional 0.4 density cutoff used by SystemML).
  Block Compacted(double threshold = 0.4) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::variant<std::shared_ptr<DenseMatrix>, std::shared_ptr<CsrMatrix>>
      payload_;
};

}  // namespace distme
