#include "matrix/generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace distme {

namespace {

uint64_t BlockSeed(uint64_t seed, int64_t i, int64_t j) {
  uint64_t h = seed;
  h ^= static_cast<uint64_t>(i) * 0xff51afd7ed558ccdULL + (h << 13);
  h ^= static_cast<uint64_t>(j) * 0xc4ceb9fe1a85ec53ULL + (h >> 7);
  h *= 0x2545f4914f6cdd1dULL;
  return h ^ (h >> 33);
}

}  // namespace

namespace {

// Effective density of block row `i` under the Zipf-like row skew,
// normalized so the matrix-wide expected density equals options.sparsity.
double RowDensity(const GeneratorOptions& options, int64_t block_i) {
  if (options.row_skew <= 0.0) return options.sparsity;
  const BlockedShape shape{options.rows, options.cols, options.block_size};
  const int64_t big_i = shape.block_rows();
  double norm = 0.0;
  for (int64_t r = 0; r < big_i; ++r) {
    norm += std::pow(static_cast<double>(r + 1), -options.row_skew);
  }
  const double weight =
      std::pow(static_cast<double>(block_i + 1), -options.row_skew);
  return std::min(1.0, options.sparsity * weight *
                           static_cast<double>(big_i) / norm);
}

}  // namespace

Block GenerateUniformBlock(const GeneratorOptions& options, int64_t block_i,
                           int64_t block_j) {
  GeneratorOptions effective = options;
  effective.sparsity = RowDensity(options, block_i);
  const GeneratorOptions& opts = effective;

  const BlockedShape shape{opts.rows, opts.cols, opts.block_size};
  const int64_t rows = shape.BlockRowsAt(block_i);
  const int64_t cols = shape.BlockColsAt(block_j);
  Rng rng(BlockSeed(opts.seed, block_i, block_j));

  if (opts.sparsity >= opts.dense_threshold) {
    DenseMatrix m(rows, cols);
    double* p = m.mutable_data();
    if (opts.sparsity >= 1.0) {
      for (int64_t n = 0; n < rows * cols; ++n) p[n] = rng.NextDouble();
    } else {
      for (int64_t n = 0; n < rows * cols; ++n) {
        p[n] = rng.NextDouble() < opts.sparsity ? rng.NextDouble() : 0.0;
      }
    }
    return Block::Dense(std::move(m));
  }

  // Sparse path: draw entries at uniform positions. Collisions merge, so we
  // oversample by the coupon-collector correction m = n·ln(1/(1−s)), making
  // the expected number of *distinct* positions equal s·n.
  const double n = static_cast<double>(rows * cols);
  const int64_t target = static_cast<int64_t>(
      std::llround(-std::log1p(-opts.sparsity) * n));
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<size_t>(target));
  for (int64_t n = 0; n < target; ++n) {
    const int64_t r = static_cast<int64_t>(rng.NextBounded(rows));
    const int64_t c = static_cast<int64_t>(rng.NextBounded(cols));
    triplets.push_back({r, c, rng.NextDouble()});
  }
  auto csr = CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
  DISTME_CHECK_OK(csr.status());
  return Block::Sparse(std::move(*csr));
}

BlockGrid GenerateUniform(const GeneratorOptions& options) {
  BlockGrid grid(BlockedShape{options.rows, options.cols, options.block_size});
  if (options.sparsity <= 0.0) return grid;
  for (int64_t i = 0; i < grid.block_rows(); ++i) {
    for (int64_t j = 0; j < grid.block_cols(); ++j) {
      Block b = GenerateUniformBlock(options, i, j);
      if (b.nnz() > 0) {
        DISTME_CHECK_OK(grid.Put({i, j}, std::move(b)));
      }
    }
  }
  return grid;
}

RatingDataset MovieLens() {
  return {"MovieLens", 283228, 58098, 27753444};
}

RatingDataset Netflix() {
  return {"Netflix", 480189, 17770, 100480507};
}

RatingDataset YahooMusic() {
  return {"YahooMusic", 1823179, 136736, 717872016};
}

GeneratorOptions RatingMatrixOptions(const RatingDataset& dataset,
                                     int64_t block_size, double scale) {
  GeneratorOptions options;
  options.rows = std::max<int64_t>(
      1, static_cast<int64_t>(dataset.users * scale));
  options.cols = std::max<int64_t>(
      1, static_cast<int64_t>(dataset.items * scale));
  // Sparsity (nnz fraction) is scale-invariant: the paper's datasets keep
  // their density when scaled for real-execution validation.
  options.sparsity = static_cast<double>(dataset.ratings) /
                     (static_cast<double>(dataset.users) * dataset.items);
  options.block_size = block_size;
  options.seed = 0xD157ABCDULL;
  return options;
}

}  // namespace distme
