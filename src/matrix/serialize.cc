#include "matrix/serialize.h"

#include <cstring>

namespace distme {

namespace {

constexpr uint32_t kMagic = 0xD157B10C;  // "DistME block"

template <typename T>
void AppendPod(std::vector<uint8_t>* buf, T value) {
  const size_t offset = buf->size();
  buf->resize(offset + sizeof(T));
  std::memcpy(buf->data() + offset, &value, sizeof(T));
}

template <typename T>
void AppendVector(std::vector<uint8_t>* buf, const std::vector<T>& values) {
  AppendPod<int64_t>(buf, static_cast<int64_t>(values.size()));
  if (values.empty()) return;  // data() may be null for an empty vector (UB for memcpy)
  const size_t offset = buf->size();
  buf->resize(offset + values.size() * sizeof(T));
  std::memcpy(buf->data() + offset, values.data(), values.size() * sizeof(T));
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  template <typename T>
  Status Read(T* out) {
    if (pos_ + sizeof(T) > buf_.size()) {
      return Status::IOError("truncated block buffer");
    }
    std::memcpy(out, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::OK();
  }

  template <typename T>
  Status ReadVector(std::vector<T>* out) {
    int64_t n = 0;
    DISTME_RETURN_NOT_OK(Read(&n));
    if (n < 0 || pos_ + static_cast<size_t>(n) * sizeof(T) > buf_.size()) {
      return Status::IOError("truncated block buffer (vector)");
    }
    out->resize(static_cast<size_t>(n));
    if (n > 0) {  // data() may be null for an empty vector (UB for memcpy)
      std::memcpy(out->data(), buf_.data() + pos_,
                  static_cast<size_t>(n) * sizeof(T));
    }
    pos_ += static_cast<size_t>(n) * sizeof(T);
    return Status::OK();
  }

 private:
  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> SerializeBlock(const Block& block) {
  std::vector<uint8_t> buf;
  AppendPod<uint32_t>(&buf, kMagic);
  AppendPod<uint8_t>(&buf, block.IsDense() ? 0 : 1);
  AppendPod<int64_t>(&buf, block.rows());
  AppendPod<int64_t>(&buf, block.cols());
  if (block.empty()) {
    // Header only; an empty block deserializes to a zero block.
    AppendPod<int64_t>(&buf, 0);
    return buf;
  }
  if (block.IsDense()) {
    const DenseMatrix& d = block.dense();
    AppendPod<int64_t>(&buf, d.num_elements());
    const size_t offset = buf.size();
    buf.resize(offset + static_cast<size_t>(d.SizeBytes()));
    std::memcpy(buf.data() + offset, d.data(),
                static_cast<size_t>(d.SizeBytes()));
  } else {
    const CsrMatrix& s = block.sparse();
    AppendVector(&buf, s.row_ptr());
    AppendVector(&buf, s.col_idx());
    AppendVector(&buf, s.values());
  }
  return buf;
}

Result<Block> DeserializeBlock(const std::vector<uint8_t>& buffer) {
  Reader reader(buffer);
  uint32_t magic = 0;
  DISTME_RETURN_NOT_OK(reader.Read(&magic));
  if (magic != kMagic) return Status::IOError("bad block magic");
  uint8_t fmt = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  DISTME_RETURN_NOT_OK(reader.Read(&fmt));
  DISTME_RETURN_NOT_OK(reader.Read(&rows));
  DISTME_RETURN_NOT_OK(reader.Read(&cols));
  if (rows < 0 || cols < 0) return Status::IOError("negative block dims");
  if (rows == 0 || cols == 0) return Block::Zero(rows, cols);

  if (fmt == 0) {
    int64_t n = 0;
    DISTME_RETURN_NOT_OK(reader.Read(&n));
    if (n == 0) return Block::Zero(rows, cols);
    if (n != rows * cols) return Status::IOError("dense payload size mismatch");
    std::vector<double> data(static_cast<size_t>(n));
    for (auto& v : data) DISTME_RETURN_NOT_OK(reader.Read(&v));
    return Block::Dense(DenseMatrix(rows, cols, std::move(data)));
  }

  std::vector<int64_t> row_ptr;
  std::vector<int64_t> col_idx;
  std::vector<double> values;
  DISTME_RETURN_NOT_OK(reader.ReadVector(&row_ptr));
  DISTME_RETURN_NOT_OK(reader.ReadVector(&col_idx));
  DISTME_RETURN_NOT_OK(reader.ReadVector(&values));
  if (row_ptr.size() != static_cast<size_t>(rows) + 1 ||
      col_idx.size() != values.size()) {
    return Status::IOError("sparse payload size mismatch");
  }
  // Rebuild via triplets to validate index ranges.
  std::vector<Triplet> triplets;
  triplets.reserve(values.size());
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (k < 0 || static_cast<size_t>(k) >= values.size()) {
        return Status::IOError("corrupt CSR row pointers");
      }
      triplets.push_back({r, col_idx[static_cast<size_t>(k)],
                          values[static_cast<size_t>(k)]});
    }
  }
  DISTME_ASSIGN_OR_RETURN(CsrMatrix csr,
                          CsrMatrix::FromTriplets(rows, cols,
                                                  std::move(triplets)));
  return Block::Sparse(std::move(csr));
}

int64_t SerializedBlockBytes(const Block& block) {
  // Header: magic + fmt + rows + cols.
  int64_t bytes = 4 + 1 + 8 + 8;
  if (block.empty()) return bytes + 8;
  if (block.IsDense()) {
    bytes += 8 + block.dense().SizeBytes();
  } else {
    const CsrMatrix& s = block.sparse();
    bytes += 3 * 8;  // three vector length prefixes
    bytes += static_cast<int64_t>(s.row_ptr().size()) * 8;
    bytes += s.nnz() * (8 + 8);
  }
  return bytes;
}

}  // namespace distme
