#include "matrix/block_grid.h"

namespace distme {

Status BlockGrid::Put(BlockIndex idx, Block block) {
  if (idx.i < 0 || idx.i >= block_rows() || idx.j < 0 ||
      idx.j >= block_cols()) {
    return Status::Invalid("block index out of range");
  }
  if (block.rows() != shape_.BlockRowsAt(idx.i) ||
      block.cols() != shape_.BlockColsAt(idx.j)) {
    return Status::Invalid("block dimensions do not match grid position");
  }
  blocks_[idx] = std::move(block);
  return Status::OK();
}

Block BlockGrid::Get(BlockIndex idx) const {
  auto it = blocks_.find(idx);
  if (it != blocks_.end()) return it->second;
  return Block::Zero(shape_.BlockRowsAt(idx.i), shape_.BlockColsAt(idx.j));
}

int64_t BlockGrid::SizeBytes() const {
  int64_t total = 0;
  for (const auto& [idx, block] : blocks_) total += block.SizeBytes();
  return total;
}

int64_t BlockGrid::TotalNnz() const {
  int64_t total = 0;
  for (const auto& [idx, block] : blocks_) total += block.nnz();
  return total;
}

DenseMatrix BlockGrid::ToDense() const {
  DenseMatrix out(shape_.rows, shape_.cols);
  for (const auto& [idx, block] : blocks_) {
    const int64_t row0 = idx.i * shape_.block_size;
    const int64_t col0 = idx.j * shape_.block_size;
    if (block.IsDense()) {
      const DenseMatrix& d = block.dense();
      for (int64_t r = 0; r < d.rows(); ++r) {
        for (int64_t c = 0; c < d.cols(); ++c) {
          out.Set(row0 + r, col0 + c, d.At(r, c));
        }
      }
    } else {
      const CsrMatrix& s = block.sparse();
      for (int64_t r = 0; r < s.rows(); ++r) {
        for (int64_t k = s.row_ptr()[r]; k < s.row_ptr()[r + 1]; ++k) {
          out.Set(row0 + r, col0 + s.col_idx()[k], s.values()[k]);
        }
      }
    }
  }
  return out;
}

BlockGrid BlockGrid::FromDense(const DenseMatrix& m, int64_t block_size) {
  BlockGrid grid(BlockedShape{m.rows(), m.cols(), block_size});
  for (int64_t bi = 0; bi < grid.block_rows(); ++bi) {
    for (int64_t bj = 0; bj < grid.block_cols(); ++bj) {
      const int64_t rows = grid.shape().BlockRowsAt(bi);
      const int64_t cols = grid.shape().BlockColsAt(bj);
      DenseMatrix tile(rows, cols);
      bool all_zero = true;
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          const double v = m.At(bi * block_size + r, bj * block_size + c);
          tile.Set(r, c, v);
          all_zero &= (v == 0.0);
        }
      }
      if (!all_zero) {
        DISTME_CHECK_OK(grid.Put({bi, bj}, Block::Dense(std::move(tile))));
      }
    }
  }
  return grid;
}

BlockGrid BlockGrid::FromCsr(const CsrMatrix& m, int64_t block_size) {
  BlockGrid grid(BlockedShape{m.rows(), m.cols(), block_size});
  // Bucket triplets per block, then assemble each block.
  std::unordered_map<BlockIndex, std::vector<Triplet>, BlockIndexHash> buckets;
  for (int64_t r = 0; r < m.rows(); ++r) {
    for (int64_t k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) {
      const int64_t c = m.col_idx()[k];
      const BlockIndex idx{r / block_size, c / block_size};
      buckets[idx].push_back(
          {r - idx.i * block_size, c - idx.j * block_size, m.values()[k]});
    }
  }
  for (auto& [idx, triplets] : buckets) {
    auto block = CsrMatrix::FromTriplets(grid.shape().BlockRowsAt(idx.i),
                                         grid.shape().BlockColsAt(idx.j),
                                         std::move(triplets));
    DISTME_CHECK_OK(block.status());
    DISTME_CHECK_OK(grid.Put(idx, Block::Sparse(std::move(*block))));
  }
  return grid;
}

}  // namespace distme
