#include "engine/real_executor.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "blas/block_ops.h"
#include "cluster/memory_tracker.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/pipeline.h"
#include "gpu/device.h"
#include "gpumm/streaming.h"
#include "matrix/serialize.h"
#include "obs/gpu_timeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme::engine {

namespace {

// One buffered output block of a task attempt, held until the commit point.
// `k_origin` is the k coordinate the partial came from (a box task's k0, a
// strided task's voxel k): aggregation merges partials for an output block
// in ascending k_origin, so the floating-point reduction order — and hence
// the result bits — is independent of worker count, prefetch depth, and
// arrival order.
struct PendingEmit {
  BlockIndex idx;
  Block block;
  int64_t k_origin = 0;
};

// A committed attempt's outputs, in flight from compute to the emit stage.
struct EmitBatch {
  int node = 0;
  std::vector<PendingEmit> outputs;
};

// A task whose first-attempt inputs were prefetched by the fetch stage.
// Moves through the per-worker BoundedQueue, so exactly one stage owns it
// at any instant. A failed prefetch travels as a null `inputs` plus the
// error in `fetch_status`; the compute stage treats it as a failed first
// attempt and retries synchronously.
struct StagedTask {
  int64_t index = -1;  // into the materialized task list
  std::unique_ptr<gpumm::StagedBlockSource> inputs;
  std::unique_ptr<MemoryTracker> tracker;
  Status fetch_status = Status::OK();
  bool injected = false;     // fetch_status is an injected mid-prefetch crash
  int64_t staged_bytes = 0;  // charged against the node's PrefetchGate
};

// Deterministic per-(task, attempt) crash decision — a pure function, so
// retry counts are identical across fault points, prefetch depths, and
// worker counts (the fetch stage and the compute stage can both evaluate
// it and agree).
bool CrashDecision(int64_t task_id, int attempt, double rate) {
  if (rate <= 0.0) return false;
  uint64_t h = static_cast<uint64_t>(task_id) * 0x9e3779b97f4a7c15ULL +
               static_cast<uint64_t>(attempt) * 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 29;
  return static_cast<double>(h >> 11) * 0x1.0p-53 < rate;
}

// Label for the distme.task.retries{reason} counter. Returns string
// literals so the flight recorder can keep the pointer without copying.
const char* RetryReason(const Status& status, bool injected) {
  if (injected) return "injected_crash";
  switch (status.code()) {
    case StatusCode::kOutOfMemory:
      return "out_of_memory";
    case StatusCode::kTimeout:
      return "timeout";
    default:
      return "error";
  }
}

}  // namespace

class RealExecutor::Impl {
 public:
  explicit Impl(ClusterConfig config) : config_(std::move(config)) {
    if (config_.has_gpu) {
      const int per_node = std::max(1, config_.gpu.devices_per_node);
      devices_.resize(static_cast<size_t>(config_.num_nodes));
      for (int n = 0; n < config_.num_nodes; ++n) {
        for (int d = 0; d < per_node; ++d) {
          devices_[static_cast<size_t>(n)].push_back(
              std::make_unique<gpu::Device>(config_.gpu, config_.hw));
        }
      }
    }
  }

  // Round-robin device assignment for a task on `node`.
  gpu::Device* DeviceFor(int node, int64_t task_id) {
    auto& node_devices = devices_[static_cast<size_t>(node)];
    return node_devices[static_cast<size_t>(
                            task_id % static_cast<int64_t>(
                                          node_devices.size()))]
        .get();
  }

  Result<RealRunResult> Run(const DistributedMatrix& a,
                            const DistributedMatrix& b,
                            const mm::Method& method,
                            const RealOptions& options) {
    mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
    DISTME_RETURN_NOT_OK(problem.Validate());
    if (options.mode != ComputeMode::kCpu && !config_.has_gpu) {
      return Status::Invalid("GPU mode requested on a GPU-less cluster");
    }
    if (options.prefetch_depth < 0) {
      return Status::Invalid("prefetch_depth must be >= 0");
    }

    ComputeMode mode = options.mode;
    if (mode == ComputeMode::kGpuStreaming && !method.SupportsGpuStreaming()) {
      mode = ComputeMode::kGpuBlock;
    }

    // Observability: all per-run accounting lives in a metrics registry —
    // either the caller's (typically session-owned, spanning many runs) or a
    // private one. Counters are monotonic, so this run's contribution is the
    // delta from the values captured here.
    obs::MetricsRegistry run_metrics;
    obs::MetricsRegistry* metrics =
        options.metrics != nullptr ? options.metrics : &run_metrics;
    obs::Tracer* tracer = options.tracer;
    obs::FlightRecorder* flight = options.flight;

    obs::Counter* repartition_bytes =
        metrics->GetCounter("distme.shuffle.repartition_bytes");
    obs::Counter* aggregation_bytes =
        metrics->GetCounter("distme.shuffle.aggregation_bytes");
    obs::Counter* remote_fetches =
        metrics->GetCounter("distme.shuffle.remote_fetches");
    obs::Counter* serialize_roundtrips =
        metrics->GetCounter("distme.shuffle.serialize_roundtrips");
    obs::Counter* task_attempts = metrics->GetCounter("distme.task.attempts");
    obs::Counter* fetch_nanos =
        metrics->GetCounter("distme.step.repartition_nanos");
    obs::Counter* compute_nanos =
        metrics->GetCounter("distme.step.multiply_nanos");
    obs::Counter* agg_nanos =
        metrics->GetCounter("distme.step.aggregation_nanos");
    obs::Histogram* task_seconds =
        metrics->GetHistogram("distme.task.seconds");
    obs::Gauge* peak_memory =
        metrics->GetGauge("distme.task.peak_memory_bytes");
    obs::Gauge* used_memory =
        metrics->GetGauge("distme.memory.task_used_bytes");
    obs::Counter* oom_rejections =
        metrics->GetCounter("distme.memory.oom_rejections");
    // Prefetch-pipeline instruments (stay at zero when prefetch_depth == 0).
    obs::Counter* prefetch_hits =
        metrics->GetCounter("distme.pipeline.prefetch_hits");
    obs::Counter* prefetch_stalls =
        metrics->GetCounter("distme.pipeline.prefetch_stalls");
    obs::Counter* pipeline_stall_nanos =
        metrics->GetCounter("distme.pipeline.stall_nanos");
    obs::Counter* backpressure_waits =
        metrics->GetCounter("distme.pipeline.backpressure_waits");

    // One consistent cut over the whole registry (a single lock acquisition)
    // rather than per-instrument reads: when two Sessions share a process,
    // interleaved reads would attribute another run's traffic to this one.
    const obs::MetricsSnapshot base = metrics->Snapshot();
    const int64_t base_repartition_bytes =
        base.TotalValue("distme.shuffle.repartition_bytes");
    const int64_t base_aggregation_bytes =
        base.TotalValue("distme.shuffle.aggregation_bytes");
    const int64_t base_fetch_nanos =
        base.TotalValue("distme.step.repartition_nanos");
    const int64_t base_compute_nanos =
        base.TotalValue("distme.step.multiply_nanos");
    const int64_t base_agg_nanos =
        base.TotalValue("distme.step.aggregation_nanos");
    const int64_t base_retries = base.TotalValue("distme.task.retries");
    const int64_t base_prefetch_hits =
        base.TotalValue("distme.pipeline.prefetch_hits");
    const int64_t base_prefetch_stalls =
        base.TotalValue("distme.pipeline.prefetch_stalls");
    const int64_t base_stall_nanos =
        base.TotalValue("distme.pipeline.stall_nanos");
    const int64_t base_backpressure_waits =
        base.TotalValue("distme.pipeline.backpressure_waits");
    obs::CommMatrixSnapshot comm_base;
    if (options.comm != nullptr) comm_base = options.comm->Snapshot();
    // Gauges describe the current run; the peak resets at each run start.
    peak_memory->Set(0);
    metrics->GetGauge("distme.pipeline.prefetch_depth")
        ->Set(options.prefetch_depth);

    const int driver_pid = config_.num_nodes;  // trace track for the driver
    if (tracer != nullptr && tracer->enabled()) {
      for (int n = 0; n < config_.num_nodes; ++n) {
        tracer->SetProcessName(n, "node" + std::to_string(n));
      }
      tracer->SetProcessName(driver_pid, "driver");
    }

    // Materialize the plan (the scheduler decision: task order + placement).
    std::vector<mm::LocalTask> tasks;
    {
      obs::Tracer::ScopedTrack track(driver_pid, 0);
      obs::TraceSpan plan_span(tracer, "sched.plan", "sched");
      DISTME_RETURN_NOT_OK(method.ForEachTask(
          problem, config_, [&tasks](const mm::LocalTask& t) {
            tasks.push_back(t);
            return Status::OK();
          }));
      if (options.lpt_scheduling) {
        std::stable_sort(tasks.begin(), tasks.end(),
                         [](const mm::LocalTask& l, const mm::LocalTask& r) {
                           return l.voxels.size() > r.voxels.size();
                         });
      }
      plan_span.AddArg("method", std::string(method.name()));
      plan_span.AddArg("tasks", static_cast<int64_t>(tasks.size()));
      plan_span.AddArg("lpt", static_cast<int64_t>(options.lpt_scheduling));
    }
    // Attach (or detach) the run's recorder to every device before any task
    // touches one: schema-3 interval events carry the device's (node,
    // ordinal) identity. `seq_before_run` lets the end-of-run overlap
    // analysis cut the ring to exactly this run's events.
    uint64_t seq_before_run = 0;
    if (config_.has_gpu) {
      for (size_t n = 0; n < devices_.size(); ++n) {
        for (size_t d = 0; d < devices_[n].size(); ++d) {
          devices_[n][d]->AttachFlight(flight, static_cast<int32_t>(n),
                                       static_cast<int32_t>(d));
        }
      }
    }
    if (flight != nullptr) {
      seq_before_run = flight->TotalRecorded();
      flight->Record(obs::FlightEventType::kRunStart, /*node=*/-1,
                     /*slot=*/-1, static_cast<int64_t>(tasks.size()));
    }

    const bool needs_agg = method.NeedsAggregation(problem);
    auto output = std::make_shared<DistributedMatrix>(
        BlockedShape{a.shape().rows, b.shape().cols, a.shape().block_size},
        config_.num_nodes, Partitioner::Hash(config_.num_nodes));

    // Aggregation state: partial C blocks keyed by (i, j), each holding its
    // contributions keyed by k_origin. The finalize step merges every
    // block's partials in ascending k_origin, making the reduction order —
    // and the result bits — deterministic no matter which worker, attempt,
    // or emit thread delivered each partial first.
    constexpr size_t kShards = 64;
    std::array<std::mutex, kShards> agg_mutexes;
    std::array<
        std::unordered_map<BlockIndex, std::map<int64_t, Block>, BlockIndexHash>,
        kShards>
        agg_partials;

    std::atomic<int64_t> next_task{0};
    std::mutex failure_mutex;
    Status failure = Status::OK();

    Stopwatch total_clock;

    auto record_failure = [&](Status st) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (failure.ok()) failure = std::move(st);
    };
    auto run_failed = [&]() {
      std::lock_guard<std::mutex> lock(failure_mutex);
      return !failure.ok();
    };

    auto fetch = [&](const DistributedMatrix& m, BlockIndex idx, int node,
                     MemoryTracker* tracker) -> Result<Block> {
      bool crossed = false;
      obs::TraceSpan span(tracer, "shuffle.fetch", "shuffle");
      DISTME_ASSIGN_OR_RETURN(Block blk, m.Get(idx, node, &crossed));
      if (crossed) {
        const int64_t wire = SerializedBlockBytes(blk);
        repartition_bytes->Add(wire);
        remote_fetches->Add(1);
        if (options.comm != nullptr) {
          options.comm->Record(obs::CommStage::kRepartition, m.NodeOf(idx),
                               node, wire);
        }
        if (flight != nullptr) {
          // node = destination (the fetching task), slot = source node.
          flight->Record(obs::FlightEventType::kBlockFetch, node,
                         m.NodeOf(idx), wire);
        }
        span.AddArg("bytes", wire);
        if (options.serialize_transfers) {
          // Round-trip through the wire format, as a real shuffle would.
          obs::TraceSpan ser_span(tracer, "shuffle.serialize", "shuffle");
          serialize_roundtrips->Add(1);
          DISTME_ASSIGN_OR_RETURN(blk, DeserializeBlock(SerializeBlock(blk)));
        }
      } else {
        span.Cancel();  // node-local read, not a shuffle transfer
      }
      if (tracker != nullptr) {
        DISTME_RETURN_NOT_OK(tracker->Allocate(blk.SizeBytes()));
      }
      return blk;
    };

    // Fetches every input block of `task` into `inputs`. Box tasks fetch
    // each distinct block once (communication sharing); strided tasks fetch
    // per voxel. When `crash_mid_prefetch`, the injected crash strikes right
    // after the first block lands — the kMidPrefetch fault point.
    auto fetch_inputs = [&](const mm::LocalTask& task, int node,
                            gpumm::StagedBlockSource* inputs,
                            MemoryTracker* tracker_ptr,
                            bool crash_mid_prefetch, bool* injected,
                            int64_t* staged_bytes) -> Status {
      Status fetch_status = Status::OK();
      auto need_a = [&](int64_t i, int64_t k) -> Status {
        if (task.inputs_shared && inputs->HasA(i, k)) return Status::OK();
        DISTME_ASSIGN_OR_RETURN(Block blk,
                                fetch(a, BlockIndex{i, k}, node, tracker_ptr));
        *staged_bytes += blk.SizeBytes();
        inputs->StageA(i, k, std::move(blk));
        return Status::OK();
      };
      auto need_b = [&](int64_t k, int64_t j) -> Status {
        if (task.inputs_shared && inputs->HasB(k, j)) return Status::OK();
        DISTME_ASSIGN_OR_RETURN(Block blk,
                                fetch(b, BlockIndex{k, j}, node, tracker_ptr));
        *staged_bytes += blk.SizeBytes();
        inputs->StageB(k, j, std::move(blk));
        return Status::OK();
      };
      task.voxels.ForEach([&](mm::Voxel v) {
        if (!fetch_status.ok()) return;
        Status st = need_a(v.i, v.k);
        if (st.ok() && crash_mid_prefetch) {
          // The attempt dies holding its first in-flight prefetched block.
          *injected = true;
          st = Status::Internal("injected task crash");
        }
        if (st.ok()) st = need_b(v.k, v.j);
        if (!st.ok()) fetch_status = std::move(st);
      });
      return fetch_status;
    };

    auto emit = [&](BlockIndex idx, Block block, int64_t k_origin,
                    int producer_node) -> Status {
      if (!needs_agg) {
        // Final block — write in place (output writes are not part of the
        // shuffle cost, matching Table 2's zero aggregation for BMM).
        if (block.nnz() == 0) return Status::OK();
        return output->Put(idx, std::move(block));
      }
      const int reducer_node = output->NodeOf(idx);
      if (reducer_node != producer_node) {
        const int64_t wire = SerializedBlockBytes(block);
        aggregation_bytes->Add(wire);
        if (options.comm != nullptr) {
          options.comm->Record(obs::CommStage::kAggregation, producer_node,
                               reducer_node, wire);
        }
        if (flight != nullptr) {
          // node = producer, slot = reducer node receiving the partial.
          flight->Record(obs::FlightEventType::kBlockEmit, producer_node,
                         reducer_node, wire);
        }
        obs::TraceSpan span(tracer, "shuffle.aggregate", "shuffle");
        span.AddArg("bytes", wire);
        span.AddArg("reducer", static_cast<int64_t>(reducer_node));
        if (options.serialize_transfers) {
          serialize_roundtrips->Add(1);
          DISTME_ASSIGN_OR_RETURN(block,
                                  DeserializeBlock(SerializeBlock(block)));
        }
      }
      const size_t shard = BlockIndexHash()(idx) % kShards;
      std::lock_guard<std::mutex> lock(agg_mutexes[shard]);
      auto& by_k = agg_partials[shard][idx];
      auto it = by_k.find(k_origin);
      if (it == by_k.end()) {
        by_k.emplace(k_origin, std::move(block));
        return Status::OK();
      }
      // Same (block, k_origin) twice — not produced by any current method,
      // but reduce defensively rather than dropping a partial.
      DISTME_ASSIGN_OR_RETURN(Block summed,
                              blas::AddBlocks(it->second, block));
      it->second = std::move(summed);
      return Status::OK();
    };

    // Compute phase of one attempt: consumes the staged inputs, buffers the
    // attempt's output partials into `outputs`. Side-effect free w.r.t. the
    // output matrix — everything before the commit is replayable.
    auto compute_task = [&](const mm::LocalTask& task, int node, int slot,
                            gpumm::StagedBlockSource& inputs,
                            MemoryTracker* tracker_ptr,
                            std::vector<PendingEmit>* outputs) -> Status {
      Stopwatch compute_clock;
      double gpu_seconds = 0;  // time this attempt spent bound on the GPU
      obs::TraceSpan compute_span(tracer, "task.compute", "task");
      if (mode == ComputeMode::kGpuStreaming && task.voxels.is_box()) {
        gpu::Device* device = DeviceFor(node, task.id);
        Stopwatch gpu_clock;
        DISTME_ASSIGN_OR_RETURN(
            gpumm::GpuCuboidResult gpu_result,
            gpumm::RunCuboidOnGpu(task.voxels, a.shape(), b.shape(), &inputs,
                                  device, config_.gpu_task_memory_bytes,
                                  tracer, flight));
        gpu_seconds += gpu_clock.ElapsedSeconds();
        for (auto& [key, dense] : gpu_result.c_blocks) {
          outputs->push_back(PendingEmit{BlockIndex{key.first, key.second},
                                         Block::Dense(std::move(dense)),
                                         task.voxels.k0()});
        }
      } else if (task.aggregate_local && task.voxels.is_box()) {
        // Accumulate over the task's k range; emit one block per (i, j).
        const auto& box = task.voxels;
        for (int64_t i = box.i0(); i < box.i1(); ++i) {
          for (int64_t j = box.j0(); j < box.j1(); ++j) {
            DenseMatrix acc(a.shape().BlockRowsAt(i),
                            b.shape().BlockColsAt(j));
            if (tracker_ptr != nullptr) {
              DISTME_RETURN_NOT_OK(tracker_ptr->Allocate(acc.SizeBytes()));
            }
            for (int64_t k = box.k0(); k < box.k1(); ++k) {
              const Block& ab = inputs.A(i, k);
              const Block& bb = inputs.B(k, j);
              if (ab.nnz() == 0 || bb.nnz() == 0) continue;
              if (mode == ComputeMode::kGpuBlock) {
                DISTME_RETURN_NOT_OK(
                    RunBlockKernel(node, task.id, ab, bb, &acc, &gpu_seconds));
              } else {
                DISTME_RETURN_NOT_OK(blas::MultiplyAccumulate(ab, bb, &acc));
              }
            }
            if (acc.CountNonZeros() > 0) {
              outputs->push_back(PendingEmit{BlockIndex{i, j},
                                             Block::Dense(std::move(acc)),
                                             box.k0()});
            }
            if (tracker_ptr != nullptr) {
              tracker_ptr->Free(0);  // acc ownership moved to the shuffle
            }
          }
        }
      } else {
        // Per-voxel products (RMM): one intermediate block per voxel.
        Status voxel_status = Status::OK();
        task.voxels.ForEach([&](mm::Voxel v) {
          if (!voxel_status.ok()) return;
          const Block& ab = inputs.A(v.i, v.k);
          const Block& bb = inputs.B(v.k, v.j);
          if (ab.nnz() == 0 || bb.nnz() == 0) return;
          DenseMatrix acc(a.shape().BlockRowsAt(v.i),
                          b.shape().BlockColsAt(v.j));
          Status st =
              mode == ComputeMode::kGpuBlock
                  ? RunBlockKernel(node, task.id, ab, bb, &acc, &gpu_seconds)
                  : blas::MultiplyAccumulate(ab, bb, &acc);
          if (st.ok() && acc.CountNonZeros() > 0) {
            outputs->push_back(PendingEmit{BlockIndex{v.i, v.j},
                                           Block::Dense(std::move(acc)),
                                           v.k});
          }
          if (!st.ok()) voxel_status = std::move(st);
        });
        DISTME_RETURN_NOT_OK(voxel_status);
      }
      compute_span.End();
      compute_nanos->Add(
          static_cast<int64_t>(compute_clock.ElapsedSeconds() * 1e9));
      if (flight != nullptr && gpu_seconds > 0) {
        flight->RecordEdge(obs::FlightEdgeKind::kGpuWait, node, slot, task.id,
                           static_cast<int64_t>(gpu_seconds * 1e6));
      }
      return Status::OK();
    };

    // One synchronous attempt: fetch + compute on the calling thread, the
    // legacy (depth 0) execution path — also the retry path at any depth.
    // Returns the pre-commit status; on OK, `*outputs` is ready to commit.
    auto run_attempt_sync = [&](const mm::LocalTask& task, int slot,
                                bool crash, std::vector<PendingEmit>* outputs,
                                bool* injected) -> Status {
      const int node = static_cast<int>(task.id % config_.num_nodes);
      MemoryTracker tracker("task " + std::to_string(task.id),
                                     config_.task_memory_bytes);
      tracker.AttachMetrics(used_memory, peak_memory, oom_rejections);
      tracker.AttachFlight(flight, node, slot);
      MemoryTracker* tracker_ptr =
          options.enforce_task_memory ? &tracker : nullptr;

      gpumm::StagedBlockSource inputs;
      Stopwatch fetch_clock;
      obs::TraceSpan fetch_span(tracer, "task.fetch", "task");
      int64_t staged_bytes = 0;
      Status fetch_status = fetch_inputs(
          task, node, &inputs, tracker_ptr,
          crash && options.fault_point == FaultPoint::kMidPrefetch, injected,
          &staged_bytes);
      fetch_span.End();
      const double fetch_seconds = fetch_clock.ElapsedSeconds();
      fetch_nanos->Add(static_cast<int64_t>(fetch_seconds * 1e9));
      if (flight != nullptr) {
        flight->RecordEdge(obs::FlightEdgeKind::kFetchWait, node, slot,
                           task.id,
                           static_cast<int64_t>(fetch_seconds * 1e6));
      }
      DISTME_RETURN_NOT_OK(fetch_status);
      if (crash && options.fault_point == FaultPoint::kBeforeCompute) {
        // The fetched inputs (and their reservations) die with the attempt.
        *injected = true;
        return Status::Internal("injected task crash");
      }
      DISTME_RETURN_NOT_OK(
          compute_task(task, node, slot, inputs, tracker_ptr, outputs));
      if (crash && options.fault_point == FaultPoint::kBeforeCommit) {
        // Injected fault: the attempt dies holding its uncommitted outputs.
        *injected = true;
        outputs->clear();
        return Status::Internal("injected task crash");
      }
      return Status::OK();
    };

    // How an attempt's buffered outputs reach the aggregation/output matrix:
    // inline at depth 0, via the per-worker emit queue at depth > 0. Set
    // below, once the pipeline (if any) exists; execute_task calls through
    // this indirection.
    std::function<Status(int, int, std::vector<PendingEmit>&&)> commit_fn;

    // The attempt loop for one task on compute slot `slot`. When `staged`
    // is non-null (depth > 0) the first attempt consumes the prefetched
    // inputs and its fetch_wait is the pop stall (`pop_stall_seconds`,
    // started at flight timestamp `pipeline_start_us`); retries fall back
    // to the synchronous path. Commit errors are run-fatal — a partially
    // applied commit is never replayed, so reducer blocks cannot be
    // double-counted.
    auto execute_task = [&](const mm::LocalTask& task, int slot,
                            StagedTask* staged, int64_t pipeline_start_us,
                            double pop_stall_seconds) -> Status {
      const int node = static_cast<int>(task.id % config_.num_nodes);
      Status st = Status::OK();
      for (int attempt = 0; attempt < options.max_task_attempts; ++attempt) {
        const bool crash =
            CrashDecision(task.id, attempt, options.task_failure_rate);
        const bool pipelined = staged != nullptr && attempt == 0;
        task_attempts->Add(1);
        if (flight != nullptr) {
          if (pipelined) {
            // The attempt began when the worker started waiting on the
            // fetch stage, so the stall edge below lands inside the
            // attempt's [start, finish] span.
            flight->RecordAt(pipeline_start_us,
                             obs::FlightEventType::kTaskStart, node, slot,
                             task.id, attempt);
          } else {
            flight->Record(obs::FlightEventType::kTaskStart, node, slot,
                           task.id, attempt);
          }
        }
        const int wd_token =
            options.watchdog != nullptr
                ? options.watchdog->TaskStarted(task.id, node, slot)
                : -1;
        Stopwatch attempt_clock;
        obs::TraceSpan attempt_span(tracer, "task.attempt", "task");
        attempt_span.AddArg("task", task.id);
        attempt_span.AddArg("attempt", static_cast<int64_t>(attempt));
        attempt_span.AddArg("voxels", task.voxels.size());
        std::vector<PendingEmit> outputs;
        bool injected = false;
        if (pipelined) {
          // With prefetch, the attempt's fetch_wait is only the time the
          // worker actually stalled waiting for staged inputs — the
          // overlap the critical-path analyzer should see.
          if (flight != nullptr) {
            flight->RecordEdge(
                obs::FlightEdgeKind::kFetchWait, node, slot, task.id,
                static_cast<int64_t>(pop_stall_seconds * 1e6));
          }
          st = staged->fetch_status;
          injected = staged->injected;
          if (st.ok() && crash &&
              options.fault_point == FaultPoint::kBeforeCompute) {
            injected = true;
            st = Status::Internal("injected task crash");
          }
          if (st.ok()) {
            MemoryTracker* tracker_ptr =
                options.enforce_task_memory ? staged->tracker.get() : nullptr;
            st = compute_task(task, node, slot, *staged->inputs, tracker_ptr,
                              &outputs);
          }
          if (st.ok() && crash &&
              options.fault_point == FaultPoint::kBeforeCommit) {
            injected = true;
            outputs.clear();
            st = Status::Internal("injected task crash");
          }
          // Attempt 0 is done with the staged state either way. A crashed
          // attempt releases its prefetched blocks and memory reservations
          // here — the lineage contract at the pipeline boundary.
          staged->inputs.reset();
          staged->tracker.reset();
        } else {
          st = run_attempt_sync(task, slot, crash, &outputs, &injected);
        }
        bool commit_failed = false;
        if (st.ok() && !outputs.empty()) {
          Status commit_status = commit_fn(slot, node, std::move(outputs));
          if (!commit_status.ok()) {
            commit_failed = true;
            st = std::move(commit_status);
          }
        }
        const double attempt_seconds =
            (pipelined ? pop_stall_seconds : 0.0) +
            attempt_clock.ElapsedSeconds();
        task_seconds->Observe(attempt_seconds);
        if (!st.ok()) attempt_span.AddArg("error", st.ToString());
        attempt_span.End();
        if (options.watchdog != nullptr) {
          options.watchdog->TaskFinished(wd_token);
        }
        if (flight != nullptr) {
          flight->Record(obs::FlightEventType::kTaskFinish, node, slot,
                         task.id,
                         static_cast<int64_t>(attempt_seconds * 1e6));
        }
        if (st.ok()) break;
        if (commit_failed) break;  // a partial commit must never be retried
        const char* reason = RetryReason(st, injected);
        if (flight != nullptr) {
          flight->Record(obs::FlightEventType::kTaskRetry, node, slot,
                         task.id, attempt, reason);
        }
        DISTME_LOG(Warning) << "task " << task.id << " attempt " << attempt
                            << " failed (" << reason << "): "
                            << st.ToString();
        metrics->GetCounter("distme.task.retries", {{"reason", reason}})
            ->Add(1);
      }
      return st;
    };

    // Worker pool: one compute thread per task slot. At depth > 0 each
    // compute worker w is flanked by its own fetch thread (stages the next
    // up-to-depth tasks' inputs through stage_queues[w], throttled per node
    // by a PrefetchGate) and its own emit thread (drains committed outputs
    // through emit_queues[w]) — fetch, compute, and emit overlap.
    const int num_workers = static_cast<int>(
        std::min<int64_t>(config_.total_slots(),
                          static_cast<int64_t>(tasks.size())));
    const int pool = std::max(num_workers, 1);
    const bool pipelined_run = options.prefetch_depth > 0;
    if (tracer != nullptr && tracer->enabled()) {
      // Workers pull tasks for any node, so each (node, slot) track can host
      // spans from any worker; name them all up front.
      for (int n = 0; n < config_.num_nodes; ++n) {
        for (int w = 0; w < pool; ++w) {
          tracer->SetThreadName(n, w, "slot" + std::to_string(w));
          if (pipelined_run) {
            tracer->SetThreadName(n, pool + w, "fetch" + std::to_string(w));
            tracer->SetThreadName(n, 2 * pool + w,
                                  "emit" + std::to_string(w));
          }
        }
      }
    }

    std::vector<std::unique_ptr<PrefetchGate>> gates;
    std::vector<std::unique_ptr<BoundedQueue<StagedTask>>> stage_queues;
    std::vector<std::unique_ptr<BoundedQueue<EmitBatch>>> emit_queues;
    if (pipelined_run) {
      const auto depth = static_cast<size_t>(options.prefetch_depth);
      const int64_t staging_budget = options.prefetch_staging_bytes > 0
                                         ? options.prefetch_staging_bytes
                                         : config_.node_memory_bytes;
      for (int n = 0; n < config_.num_nodes; ++n) {
        gates.push_back(std::make_unique<PrefetchGate>(staging_budget));
      }
      for (int w = 0; w < pool; ++w) {
        stage_queues.push_back(
            std::make_unique<BoundedQueue<StagedTask>>(depth));
        emit_queues.push_back(std::make_unique<BoundedQueue<EmitBatch>>(depth));
      }
      commit_fn = [&](int slot, int node,
                      std::vector<PendingEmit>&& outputs) -> Status {
        // Hand the committed batch to the emit stage. Push only fails when
        // the run is already tearing down on a recorded failure, and then
        // dropping the batch is moot.
        EmitBatch batch;
        batch.node = node;
        batch.outputs = std::move(outputs);
        (void)emit_queues[static_cast<size_t>(slot)]->Push(std::move(batch));
        return Status::OK();
      };
    } else {
      commit_fn = [&](int /*slot*/, int node,
                      std::vector<PendingEmit>&& outputs) -> Status {
        for (PendingEmit& pe : outputs) {
          DISTME_RETURN_NOT_OK(
              emit(pe.idx, std::move(pe.block), pe.k_origin, node));
        }
        return Status::OK();
      };
    }

    std::vector<std::thread> fetchers;
    std::vector<std::thread> emitters;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(pool));
    if (pipelined_run) {
      fetchers.reserve(static_cast<size_t>(pool));
      emitters.reserve(static_cast<size_t>(pool));
      for (int w = 0; w < pool; ++w) {
        // Fetch stage: claims tasks from the shared cursor and prefetches
        // their first-attempt inputs ahead of worker w's compute.
        fetchers.emplace_back([&, w]() {
          while (true) {
            const int64_t t =
                next_task.fetch_add(1, std::memory_order_relaxed);
            if (t >= static_cast<int64_t>(tasks.size())) break;
            if (run_failed()) break;
            const mm::LocalTask& task = tasks[static_cast<size_t>(t)];
            const int node = static_cast<int>(task.id % config_.num_nodes);
            obs::Tracer::ScopedTrack track(node, pool + w);
            if (gates[static_cast<size_t>(node)]->WaitForHeadroom()) {
              backpressure_waits->Add(1);
            }
            StagedTask staged;
            staged.index = t;
            staged.inputs = std::make_unique<gpumm::StagedBlockSource>();
            staged.tracker = std::make_unique<MemoryTracker>(
                "task " + std::to_string(task.id), config_.task_memory_bytes);
            staged.tracker->AttachMetrics(used_memory, peak_memory,
                                          oom_rejections);
            staged.tracker->AttachFlight(flight, node, w);
            MemoryTracker* tracker_ptr =
                options.enforce_task_memory ? staged.tracker.get() : nullptr;
            const bool crash_mid =
                options.fault_point == FaultPoint::kMidPrefetch &&
                CrashDecision(task.id, /*attempt=*/0,
                              options.task_failure_rate);
            Stopwatch fetch_clock;
            obs::TraceSpan fetch_span(tracer, "task.prefetch", "task");
            int64_t staged_bytes = 0;
            bool injected = false;
            staged.fetch_status =
                fetch_inputs(task, node, staged.inputs.get(), tracker_ptr,
                             crash_mid, &injected, &staged_bytes);
            fetch_span.End();
            fetch_nanos->Add(
                static_cast<int64_t>(fetch_clock.ElapsedSeconds() * 1e9));
            staged.injected = injected;
            if (!staged.fetch_status.ok()) {
              // Lineage contract: a crashed or failed prefetch releases its
              // in-flight blocks and reservations before handover; the
              // compute stage sees a failed first attempt and retries
              // synchronously.
              staged.inputs.reset();
              staged.tracker.reset();
              staged.staged_bytes = 0;
            } else {
              staged.staged_bytes = staged_bytes;
              gates[static_cast<size_t>(node)]->Charge(staged_bytes);
            }
            const int64_t charged = staged.staged_bytes;
            if (!stage_queues[static_cast<size_t>(w)]->Push(
                    std::move(staged))) {
              // Consumer closed the queue (failure teardown).
              gates[static_cast<size_t>(node)]->Release(charged);
              break;
            }
          }
          stage_queues[static_cast<size_t>(w)]->Close();
        });
        // Emit stage: applies committed output batches to the aggregation
        // maps / output matrix while worker w already computes the next
        // task. Emit errors are run-fatal (see execute_task).
        emitters.emplace_back([&, w]() {
          while (std::optional<EmitBatch> batch =
                     emit_queues[static_cast<size_t>(w)]->Pop()) {
            if (run_failed()) continue;  // drain without emitting
            obs::Tracer::ScopedTrack track(batch->node, 2 * pool + w);
            for (PendingEmit& pe : batch->outputs) {
              Status st =
                  emit(pe.idx, std::move(pe.block), pe.k_origin, batch->node);
              if (!st.ok()) {
                record_failure(std::move(st));
                break;
              }
            }
          }
        });
        // Compute stage.
        workers.emplace_back([&, w]() {
          while (true) {
            Stopwatch pop_clock;
            const int64_t wait_begin_us =
                flight != nullptr ? flight->NowMicros() : 0;
            bool stalled = false;
            std::optional<StagedTask> popped =
                stage_queues[static_cast<size_t>(w)]->Pop(&stalled);
            if (!popped.has_value()) break;  // closed and fully drained
            const double stall_seconds =
                stalled ? pop_clock.ElapsedSeconds() : 0.0;
            StagedTask staged = std::move(*popped);
            const mm::LocalTask& task =
                tasks[static_cast<size_t>(staged.index)];
            const int node = static_cast<int>(task.id % config_.num_nodes);
            // The staged bytes leave the prefetch window the moment compute
            // takes ownership.
            gates[static_cast<size_t>(node)]->Release(staged.staged_bytes);
            if (stalled) {
              prefetch_stalls->Add(1);
              pipeline_stall_nanos->Add(
                  static_cast<int64_t>(stall_seconds * 1e9));
            } else {
              prefetch_hits->Add(1);
            }
            if (run_failed()) break;  // `staged` dtor releases its state
            obs::Tracer::ScopedTrack track(node, w);
            Status st =
                execute_task(task, w, &staged, wait_begin_us, stall_seconds);
            if (!st.ok()) record_failure(std::move(st));
          }
          // Teardown: stop our fetch thread and return the gate charges of
          // anything it had already staged.
          stage_queues[static_cast<size_t>(w)]->Close();
          while (std::optional<StagedTask> rest =
                     stage_queues[static_cast<size_t>(w)]->Pop()) {
            const mm::LocalTask& task =
                tasks[static_cast<size_t>(rest->index)];
            gates[static_cast<size_t>(task.id % config_.num_nodes)]->Release(
                rest->staged_bytes);
          }
        });
      }
    } else {
      for (int w = 0; w < pool; ++w) {
        workers.emplace_back([&, w]() {
          while (true) {
            const int64_t t =
                next_task.fetch_add(1, std::memory_order_relaxed);
            if (t >= static_cast<int64_t>(tasks.size())) break;
            if (run_failed()) break;
            const mm::LocalTask& task = tasks[static_cast<size_t>(t)];
            const int node = static_cast<int>(task.id % config_.num_nodes);
            // All spans opened under this worker (task body, shuffle
            // transfers, GPU chunks) land on the (node, slot) track.
            obs::Tracer::ScopedTrack track(node, w);
            Status st = execute_task(task, w, /*staged=*/nullptr,
                                     /*pipeline_start_us=*/0,
                                     /*pop_stall_seconds=*/0.0);
            if (!st.ok()) record_failure(std::move(st));
          }
        });
      }
    }
    for (auto& th : workers) th.join();
    for (auto& th : fetchers) th.join();
    for (auto& q : emit_queues) q->Close();
    for (auto& th : emitters) th.join();

    int64_t queue_high_water = 0;
    for (auto& q : stage_queues) {
      queue_high_water =
          std::max(queue_high_water, static_cast<int64_t>(q->high_water()));
    }

    RealRunResult result;
    result.report.method_name = method.name();
    result.report.mode = mode;
    result.report.num_tasks = static_cast<int64_t>(tasks.size());
    if (pipelined_run) {
      const obs::MetricsSnapshot pipe_cut = metrics->Snapshot();
      result.report.pipeline.prefetch_depth = options.prefetch_depth;
      result.report.pipeline.prefetch_hits =
          pipe_cut.TotalValue("distme.pipeline.prefetch_hits") -
          base_prefetch_hits;
      result.report.pipeline.prefetch_stalls =
          pipe_cut.TotalValue("distme.pipeline.prefetch_stalls") -
          base_prefetch_stalls;
      result.report.pipeline.stall_seconds =
          static_cast<double>(
              pipe_cut.TotalValue("distme.pipeline.stall_nanos") -
              base_stall_nanos) *
          1e-9;
      result.report.pipeline.backpressure_waits =
          pipe_cut.TotalValue("distme.pipeline.backpressure_waits") -
          base_backpressure_waits;
      result.report.pipeline.queue_high_water = queue_high_water;
      metrics->GetGauge("distme.pipeline.queue_high_water")
          ->Set(queue_high_water);
    }

    if (!failure.ok()) {
      result.report.task_retries =
          metrics->Snapshot().TotalValue("distme.task.retries") - base_retries;
      if (flight != nullptr) {
        flight->Record(obs::FlightEventType::kRunFinish, /*node=*/-1,
                       /*slot=*/-1, static_cast<int64_t>(tasks.size()),
                       /*b=*/1, "run failed");
        // Post-mortem: the run is about to surface an error Status; leave
        // the event trail on disk before the caller decides what to do.
        if (!options.flight_dump_path.empty()) {
          const Status dumped = flight->DumpToFile(options.flight_dump_path);
          if (dumped.ok()) {
            DISTME_LOG(Info) << "run failed; flight recorder dumped to "
                             << options.flight_dump_path;
          } else {
            DISTME_LOG(Warning) << "flight-recorder dump failed: "
                                << dumped.ToString();
          }
        }
      }
      result.report.outcome = failure;
      result.output = std::move(output);
      return result;
    }

    // Aggregation finalize: merge every output block's partials in
    // ascending k_origin (deterministic reduction order), then move the
    // reduced blocks into the output matrix.
    Stopwatch agg_clock;
    if (flight != nullptr && needs_agg) {
      flight->Record(obs::FlightEventType::kStageBegin, /*node=*/-1,
                     /*slot=*/-1, 0, 0, "aggregation");
    }
    {
      obs::Tracer::ScopedTrack track(driver_pid, 0);
      obs::TraceSpan agg_span(tracer, "aggregate.finalize", "shuffle");
      if (needs_agg) {
        for (size_t shard = 0; shard < kShards; ++shard) {
          for (auto& [idx, by_k] : agg_partials[shard]) {
            auto it = by_k.begin();
            Block total = std::move(it->second);
            for (++it; it != by_k.end(); ++it) {
              DISTME_ASSIGN_OR_RETURN(total,
                                      blas::AddBlocks(total, it->second));
            }
            if (total.nnz() == 0) continue;
            DISTME_RETURN_NOT_OK(output->Put(idx, std::move(total)));
          }
          agg_partials[shard].clear();
        }
      } else {
        agg_span.Cancel();
      }
    }
    if (flight != nullptr && needs_agg) {
      flight->Record(obs::FlightEventType::kStageEnd, /*node=*/-1,
                     /*slot=*/-1, 0, 0, "aggregation");
    }
    agg_nanos->Add(static_cast<int64_t>(agg_clock.ElapsedSeconds() * 1e9));

    // Per-link summary gauges, derived from this run's comm-matrix delta.
    if (options.comm != nullptr) {
      const obs::CommMatrixSnapshot comm_delta =
          options.comm->Snapshot().Delta(comm_base);
      metrics->GetGauge("distme.comm.max_link_bytes")
          ->Set(comm_delta.MaxLinkBytes());
      metrics->GetGauge("distme.comm.skew_permille")
          ->Set(static_cast<int64_t>(comm_delta.SkewRatio() * 1000.0));
      metrics->GetGauge("distme.comm.active_links")
          ->Set(comm_delta.ActiveLinks());
    }

    // The report's timings and byte counters are views over the registry —
    // the registry is the source of truth, not hand-threaded accumulators.
    // As with `base`, one snapshot gives a consistent cut for the deltas.
    const obs::MetricsSnapshot final_cut = metrics->Snapshot();
    result.report.outcome = Status::OK();
    result.report.elapsed_seconds = total_clock.ElapsedSeconds();
    result.report.task_retries =
        final_cut.TotalValue("distme.task.retries") - base_retries;
    result.report.steps.repartition_seconds =
        static_cast<double>(
            final_cut.TotalValue("distme.step.repartition_nanos") -
            base_fetch_nanos) *
        1e-9;
    result.report.steps.multiply_seconds =
        static_cast<double>(final_cut.TotalValue("distme.step.multiply_nanos") -
                            base_compute_nanos) *
        1e-9;
    result.report.steps.aggregation_seconds =
        static_cast<double>(
            final_cut.TotalValue("distme.step.aggregation_nanos") -
            base_agg_nanos) *
        1e-9;
    result.report.repartition_bytes = static_cast<double>(
        final_cut.TotalValue("distme.shuffle.repartition_bytes") -
        base_repartition_bytes);
    result.report.aggregation_bytes = static_cast<double>(
        final_cut.TotalValue("distme.shuffle.aggregation_bytes") -
        base_aggregation_bytes);
    result.report.peak_task_memory_bytes = static_cast<double>(
        final_cut.TotalValue("distme.task.peak_memory_bytes"));
    if (config_.has_gpu && mode != ComputeMode::kCpu) {
      double pcie = 0;
      double kernel_busy = 0;
      double device_elapsed = 0;
      int num_devices = 0;
      for (auto& node_devices : devices_) {
        for (auto& device : node_devices) {
          pcie += static_cast<double>(device->stats().h2d_bytes +
                                      device->stats().d2h_bytes);
          kernel_busy += device->stats().kernel_seconds;
          device_elapsed = std::max(device_elapsed, device->Synchronize());
          ++num_devices;
        }
      }
      result.report.pcie_bytes = pcie;
      if (device_elapsed > 0 && num_devices > 0) {
        result.report.gpu_utilization = std::min(
            1.0,
            kernel_busy / (device_elapsed * static_cast<double>(num_devices)));
      }
      metrics->GetGauge("distme.gpu.pcie_bytes")
          ->Set(static_cast<int64_t>(pcie));
      metrics->GetGauge("distme.gpu.utilization_permille")
          ->Set(static_cast<int64_t>(result.report.gpu_utilization * 1000.0));
      if (flight != nullptr) {
        // Overlap gauges from the reconstructed device timelines. The ring
        // may hold earlier runs (and the device virtual clock spans them),
        // so cut to events recorded during this run by sequence number.
        const std::vector<obs::FlightEvent> all_events = flight->Snapshot();
        std::vector<obs::FlightEvent> run_events;
        run_events.reserve(all_events.size());
        for (const obs::FlightEvent& e : all_events) {
          if (e.seq > seq_before_run) run_events.push_back(e);
        }
        const obs::GpuTimelineAnalysis gpu_analysis =
            obs::AnalyzeGpuTimeline(run_events, config_.hw.pcie_bandwidth);
        const obs::OverlapReport& run = gpu_analysis.run;
        metrics->GetGauge("distme.gpu.window_us")->Set(run.window_us());
        metrics->GetGauge("distme.gpu.h2d_busy_us")->Set(run.h2d_busy_us);
        metrics->GetGauge("distme.gpu.d2h_busy_us")->Set(run.d2h_busy_us);
        metrics->GetGauge("distme.gpu.kernel_busy_us")
            ->Set(run.kernel_busy_us);
        metrics->GetGauge("distme.gpu.overlapped_us")->Set(run.overlapped_us);
        metrics->GetGauge("distme.gpu.bubble_us")->Set(run.bubble_us);
        metrics->GetGauge("distme.gpu.overlap_permille")
            ->Set(static_cast<int64_t>(run.overlap_ratio() * 1000.0));
        metrics->GetGauge("distme.gpu.effective_pcie_bytes_per_sec")
            ->Set(static_cast<int64_t>(run.effective_pcie_bytes_per_sec()));
        metrics->GetGauge("distme.gpu.occupancy_high_water_bytes")
            ->Set(gpu_analysis.occupancy_high_water_bytes);
      }
    }
    if (flight != nullptr) {
      flight->Record(obs::FlightEventType::kRunFinish, /*node=*/-1,
                     /*slot=*/-1, static_cast<int64_t>(tasks.size()));
    }
    result.output = std::move(output);
    return result;
  }

 private:
  // Block-level GPU multiply: per-voxel H2D copies, one kernel, no reuse.
  // Wall time spent here accumulates into *gpu_seconds (the task's
  // gpu_wait blocked-time edge).
  Status RunBlockKernel(int node, int64_t task_id, const Block& a_blk,
                        const Block& b_blk, DenseMatrix* acc,
                        double* gpu_seconds) {
    Stopwatch gpu_clock;
    Status st = [&]() -> Status {
      gpu::Device* device = DeviceFor(node, task_id);
      const gpu::StreamId stream = device->CreateStream();
      DISTME_RETURN_NOT_OK(device->EnqueueH2D(stream, a_blk.SizeBytes()));
      DISTME_RETURN_NOT_OK(device->EnqueueH2D(stream, b_blk.SizeBytes()));
      const bool sparse = a_blk.IsSparse() || b_blk.IsSparse();
      const int64_t flops =
          blas::MultiplyFlops(a_blk.rows(), a_blk.cols(), b_blk.cols());
      Status kernel_status = Status::OK();
      DISTME_RETURN_NOT_OK(device->EnqueueKernel(
          stream, flops,
          [&]() {
            kernel_status = blas::MultiplyAccumulate(a_blk, b_blk, acc);
          },
          sparse));
      DISTME_RETURN_NOT_OK(kernel_status);
      return device->EnqueueD2H(stream, acc->SizeBytes());
    }();
    *gpu_seconds += gpu_clock.ElapsedSeconds();
    return st;
  }

  ClusterConfig config_;
  // devices_[node][device_on_node]
  std::vector<std::vector<std::unique_ptr<gpu::Device>>> devices_;
};

RealExecutor::RealExecutor(ClusterConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

RealExecutor::~RealExecutor() = default;

Result<RealRunResult> RealExecutor::Run(const DistributedMatrix& a,
                                        const DistributedMatrix& b,
                                        const mm::Method& method,
                                        const RealOptions& options) {
  return impl_->Run(a, b, method, options);
}

}  // namespace distme::engine
