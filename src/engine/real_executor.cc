#include "engine/real_executor.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "blas/block_ops.h"
#include "cluster/memory_tracker.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "gpu/device.h"
#include "gpumm/streaming.h"
#include "matrix/serialize.h"
#include "obs/gpu_timeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme::engine {

namespace {

// A fetched input block plus whether it crossed the network.
struct FetchedBlock {
  Block block;
  bool remote = false;
};

// Local cache of a task's inputs, also a gpumm::BlockSource.
class TaskInputs : public gpumm::BlockSource {
 public:
  Result<Block> GetA(int64_t i, int64_t k) override {
    auto it = a_.find({i, k});
    if (it == a_.end()) return Status::KeyError("A block not prefetched");
    return it->second;
  }
  Result<Block> GetB(int64_t k, int64_t j) override {
    auto it = b_.find({k, j});
    if (it == b_.end()) return Status::KeyError("B block not prefetched");
    return it->second;
  }

  std::unordered_map<BlockIndex, Block, BlockIndexHash> a_;
  std::unordered_map<BlockIndex, Block, BlockIndexHash> b_;
};

// Label for the distme.task.retries{reason} counter. Returns string
// literals so the flight recorder can keep the pointer without copying.
const char* RetryReason(const Status& status, bool injected) {
  if (injected) return "injected_crash";
  switch (status.code()) {
    case StatusCode::kOutOfMemory:
      return "out_of_memory";
    case StatusCode::kTimeout:
      return "timeout";
    default:
      return "error";
  }
}

}  // namespace

class RealExecutor::Impl {
 public:
  explicit Impl(ClusterConfig config) : config_(std::move(config)) {
    if (config_.has_gpu) {
      const int per_node = std::max(1, config_.gpu.devices_per_node);
      devices_.resize(static_cast<size_t>(config_.num_nodes));
      for (int n = 0; n < config_.num_nodes; ++n) {
        for (int d = 0; d < per_node; ++d) {
          devices_[static_cast<size_t>(n)].push_back(
              std::make_unique<gpu::Device>(config_.gpu, config_.hw));
        }
      }
    }
  }

  // Round-robin device assignment for a task on `node`.
  gpu::Device* DeviceFor(int node, int64_t task_id) {
    auto& node_devices = devices_[static_cast<size_t>(node)];
    return node_devices[static_cast<size_t>(
                            task_id % static_cast<int64_t>(
                                          node_devices.size()))]
        .get();
  }

  Result<RealRunResult> Run(const DistributedMatrix& a,
                            const DistributedMatrix& b,
                            const mm::Method& method,
                            const RealOptions& options) {
    mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
    DISTME_RETURN_NOT_OK(problem.Validate());
    if (options.mode != ComputeMode::kCpu && !config_.has_gpu) {
      return Status::Invalid("GPU mode requested on a GPU-less cluster");
    }

    ComputeMode mode = options.mode;
    if (mode == ComputeMode::kGpuStreaming && !method.SupportsGpuStreaming()) {
      mode = ComputeMode::kGpuBlock;
    }

    // Observability: all per-run accounting lives in a metrics registry —
    // either the caller's (typically session-owned, spanning many runs) or a
    // private one. Counters are monotonic, so this run's contribution is the
    // delta from the values captured here.
    obs::MetricsRegistry run_metrics;
    obs::MetricsRegistry* metrics =
        options.metrics != nullptr ? options.metrics : &run_metrics;
    obs::Tracer* tracer = options.tracer;
    obs::FlightRecorder* flight = options.flight;

    obs::Counter* repartition_bytes =
        metrics->GetCounter("distme.shuffle.repartition_bytes");
    obs::Counter* aggregation_bytes =
        metrics->GetCounter("distme.shuffle.aggregation_bytes");
    obs::Counter* remote_fetches =
        metrics->GetCounter("distme.shuffle.remote_fetches");
    obs::Counter* serialize_roundtrips =
        metrics->GetCounter("distme.shuffle.serialize_roundtrips");
    obs::Counter* task_attempts = metrics->GetCounter("distme.task.attempts");
    obs::Counter* fetch_nanos =
        metrics->GetCounter("distme.step.repartition_nanos");
    obs::Counter* compute_nanos =
        metrics->GetCounter("distme.step.multiply_nanos");
    obs::Counter* agg_nanos =
        metrics->GetCounter("distme.step.aggregation_nanos");
    obs::Histogram* task_seconds =
        metrics->GetHistogram("distme.task.seconds");
    obs::Gauge* peak_memory =
        metrics->GetGauge("distme.task.peak_memory_bytes");
    obs::Gauge* used_memory =
        metrics->GetGauge("distme.memory.task_used_bytes");
    obs::Counter* oom_rejections =
        metrics->GetCounter("distme.memory.oom_rejections");

    // One consistent cut over the whole registry (a single lock acquisition)
    // rather than per-instrument reads: when two Sessions share a process,
    // interleaved reads would attribute another run's traffic to this one.
    const obs::MetricsSnapshot base = metrics->Snapshot();
    const int64_t base_repartition_bytes =
        base.TotalValue("distme.shuffle.repartition_bytes");
    const int64_t base_aggregation_bytes =
        base.TotalValue("distme.shuffle.aggregation_bytes");
    const int64_t base_fetch_nanos =
        base.TotalValue("distme.step.repartition_nanos");
    const int64_t base_compute_nanos =
        base.TotalValue("distme.step.multiply_nanos");
    const int64_t base_agg_nanos =
        base.TotalValue("distme.step.aggregation_nanos");
    const int64_t base_retries = base.TotalValue("distme.task.retries");
    obs::CommMatrixSnapshot comm_base;
    if (options.comm != nullptr) comm_base = options.comm->Snapshot();
    // Gauges describe the current run; the peak resets at each run start.
    peak_memory->Set(0);

    const int driver_pid = config_.num_nodes;  // trace track for the driver
    if (tracer != nullptr && tracer->enabled()) {
      for (int n = 0; n < config_.num_nodes; ++n) {
        tracer->SetProcessName(n, "node" + std::to_string(n));
      }
      tracer->SetProcessName(driver_pid, "driver");
    }

    // Materialize the plan (the scheduler decision: task order + placement).
    std::vector<mm::LocalTask> tasks;
    {
      obs::Tracer::ScopedTrack track(driver_pid, 0);
      obs::TraceSpan plan_span(tracer, "sched.plan", "sched");
      DISTME_RETURN_NOT_OK(method.ForEachTask(
          problem, config_, [&tasks](const mm::LocalTask& t) {
            tasks.push_back(t);
            return Status::OK();
          }));
      if (options.lpt_scheduling) {
        std::stable_sort(tasks.begin(), tasks.end(),
                         [](const mm::LocalTask& l, const mm::LocalTask& r) {
                           return l.voxels.size() > r.voxels.size();
                         });
      }
      plan_span.AddArg("method", std::string(method.name()));
      plan_span.AddArg("tasks", static_cast<int64_t>(tasks.size()));
      plan_span.AddArg("lpt", static_cast<int64_t>(options.lpt_scheduling));
    }
    // Attach (or detach) the run's recorder to every device before any task
    // touches one: schema-3 interval events carry the device's (node,
    // ordinal) identity. `seq_before_run` lets the end-of-run overlap
    // analysis cut the ring to exactly this run's events.
    uint64_t seq_before_run = 0;
    if (config_.has_gpu) {
      for (size_t n = 0; n < devices_.size(); ++n) {
        for (size_t d = 0; d < devices_[n].size(); ++d) {
          devices_[n][d]->AttachFlight(flight, static_cast<int32_t>(n),
                                       static_cast<int32_t>(d));
        }
      }
    }
    if (flight != nullptr) {
      seq_before_run = flight->TotalRecorded();
      flight->Record(obs::FlightEventType::kRunStart, /*node=*/-1,
                     /*slot=*/-1, static_cast<int64_t>(tasks.size()));
    }

    const bool needs_agg = method.NeedsAggregation(problem);
    auto output = std::make_shared<DistributedMatrix>(
        BlockedShape{a.shape().rows, b.shape().cols, a.shape().block_size},
        config_.num_nodes, Partitioner::Hash(config_.num_nodes));

    // Aggregation state: partial C blocks keyed by (i, j), reduced
    // incrementally under a sharded lock.
    constexpr size_t kShards = 64;
    std::array<std::mutex, kShards> agg_mutexes;
    std::array<std::unordered_map<BlockIndex, Block, BlockIndexHash>, kShards>
        agg_partials;

    std::atomic<int64_t> next_task{0};
    std::mutex failure_mutex;
    Status failure = Status::OK();

    Stopwatch total_clock;

    auto record_failure = [&](Status st) {
      std::lock_guard<std::mutex> lock(failure_mutex);
      if (failure.ok()) failure = std::move(st);
    };

    auto fetch = [&](const DistributedMatrix& m, BlockIndex idx, int node,
                     MemoryTracker* tracker) -> Result<Block> {
      bool crossed = false;
      obs::TraceSpan span(tracer, "shuffle.fetch", "shuffle");
      DISTME_ASSIGN_OR_RETURN(Block blk, m.Get(idx, node, &crossed));
      if (crossed) {
        const int64_t wire = SerializedBlockBytes(blk);
        repartition_bytes->Add(wire);
        remote_fetches->Add(1);
        if (options.comm != nullptr) {
          options.comm->Record(obs::CommStage::kRepartition, m.NodeOf(idx),
                               node, wire);
        }
        if (flight != nullptr) {
          // node = destination (the fetching task), slot = source node.
          flight->Record(obs::FlightEventType::kBlockFetch, node,
                         m.NodeOf(idx), wire);
        }
        span.AddArg("bytes", wire);
        if (options.serialize_transfers) {
          // Round-trip through the wire format, as a real shuffle would.
          obs::TraceSpan ser_span(tracer, "shuffle.serialize", "shuffle");
          serialize_roundtrips->Add(1);
          DISTME_ASSIGN_OR_RETURN(blk, DeserializeBlock(SerializeBlock(blk)));
        }
      } else {
        span.Cancel();  // node-local read, not a shuffle transfer
      }
      if (tracker != nullptr) {
        DISTME_RETURN_NOT_OK(tracker->Allocate(blk.SizeBytes()));
      }
      return blk;
    };

    auto emit = [&](BlockIndex idx, Block block, int producer_node) -> Status {
      if (!needs_agg) {
        // Final block — write in place (output writes are not part of the
        // shuffle cost, matching Table 2's zero aggregation for BMM).
        if (block.nnz() == 0) return Status::OK();
        return output->Put(idx, std::move(block));
      }
      const int reducer_node = output->NodeOf(idx);
      if (reducer_node != producer_node) {
        const int64_t wire = SerializedBlockBytes(block);
        aggregation_bytes->Add(wire);
        if (options.comm != nullptr) {
          options.comm->Record(obs::CommStage::kAggregation, producer_node,
                               reducer_node, wire);
        }
        if (flight != nullptr) {
          // node = producer, slot = reducer node receiving the partial.
          flight->Record(obs::FlightEventType::kBlockEmit, producer_node,
                         reducer_node, wire);
        }
        obs::TraceSpan span(tracer, "shuffle.aggregate", "shuffle");
        span.AddArg("bytes", wire);
        span.AddArg("reducer", static_cast<int64_t>(reducer_node));
        if (options.serialize_transfers) {
          serialize_roundtrips->Add(1);
          DISTME_ASSIGN_OR_RETURN(block,
                                  DeserializeBlock(SerializeBlock(block)));
        }
      }
      const size_t shard = BlockIndexHash()(idx) % kShards;
      std::lock_guard<std::mutex> lock(agg_mutexes[shard]);
      auto it = agg_partials[shard].find(idx);
      if (it == agg_partials[shard].end()) {
        agg_partials[shard].emplace(idx, std::move(block));
        return Status::OK();
      }
      DISTME_ASSIGN_OR_RETURN(Block summed,
                              blas::AddBlocks(it->second, block));
      it->second = std::move(summed);
      return Status::OK();
    };

    auto run_task = [&](const mm::LocalTask& task, int slot,
                        bool crash_before_commit) -> Status {
      const int node = static_cast<int>(task.id % config_.num_nodes);
      MemoryTracker tracker("task " + std::to_string(task.id),
                            config_.task_memory_bytes);
      tracker.AttachMetrics(used_memory, peak_memory, oom_rejections);
      tracker.AttachFlight(flight, node, slot);
      MemoryTracker* tracker_ptr =
          options.enforce_task_memory ? &tracker : nullptr;

      Stopwatch fetch_clock;
      obs::TraceSpan fetch_span(tracer, "task.fetch", "task");
      TaskInputs inputs;
      // Prefetch the task's input blocks. Box tasks fetch each distinct
      // block once (communication sharing); strided tasks fetch per voxel.
      Status fetch_status = Status::OK();
      auto need_a = [&](int64_t i, int64_t k) -> Status {
        BlockIndex idx{i, k};
        if (task.inputs_shared && inputs.a_.count(idx)) return Status::OK();
        DISTME_ASSIGN_OR_RETURN(Block blk, fetch(a, idx, node, tracker_ptr));
        inputs.a_[idx] = std::move(blk);
        return Status::OK();
      };
      auto need_b = [&](int64_t k, int64_t j) -> Status {
        BlockIndex idx{k, j};
        if (task.inputs_shared && inputs.b_.count(idx)) return Status::OK();
        DISTME_ASSIGN_OR_RETURN(Block blk, fetch(b, idx, node, tracker_ptr));
        inputs.b_[idx] = std::move(blk);
        return Status::OK();
      };
      task.voxels.ForEach([&](mm::Voxel v) {
        if (!fetch_status.ok()) return;
        Status st = need_a(v.i, v.k);
        if (st.ok()) st = need_b(v.k, v.j);
        if (!st.ok()) fetch_status = std::move(st);
      });
      fetch_span.End();
      const double fetch_seconds = fetch_clock.ElapsedSeconds();
      fetch_nanos->Add(static_cast<int64_t>(fetch_seconds * 1e9));
      if (flight != nullptr) {
        flight->RecordEdge(obs::FlightEdgeKind::kFetchWait, node, slot,
                           task.id,
                           static_cast<int64_t>(fetch_seconds * 1e6));
      }
      DISTME_RETURN_NOT_OK(fetch_status);

      // Outputs are buffered and committed atomically after the task
      // finishes, so a crashed attempt (fault injection) leaves no trace
      // and the retry is safe — the lineage-recovery property of RDDs.
      std::vector<std::pair<BlockIndex, Block>> buffered;
      auto buffer_output = [&buffered](BlockIndex idx, Block block) {
        buffered.emplace_back(idx, std::move(block));
        return Status::OK();
      };

      Stopwatch compute_clock;
      double gpu_seconds = 0;  // time this attempt spent bound on the GPU
      obs::TraceSpan compute_span(tracer, "task.compute", "task");
      if (mode == ComputeMode::kGpuStreaming && task.voxels.is_box()) {
        gpu::Device* device = DeviceFor(node, task.id);
        Stopwatch gpu_clock;
        DISTME_ASSIGN_OR_RETURN(
            gpumm::GpuCuboidResult gpu_result,
            gpumm::RunCuboidOnGpu(task.voxels, a.shape(), b.shape(), &inputs,
                                  device, config_.gpu_task_memory_bytes,
                                  tracer, flight));
        gpu_seconds += gpu_clock.ElapsedSeconds();
        for (auto& [key, dense] : gpu_result.c_blocks) {
          DISTME_RETURN_NOT_OK(buffer_output({key.first, key.second},
                                             Block::Dense(std::move(dense))));
        }
      } else if (task.aggregate_local && task.voxels.is_box()) {
        // Accumulate over the task's k range; emit one block per (i, j).
        const auto& box = task.voxels;
        for (int64_t i = box.i0(); i < box.i1(); ++i) {
          for (int64_t j = box.j0(); j < box.j1(); ++j) {
            DenseMatrix acc(a.shape().BlockRowsAt(i),
                            b.shape().BlockColsAt(j));
            if (tracker_ptr != nullptr) {
              DISTME_RETURN_NOT_OK(tracker_ptr->Allocate(acc.SizeBytes()));
            }
            for (int64_t k = box.k0(); k < box.k1(); ++k) {
              const Block& ab = inputs.a_.at({i, k});
              const Block& bb = inputs.b_.at({k, j});
              if (ab.nnz() == 0 || bb.nnz() == 0) continue;
              if (mode == ComputeMode::kGpuBlock) {
                DISTME_RETURN_NOT_OK(
                    RunBlockKernel(node, task.id, ab, bb, &acc, &gpu_seconds));
              } else {
                DISTME_RETURN_NOT_OK(blas::MultiplyAccumulate(ab, bb, &acc));
              }
            }
            if (acc.CountNonZeros() > 0) {
              DISTME_RETURN_NOT_OK(
                  buffer_output({i, j}, Block::Dense(std::move(acc))));
            }
            if (tracker_ptr != nullptr) {
              tracker_ptr->Free(0);  // acc ownership moved to the shuffle
            }
          }
        }
      } else {
        // Per-voxel products (RMM): one intermediate block per voxel.
        Status voxel_status = Status::OK();
        task.voxels.ForEach([&](mm::Voxel v) {
          if (!voxel_status.ok()) return;
          const Block& ab = inputs.a_.at({v.i, v.k});
          const Block& bb = inputs.b_.at({v.k, v.j});
          if (ab.nnz() == 0 || bb.nnz() == 0) return;
          DenseMatrix acc(a.shape().BlockRowsAt(v.i),
                          b.shape().BlockColsAt(v.j));
          Status st =
              mode == ComputeMode::kGpuBlock
                  ? RunBlockKernel(node, task.id, ab, bb, &acc, &gpu_seconds)
                  : blas::MultiplyAccumulate(ab, bb, &acc);
          if (st.ok() && acc.CountNonZeros() > 0) {
            st = buffer_output({v.i, v.j}, Block::Dense(std::move(acc)));
          }
          if (!st.ok()) voxel_status = std::move(st);
        });
        DISTME_RETURN_NOT_OK(voxel_status);
      }
      compute_span.End();
      compute_nanos->Add(
          static_cast<int64_t>(compute_clock.ElapsedSeconds() * 1e9));
      if (flight != nullptr && gpu_seconds > 0) {
        flight->RecordEdge(obs::FlightEdgeKind::kGpuWait, node, slot, task.id,
                           static_cast<int64_t>(gpu_seconds * 1e6));
      }

      // Commit point: everything before this line is side-effect free.
      if (crash_before_commit) {
        // Injected fault: the attempt dies holding its uncommitted outputs.
        return Status::Internal("injected task crash");
      }
      for (auto& [idx, block] : buffered) {
        DISTME_RETURN_NOT_OK(emit(idx, std::move(block), node));
      }
      return Status::OK();
    };

    // Worker pool: one thread per task slot.
    const int num_workers = static_cast<int>(
        std::min<int64_t>(config_.total_slots(),
                          static_cast<int64_t>(tasks.size())));
    if (tracer != nullptr && tracer->enabled()) {
      // Workers pull tasks for any node, so each (node, slot) track can host
      // spans from any worker; name them all up front.
      for (int n = 0; n < config_.num_nodes; ++n) {
        for (int w = 0; w < std::max(num_workers, 1); ++w) {
          tracer->SetThreadName(n, w, "slot" + std::to_string(w));
        }
      }
    }
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(std::max(num_workers, 1)));
    for (int w = 0; w < std::max(num_workers, 1); ++w) {
      workers.emplace_back([&, w]() {
        while (true) {
          const int64_t t = next_task.fetch_add(1, std::memory_order_relaxed);
          if (t >= static_cast<int64_t>(tasks.size())) break;
          {
            std::lock_guard<std::mutex> lock(failure_mutex);
            if (!failure.ok()) break;
          }
          const mm::LocalTask& task = tasks[static_cast<size_t>(t)];
          const int node = static_cast<int>(task.id % config_.num_nodes);
          // All spans opened under this worker (task body, shuffle
          // transfers, GPU chunks) land on the (node, slot) track.
          obs::Tracer::ScopedTrack track(node, w);
          // Attempt loop with deterministic fault injection: whether an
          // attempt crashes depends only on (task id, attempt number).
          Status st = Status::OK();
          for (int attempt = 0; attempt < options.max_task_attempts;
               ++attempt) {
            bool crash = false;
            if (options.task_failure_rate > 0.0) {
              uint64_t h = static_cast<uint64_t>(task.id) * 0x9e3779b97f4a7c15ULL +
                           static_cast<uint64_t>(attempt) * 0xff51afd7ed558ccdULL;
              h ^= h >> 33;
              h *= 0xc4ceb9fe1a85ec53ULL;
              h ^= h >> 29;
              crash = static_cast<double>(h >> 11) * 0x1.0p-53 <
                      options.task_failure_rate;
            }
            task_attempts->Add(1);
            if (flight != nullptr) {
              flight->Record(obs::FlightEventType::kTaskStart, node, w,
                             task.id, attempt);
            }
            const int wd_token =
                options.watchdog != nullptr
                    ? options.watchdog->TaskStarted(task.id, node, w)
                    : -1;
            Stopwatch attempt_clock;
            obs::TraceSpan attempt_span(tracer, "task.attempt", "task");
            attempt_span.AddArg("task", task.id);
            attempt_span.AddArg("attempt", static_cast<int64_t>(attempt));
            attempt_span.AddArg("voxels", task.voxels.size());
            st = run_task(task, w, crash);
            if (!st.ok()) attempt_span.AddArg("error", st.ToString());
            attempt_span.End();
            const double attempt_seconds = attempt_clock.ElapsedSeconds();
            task_seconds->Observe(attempt_seconds);
            if (options.watchdog != nullptr) {
              options.watchdog->TaskFinished(wd_token);
            }
            if (flight != nullptr) {
              flight->Record(obs::FlightEventType::kTaskFinish, node, w,
                             task.id,
                             static_cast<int64_t>(attempt_seconds * 1e6));
            }
            if (st.ok()) break;
            const char* reason = RetryReason(st, crash);
            if (flight != nullptr) {
              flight->Record(obs::FlightEventType::kTaskRetry, node, w,
                             task.id, attempt, reason);
            }
            DISTME_LOG(Warning) << "task " << task.id << " attempt "
                                << attempt << " failed (" << reason << "): "
                                << st.ToString();
            metrics
                ->GetCounter("distme.task.retries", {{"reason", reason}})
                ->Add(1);
          }
          if (!st.ok()) record_failure(std::move(st));
        }
      });
    }
    for (auto& w : workers) w.join();

    RealRunResult result;
    result.report.method_name = method.name();
    result.report.mode = mode;
    result.report.num_tasks = static_cast<int64_t>(tasks.size());

    if (!failure.ok()) {
      result.report.task_retries =
          metrics->Snapshot().TotalValue("distme.task.retries") - base_retries;
      if (flight != nullptr) {
        flight->Record(obs::FlightEventType::kRunFinish, /*node=*/-1,
                       /*slot=*/-1, static_cast<int64_t>(tasks.size()),
                       /*b=*/1, "run failed");
        // Post-mortem: the run is about to surface an error Status; leave
        // the event trail on disk before the caller decides what to do.
        if (!options.flight_dump_path.empty()) {
          const Status dumped = flight->DumpToFile(options.flight_dump_path);
          if (dumped.ok()) {
            DISTME_LOG(Info) << "run failed; flight recorder dumped to "
                             << options.flight_dump_path;
          } else {
            DISTME_LOG(Warning) << "flight-recorder dump failed: "
                                << dumped.ToString();
          }
        }
      }
      result.report.outcome = failure;
      result.output = std::move(output);
      return result;
    }

    // Aggregation finalize: move reduced partials into the output matrix.
    Stopwatch agg_clock;
    if (flight != nullptr && needs_agg) {
      flight->Record(obs::FlightEventType::kStageBegin, /*node=*/-1,
                     /*slot=*/-1, 0, 0, "aggregation");
    }
    {
      obs::Tracer::ScopedTrack track(driver_pid, 0);
      obs::TraceSpan agg_span(tracer, "aggregate.finalize", "shuffle");
      if (needs_agg) {
        for (size_t shard = 0; shard < kShards; ++shard) {
          for (auto& [idx, block] : agg_partials[shard]) {
            if (block.nnz() == 0) continue;
            DISTME_RETURN_NOT_OK(output->Put(idx, std::move(block)));
          }
          agg_partials[shard].clear();
        }
      } else {
        agg_span.Cancel();
      }
    }
    if (flight != nullptr && needs_agg) {
      flight->Record(obs::FlightEventType::kStageEnd, /*node=*/-1,
                     /*slot=*/-1, 0, 0, "aggregation");
    }
    agg_nanos->Add(static_cast<int64_t>(agg_clock.ElapsedSeconds() * 1e9));

    // Per-link summary gauges, derived from this run's comm-matrix delta.
    if (options.comm != nullptr) {
      const obs::CommMatrixSnapshot comm_delta =
          options.comm->Snapshot().Delta(comm_base);
      metrics->GetGauge("distme.comm.max_link_bytes")
          ->Set(comm_delta.MaxLinkBytes());
      metrics->GetGauge("distme.comm.skew_permille")
          ->Set(static_cast<int64_t>(comm_delta.SkewRatio() * 1000.0));
      metrics->GetGauge("distme.comm.active_links")
          ->Set(comm_delta.ActiveLinks());
    }

    // The report's timings and byte counters are views over the registry —
    // the registry is the source of truth, not hand-threaded accumulators.
    // As with `base`, one snapshot gives a consistent cut for the deltas.
    const obs::MetricsSnapshot final_cut = metrics->Snapshot();
    result.report.outcome = Status::OK();
    result.report.elapsed_seconds = total_clock.ElapsedSeconds();
    result.report.task_retries =
        final_cut.TotalValue("distme.task.retries") - base_retries;
    result.report.steps.repartition_seconds =
        static_cast<double>(
            final_cut.TotalValue("distme.step.repartition_nanos") -
            base_fetch_nanos) *
        1e-9;
    result.report.steps.multiply_seconds =
        static_cast<double>(final_cut.TotalValue("distme.step.multiply_nanos") -
                            base_compute_nanos) *
        1e-9;
    result.report.steps.aggregation_seconds =
        static_cast<double>(
            final_cut.TotalValue("distme.step.aggregation_nanos") -
            base_agg_nanos) *
        1e-9;
    result.report.repartition_bytes = static_cast<double>(
        final_cut.TotalValue("distme.shuffle.repartition_bytes") -
        base_repartition_bytes);
    result.report.aggregation_bytes = static_cast<double>(
        final_cut.TotalValue("distme.shuffle.aggregation_bytes") -
        base_aggregation_bytes);
    result.report.peak_task_memory_bytes = static_cast<double>(
        final_cut.TotalValue("distme.task.peak_memory_bytes"));
    if (config_.has_gpu && mode != ComputeMode::kCpu) {
      double pcie = 0;
      double kernel_busy = 0;
      double device_elapsed = 0;
      int num_devices = 0;
      for (auto& node_devices : devices_) {
        for (auto& device : node_devices) {
          pcie += static_cast<double>(device->stats().h2d_bytes +
                                      device->stats().d2h_bytes);
          kernel_busy += device->stats().kernel_seconds;
          device_elapsed = std::max(device_elapsed, device->Synchronize());
          ++num_devices;
        }
      }
      result.report.pcie_bytes = pcie;
      if (device_elapsed > 0 && num_devices > 0) {
        result.report.gpu_utilization = std::min(
            1.0,
            kernel_busy / (device_elapsed * static_cast<double>(num_devices)));
      }
      metrics->GetGauge("distme.gpu.pcie_bytes")
          ->Set(static_cast<int64_t>(pcie));
      metrics->GetGauge("distme.gpu.utilization_permille")
          ->Set(static_cast<int64_t>(result.report.gpu_utilization * 1000.0));
      if (flight != nullptr) {
        // Overlap gauges from the reconstructed device timelines. The ring
        // may hold earlier runs (and the device virtual clock spans them),
        // so cut to events recorded during this run by sequence number.
        const std::vector<obs::FlightEvent> all_events = flight->Snapshot();
        std::vector<obs::FlightEvent> run_events;
        run_events.reserve(all_events.size());
        for (const obs::FlightEvent& e : all_events) {
          if (e.seq > seq_before_run) run_events.push_back(e);
        }
        const obs::GpuTimelineAnalysis gpu_analysis =
            obs::AnalyzeGpuTimeline(run_events, config_.hw.pcie_bandwidth);
        const obs::OverlapReport& run = gpu_analysis.run;
        metrics->GetGauge("distme.gpu.window_us")->Set(run.window_us());
        metrics->GetGauge("distme.gpu.h2d_busy_us")->Set(run.h2d_busy_us);
        metrics->GetGauge("distme.gpu.d2h_busy_us")->Set(run.d2h_busy_us);
        metrics->GetGauge("distme.gpu.kernel_busy_us")
            ->Set(run.kernel_busy_us);
        metrics->GetGauge("distme.gpu.overlapped_us")->Set(run.overlapped_us);
        metrics->GetGauge("distme.gpu.bubble_us")->Set(run.bubble_us);
        metrics->GetGauge("distme.gpu.overlap_permille")
            ->Set(static_cast<int64_t>(run.overlap_ratio() * 1000.0));
        metrics->GetGauge("distme.gpu.effective_pcie_bytes_per_sec")
            ->Set(static_cast<int64_t>(run.effective_pcie_bytes_per_sec()));
        metrics->GetGauge("distme.gpu.occupancy_high_water_bytes")
            ->Set(gpu_analysis.occupancy_high_water_bytes);
      }
    }
    if (flight != nullptr) {
      flight->Record(obs::FlightEventType::kRunFinish, /*node=*/-1,
                     /*slot=*/-1, static_cast<int64_t>(tasks.size()));
    }
    result.output = std::move(output);
    return result;
  }

 private:
  // Block-level GPU multiply: per-voxel H2D copies, one kernel, no reuse.
  // Wall time spent here accumulates into *gpu_seconds (the task's
  // gpu_wait blocked-time edge).
  Status RunBlockKernel(int node, int64_t task_id, const Block& a_blk,
                        const Block& b_blk, DenseMatrix* acc,
                        double* gpu_seconds) {
    Stopwatch gpu_clock;
    Status st = [&]() -> Status {
      gpu::Device* device = DeviceFor(node, task_id);
      const gpu::StreamId stream = device->CreateStream();
      DISTME_RETURN_NOT_OK(device->EnqueueH2D(stream, a_blk.SizeBytes()));
      DISTME_RETURN_NOT_OK(device->EnqueueH2D(stream, b_blk.SizeBytes()));
      const bool sparse = a_blk.IsSparse() || b_blk.IsSparse();
      const int64_t flops =
          blas::MultiplyFlops(a_blk.rows(), a_blk.cols(), b_blk.cols());
      Status kernel_status = Status::OK();
      DISTME_RETURN_NOT_OK(device->EnqueueKernel(
          stream, flops,
          [&]() {
            kernel_status = blas::MultiplyAccumulate(a_blk, b_blk, acc);
          },
          sparse));
      DISTME_RETURN_NOT_OK(kernel_status);
      return device->EnqueueD2H(stream, acc->SizeBytes());
    }();
    *gpu_seconds += gpu_clock.ElapsedSeconds();
    return st;
  }

  ClusterConfig config_;
  // devices_[node][device_on_node]
  std::vector<std::vector<std::unique_ptr<gpu::Device>>> devices_;
};

RealExecutor::RealExecutor(ClusterConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

RealExecutor::~RealExecutor() = default;

Result<RealRunResult> RealExecutor::Run(const DistributedMatrix& a,
                                        const DistributedMatrix& b,
                                        const mm::Method& method,
                                        const RealOptions& options) {
  return impl_->Run(a, b, method, options);
}

}  // namespace distme::engine
