// Matrix partitioning schemes (Section 2.1): Row, Column, Hash, and Grid.
// A partitioner maps a block index to a partition; partitions are assigned
// round-robin to cluster nodes.

#pragma once

#include <cstdint>
#include <string>

#include "matrix/block.h"

namespace distme::engine {

enum class PartitionScheme { kRow, kColumn, kHash, kGrid };

const char* PartitionSchemeName(PartitionScheme scheme);

/// \brief Maps block indices to partitions.
class Partitioner {
 public:
  /// \brief Row scheme: blocks of block-row i → partition i mod n.
  static Partitioner Row(int64_t num_partitions);
  /// \brief Column scheme: blocks of block-col j → partition j mod n.
  static Partitioner Column(int64_t num_partitions);
  /// \brief Hash scheme: uniform spread via a 64-bit mix of (i, j).
  static Partitioner Hash(int64_t num_partitions);
  /// \brief Grid scheme: α×β block tiles → partitions in row-major order.
  static Partitioner Grid(int64_t num_partitions, int64_t alpha,
                          int64_t beta);

  PartitionScheme scheme() const { return scheme_; }
  int64_t num_partitions() const { return num_partitions_; }

  /// \brief Partition owning the block at `idx`.
  int64_t PartitionOf(BlockIndex idx) const;

  bool operator==(const Partitioner& o) const {
    return scheme_ == o.scheme_ && num_partitions_ == o.num_partitions_ &&
           alpha_ == o.alpha_ && beta_ == o.beta_;
  }

  std::string ToString() const;

 private:
  Partitioner(PartitionScheme scheme, int64_t n, int64_t alpha, int64_t beta)
      : scheme_(scheme), num_partitions_(n), alpha_(alpha), beta_(beta) {}

  PartitionScheme scheme_;
  int64_t num_partitions_;
  int64_t alpha_;  // grid tile height in blocks
  int64_t beta_;   // grid tile width in blocks
};

}  // namespace distme::engine
