#include "engine/report.h"

#include "common/units.h"
#include "obs/export.h"

namespace distme::engine {

const char* ComputeModeName(ComputeMode mode) {
  switch (mode) {
    case ComputeMode::kCpu:
      return "CPU";
    case ComputeMode::kGpuStreaming:
      return "GPU-streaming";
    case ComputeMode::kGpuBlock:
      return "GPU-block";
  }
  return "?";
}

std::string MMReport::OutcomeLabel() const {
  if (outcome.ok()) return FormatSeconds(elapsed_seconds);
  switch (outcome.code()) {
    case StatusCode::kOutOfMemory:
      return "O.O.M.";
    case StatusCode::kTimeout:
      return "T.O.";
    case StatusCode::kExceedsDiskCapacity:
      return "E.D.C.";
    default:
      return outcome.ToString();
  }
}

std::string RunReportJson(const MMReport& report,
                          const obs::MetricsSnapshot* metrics) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("outcome");
  w.Value(report.outcome.ok() ? "ok" : report.OutcomeLabel());
  if (!report.outcome.ok()) {
    w.Key("error");
    w.Value(report.outcome.ToString());
  }
  w.Key("method");
  w.Value(report.method_name);
  w.Key("mode");
  w.Value(ComputeModeName(report.mode));
  w.Key("elapsed_seconds");
  w.Value(report.elapsed_seconds);
  w.Key("steps");
  w.BeginObject();
  w.Key("repartition_seconds");
  w.Value(report.steps.repartition_seconds);
  w.Key("multiply_seconds");
  w.Value(report.steps.multiply_seconds);
  w.Key("aggregation_seconds");
  w.Value(report.steps.aggregation_seconds);
  w.EndObject();
  w.Key("repartition_bytes");
  w.Value(report.repartition_bytes);
  w.Key("aggregation_bytes");
  w.Value(report.aggregation_bytes);
  w.Key("total_shuffle_bytes");
  w.Value(report.total_shuffle_bytes());
  w.Key("num_tasks");
  w.Value(report.num_tasks);
  w.Key("task_retries");
  w.Value(report.task_retries);
  if (metrics != nullptr) {
    // Labeled retry breakdown, e.g. {"injected_crash": 7}.
    w.Key("task_retries_by_reason");
    w.BeginObject();
    for (const obs::MetricPoint& point : metrics->points) {
      if (point.name != "distme.task.retries") continue;
      for (const auto& [key, value] : point.labels) {
        if (key == "reason") {
          w.Key(value);
          w.Value(point.value);
        }
      }
    }
    w.EndObject();
  }
  w.Key("peak_task_memory_bytes");
  w.Value(report.peak_task_memory_bytes);
  w.Key("total_flops");
  w.Value(report.total_flops);
  w.Key("pcie_bytes");
  w.Value(report.pcie_bytes);
  w.Key("gpu_utilization");
  w.Value(report.gpu_utilization);
  if (report.pipeline.prefetch_depth > 0) {
    w.Key("pipeline");
    w.BeginObject();
    w.Key("prefetch_depth");
    w.Value(report.pipeline.prefetch_depth);
    w.Key("prefetch_hits");
    w.Value(report.pipeline.prefetch_hits);
    w.Key("prefetch_stalls");
    w.Value(report.pipeline.prefetch_stalls);
    w.Key("stall_seconds");
    w.Value(report.pipeline.stall_seconds);
    w.Key("backpressure_waits");
    w.Value(report.pipeline.backpressure_waits);
    w.Key("queue_high_water");
    w.Value(report.pipeline.queue_high_water);
    w.EndObject();
  }
  if (metrics != nullptr) {
    w.Key("metrics");
    obs::AppendMetricsJson(*metrics, &w);
  }
  w.EndObject();
  return w.str();
}

}  // namespace distme::engine
