#include "engine/report.h"

#include "common/units.h"

namespace distme::engine {

const char* ComputeModeName(ComputeMode mode) {
  switch (mode) {
    case ComputeMode::kCpu:
      return "CPU";
    case ComputeMode::kGpuStreaming:
      return "GPU-streaming";
    case ComputeMode::kGpuBlock:
      return "GPU-block";
  }
  return "?";
}

std::string MMReport::OutcomeLabel() const {
  if (outcome.ok()) return FormatSeconds(elapsed_seconds);
  switch (outcome.code()) {
    case StatusCode::kOutOfMemory:
      return "O.O.M.";
    case StatusCode::kTimeout:
      return "T.O.";
    case StatusCode::kExceedsDiskCapacity:
      return "E.D.C.";
    default:
      return outcome.ToString();
  }
}

}  // namespace distme::engine
