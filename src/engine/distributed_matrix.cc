#include "engine/distributed_matrix.h"

namespace distme::engine {

Status DistributedMatrix::Put(BlockIndex idx, Block block) {
  if (idx.i < 0 || idx.i >= shape_.block_rows() || idx.j < 0 ||
      idx.j >= shape_.block_cols()) {
    return Status::Invalid("block index out of range");
  }
  const int node = NodeOf(idx);
  std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(node)]);
  stores_[static_cast<size_t>(node)][idx] = std::move(block);
  return Status::OK();
}

Result<Block> DistributedMatrix::Get(BlockIndex idx, int requesting_node,
                                     bool* crossed_network) const {
  if (idx.i < 0 || idx.i >= shape_.block_rows() || idx.j < 0 ||
      idx.j >= shape_.block_cols()) {
    return Status::Invalid("block index out of range");
  }
  const int node = NodeOf(idx);
  if (crossed_network != nullptr) {
    *crossed_network = (node != requesting_node);
  }
  std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(node)]);
  const auto& store = stores_[static_cast<size_t>(node)];
  auto it = store.find(idx);
  if (it != store.end()) return it->second;
  return Block::Zero(shape_.BlockRowsAt(idx.i), shape_.BlockColsAt(idx.j));
}

bool DistributedMatrix::Has(BlockIndex idx) const {
  const int node = NodeOf(idx);
  std::lock_guard<std::mutex> lock(mutexes_[static_cast<size_t>(node)]);
  return stores_[static_cast<size_t>(node)].count(idx) > 0;
}

int64_t DistributedMatrix::num_blocks() const {
  int64_t total = 0;
  for (size_t n = 0; n < stores_.size(); ++n) {
    std::lock_guard<std::mutex> lock(mutexes_[n]);
    total += static_cast<int64_t>(stores_[n].size());
  }
  return total;
}

int64_t DistributedMatrix::SizeBytes() const {
  int64_t total = 0;
  for (size_t n = 0; n < stores_.size(); ++n) {
    std::lock_guard<std::mutex> lock(mutexes_[n]);
    for (const auto& [idx, block] : stores_[n]) total += block.SizeBytes();
  }
  return total;
}

void DistributedMatrix::ForEachBlock(
    const std::function<void(int, BlockIndex, const Block&)>& fn) const {
  for (size_t n = 0; n < stores_.size(); ++n) {
    std::lock_guard<std::mutex> lock(mutexes_[n]);
    for (const auto& [idx, block] : stores_[n]) {
      fn(static_cast<int>(n), idx, block);
    }
  }
}

BlockGrid DistributedMatrix::Collect() const {
  BlockGrid grid(shape_);
  for (size_t n = 0; n < stores_.size(); ++n) {
    std::lock_guard<std::mutex> lock(mutexes_[n]);
    for (const auto& [idx, block] : stores_[n]) {
      DISTME_CHECK_OK(grid.Put(idx, block));
    }
  }
  return grid;
}

mm::MatrixDescriptor DistributedMatrix::Descriptor() const {
  mm::MatrixDescriptor d;
  d.shape = shape_;
  double nnz = 0;
  int64_t dense_blocks = 0;
  int64_t blocks = 0;
  for (size_t n = 0; n < stores_.size(); ++n) {
    std::lock_guard<std::mutex> lock(mutexes_[n]);
    for (const auto& [idx, block] : stores_[n]) {
      nnz += static_cast<double>(block.nnz());
      dense_blocks += block.IsDense() ? 1 : 0;
      ++blocks;
    }
  }
  const double total = d.num_elements();
  d.sparsity = total == 0.0 ? 0.0 : nnz / total;
  d.stored_dense = dense_blocks * 2 >= blocks;
  return d;
}

DistributedMatrix DistributedMatrix::FromGrid(const BlockGrid& grid,
                                              int num_nodes,
                                              Partitioner partitioner) {
  DistributedMatrix m(grid.shape(), num_nodes, partitioner);
  for (const auto& [idx, block] : grid.blocks()) {
    DISTME_CHECK_OK(m.Put(idx, block));
  }
  return m;
}

DistributedMatrix DistributedMatrix::FromGridHashed(const BlockGrid& grid,
                                                    int num_nodes) {
  return FromGrid(grid, num_nodes, Partitioner::Hash(num_nodes));
}

}  // namespace distme::engine
