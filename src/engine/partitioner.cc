#include "engine/partitioner.h"

namespace distme::engine {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kRow:
      return "Row";
    case PartitionScheme::kColumn:
      return "Column";
    case PartitionScheme::kHash:
      return "Hash";
    case PartitionScheme::kGrid:
      return "Grid";
  }
  return "?";
}

Partitioner Partitioner::Row(int64_t num_partitions) {
  return Partitioner(PartitionScheme::kRow, num_partitions, 0, 0);
}

Partitioner Partitioner::Column(int64_t num_partitions) {
  return Partitioner(PartitionScheme::kColumn, num_partitions, 0, 0);
}

Partitioner Partitioner::Hash(int64_t num_partitions) {
  return Partitioner(PartitionScheme::kHash, num_partitions, 0, 0);
}

Partitioner Partitioner::Grid(int64_t num_partitions, int64_t alpha,
                              int64_t beta) {
  return Partitioner(PartitionScheme::kGrid, num_partitions,
                     alpha < 1 ? 1 : alpha, beta < 1 ? 1 : beta);
}

int64_t Partitioner::PartitionOf(BlockIndex idx) const {
  switch (scheme_) {
    case PartitionScheme::kRow:
      return idx.i % num_partitions_;
    case PartitionScheme::kColumn:
      return idx.j % num_partitions_;
    case PartitionScheme::kHash:
      return static_cast<int64_t>(BlockIndexHash()(idx) %
                                  static_cast<uint64_t>(num_partitions_));
    case PartitionScheme::kGrid: {
      const int64_t tile_i = idx.i / alpha_;
      const int64_t tile_j = idx.j / beta_;
      // Row-major tile order folded onto the partition count.
      return (tile_i * 1315423911 + tile_j) % num_partitions_;
    }
  }
  return 0;
}

std::string Partitioner::ToString() const {
  std::string s = PartitionSchemeName(scheme_);
  s += "(" + std::to_string(num_partitions_);
  if (scheme_ == PartitionScheme::kGrid) {
    s += "," + std::to_string(alpha_) + "x" + std::to_string(beta_);
  }
  s += ")";
  return s;
}

}  // namespace distme::engine
