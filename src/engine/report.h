// MMReport: what executing one distributed matrix multiplication produced —
// outcome, per-step timing, and communication counters. Shared by the
// simulated and real executors.

#pragma once

#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace distme::engine {

/// \brief How the computation device was chosen.
enum class ComputeMode {
  kCpu,          ///< CPU kernels only (the "(C)" variants in the paper)
  kGpuStreaming, ///< cuboid-level GPU streaming (DistME(G), Section 4)
  kGpuBlock,     ///< block-level GPU without streaming (RMM / modified
                 ///< SystemML(G) / MatFast(G))
};

const char* ComputeModeName(ComputeMode mode);

/// \brief Timing of the three steps of distributed matrix multiplication.
struct StepBreakdown {
  double repartition_seconds = 0;
  double multiply_seconds = 0;
  double aggregation_seconds = 0;

  double total() const {
    return repartition_seconds + multiply_seconds + aggregation_seconds;
  }
};

/// \brief Counters from the prefetch pipeline (real executor, depth > 0).
struct PipelineStats {
  /// Configured prefetch depth k (0 = legacy synchronous execution).
  int64_t prefetch_depth = 0;
  /// Task pops that found staged inputs already waiting (no stall).
  int64_t prefetch_hits = 0;
  /// Task pops that had to wait for the fetch stage.
  int64_t prefetch_stalls = 0;
  /// Total time compute spent stalled waiting on the fetch stage.
  double stall_seconds = 0;
  /// Prefetches delayed by the per-node staging-memory gate.
  int64_t backpressure_waits = 0;
  /// Maximum staging-queue occupancy observed across workers.
  int64_t queue_high_water = 0;
};

/// \brief Full execution report.
struct MMReport {
  /// OK, OutOfMemory (O.O.M.), Timeout (T.O.), or ExceedsDiskCapacity
  /// (E.D.C.) — the failure modes annotated in the paper's figures.
  Status outcome;
  std::string method_name;
  ComputeMode mode = ComputeMode::kCpu;

  double elapsed_seconds = 0;  ///< end-to-end (includes job overhead)
  StepBreakdown steps;

  double repartition_bytes = 0;  ///< network bytes, matrix repartition step
  double aggregation_bytes = 0;  ///< network bytes, matrix aggregation step
  double total_shuffle_bytes() const {
    return repartition_bytes + aggregation_bytes;
  }

  int64_t num_tasks = 0;
  /// Task attempts beyond the first (fault-injected runs; real executor).
  int64_t task_retries = 0;
  double peak_task_memory_bytes = 0;
  double total_flops = 0;
  double pcie_bytes = 0;        ///< host<->device traffic (GPU modes)
  double gpu_utilization = 0;   ///< kernel-busy fraction of the multiply step
  PipelineStats pipeline;       ///< prefetch pipeline counters (real executor)

  /// \brief Short outcome label for bench tables: "123.4s" or "O.O.M." etc.
  std::string OutcomeLabel() const;
};

/// \brief Structured JSON run report: every MMReport field, plus — when a
/// metrics snapshot is supplied — the full `distme.*` metric set, including
/// the labeled `distme.task.retries{reason}` breakdown. This supersedes
/// hand-formatting report fields in bench/table code.
std::string RunReportJson(const MMReport& report,
                          const obs::MetricsSnapshot* metrics = nullptr);

}  // namespace distme::engine
