#include "engine/sim_executor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <queue>
#include <tuple>
#include <utility>

#include "gpumm/subcuboid.h"
#include "sim/timeline.h"

namespace distme::engine {

double EstimateProductDensity(double sa, double sb, double inner) {
  const double p = sa * sb;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // 1 - (1-p)^inner, computed stably.
  const double log1m = std::log1p(-p) * inner;
  if (log1m < -40.0) return 1.0;
  return -std::expm1(log1m);
}

namespace {

// Bytes to store `count` elements at `density` (dense vs CSR cutoff at the
// conventional 0.4 threshold).
double StorageBytes(double elements, double density) {
  if (density >= 0.4) return elements * kElementBytes;
  return elements * density * (kElementBytes + 8.0);
}

struct TaskQuantities {
  double a_in_bytes = 0;     // shipped A inputs
  double b_in_bytes = 0;     // shipped B inputs
  double c_out_bytes = 0;    // emitted (partial) C bytes
  double c_resident_bytes = 0;  // C working set held in task memory
  double flops = 0;
  int64_t voxels = 0;
  int64_t kernels = 0;  // kernel launches in block-level GPU mode
  bool is_box = false;
  bool streamed_inputs = false;  // inputs iterate; only one voxel resident
  int64_t i_cnt = 0, j_cnt = 0, k_cnt = 0;
};

// Emits the run as a synthetic flight timeline on the SIMULATED clock
// (RecordAt, µs since simulated run start): run bounds, the three stage
// barriers, and — when the ring can hold them — per-task start/finish
// events placed by replaying the wave schedule (greedy earliest-free-slot,
// the same policy as sim::WaveScheduler). This makes a sim dump feed the
// same causal-analysis path as a real run, with the critical path tiling
// the simulated wall time exactly.
void EmitSimFlightTimeline(obs::FlightRecorder* flight, int64_t num_tasks,
                           const MMReport& report,
                           const std::vector<double>& task_durations,
                           int total_slots, int num_nodes) {
  const auto to_us = [](double s) {
    return static_cast<int64_t>(std::llround(s * 1e6));
  };
  const double overhead_s = report.elapsed_seconds - report.steps.total();
  const double rep_begin_s = overhead_s;
  const double rep_end_s = rep_begin_s + report.steps.repartition_seconds;
  const double mult_end_s = rep_end_s + report.steps.multiply_seconds;
  const double agg_end_s = mult_end_s + report.steps.aggregation_seconds;
  const int64_t mult_begin_us = to_us(rep_end_s);
  const int64_t mult_end_us = to_us(mult_end_s);
  const int64_t run_end_us =
      std::max(to_us(agg_end_s), to_us(report.elapsed_seconds));

  using Type = obs::FlightEventType;
  flight->RecordAt(0, Type::kRunStart, /*node=*/-1, /*slot=*/-1, num_tasks,
                   /*b=*/0, "sim");
  flight->RecordAt(to_us(rep_begin_s), Type::kStageBegin, -1, -1, 0, 0,
                   "repartition");
  flight->RecordAt(mult_begin_us, Type::kStageEnd, -1, -1, 0, 0,
                   "repartition");
  flight->RecordAt(mult_begin_us, Type::kStageBegin, -1, -1, 0, 0,
                   "multiply");
  if (2 * task_durations.size() + 10 <= flight->capacity() &&
      total_slots > 0) {
    // Greedy replay: each task takes the earliest-free slot (ties to the
    // lowest slot index). Event timestamps are clamped into the multiply
    // stage so per-task µs rounding can never leak past the barrier.
    using SlotFree = std::pair<double, int>;  // (free time s, slot index)
    std::priority_queue<SlotFree, std::vector<SlotFree>,
                        std::greater<SlotFree>>
        slots;
    for (int s = 0; s < total_slots; ++s) slots.push({0.0, s});
    for (size_t i = 0; i < task_durations.size(); ++i) {
      const auto [free_s, slot] = slots.top();
      slots.pop();
      const double start_s = rep_end_s + free_s;
      const double finish_s = start_s + task_durations[i];
      const int64_t start_us =
          std::clamp(to_us(start_s), mult_begin_us, mult_end_us);
      const int64_t finish_us =
          std::clamp(to_us(finish_s), start_us, mult_end_us);
      const int node = num_nodes > 0 ? slot % num_nodes : -1;
      flight->RecordAt(start_us, Type::kTaskStart, node, slot,
                       static_cast<int64_t>(i), /*b=*/0, "sim");
      flight->RecordAt(finish_us, Type::kTaskFinish, node, slot,
                       static_cast<int64_t>(i), finish_us - start_us, "sim");
      slots.push({free_s + task_durations[i], slot});
    }
  }
  flight->RecordAt(mult_end_us, Type::kStageEnd, -1, -1, 0, 0, "multiply");
  if (report.steps.aggregation_seconds > 0) {
    flight->RecordAt(mult_end_us, Type::kStageBegin, -1, -1, 0, 0,
                     "aggregation");
    flight->RecordAt(to_us(agg_end_s), Type::kStageEnd, -1, -1, 0, 0,
                     "aggregation");
  }
  flight->RecordAt(run_end_us, Type::kRunFinish, -1, -1, num_tasks,
                   report.outcome.ok() ? 0 : 1, "sim");
}

}  // namespace

Result<MMReport> SimExecutor::Run(const mm::MMProblem& problem,
                                  const mm::Method& method,
                                  const SimOptions& options) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  DISTME_ASSIGN_OR_RETURN(const int64_t num_tasks,
                          method.NumTasks(problem, config_));

  const HardwareModel& hw = config_.hw;
  const double bs = static_cast<double>(problem.a.shape.block_size);
  const double sa = problem.a.sparsity;
  const double sb = problem.b.sparsity;
  const bool sparse_kernel = !problem.a.stored_dense || !problem.b.stored_dense;

  // Effective compute mode: RMM (and any non-box plan) degrades cuboid-level
  // streaming to block-level GPU computation (Section 6.2).
  ComputeMode mode = options.mode;
  if (mode == ComputeMode::kGpuStreaming && !method.SupportsGpuStreaming()) {
    mode = ComputeMode::kGpuBlock;
  }
  if (!config_.has_gpu && mode != ComputeMode::kCpu) {
    return Status::Invalid("cluster has no GPU but a GPU mode was requested");
  }

  MMReport report;
  report.outcome = Status::OK();
  report.method_name = method.name();
  report.mode = mode;
  report.num_tasks = num_tasks;

  // With flight_task_events the whole run is emitted at the end on the
  // simulated clock (EmitSimFlightTimeline); mixing a real-time run_start
  // with simulated-time task events would corrupt the causal graph.
  const bool sim_timeline =
      options.flight != nullptr && options.flight_task_events;
  if (options.flight != nullptr && !sim_timeline) {
    options.flight->Record(obs::FlightEventType::kRunStart, /*node=*/-1,
                           /*slot=*/-1, num_tasks, /*b=*/0, "sim");
  }

  // Density of one voxel's product block and of a task-local aggregation.
  const double a_block_bytes = problem.a.BytesPerBlock();
  const double b_block_bytes = problem.b.BytesPerBlock();
  const double voxel_flops = 2.0 * bs * bs * bs * sa * sb;
  const double voxel_c_density = EstimateProductDensity(sa, sb, bs);
  const double voxel_c_bytes = StorageBytes(bs * bs, voxel_c_density);

  // Concurrency: how many tasks actually share one node (and its GPU).
  const int64_t concurrent_total =
      std::min<int64_t>(num_tasks, config_.total_slots());
  const double tasks_per_node = std::max<double>(
      1.0, static_cast<double>(concurrent_total) / config_.num_nodes);

  // GPU sharing factor: MPS divides each device among the concurrent tasks
  // assigned to it; multiple devices per node split the task population.
  const double devices =
      std::max(1, config_.gpu.devices_per_node);
  const double gpu_share = std::max(1.0, tasks_per_node / devices);

  // Wave-based local-multiplication scheduling. Durations are collected so
  // they can optionally be dispatched longest-first (LPT).
  std::vector<double> task_durations;

  obs::CommMatrixSnapshot comm_base;
  if (options.comm != nullptr) comm_base = options.comm->Snapshot();

  double repartition_bytes = method.ExtraRepartitionBytes(problem);
  // Layout-conversion repartition (ExtraRepartitionBytes) is an all-to-all
  // re-shuffle: spread it evenly over every (src, dst) pair.
  if (options.comm != nullptr && repartition_bytes > 0) {
    const int n = config_.num_nodes;
    const int64_t per_pair = std::llround(
        repartition_bytes / (static_cast<double>(n) * static_cast<double>(n)));
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        options.comm->Record(obs::CommStage::kRepartition, src, dst, per_pair);
      }
    }
  }
  double aggregation_bytes = 0;
  double broadcast_bytes_per_node = 0;  // node-shared broadcast residency
  double peak_task_memory = 0;
  double peak_nonbroadcast_memory = 0;
  double total_flops = 0;
  double pcie_bytes = 0;
  double gpu_kernel_seconds = 0;  // kernel-resident time across tasks
  double gpu_window_seconds = 0;  // total device wall time across tasks

  // Memoized subcuboid optimization per distinct cuboid shape.
  std::map<std::tuple<int64_t, int64_t, int64_t>,
           Result<gpumm::OptimizedSubcuboid>>
      subcuboid_cache;

  Status failure = Status::OK();

  auto process_task = [&](const mm::LocalTask& task) -> Status {
    TaskQuantities q;
    q.is_box = task.voxels.is_box();
    if (q.is_box) {
      q.i_cnt = task.voxels.i_count();
      q.j_cnt = task.voxels.j_count();
      q.k_cnt = task.voxels.k_count();
      q.voxels = task.voxels.size();
      q.a_in_bytes = static_cast<double>(q.i_cnt) * q.k_cnt * a_block_bytes;
      q.b_in_bytes = static_cast<double>(q.k_cnt) * q.j_cnt * b_block_bytes;
      const double task_c_density =
          EstimateProductDensity(sa, sb, static_cast<double>(q.k_cnt) * bs);
      q.c_out_bytes = static_cast<double>(q.i_cnt) * q.j_cnt *
                      StorageBytes(bs * bs, task_c_density);
      // Spill-aware working set: a task accumulating over k > 1 holds its
      // C cuboid face; single-k tasks stream each product block straight to
      // the shuffle (one block resident).
      q.c_resident_bytes =
          (task.aggregate_local && q.k_cnt > 1) || options.materialize_map_outputs
              ? q.c_out_bytes
              : StorageBytes(bs * bs, voxel_c_density);
      q.kernels = q.voxels;
    } else {
      q.voxels = task.voxels.size();
      // Hash-partitioned voxels: inputs shipped per voxel, one intermediate
      // block emitted per voxel.
      q.a_in_bytes = static_cast<double>(q.voxels) * a_block_bytes;
      q.b_in_bytes = static_cast<double>(q.voxels) * b_block_bytes;
      q.c_out_bytes = static_cast<double>(q.voxels) * voxel_c_bytes;
      q.c_resident_bytes = options.materialize_map_outputs
                               ? q.c_out_bytes
                               : voxel_c_bytes;
      q.kernels = q.voxels;
      // Voxel-keyed tasks stream: Spark's cogroup iterator feeds one
      // (A block, B block) pair at a time and each product spills straight
      // to the shuffle — this is why RMM never runs out of memory
      // (Section 2.2.3).
      q.streamed_inputs = !options.materialize_map_outputs;
    }
    q.flops = static_cast<double>(q.voxels) * voxel_flops;
    total_flops += q.flops;

    // ---- Communication accounting (matrix repartition step). ----
    // Broadcast sides still cross the network per task (Table 2's T·|B|),
    // but reside once per node.
    repartition_bytes +=
        (q.a_in_bytes + q.b_in_bytes) * options.repartition_factor;
    if (task.b_broadcast) broadcast_bytes_per_node = q.b_in_bytes;
    if (task.a_broadcast) broadcast_bytes_per_node = q.a_in_bytes;
    if (options.comm != nullptr) {
      // Inputs converge on the task's node from uniform-hash block homes;
      // aggregation output fans out toward the hash-partitioned reducers.
      const int n = config_.num_nodes;
      const int task_node = static_cast<int>(task.id % n);
      const int64_t in_per_src = std::llround(
          (q.a_in_bytes + q.b_in_bytes) * options.repartition_factor /
          static_cast<double>(n));
      for (int src = 0; src < n; ++src) {
        options.comm->Record(obs::CommStage::kRepartition, src, task_node,
                             in_per_src);
      }
      if (method.NeedsAggregation(problem)) {
        const int64_t out_per_dst =
            std::llround(q.c_out_bytes / static_cast<double>(n));
        for (int dst = 0; dst < n; ++dst) {
          options.comm->Record(obs::CommStage::kAggregation, task_node, dst,
                               out_per_dst);
        }
      }
    }

    // ---- Memory accounting. ----
    double task_memory;
    double nonbroadcast_memory;
    if (method.ResidentLocalMatrices()) {
      // MPI-style processes own contiguous local arrays of A, B and C,
      // block-cyclic over every launched process (not just the ones the
      // block grid gives work to).
      task_memory = (problem.a.StoredBytes() + problem.b.StoredBytes() +
                     problem.C().StoredBytes()) /
                    static_cast<double>(config_.total_slots()) *
                    options.resident_memory_factor;
      nonbroadcast_memory = task_memory;
    } else if (q.streamed_inputs) {
      // One voxel's working set at a time.
      task_memory = a_block_bytes + b_block_bytes + q.c_resident_bytes;
      nonbroadcast_memory = task_memory;
    } else {
      task_memory = q.a_in_bytes + q.b_in_bytes + q.c_resident_bytes;
      nonbroadcast_memory = task_memory;
      if (task.a_broadcast) nonbroadcast_memory -= q.a_in_bytes;
      if (task.b_broadcast) nonbroadcast_memory -= q.b_in_bytes;
    }
    peak_task_memory = std::max(peak_task_memory, task_memory);
    peak_nonbroadcast_memory =
        std::max(peak_nonbroadcast_memory, nonbroadcast_memory);

    const double theta_t =
        static_cast<double>(config_.task_memory_bytes) * options.memory_slack;
    if (failure.ok()) {
      if (method.ResidentLocalMatrices()) {
        if (task_memory > static_cast<double>(config_.task_memory_bytes)) {
          failure = Status::OutOfMemory(
              method.name() + ": resident local arrays exceed task memory");
        }
      } else {
        // Broadcast data is shared at node granularity; everything else is
        // per task.
        if (nonbroadcast_memory > theta_t) {
          failure = Status::OutOfMemory(method.name() +
                                        ": task working set exceeds θt");
        } else if (broadcast_bytes_per_node +
                       tasks_per_node * nonbroadcast_memory >
                   0.9 * static_cast<double>(config_.node_memory_bytes)) {
          failure = Status::OutOfMemory(
              method.name() + ": broadcast + concurrent tasks exceed node memory");
        }
      }
    }

    // ---- Aggregation output. ----
    if (method.NeedsAggregation(problem)) {
      aggregation_bytes += q.c_out_bytes;
    }

    // ---- Compute time. ----
    double duration = hw.task_launch_overhead;
    switch (mode) {
      case ComputeMode::kCpu: {
        const double rate =
            sparse_kernel ? hw.cpu_sparse_flops : hw.cpu_gemm_flops;
        // Each voxel streams its operand blocks through the core's memory
        // hierarchy; very sparse kernels are bandwidth-bound.
        const double touched_bytes =
            static_cast<double>(q.voxels) * (a_block_bytes + b_block_bytes);
        duration += std::max(q.flops / rate,
                             touched_bytes / hw.cpu_memory_bandwidth) *
                    options.compute_overhead;
        break;
      }
      case ComputeMode::kGpuStreaming: {
        gpumm::SubcuboidProblem sp;
        sp.i_blocks = q.i_cnt;
        sp.j_blocks = q.j_cnt;
        sp.k_blocks = q.k_cnt;
        sp.a_bytes = q.a_in_bytes;
        sp.b_bytes = q.b_in_bytes;
        sp.c_bytes = static_cast<double>(q.i_cnt) * q.j_cnt * bs * bs *
                     kElementBytes;  // worst-case dense, as the planner does
        sp.flops = q.flops;
        const auto key = std::make_tuple(q.i_cnt, q.j_cnt, q.k_cnt);
        auto it = subcuboid_cache.find(key);
        if (it == subcuboid_cache.end()) {
          it = subcuboid_cache
                   .emplace(key, gpumm::OptimizeSubcuboid(
                                     sp, config_.gpu_task_memory_bytes))
                   .first;
        }
        if (!it->second.ok()) {
          if (failure.ok()) failure = it->second.status();
          return Status::OK();
        }
        const gpumm::GpuTaskTime t = gpumm::EstimateStreamingTime(
            sp, *it->second, hw, sparse_kernel, gpu_share,
            /*pcie_sharing_factor=*/tasks_per_node);
        duration += t.elapsed_seconds * options.compute_overhead;
        pcie_bytes += it->second->pcie_bytes;
        gpu_kernel_seconds += t.kernel_seconds;
        gpu_window_seconds += t.elapsed_seconds;
        break;
      }
      case ComputeMode::kGpuBlock: {
        const gpumm::GpuTaskTime t = gpumm::EstimateBlockLevelTime(
            q.voxels, a_block_bytes, b_block_bytes, voxel_c_bytes, q.flops,
            hw, sparse_kernel, gpu_share,
            /*pcie_sharing_factor=*/tasks_per_node);
        duration += t.elapsed_seconds * options.compute_overhead;
        pcie_bytes += static_cast<double>(q.voxels) *
                          (a_block_bytes + b_block_bytes) +
                      static_cast<double>(q.voxels) * voxel_c_bytes;
        gpu_kernel_seconds += t.kernel_seconds;
        gpu_window_seconds += t.elapsed_seconds;
        break;
      }
    }
    task_durations.push_back(duration);
    return Status::OK();
  };

  DISTME_RETURN_NOT_OK(method.ForEachTask(problem, config_, process_task));

  obs::TraceSpan schedule_span(options.tracer, "sim.schedule", "sim");
  if (options.lpt_scheduling) {
    std::sort(task_durations.begin(), task_durations.end(),
              std::greater<double>());
  }
  sim::WaveScheduler waves(static_cast<int>(config_.total_slots()));
  for (double d : task_durations) waves.Add(d);
  schedule_span.AddArg("tasks", num_tasks);
  schedule_span.AddArg("lpt", static_cast<int64_t>(options.lpt_scheduling));
  schedule_span.AddArg("makespan_seconds", waves.Makespan());
  schedule_span.End();

  // ---- Assemble the three steps. ----
  report.steps.repartition_seconds =
      sim::ShuffleSeconds(repartition_bytes, config_.num_nodes,
                          hw.nic_bandwidth, hw.serialization_bandwidth,
                          hw.serialization_overhead);
  // The driver dispatches tasks serially; with huge task counts (RMM) this
  // dominates the wave makespan.
  const double dispatch_seconds =
      static_cast<double>(num_tasks) * hw.driver_dispatch_overhead;
  report.steps.multiply_seconds =
      std::max(waves.Makespan(), dispatch_seconds) +
      static_cast<double>(method.SyncSteps(problem)) * hw.task_launch_overhead;
  if (options.fetch_overlap > 0.0) {
    // Prefetch pipeline: a fetch_overlap fraction of the repartition step
    // hides behind the multiply waves — but never more than the multiply
    // step provides cover for. Bytes stay untouched.
    const double overlap = std::min(1.0, options.fetch_overlap);
    const double hidden = std::min(report.steps.repartition_seconds * overlap,
                                   report.steps.multiply_seconds);
    report.steps.repartition_seconds -= hidden;
  }

  if (method.NeedsAggregation(problem)) {
    // reduceByKey inherits the parent partition count, capped by the number
    // of distinct (i, j) keys.
    const double reduce_partitions = std::min<double>(
        static_cast<double>(num_tasks),
        static_cast<double>(problem.I()) * static_cast<double>(problem.J()));
    const double reduce_parallelism = std::min<double>(
        static_cast<double>(config_.total_slots()), reduce_partitions);
    const double reduce_flops = aggregation_bytes / kElementBytes;
    report.steps.aggregation_seconds =
        sim::ShuffleSeconds(aggregation_bytes, config_.num_nodes,
                            hw.nic_bandwidth, hw.serialization_bandwidth,
                            hw.serialization_overhead) +
        reduce_flops /
            (reduce_parallelism * hw.cpu_gemm_flops);
    // Reduce-side memory: each reducer owns |C|/partitions plus one incoming
    // partial block.
    const double reducer_memory =
        problem.C().StoredBytes() / reduce_partitions + voxel_c_bytes;
    if (failure.ok() &&
        reducer_memory > static_cast<double>(config_.task_memory_bytes)) {
      failure = Status::OutOfMemory(method.name() +
                                    ": reduce-side C partition exceeds θt");
    }
  }

  report.repartition_bytes = repartition_bytes;
  report.aggregation_bytes = aggregation_bytes;
  report.total_flops = total_flops;
  report.pcie_bytes = pcie_bytes;
  report.peak_task_memory_bytes = peak_task_memory;
  report.elapsed_seconds =
      hw.job_overhead * options.job_overhead_factor + report.steps.total();

  if (mode != ComputeMode::kCpu && gpu_window_seconds > 0) {
    // The nvidia-smi-style metric: fraction of the device window in which
    // kernels are resident (streaming keeps it near 1; block-level execution
    // idles the device during staging and per-block copies).
    report.gpu_utilization =
        std::min(1.0, gpu_kernel_seconds / gpu_window_seconds);
  }

  // ---- Failure outcomes, in the order the paper's runs hit them. ----
  if (!failure.ok()) {
    report.outcome = failure;
  } else if (report.total_shuffle_bytes() * hw.serialization_overhead >
             static_cast<double>(config_.total_disk_bytes)) {
    report.outcome = Status::ExceedsDiskCapacity(
        method.name() + ": shuffle data exceeds cluster disk capacity");
  } else if (report.elapsed_seconds > config_.timeout_seconds) {
    report.outcome =
        Status::Timeout(method.name() + ": exceeded the wall-clock limit");
  }

  if (options.metrics != nullptr) {
    obs::MetricsRegistry* m = options.metrics;
    m->GetCounter("distme.sim.runs")->Add(1);
    m->GetCounter("distme.sim.tasks")->Add(num_tasks);
    m->GetCounter("distme.sim.repartition_bytes")
        ->Add(static_cast<int64_t>(report.repartition_bytes));
    m->GetCounter("distme.sim.aggregation_bytes")
        ->Add(static_cast<int64_t>(report.aggregation_bytes));
    if (!report.outcome.ok()) {
      m->GetCounter("distme.sim.failed_runs",
                    {{"outcome", report.OutcomeLabel()}})
          ->Add(1);
    }
    obs::Histogram* h = m->GetHistogram("distme.sim.task_seconds");
    for (double d : task_durations) h->Observe(d);
    if (options.comm != nullptr) {
      const obs::CommMatrixSnapshot comm_delta =
          options.comm->Snapshot().Delta(comm_base);
      m->GetGauge("distme.comm.max_link_bytes")
          ->Set(comm_delta.MaxLinkBytes());
      m->GetGauge("distme.comm.skew_permille")
          ->Set(static_cast<int64_t>(comm_delta.SkewRatio() * 1000.0));
      m->GetGauge("distme.comm.active_links")->Set(comm_delta.ActiveLinks());
    }
  }
  if (options.tracer != nullptr && options.tracer->enabled()) {
    // The simulated three-step timeline as spans: simulated durations,
    // anchored at the call instant on the caller's current track.
    obs::Tracer* tr = options.tracer;
    const int64_t t0 = tr->NowMicros();
    double offset_s = 0;
    auto emit = [&](const char* name, double dur_s) {
      obs::TraceEvent ev;
      ev.name = name;
      ev.category = "sim";
      ev.ts_us = t0 + static_cast<int64_t>(offset_s * 1e6);
      ev.dur_us = std::max<int64_t>(1, static_cast<int64_t>(dur_s * 1e6));
      ev.pid = obs::Tracer::CurrentPid();
      ev.tid = obs::Tracer::CurrentTid();
      ev.args.emplace_back(
          "method", obs::TraceArgValue::Str(std::string(method.name())));
      ev.args.emplace_back("simulated_seconds",
                           obs::TraceArgValue::Double(dur_s));
      tr->Record(std::move(ev));
      offset_s += dur_s;
    };
    emit("sim.repartition", report.steps.repartition_seconds);
    emit("sim.multiply", report.steps.multiply_seconds);
    emit("sim.aggregation", report.steps.aggregation_seconds);
  }
  if (sim_timeline) {
    EmitSimFlightTimeline(options.flight, num_tasks, report, task_durations,
                          static_cast<int>(config_.total_slots()),
                          config_.num_nodes);
  } else if (options.flight != nullptr) {
    options.flight->Record(obs::FlightEventType::kRunFinish, /*node=*/-1,
                           /*slot=*/-1, num_tasks,
                           report.outcome.ok() ? 0 : 1, "sim");
  }
  return report;
}

}  // namespace distme::engine
