// DistributedMatrix: a blocked matrix spread across cluster nodes — the
// engine's RDD-of-blocks equivalent. Blocks live in per-node stores; the
// partitioner records which node owns which block.

#pragma once

#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cluster/config.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "engine/partitioner.h"
#include "matrix/block_grid.h"
#include "mm/descriptor.h"

namespace distme::engine {

/// \brief A blocked matrix whose blocks are distributed over nodes.
///
/// Thread-safe for concurrent reads and writes from task threads (per-node
/// store locking).
class DistributedMatrix {
 public:
  DistributedMatrix(BlockedShape shape, int num_nodes, Partitioner partitioner)
      : shape_(shape),
        partitioner_(partitioner),
        stores_(static_cast<size_t>(num_nodes)),
        mutexes_(static_cast<size_t>(num_nodes)) {}

  DistributedMatrix(DistributedMatrix&&) = default;

  const BlockedShape& shape() const { return shape_; }
  int num_nodes() const {
    // The store vector itself never grows or shrinks after construction;
    // only the per-node maps inside it mutate (under their shard lock).
    return static_cast<int>(stores_.size());  // distme-lint: allow(lock-held)
  }
  const Partitioner& partitioner() const { return partitioner_; }

  /// \brief Node owning the block at `idx` under the current partitioning.
  int NodeOf(BlockIndex idx) const {
    return static_cast<int>(partitioner_.PartitionOf(idx) %
                            static_cast<int64_t>(
                                stores_.size()));  // distme-lint: allow(lock-held)
  }

  /// \brief Inserts or replaces a block at its home node.
  [[nodiscard]] Status Put(BlockIndex idx, Block block);

  /// \brief Fetches the block at `idx` (implicit zero if absent).
  /// `requesting_node` is used by callers to account network movement;
  /// `crossed_network` reports whether the block lives on a different node.
  [[nodiscard]] Result<Block> Get(BlockIndex idx, int requesting_node,
                    bool* crossed_network) const;

  /// \brief True if a block is materialized at `idx`.
  bool Has(BlockIndex idx) const;

  /// \brief Number of materialized blocks across all nodes.
  int64_t num_blocks() const;

  /// \brief Total stored bytes across all nodes.
  int64_t SizeBytes() const;

  /// \brief Gathers all blocks into a local grid (test scale only).
  BlockGrid Collect() const;

  /// \brief Visits every materialized block, node by node, without moving
  /// data: fn(node, index, block). Blocks are visited under the node lock;
  /// fn must not call back into this matrix.
  void ForEachBlock(
      const std::function<void(int, BlockIndex, const Block&)>& fn) const;

  /// \brief Planning descriptor for this matrix.
  mm::MatrixDescriptor Descriptor() const;

  /// \brief Distributes a local grid across `num_nodes` nodes.
  static DistributedMatrix FromGrid(const BlockGrid& grid, int num_nodes,
                                    Partitioner partitioner);

  /// \brief Convenience: hash-partitioned distribution.
  static DistributedMatrix FromGridHashed(const BlockGrid& grid,
                                          int num_nodes);

 private:
  BlockedShape shape_ DISTME_LOCKFREE("set in ctor, immutable after");
  Partitioner partitioner_ DISTME_LOCKFREE("set in ctor, immutable after");
  std::vector<std::unordered_map<BlockIndex, Block, BlockIndexHash>> stores_
      DISTME_SHARDED_BY(mutexes_);
  mutable std::vector<std::mutex> mutexes_;
};

}  // namespace distme::engine
