// Building blocks of the RealExecutor prefetch pipeline: a bounded handoff
// queue connecting the per-worker fetch / compute / emit stages, and the
// per-node staging gate that applies memory backpressure to prefetching
// (DESIGN.md §4.9 "Execution pipeline").
//
// Ownership discipline: items passed through a BoundedQueue are moved —
// exactly one stage owns a staged task at any instant, so the payload
// itself needs no locking. The queue and gate are the only synchronization
// between stages.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/thread_annotations.h"

namespace distme::engine {

/// \brief Bounded multi-producer/multi-consumer handoff queue with close
/// semantics.
///
/// Push() blocks while the queue is full; Pop() blocks while it is empty.
/// Close() wakes every waiter: subsequent (and woken) Push() calls return
/// false, Pop() keeps draining buffered items and returns std::nullopt once
/// the queue is empty — so a consumer can shut the pipeline down without
/// stranding a producer, and a producer's exit (Close after its last Push)
/// lets the consumer finish the tail.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// \brief Blocks until there is room (or the queue closes). Returns false
  /// — and drops nothing; the caller keeps `item` ownership semantics via
  /// the unspecified moved-from state — when the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    while (!closed_ && items_.size() >= capacity_) {
      not_full_.wait(lock);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    not_empty_.notify_one();
    return true;
  }

  /// \brief Blocks until an item is available (or the queue closes and
  /// drains). `*stalled` reports whether this call had to wait — the
  /// pipeline's hit/stall accounting.
  std::optional<T> Pop(bool* stalled = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stalled != nullptr) *stalled = items_.empty() && !closed_;
    while (items_.empty() && !closed_) {
      not_empty_.wait(lock);
    }
    if (items_.empty()) return std::nullopt;  // closed and fully drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// \brief Closes the queue from either side; idempotent.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  /// \brief Maximum occupancy ever observed (queue-depth high-water mark).
  size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_ DISTME_GUARDED_BY(mutex_);
  bool closed_ DISTME_GUARDED_BY(mutex_) = false;
  size_t high_water_ DISTME_GUARDED_BY(mutex_) = 0;
};

/// \brief Per-node staging-memory gate: backpressure for the fetch stage.
///
/// The fetch stage calls WaitForHeadroom() before prefetching a task and
/// Charge()s the staged bytes once fetched; the compute stage Release()s
/// them when it takes ownership of the staged inputs. A new prefetch is
/// admitted only while staged bytes are at or under the budget, so the
/// effective prefetch depth shrinks as the node approaches its staging
/// budget — and collapses to one-in-flight when a single task's inputs
/// exceed it (an oversized task is always admitted once the gate is empty,
/// so the pipeline cannot deadlock on a task bigger than the budget).
class PrefetchGate {
 public:
  explicit PrefetchGate(int64_t budget_bytes) : budget_(budget_bytes) {}

  PrefetchGate(const PrefetchGate&) = delete;
  PrefetchGate& operator=(const PrefetchGate&) = delete;

  /// \brief Blocks while staged bytes exceed the budget. Returns true when
  /// the call had to wait (one backpressure event).
  bool WaitForHeadroom() {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool waited = used_ > budget_;
    while (used_ > budget_) {
      cv_.wait(lock);
    }
    if (waited) ++waits_;
    return waited;
  }

  /// \brief Accounts `bytes` of freshly staged inputs against the gate.
  void Charge(int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    used_ += bytes;
  }

  /// \brief Returns staged bytes to the gate (compute-side handoff, or a
  /// dropped staged task on failure/teardown).
  void Release(int64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    used_ -= bytes;
    cv_.notify_all();
  }

  int64_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return used_;
  }

  /// \brief How many prefetches were delayed by the budget.
  int64_t waits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return waits_;
  }

 private:
  const int64_t budget_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int64_t used_ DISTME_GUARDED_BY(mutex_) = 0;
  int64_t waits_ DISTME_GUARDED_BY(mutex_) = 0;
};

}  // namespace distme::engine
