// SimExecutor: discrete-event execution of a distributed matrix
// multiplication at paper scale. Tasks are streamed from the method's plan;
// per-task communication, memory, and compute are derived from matrix
// descriptors and charged against the simulated cluster (Section 6.1
// testbed by default). Produces the O.O.M. / T.O. / E.D.C. outcomes the
// paper's figures annotate.

#pragma once

#include "cluster/config.h"
#include "common/result.h"
#include "engine/report.h"
#include "mm/method.h"
#include "obs/comm_matrix.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme::engine {

/// \brief Per-run knobs, mostly used by the comparator system models.
struct SimOptions {
  ComputeMode mode = ComputeMode::kCpu;
  /// Multiplier on repartition volume (SciDB re-partitions inputs into
  /// ScaLAPACK's block-cyclic layout before multiplying — Section 7).
  double repartition_factor = 1.0;
  /// Multiplier on resident memory for ResidentLocalMatrices methods
  /// (SciDB keeps an extra copy while converting arrays).
  double resident_memory_factor = 1.0;
  /// Generic efficiency factor applied to compute time (>1 = slower), used
  /// to model engine overheads of less optimized systems.
  double compute_overhead = 1.0;
  /// If true, map tasks must materialize their full C working set in memory
  /// instead of spilling incrementally to shuffle files (MatFast's naive
  /// CPMM — causes the O.O.M. walls of Figure 7(c)).
  bool materialize_map_outputs = false;
  /// Multiplier on θt for map-task memory checks: >1 models Spark's unified
  /// memory borrowing execution memory beyond the configured budget.
  double memory_slack = 1.0;
  /// Multiplier on the per-job fixed overhead (MPI systems like ScaLAPACK
  /// have near-zero job setup compared with Spark's driver/stage setup).
  double job_overhead_factor = 1.0;
  /// Fraction of the repartition (input fetch) step hidden behind compute,
  /// in [0, 1]. Models the real executor's prefetch pipeline: at depth > 0
  /// the fetch stage overlaps the multiply waves, so only the un-hidden
  /// remainder of the repartition time reaches the modelled timeline (it
  /// can never hide more than the multiply step itself). Repartition
  /// *bytes* are unchanged — the pipeline moves the same blocks, earlier.
  double fetch_overlap = 0.0;
  /// Longest-processing-time task scheduling: dispatch the heaviest tasks
  /// first instead of plan order. Implements the paper's future-work item
  /// on load balancing across cuboids of different sizes/sparsities;
  /// shrinks the wave-imbalance tail when task durations are skewed.
  bool lpt_scheduling = false;
  /// Optional metrics sink: per-run `distme.sim.*` counters/histograms.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional trace sink: the simulated three-step timeline is emitted as
  /// spans (in simulated time, anchored at the call instant) plus a
  /// real-time `sim.schedule` span for the wave-scheduling decision.
  obs::Tracer* tracer = nullptr;
  /// Optional per-link shuffle accounting. The simulator has no real
  /// endpoints, so each task's modelled transfer volume is spread over the
  /// uniform-hash block homes: inputs arrive at the task's node (id % N)
  /// from all N sources, aggregation output leaves it toward all N
  /// reducers. Totals match the report's shuffle bytes (± rounding).
  obs::CommMatrix* comm = nullptr;
  /// Optional flight recorder. By default the simulator emits run-level
  /// events only (run_start with the task count, run_finish with the
  /// outcome) — paper-scale plans have millions of simulated tasks and
  /// per-task events would drown the ring.
  obs::FlightRecorder* flight = nullptr;
  /// If true (and `flight` is set), the simulator instead emits a full
  /// synthetic timeline ON THE SIMULATED CLOCK via RecordAt: run bounds,
  /// stage barriers (repartition / multiply / aggregation), and per-task
  /// start/finish placed by a replay of the wave schedule — so a sim dump
  /// feeds the same causal-analysis path as a real run. Per-task events
  /// are skipped (stages kept) when 2·tasks + 10 would overflow the ring.
  bool flight_task_events = false;
};

/// \brief Simulates one distributed matrix multiplication.
class SimExecutor {
 public:
  explicit SimExecutor(ClusterConfig config) : config_(std::move(config)) {}

  /// \brief Runs `method` on `problem`. Returns an MMReport whose `outcome`
  /// is OK or one of the resource-failure codes; a non-OK Result means the
  /// problem/method combination itself was invalid.
  [[nodiscard]] Result<MMReport> Run(const mm::MMProblem& problem, const mm::Method& method,
                       const SimOptions& options = {}) const;

  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
};

/// \brief Estimated density of a product of two matrices with densities
/// `sa`, `sb` over an inner dimension of `inner` elements:
/// 1 − (1 − sa·sb)^inner.
double EstimateProductDensity(double sa, double sb, double inner);

}  // namespace distme::engine
