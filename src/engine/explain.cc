#include "engine/explain.h"

#include <algorithm>
#include <cstdio>

#include "common/units.h"
#include "obs/causal_graph.h"
#include "obs/export.h"

namespace distme::engine {

namespace {

// Straggler stats from a task-duration histogram delta. Real runs observe
// distme.task.seconds; simulated runs observe distme.sim.task_seconds. Picks
// whichever actually moved between the two snapshots.
ExplainTaskStats TaskStatsFromSnapshots(const obs::MetricsSnapshot* before,
                                        const obs::MetricsSnapshot* after) {
  ExplainTaskStats stats;
  if (after == nullptr) return stats;
  for (const char* name : {"distme.task.seconds", "distme.sim.task_seconds"}) {
    const obs::MetricPoint* after_point = after->Find(name);
    if (after_point == nullptr) continue;
    const obs::MetricPoint* before_point =
        before != nullptr ? before->Find(name) : nullptr;
    const obs::HistogramDeltaStats delta =
        obs::HistogramDelta(*after_point, before_point);
    if (delta.count == 0) continue;
    stats.count = delta.count;
    stats.p50_seconds = delta.p50;
    stats.p95_seconds = delta.p95;
    stats.max_seconds = delta.max;
    stats.straggler_ratio = delta.p50 > 0 ? delta.p95 / delta.p50 : 0.0;
    break;
  }
  return stats;
}

void AppendRow(std::string* out, const char* stage, const char* predicted,
               const char* measured, const char* seconds) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-12s %14s %14s %12s\n", stage,
                predicted, measured, seconds);
  *out += buf;
}

}  // namespace

double ExplainReport::predicted_total_bytes() const {
  double total = 0;
  for (const ExplainStageRow& row : stages) {
    if (row.has_prediction) total += row.predicted_bytes;
  }
  return total;
}

double ExplainReport::measured_total_bytes() const {
  double total = 0;
  for (const ExplainStageRow& row : stages) total += row.measured_bytes;
  return total;
}

std::string ExplainReport::ToTable() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "explain: %s [%s] — %s in %s\n",
                method_name.c_str(), mode.c_str(), outcome.c_str(),
                FormatSeconds(elapsed_seconds).c_str());
  out += buf;
  AppendRow(&out, "stage", "predicted", "measured", "time");
  double time_total = 0;
  for (const ExplainStageRow& row : stages) {
    time_total += row.measured_seconds;
    AppendRow(&out, row.stage.c_str(),
              row.has_prediction ? FormatBytes(row.predicted_bytes).c_str()
                                 : "-",
              row.measured_bytes > 0 || row.has_prediction
                  ? FormatBytes(row.measured_bytes).c_str()
                  : "-",
              FormatSeconds(row.measured_seconds).c_str());
  }
  AppendRow(&out, "total", FormatBytes(predicted_total_bytes()).c_str(),
            FormatBytes(measured_total_bytes()).c_str(),
            FormatSeconds(time_total).c_str());
  std::snprintf(buf, sizeof(buf),
                "  tasks %lld (%lld retries) | p50 %s p95 %s max %s | "
                "straggler x%.2f\n",
                static_cast<long long>(tasks.count),
                static_cast<long long>(tasks.retries),
                FormatSeconds(tasks.p50_seconds).c_str(),
                FormatSeconds(tasks.p95_seconds).c_str(),
                FormatSeconds(tasks.max_seconds).c_str(),
                tasks.straggler_ratio);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  memory: predicted/task %s | measured peak %s\n",
                FormatBytes(predicted_task_memory_bytes).c_str(),
                FormatBytes(measured_peak_task_memory_bytes).c_str());
  out += buf;
  if (!comm.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "  comm: total %s | max link %s | %d active links | "
                  "skew %.2f\n",
                  FormatBytes(static_cast<double>(comm.TotalBytes())).c_str(),
                  FormatBytes(static_cast<double>(comm.MaxLinkBytes()))
                      .c_str(),
                  comm.ActiveLinks(), comm.SkewRatio());
    out += buf;
  }
  if (has_critical_path && critical_path.path_us > 0) {
    const double path_s = static_cast<double>(critical_path.path_us) * 1e-6;
    // Consistency check: the causal path tiles the flight-recorded run, so
    // path length vs the executor's stopwatch flags clock or schema drift.
    const double consistency =
        elapsed_seconds > 0 ? path_s / elapsed_seconds : 0.0;
    std::snprintf(buf, sizeof(buf),
                  "  critical path: %s (%.1f%% of measured wall) — "
                  "bottleneck %s (%.0f%%)\n",
                  FormatSeconds(path_s).c_str(), consistency * 100.0,
                  critical_path.bottleneck().c_str(),
                  critical_path.bottleneck_fraction() * 100.0);
    out += buf;
    std::string attribution = "  path attribution:";
    for (const auto& [resource, us] : critical_path.attribution_us) {
      std::snprintf(buf, sizeof(buf), " %s %.0f%%", resource.c_str(),
                    100.0 * static_cast<double>(us) /
                        static_cast<double>(critical_path.path_us));
      attribution += buf;
    }
    out += attribution + "\n";
    // Top-k hops by duration (the named places the wall time went).
    std::vector<const obs::CriticalHop*> top;
    top.reserve(critical_path.hops.size());
    for (const obs::CriticalHop& hop : critical_path.hops) {
      top.push_back(&hop);
    }
    std::stable_sort(top.begin(), top.end(),
                     [](const obs::CriticalHop* l, const obs::CriticalHop* r) {
                       return l->duration_us() > r->duration_us();
                     });
    const size_t k = std::min<size_t>(5, top.size());
    for (size_t i = 0; i < k; ++i) {
      std::snprintf(buf, sizeof(buf), "    hop %zu: %-24s [%s] %s\n", i + 1,
                    top[i]->label.c_str(), top[i]->resource.c_str(),
                    FormatSeconds(static_cast<double>(top[i]->duration_us()) *
                                  1e-6)
                        .c_str());
      out += buf;
    }
  }
  if (has_pipeline) {
    const int64_t pops = pipeline.prefetch_hits + pipeline.prefetch_stalls;
    std::snprintf(buf, sizeof(buf),
                  "  pipeline: depth %lld | hits %lld/%lld (%.0f%%) | "
                  "stalled %s | backpressure %lld | queue high-water %lld\n",
                  static_cast<long long>(pipeline.prefetch_depth),
                  static_cast<long long>(pipeline.prefetch_hits),
                  static_cast<long long>(pops),
                  pops > 0 ? 100.0 * static_cast<double>(pipeline.prefetch_hits) /
                                 static_cast<double>(pops)
                           : 0.0,
                  FormatSeconds(pipeline.stall_seconds).c_str(),
                  static_cast<long long>(pipeline.backpressure_waits),
                  static_cast<long long>(pipeline.queue_high_water));
    out += buf;
  }
  if (has_gpu) {
    const obs::OverlapReport& run = gpu.run;
    std::snprintf(buf, sizeof(buf),
                  "  gpu: %zu device%s | window %s | kernel busy %.0f%% | "
                  "overlap %.0f%% of copies | %lld bubble%s (%s)\n",
                  gpu.devices.size(), gpu.devices.size() == 1 ? "" : "s",
                  FormatSeconds(static_cast<double>(run.window_us()) * 1e-6)
                      .c_str(),
                  run.kernel_utilization() * 100.0,
                  run.overlap_ratio() * 100.0,
                  static_cast<long long>(run.bubble_count),
                  run.bubble_count == 1 ? "" : "s",
                  FormatSeconds(static_cast<double>(run.bubble_us) * 1e-6)
                      .c_str());
    out += buf;
    const obs::GpuWindowFractions f = run.WindowFractions();
    std::snprintf(buf, sizeof(buf),
                  "  gpu window: kernel-bound %.0f%% | h2d-bound %.0f%% | "
                  "d2h-bound %.0f%% | bubble %.0f%%\n",
                  f.kernel_bound * 100.0, f.h2d_bound * 100.0,
                  f.d2h_bound * 100.0, f.bubble * 100.0);
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  gpu pcie: %s/s effective of %s/s peak | occupancy high-water %s\n",
        FormatBytes(run.effective_pcie_bytes_per_sec()).c_str(),
        FormatBytes(run.pcie_peak_bytes_per_sec).c_str(),
        FormatBytes(static_cast<double>(gpu.occupancy_high_water_bytes))
            .c_str());
    out += buf;
  }
  return out;
}

std::string ExplainReport::ToJson() const {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("method");
  w.Value(method_name);
  w.Key("mode");
  w.Value(mode);
  w.Key("outcome");
  w.Value(outcome);
  w.Key("elapsed_seconds");
  w.Value(elapsed_seconds);
  w.Key("predicted_total_bytes");
  w.Value(predicted_total_bytes());
  w.Key("measured_total_bytes");
  w.Value(measured_total_bytes());
  w.Key("predicted_task_memory_bytes");
  w.Value(predicted_task_memory_bytes);
  w.Key("measured_peak_task_memory_bytes");
  w.Value(measured_peak_task_memory_bytes);
  w.Key("stages");
  w.BeginArray();
  for (const ExplainStageRow& row : stages) {
    w.BeginObject();
    w.Key("stage");
    w.Value(row.stage);
    if (row.has_prediction) {
      w.Key("predicted_bytes");
      w.Value(row.predicted_bytes);
    }
    w.Key("measured_bytes");
    w.Value(row.measured_bytes);
    w.Key("measured_seconds");
    w.Value(row.measured_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.Key("tasks");
  w.BeginObject();
  w.Key("count");
  w.Value(tasks.count);
  w.Key("retries");
  w.Value(tasks.retries);
  w.Key("p50_seconds");
  w.Value(tasks.p50_seconds);
  w.Key("p95_seconds");
  w.Value(tasks.p95_seconds);
  w.Key("max_seconds");
  w.Value(tasks.max_seconds);
  w.Key("straggler_ratio");
  w.Value(tasks.straggler_ratio);
  w.EndObject();
  if (!comm.empty()) {
    w.Key("comm");
    comm.AppendJson(&w);
  }
  if (has_critical_path) {
    w.Key("critical_path");
    critical_path.AppendJson(&w);
    w.Key("critical_path_consistency");
    w.Value(elapsed_seconds > 0
                ? static_cast<double>(critical_path.path_us) * 1e-6 /
                      elapsed_seconds
                : 0.0);
  }
  if (has_pipeline) {
    w.Key("pipeline");
    w.BeginObject();
    w.Key("prefetch_depth");
    w.Value(pipeline.prefetch_depth);
    w.Key("prefetch_hits");
    w.Value(pipeline.prefetch_hits);
    w.Key("prefetch_stalls");
    w.Value(pipeline.prefetch_stalls);
    w.Key("stall_seconds");
    w.Value(pipeline.stall_seconds);
    w.Key("backpressure_waits");
    w.Value(pipeline.backpressure_waits);
    w.Key("queue_high_water");
    w.Value(pipeline.queue_high_water);
    w.EndObject();
  }
  if (has_gpu) {
    w.Key("gpu");
    gpu.AppendJson(&w);
  }
  w.EndObject();
  return w.str();
}

Result<ExplainReport> BuildExplainReport(const MMReport& report,
                                         const mm::Method& method,
                                         const mm::MMProblem& problem,
                                         const ClusterConfig& cluster,
                                         const ExplainObsInputs& obs) {
  DISTME_ASSIGN_OR_RETURN(const mm::AnalyticCost predicted,
                          method.Analytic(problem, cluster));

  ExplainReport explain;
  explain.method_name = report.method_name;
  explain.mode = ComputeModeName(report.mode);
  explain.outcome = report.outcome.ok() ? "OK" : report.OutcomeLabel();
  explain.elapsed_seconds = report.elapsed_seconds;
  explain.predicted_task_memory_bytes = predicted.memory_per_task_bytes;
  explain.measured_peak_task_memory_bytes = report.peak_task_memory_bytes;

  ExplainStageRow repartition;
  repartition.stage = "repartition";
  repartition.has_prediction = true;
  repartition.predicted_bytes =
      predicted.repartition_elements * static_cast<double>(kElementBytes);
  repartition.measured_bytes = report.repartition_bytes;
  repartition.measured_seconds = report.steps.repartition_seconds;
  explain.stages.push_back(repartition);

  ExplainStageRow multiply;
  multiply.stage = "multiply";
  multiply.measured_seconds = report.steps.multiply_seconds;
  explain.stages.push_back(multiply);

  ExplainStageRow aggregation;
  aggregation.stage = "aggregation";
  aggregation.has_prediction = true;
  // Eq. 4 charges R·|C| even when no aggregation step runs (R = 1 writes C
  // in place); predicted *shuffle* bytes are zero in that case.
  aggregation.predicted_bytes =
      method.NeedsAggregation(problem)
          ? predicted.aggregation_elements * static_cast<double>(kElementBytes)
          : 0.0;
  aggregation.measured_bytes = report.aggregation_bytes;
  aggregation.measured_seconds = report.steps.aggregation_seconds;
  explain.stages.push_back(aggregation);

  explain.tasks = TaskStatsFromSnapshots(obs.before, obs.after);
  if (explain.tasks.count == 0) explain.tasks.count = report.num_tasks;
  explain.tasks.retries = report.task_retries;

  explain.has_pipeline = report.pipeline.prefetch_depth > 0;
  explain.pipeline = report.pipeline;

  if (obs.comm_delta != nullptr) explain.comm = *obs.comm_delta;

  if (obs.flight_events != nullptr) {
    // GPU overlap analysis first: its window fractions split the critical
    // path's opaque "gpu" attribution bucket. The PCI-E peak comes from the
    // cluster's hardware model (the roofline the copies are measured
    // against).
    explain.gpu = obs::AnalyzeGpuTimeline(*obs.flight_events,
                                          cluster.hw.pcie_bandwidth);
    explain.has_gpu = !explain.gpu.empty();
    const obs::CausalGraph graph = obs::BuildCausalGraph(*obs.flight_events);
    if (graph.wall_us() > 0) {
      obs::GpuWindowFractions fractions;
      const obs::GpuWindowFractions* split = nullptr;
      if (explain.has_gpu && explain.gpu.run.window_us() > 0) {
        fractions = explain.gpu.run.WindowFractions();
        split = &fractions;
      }
      explain.critical_path = obs::AnalyzeCriticalPath(graph, split);
      explain.has_critical_path = explain.critical_path.path_us > 0;
    }
  }
  return explain;
}

}  // namespace distme::engine
