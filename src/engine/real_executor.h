// RealExecutor: runs a distributed matrix-multiplication plan for real on an
// in-process cluster — one thread per task slot, per-node block stores,
// serialized transfers across "nodes", per-task memory tracking, and
// (optionally) the software GPU. Used to validate that every method computes
// the same product and that the analytic communication model matches
// measured bytes.

#pragma once

#include <memory>
#include <string>

#include "cluster/config.h"
#include "common/result.h"
#include "engine/distributed_matrix.h"
#include "engine/report.h"
#include "mm/method.h"
#include "obs/comm_matrix.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace distme::engine {

/// \brief Where fault injection strikes within a task attempt. All three
/// points are before the attempt's commit, so retries stay exact; they
/// differ in which pipeline state the crashed attempt abandons.
enum class FaultPoint {
  /// After compute, just before the buffered outputs commit (legacy).
  kBeforeCommit,
  /// During input fetch, after the first block has landed — a crashed
  /// attempt must release its in-flight prefetched blocks.
  kMidPrefetch,
  /// After fetch completes, before compute starts — the fetched inputs
  /// (and their memory reservations) die with the attempt.
  kBeforeCompute,
};

/// \brief Options for real execution.
struct RealOptions {
  ComputeMode mode = ComputeMode::kCpu;
  /// Enforce the per-task memory budget θt with MemoryTracker (turn off for
  /// plain correctness tests on tiny clusters).
  bool enforce_task_memory = false;
  /// Verify that blocks crossing nodes survive a serialize/deserialize
  /// round trip (exercises matrix/serialize.cc; slightly slower).
  bool serialize_transfers = true;
  /// Dispatch the heaviest tasks (most voxels) first — the load-balancing
  /// extension from the paper's future work. Changes only scheduling order,
  /// never results.
  bool lpt_scheduling = false;
  /// Fault injection: probability that any given task *attempt* crashes
  /// just before committing its outputs (deterministic per (task, attempt)).
  /// Tasks buffer their outputs and commit atomically, so retries are safe
  /// — the engine's stand-in for Spark's lineage-based task recovery.
  double task_failure_rate = 0.0;
  /// Attempts per task before the job fails (Spark's spark.task.maxFailures
  /// defaults to 4).
  int max_task_attempts = 4;
  /// Which point of an attempt the injected crash strikes (ignored when
  /// task_failure_rate == 0). The crash decision itself stays a pure
  /// function of (task id, attempt), so retry counts are identical across
  /// fault points and prefetch depths.
  FaultPoint fault_point = FaultPoint::kBeforeCommit;
  /// Prefetch pipeline depth k: each worker's fetch stage prefetches the
  /// inputs of up to k upcoming tasks (first attempts) while the worker
  /// computes, and a per-worker emit stage drains committed outputs — the
  /// fetch / compute / emit stages overlap instead of running as one
  /// serial chain per task. 0 (the default) is the legacy synchronous
  /// path. Results are bit-identical across depths: aggregation merges
  /// partials in deterministic k-order regardless of arrival order.
  int prefetch_depth = 0;
  /// Per-node byte budget for blocks staged ahead of compute (the
  /// prefetch backpressure gate); new prefetches are admitted only while
  /// staged bytes are at or under the budget. 0 = the cluster's node
  /// memory budget.
  int64_t prefetch_staging_bytes = 0;
  /// Metrics registry the run reports into (e.g. the owning Session's).
  /// When null, the executor uses a private per-run registry; either way the
  /// MMReport counters are derived from registry instruments.
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace-span sink. Null (the default) or a disabled tracer costs one
  /// branch per would-be span. Track mapping: pid = node, tid = task slot.
  obs::Tracer* tracer = nullptr;
  /// Per-link shuffle accounting: every remote block fetch (repartition) and
  /// cross-node aggregation emit is recorded with its true (src, dst)
  /// endpoints. Null (the default) costs one branch per transfer.
  obs::CommMatrix* comm = nullptr;
  /// Flight recorder: run/task lifecycle, shuffle transfers, GPU stream
  /// activity, and memory high-water marks land in its ring. Null (the
  /// default) costs one branch per would-be event.
  obs::FlightRecorder* flight = nullptr;
  /// Straggler watchdog: each task attempt registers while in flight so the
  /// watchdog's periodic scan can flag it against the stage median.
  obs::Watchdog* watchdog = nullptr;
  /// When non-empty and the run fails, the flight-recorder ring is dumped
  /// (JSON) to this path — the post-mortem for an injected or real crash.
  std::string flight_dump_path;
};

/// \brief Result of a real run: the product matrix plus the report.
struct RealRunResult {
  MMReport report;
  std::shared_ptr<DistributedMatrix> output;
};

class RealExecutor {
 public:
  explicit RealExecutor(ClusterConfig config);
  ~RealExecutor();

  /// \brief Computes C = A × B with `method`. A and B must share block size.
  [[nodiscard]] Result<RealRunResult> Run(const DistributedMatrix& a,
                            const DistributedMatrix& b,
                            const mm::Method& method,
                            const RealOptions& options = {});

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace distme::engine
