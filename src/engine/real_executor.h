// RealExecutor: runs a distributed matrix-multiplication plan for real on an
// in-process cluster — one thread per task slot, per-node block stores,
// serialized transfers across "nodes", per-task memory tracking, and
// (optionally) the software GPU. Used to validate that every method computes
// the same product and that the analytic communication model matches
// measured bytes.

#pragma once

#include <memory>
#include <string>

#include "cluster/config.h"
#include "common/result.h"
#include "engine/distributed_matrix.h"
#include "engine/report.h"
#include "mm/method.h"
#include "obs/comm_matrix.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"

namespace distme::engine {

/// \brief Options for real execution.
struct RealOptions {
  ComputeMode mode = ComputeMode::kCpu;
  /// Enforce the per-task memory budget θt with MemoryTracker (turn off for
  /// plain correctness tests on tiny clusters).
  bool enforce_task_memory = false;
  /// Verify that blocks crossing nodes survive a serialize/deserialize
  /// round trip (exercises matrix/serialize.cc; slightly slower).
  bool serialize_transfers = true;
  /// Dispatch the heaviest tasks (most voxels) first — the load-balancing
  /// extension from the paper's future work. Changes only scheduling order,
  /// never results.
  bool lpt_scheduling = false;
  /// Fault injection: probability that any given task *attempt* crashes
  /// just before committing its outputs (deterministic per (task, attempt)).
  /// Tasks buffer their outputs and commit atomically, so retries are safe
  /// — the engine's stand-in for Spark's lineage-based task recovery.
  double task_failure_rate = 0.0;
  /// Attempts per task before the job fails (Spark's spark.task.maxFailures
  /// defaults to 4).
  int max_task_attempts = 4;
  /// Metrics registry the run reports into (e.g. the owning Session's).
  /// When null, the executor uses a private per-run registry; either way the
  /// MMReport counters are derived from registry instruments.
  obs::MetricsRegistry* metrics = nullptr;
  /// Trace-span sink. Null (the default) or a disabled tracer costs one
  /// branch per would-be span. Track mapping: pid = node, tid = task slot.
  obs::Tracer* tracer = nullptr;
  /// Per-link shuffle accounting: every remote block fetch (repartition) and
  /// cross-node aggregation emit is recorded with its true (src, dst)
  /// endpoints. Null (the default) costs one branch per transfer.
  obs::CommMatrix* comm = nullptr;
  /// Flight recorder: run/task lifecycle, shuffle transfers, GPU stream
  /// activity, and memory high-water marks land in its ring. Null (the
  /// default) costs one branch per would-be event.
  obs::FlightRecorder* flight = nullptr;
  /// Straggler watchdog: each task attempt registers while in flight so the
  /// watchdog's periodic scan can flag it against the stage median.
  obs::Watchdog* watchdog = nullptr;
  /// When non-empty and the run fails, the flight-recorder ring is dumped
  /// (JSON) to this path — the post-mortem for an injected or real crash.
  std::string flight_dump_path;
};

/// \brief Result of a real run: the product matrix plus the report.
struct RealRunResult {
  MMReport report;
  std::shared_ptr<DistributedMatrix> output;
};

class RealExecutor {
 public:
  explicit RealExecutor(ClusterConfig config);
  ~RealExecutor();

  /// \brief Computes C = A × B with `method`. A and B must share block size.
  [[nodiscard]] Result<RealRunResult> Run(const DistributedMatrix& a,
                            const DistributedMatrix& b,
                            const mm::Method& method,
                            const RealOptions& options = {});

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace distme::engine
