// ExplainReport: the stage-level "EXPLAIN ANALYZE" of one distributed matrix
// multiplication. For each of the paper's three steps (repartition, local
// multiply, aggregation) it pairs the planner's predicted Table-2 cost with
// what the executor measured — wall time, bytes, task counts, straggler
// percentiles — plus this run's communication matrix. Renders as an aligned
// text table (for humans) and as JSON (for tooling), alongside the plain
// MMReport.

#pragma once

#include <string>
#include <vector>

#include "cluster/config.h"
#include "common/result.h"
#include "engine/report.h"
#include "mm/method.h"
#include "obs/comm_matrix.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/gpu_timeline.h"
#include "obs/metrics.h"

namespace distme::engine {

/// \brief One execution stage: prediction vs measurement.
struct ExplainStageRow {
  std::string stage;
  /// Table-2 prediction (elements × 8); repartition/aggregation only.
  double predicted_bytes = 0;
  bool has_prediction = false;
  double measured_bytes = 0;
  double measured_seconds = 0;
};

/// \brief Straggler statistics over this run's task durations.
struct ExplainTaskStats {
  int64_t count = 0;
  int64_t retries = 0;
  double p50_seconds = 0;
  double p95_seconds = 0;
  double max_seconds = 0;
  /// p95 over p50: 1.0 = perfectly uniform tasks, higher = a straggler tail.
  double straggler_ratio = 0;
};

/// \brief Stage-level explain report of one run.
struct ExplainReport {
  std::string method_name;
  std::string mode;
  std::string outcome;
  double elapsed_seconds = 0;

  std::vector<ExplainStageRow> stages;
  double predicted_total_bytes() const;
  double measured_total_bytes() const;

  double predicted_task_memory_bytes = 0;
  double measured_peak_task_memory_bytes = 0;

  ExplainTaskStats tasks;

  /// This run's per-link traffic (empty when no CommMatrix was wired in).
  obs::CommMatrixSnapshot comm;

  /// Critical-path analysis of the run's causal DAG (only when flight
  /// events were supplied to BuildExplainReport and held a complete run).
  bool has_critical_path = false;
  obs::CriticalPathAnalysis critical_path;

  /// Prefetch-pipeline counters (only when the run executed with
  /// prefetch_depth > 0): how often compute found staged inputs waiting vs
  /// stalled on the fetch stage, and how hard the staging-memory gate
  /// pushed back.
  bool has_pipeline = false;
  PipelineStats pipeline;

  /// GPU pipeline overlap analysis (only when flight events were supplied
  /// and contained schema-3 device interval events). When present, the
  /// critical path's "gpu" attribution is split by its window fractions.
  /// This is the same object `GET /gpu` serves and distme_analyze.py --gpu
  /// recomputes — all three report identical numbers for one run.
  bool has_gpu = false;
  obs::GpuTimelineAnalysis gpu;

  /// \brief Aligned text table: stage rows, task/straggler summary, and the
  /// comm-matrix summary line.
  std::string ToTable() const;
  std::string ToJson() const;
};

/// \brief Optional observability inputs for BuildExplainReport: registry
/// snapshots bracketing the run (for per-run histogram deltas) and this
/// run's comm-matrix delta. All pointers may be null.
struct ExplainObsInputs {
  const obs::MetricsSnapshot* before = nullptr;
  const obs::MetricsSnapshot* after = nullptr;
  const obs::CommMatrixSnapshot* comm_delta = nullptr;
  /// Flight events covering the run (a ring snapshot, or the slice of one
  /// bracketing the run). When present and a complete run is found, the
  /// report grows its critical-path section.
  const std::vector<obs::FlightEvent>* flight_events = nullptr;
};

/// \brief Combines the executed `report` with the method's Table-2
/// prediction for `problem` on `cluster`, plus whatever observability
/// inputs are available. Fails only if the problem itself is invalid for
/// the method's analytic model.
[[nodiscard]] Result<ExplainReport> BuildExplainReport(const MMReport& report,
                                         const mm::Method& method,
                                         const mm::MMProblem& problem,
                                         const ClusterConfig& cluster,
                                         const ExplainObsInputs& obs = {});

}  // namespace distme::engine
