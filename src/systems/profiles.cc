#include "systems/profiles.h"

#include <limits>

namespace distme::systems {

namespace {

using core::Planner;
using mm::MethodKind;
using mm::MMProblem;

/// SystemML's selection: among {BMM, CPMM, RMM}, keep the memory-feasible
/// ones and pick the lowest estimated time (communication at fabric rate
/// plus compute at the method's achievable parallelism). This reproduces
/// the choices the paper observed: CPMM on general and
/// common-large-dimension shapes, RMM when |C| explodes (Figure 7(c)), BMM
/// for small broadcastable operands.
class SystemMLPlanner : public Planner {
 public:
  std::string name() const override { return "SystemML-planner"; }

  Result<std::unique_ptr<mm::Method>> Choose(
      const MMProblem& problem, const ClusterConfig& cluster) const override {
    const double flops = 2.0 * problem.a.nnz() *
                         static_cast<double>(problem.b.shape.cols) *
                         problem.b.sparsity;
    const double fabric_rate =
        static_cast<double>(cluster.num_nodes) * cluster.hw.nic_bandwidth;

    auto estimate = [&](const mm::AnalyticCost& cost) {
      const double parallelism = std::min<double>(
          cost.max_tasks, static_cast<double>(cluster.total_slots()));
      return cost.total_comm_elements() * kElementBytes / fabric_rate +
             flops / (parallelism * cluster.hw.cpu_gemm_flops);
    };

    double best_time = std::numeric_limits<double>::infinity();
    MethodKind best = MethodKind::kRmm;  // always feasible fallback

    // BMM: feasible if the broadcast side fits within one task's heap share
    // and the per-task partition of the larger input plus output fits θt.
    {
      const double broadcast_bytes =
          std::min(problem.a.StoredBytes(), problem.b.StoredBytes());
      const double partitioned_bytes =
          std::max(problem.a.StoredBytes(), problem.b.StoredBytes());
      const double t = std::max<double>(
          1.0, static_cast<double>(
                   mm::BmmMethod::BroadcastsB(problem) ? problem.I()
                                                       : problem.J()));
      const double per_task =
          partitioned_bytes / t + problem.C().StoredBytes() / t;
      if (broadcast_bytes < 0.8 * static_cast<double>(
                                      cluster.task_memory_bytes) &&
          per_task < static_cast<double>(cluster.task_memory_bytes)) {
        mm::BmmMethod bmm;
        auto cost = bmm.Analytic(problem, cluster);
        // BMM's parallelism ceiling is the partitioned side's block count.
        if (cost.ok()) {
          mm::AnalyticCost capped = *cost;
          capped.max_tasks = t;
          const double time = estimate(capped);
          if (time < best_time) {
            best_time = time;
            best = MethodKind::kBmm;
          }
        }
      }
    }
    // CPMM: feasible if one k-slice's inputs fit a task.
    {
      mm::CpmmMethod cpmm;
      auto tasks = cpmm.NumTasks(problem, cluster);
      if (tasks.ok()) {
        const double inputs_per_task =
            (problem.a.StoredBytes() + problem.b.StoredBytes()) /
            static_cast<double>(*tasks);
        if (inputs_per_task < static_cast<double>(cluster.task_memory_bytes)) {
          auto cost = cpmm.Analytic(problem, cluster);
          if (cost.ok()) {
            const double time = estimate(*cost);
            if (time < best_time) {
              best_time = time;
              best = MethodKind::kCpmm;
            }
          }
        }
      }
    }
    // RMM: always feasible (voxel granularity).
    {
      mm::RmmMethod rmm;
      auto cost = rmm.Analytic(problem, cluster);
      if (cost.ok() && estimate(*cost) < best_time) {
        best = MethodKind::kRmm;
      }
    }
    return core::MakeMethod(best, problem, cluster);
  }
};

/// MatFast (naive): CPMM unless one side is small enough to broadcast
/// cheaply, with no feasibility guard — the naive version the paper compares
/// against (its optimizer was unavailable).
class MatFastPlanner : public Planner {
 public:
  std::string name() const override { return "MatFast-planner"; }

  Result<std::unique_ptr<mm::Method>> Choose(
      const MMProblem& problem, const ClusterConfig& cluster) const override {
    const double small_side =
        std::min(problem.a.StoredBytes(), problem.b.StoredBytes());
    if (small_side < 0.08 * static_cast<double>(cluster.task_memory_bytes)) {
      return core::MakeMethod(MethodKind::kBmm, problem, cluster);
    }
    return core::MakeMethod(MethodKind::kCpmm, problem, cluster);
  }
};

}  // namespace

SystemProfile DistME(bool gpu) {
  SystemProfile p;
  p.name = gpu ? "DistME(G)" : "DistME(C)";
  p.planner = std::make_shared<core::DistmePlanner>();
  p.sim.mode =
      gpu ? engine::ComputeMode::kGpuStreaming : engine::ComputeMode::kCpu;
  p.dependency_aware = true;
  return p;
}

SystemProfile SystemML(bool gpu) {
  SystemProfile p;
  p.name = gpu ? "SystemML(G)" : "SystemML(C)";
  p.planner = std::make_shared<SystemMLPlanner>();
  p.sim.mode =
      gpu ? engine::ComputeMode::kGpuBlock : engine::ComputeMode::kCpu;
  // SystemML's runtime adds interpretation/buffer-pool overhead on top of
  // the raw kernels.
  p.sim.compute_overhead = 1.15;
  return p;
}

SystemProfile MatFast(bool gpu) {
  SystemProfile p;
  p.name = gpu ? "MatFast(G)" : "MatFast(C)";
  p.planner = std::make_shared<MatFastPlanner>();
  p.sim.mode =
      gpu ? engine::ComputeMode::kGpuBlock : engine::ComputeMode::kCpu;
  // The naive version materializes map-side outputs; Spark's unified memory
  // lets tasks borrow ~19% beyond θt before failing.
  p.sim.materialize_map_outputs = true;
  p.sim.memory_slack = 1.19;
  p.sim.compute_overhead = 1.35;
  return p;
}

SystemProfile DMac() {
  SystemProfile p;
  p.name = "DMac";
  p.planner = std::make_shared<SystemMLPlanner>();
  p.sim.mode = engine::ComputeMode::kCpu;
  p.sim.compute_overhead = 1.1;
  p.dependency_aware = true;
  return p;
}

SystemProfile ScaLAPACK() {
  SystemProfile p;
  p.name = "ScaLAPACK";
  p.planner = std::make_shared<core::FixedMethodPlanner>(MethodKind::kSumma);
  p.sim.mode = engine::ComputeMode::kCpu;
  p.sim.job_overhead_factor = 0.1;  // MPI startup, no Spark driver
  // Panel-width-limited PDGEMM: rank-k updates over 1000-wide panels run
  // below square-GEMM efficiency.
  p.sim.compute_overhead = 1.1;
  return p;
}

SystemProfile SciDB() {
  SystemProfile p;
  p.name = "SciDB";
  p.planner = std::make_shared<core::FixedMethodPlanner>(MethodKind::kSumma);
  p.sim.mode = engine::ComputeMode::kCpu;
  // Inputs are re-partitioned into ScaLAPACK's block-cyclic layout before
  // the multiply, and the conversion keeps an extra array copy.
  p.sim.repartition_factor = 2.0;
  p.sim.resident_memory_factor = 1.5;
  p.sim.compute_overhead = 1.25;
  return p;
}

Result<engine::MMReport> RunMultiply(const SystemProfile& system,
                                     const mm::MMProblem& problem,
                                     const ClusterConfig& cluster) {
  engine::SimExecutor executor(cluster);
  auto method = system.planner->Choose(problem, cluster);
  if (!method.ok()) {
    // Planner infeasibility surfaces as the run's failure outcome.
    engine::MMReport report;
    report.outcome = method.status();
    report.method_name = system.name;
    return report;
  }
  engine::SimOptions sim = system.sim;
  if (system.dependency_aware) sim.repartition_factor *= 0.5;
  return executor.Run(problem, **method, sim);
}

Result<core::GnmfSimReport> RunGnmfSim(const SystemProfile& system,
                                       const core::GnmfSimOptions& base) {
  core::GnmfSimOptions options = base;
  options.sim = system.sim;
  options.dependency_aware = system.dependency_aware;
  return core::SimulateGnmf(*system.planner, options);
}

}  // namespace distme::systems
