// Comparator system models (Sections 6.3–6.5): each system is a planner
// policy (which MM method it picks) plus execution characteristics
// (GPU capability, map-output materialization, repartition overheads,
// dependency awareness). All run on the same simulated cluster, so the
// differences reproduce the paper's relative results.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/gnmf.h"
#include "core/planner.h"
#include "engine/sim_executor.h"

namespace distme::systems {

/// \brief One system under comparison.
struct SystemProfile {
  std::string name;
  std::shared_ptr<core::Planner> planner;
  engine::SimOptions sim;
  /// DMac / DistME store operator outputs pre-partitioned for consumers.
  bool dependency_aware = false;
};

/// \brief DistME — this paper's system. `gpu` selects DistME(G) (cuboid-level
/// GPU streaming, Section 4) vs DistME(C).
SystemProfile DistME(bool gpu);

/// \brief SystemML: picks BMM / CPMM / RMM by feasibility then lowest
/// analytic communication cost; spill-tolerant aggregation.
/// SystemML(G) is the paper's modification with block-level cuBLAS kernels.
SystemProfile SystemML(bool gpu);

/// \brief MatFast (naive version): CPMM for large inputs, BMM for small;
/// materializes map outputs (the O.O.M. walls of Figure 7(c)).
SystemProfile MatFast(bool gpu);

/// \brief DMac: dependency-aware CPU system (Section 6.4 only).
SystemProfile DMac();

/// \brief ScaLAPACK: SUMMA over a square process grid, MPI (no Spark
/// overheads), whole local matrices resident as single arrays.
SystemProfile ScaLAPACK();

/// \brief SciDB: wraps ScaLAPACK but re-partitions inputs into the required
/// block-cyclic layout first and keeps array copies during conversion.
SystemProfile SciDB();

/// \brief Runs one multiplication under a system profile.
[[nodiscard]] Result<engine::MMReport> RunMultiply(const SystemProfile& system,
                                     const mm::MMProblem& problem,
                                     const ClusterConfig& cluster);

/// \brief Runs the GNMF query (Section 6.4) under a system profile.
[[nodiscard]] Result<core::GnmfSimReport> RunGnmfSim(const SystemProfile& system,
                                       const core::GnmfSimOptions& base);

}  // namespace distme::systems
