#include "common/random.h"

namespace distme {

namespace {

inline uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes via splitmix64 per the xoshiro authors' guidance.
  for (auto& lane : s_) lane = SplitMix64(seed);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits → uniform in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection-free multiply-shift (Lemire); bias is negligible for our use.
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

}  // namespace distme
