// Wall-clock stopwatch for real-execution measurements.

#pragma once

#include <chrono>

namespace distme {

/// \brief Simple monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace distme
