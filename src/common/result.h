// Result<T>: value-or-Status, the companion of Status for fallible factories.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace distme {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. A default-constructed Result is an Internal error;
/// construct from a T or from a non-OK Status.
template <typename T>
class Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  /// \brief Implicit construction from a value.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// \brief Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Access the value; undefined if !ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// \brief Moves the value into `out` or returns the error.
  Status Value(T* out) && {
    if (!ok()) return status_;
    *out = std::move(*value_);
    return Status::OK();
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace distme

/// \brief Assigns the value of a Result expression to `lhs` or propagates the
/// error Status.
#define DISTME_ASSIGN_OR_RETURN_IMPL(name, lhs, rexpr) \
  auto name = (rexpr);                                 \
  if (!name.ok()) return name.status();                \
  lhs = std::move(name).ValueOrDie()

#define DISTME_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DISTME_ASSIGN_OR_RETURN_NAME(x, y) DISTME_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DISTME_ASSIGN_OR_RETURN(lhs, rexpr)                                      \
  DISTME_ASSIGN_OR_RETURN_IMPL(                                                  \
      DISTME_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, rexpr)
