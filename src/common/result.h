// Result<T>: value-or-Status, the companion of Status for fallible factories.

#pragma once

#include <optional>
#include <utility>

#include "common/status.h"

namespace distme {

/// \brief Holds either a value of type T or an error Status.
///
/// Mirrors arrow::Result. A default-constructed Result is an Internal error;
/// construct from a T or from a non-OK Status.
///
/// The class is `[[nodiscard]]`: dropping a returned Result fails the strict
/// (-Werror) build. value()/ValueOrDie() on an error Result abort with the
/// status message in every build type (no NDEBUG-dependent UB); before
/// aborting, the process-wide fatal hook runs (see internal::SetFatalHook),
/// so an installed flight recorder dumps its ring to stderr and the crash
/// leaves a telemetry trail.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result() : status_(Status::Internal("uninitialized Result")) {}

  /// \brief Implicit construction from a value.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// \brief Implicit construction from an error status. Constructing from an
  /// OK status (a programming error: there is no value to hold) degrades to
  /// an Internal error rather than leaving an ok()-but-empty Result.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status without a value");
    }
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// \brief Access the value; aborts with the status message if !ok().
  [[nodiscard]] const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  [[nodiscard]] T& value() & {
    CheckHasValue();
    return *value_;
  }
  [[nodiscard]] T value() && {
    CheckHasValue();
    return std::move(*value_);
  }

  /// \brief Legacy spelling of value(); same checked behavior.
  [[nodiscard]] const T& ValueOrDie() const& { return value(); }
  [[nodiscard]] T& ValueOrDie() & { return value(); }
  [[nodiscard]] T ValueOrDie() && { return std::move(*this).value(); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Moves the value into `out` or returns the error.
  [[nodiscard]] Status Value(T* out) && {
    if (!ok()) return status_;
    *out = std::move(*value_);
    return Status::OK();
  }

 private:
  void CheckHasValue() const {
    if (!ok()) internal::DieOnBadResultAccess(status_);
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace distme

/// \brief Assigns the value of a Result expression to `lhs` or propagates the
/// error Status.
#define DISTME_ASSIGN_OR_RETURN_IMPL(name, lhs, rexpr) \
  auto name = (rexpr);                                 \
  if (!name.ok()) return name.status();                \
  lhs = std::move(name).ValueOrDie()

#define DISTME_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DISTME_ASSIGN_OR_RETURN_NAME(x, y) DISTME_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DISTME_ASSIGN_OR_RETURN(lhs, rexpr)                                      \
  DISTME_ASSIGN_OR_RETURN_IMPL(                                                  \
      DISTME_ASSIGN_OR_RETURN_NAME(_result_, __COUNTER__), lhs, rexpr)
