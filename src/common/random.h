// Deterministic PRNG utilities for synthetic matrix generation.

#pragma once

#include <cstdint>

namespace distme {

/// \brief xoshiro256** — fast, high-quality, reproducible PRNG.
///
/// Used instead of std::mt19937 so that generated datasets are identical
/// across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t Next();

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform integer in [0, bound).
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

 private:
  uint64_t s_[4];
};

}  // namespace distme
