// Thread-safety (capability) annotations for DistME's lock discipline.
//
// Under clang the DISTME_* macros expand to the thread-safety attributes
// that `-Wthread-safety` proves statically (see
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html); under every other
// compiler they expand to nothing, so annotated code is byte-for-byte
// identical to unannotated code (tests/annotations_test.cc asserts layout,
// overload-resolution, and behavior parity against unannotated twins).
//
// Three macros are *documentation-only* and expand to nothing under every
// compiler — they exist so scripts/distme_lint.py (rule `lock-annotate`)
// can prove that every shared member of a mutex- or atomic-owning class
// states its synchronization story:
//
//   DISTME_GUARDED_BY(m)   member is read/written only while holding `m`
//                          (clang-checked where clang is available, and
//                          lint-checked everywhere via rule `lock-held`)
//   DISTME_SHARDED_BY(m)   member is guarded element-wise by the lock
//                          array/collection `m` (e.g. stores_[n] under
//                          mutexes_[n]) — clang's analysis cannot express
//                          per-element capabilities, so this one is
//                          lint-only, but rule `lock-held` still demands a
//                          visible lock on `m` at every use
//   DISTME_LOCKFREE(why)   member is shared across threads WITHOUT the
//                          class mutex, and `why` states the mechanism
//                          that makes that safe (atomics, seqlock
//                          publication, immutable-after-construction, ...)
//   DISTME_UNSHARED(why)   member is never touched concurrently, and `why`
//                          states the ownership rule (owner-thread only,
//                          set in ctor before any thread exists, ...)
//
// Members whose declared type *is* a std::atomic, and the mutexes /
// condition variables themselves, need no annotation — they are the
// synchronization. Everything else in a class that owns a mutex or an
// atomic must carry one of the four, or an inline
// `// distme-lint: allow(lock-annotate)` escape (reviewed in the diff).
//
// DESIGN.md §4.8 "Lock discipline" documents the conventions and the
// review policy for DISTME_LOCKFREE rationales.

#pragma once

// clang >= 3.5 understands the GNU attribute spellings below (the
// [[clang::...]] spellings exist only in newer clangs, so the GNU form is
// the portable way to reach the same analysis). Define
// DISTME_NO_THREAD_SAFETY_ATTRIBUTES to force the no-op expansion, e.g.
// for a tool that chokes on the attributes.
#if defined(__clang__) && !defined(DISTME_NO_THREAD_SAFETY_ATTRIBUTES)
#define DISTME_TSA_ATTRIBUTE(x) __attribute__((x))
#else
#define DISTME_TSA_ATTRIBUTE(x)  // expands to nothing outside clang
#endif

/// Declares a type to be a capability ("mutex"), e.g. a lock wrapper.
#define DISTME_CAPABILITY(x) DISTME_TSA_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires on construction, releases on
/// destruction (std::lock_guard-shaped wrappers).
#define DISTME_SCOPED_CAPABILITY DISTME_TSA_ATTRIBUTE(scoped_lockable)

/// Member is protected by the capability `x`.
#define DISTME_GUARDED_BY(x) DISTME_TSA_ATTRIBUTE(guarded_by(x))

/// Pointee (not the pointer) is protected by the capability `x`.
#define DISTME_PT_GUARDED_BY(x) DISTME_TSA_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability/ies held on entry (and does not
/// release them).
#define DISTME_REQUIRES(...) \
  DISTME_TSA_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define DISTME_REQUIRES_SHARED(...) \
  DISTME_TSA_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability/ies.
#define DISTME_ACQUIRE(...) \
  DISTME_TSA_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define DISTME_ACQUIRE_SHARED(...) \
  DISTME_TSA_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define DISTME_RELEASE(...) \
  DISTME_TSA_ATTRIBUTE(release_capability(__VA_ARGS__))
#define DISTME_RELEASE_SHARED(...) \
  DISTME_TSA_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define DISTME_TRY_ACQUIRE(...) \
  DISTME_TSA_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability/ies (it will
/// acquire them itself — deadlock guard).
#define DISTME_EXCLUDES(...) DISTME_TSA_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define DISTME_ASSERT_CAPABILITY(x) \
  DISTME_TSA_ATTRIBUTE(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define DISTME_RETURN_CAPABILITY(x) DISTME_TSA_ATTRIBUTE(lock_returned(x))

/// Opts a function out of the clang analysis (use sparingly; prefer an
/// inline distme-lint allow with a reason).
#define DISTME_NO_THREAD_SAFETY_ANALYSIS \
  DISTME_TSA_ATTRIBUTE(no_thread_safety_analysis)

/// Documentation-only (all compilers): shared member that is safe without
/// the class mutex for the stated reason. Reviewed per DESIGN.md §4.8.
#define DISTME_LOCKFREE(...)

/// Documentation-only (all compilers): member never accessed concurrently;
/// the reason states the ownership rule.
#define DISTME_UNSHARED(...)

/// Documentation-only (all compilers): member guarded element-wise by the
/// lock collection `m` (clang cannot express per-element capabilities).
#define DISTME_SHARDED_BY(m)
