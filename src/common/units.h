// Byte-size and FLOP helpers plus pretty-printing for bench output.

#pragma once

#include <cstdint>
#include <string>

namespace distme {

inline constexpr int64_t kKiB = int64_t{1} << 10;
inline constexpr int64_t kMiB = int64_t{1} << 20;
inline constexpr int64_t kGiB = int64_t{1} << 30;
inline constexpr int64_t kTiB = int64_t{1} << 40;

/// \brief Bytes per matrix element (double precision, as in the paper's
/// cuBLAS Dgemm / cusparseDcsrmm kernels).
inline constexpr int64_t kElementBytes = 8;

/// \brief Formats a byte count as a short human string, e.g. "1.50 GB".
std::string FormatBytes(double bytes);

/// \brief Formats seconds as "123.4s" / "12.3m" / "1.2h".
std::string FormatSeconds(double seconds);

/// \brief Formats an element count as "70K", "1.5M", "2B".
std::string FormatCount(double count);

}  // namespace distme
