#include "common/status.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace distme {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kExceedsDiskCapacity:
      return "ExceedsDiskCapacity";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kKeyError:
      return "KeyError";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(code == StatusCode::kOk ? nullptr
                                     : new State{code, std::move(msg)}) {}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return state_ ? state_->msg : kEmpty;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

namespace {
std::atomic<FatalHook> g_fatal_hook{nullptr};
std::atomic<bool> g_fatal_hook_ran{false};
}  // namespace

void SetFatalHook(FatalHook hook) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

void InvokeFatalHook() {
  // At most one invocation per process: a second fatal (including one
  // raised from inside the hook itself) goes straight to abort.
  bool expected = false;
  if (!g_fatal_hook_ran.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
    return;
  }
  const FatalHook hook = g_fatal_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook();
}

void DieOnBadStatus(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "[%s:%d] DISTME_CHECK_OK failed: %s\n", file, line,
               st.ToString().c_str());
  InvokeFatalHook();
  std::abort();
}

void DieOnBadResultAccess(const Status& st) {
  std::fprintf(stderr, "Result::value() called on an error Result: %s\n",
               st.ToString().c_str());
  InvokeFatalHook();
  std::abort();
}

}  // namespace internal
}  // namespace distme
