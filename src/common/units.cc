#include "common/units.h"

#include <cstdio>

namespace distme {

namespace {

std::string FormatWithSuffix(double value, const char* const* suffixes,
                             int num_suffixes, double base) {
  int idx = 0;
  while (value >= base && idx < num_suffixes - 1) {
    value /= base;
    ++idx;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", value, suffixes[idx]);
  return buf;
}

}  // namespace

std::string FormatBytes(double bytes) {
  static const char* kSuffixes[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  return FormatWithSuffix(bytes, kSuffixes, 6, 1024.0);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds > 0 && seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds > 0 && seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
  } else if (seconds < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fh", seconds / 3600.0);
  }
  return buf;
}

std::string FormatCount(double count) {
  static const char* kSuffixes[] = {"", "K", "M", "B", "T"};
  int idx = 0;
  while (count >= 1000.0 && idx < 4) {
    count /= 1000.0;
    ++idx;
  }
  char buf[64];
  if (count == static_cast<int64_t>(count)) {
    std::snprintf(buf, sizeof(buf), "%lld%s",
                  static_cast<long long>(count), kSuffixes[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", count, kSuffixes[idx]);
  }
  return buf;
}

}  // namespace distme
