// Status: error-handling primitive used across DistME API boundaries.
//
// Follows the Arrow/RocksDB idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Statuses carry a code
// plus a human-readable message.

#pragma once

#include <iosfwd>
#include <string>
#include <utility>

namespace distme {

/// \brief Error categories used throughout the engine.
///
/// The three resource-exhaustion codes mirror the failure annotations in the
/// paper's evaluation: OutOfMemory (O.O.M.), Timeout (T.O.), and
/// ExceedsDiskCapacity (E.D.C.).
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfMemory = 2,          // O.O.M. — per-task memory budget exceeded
  kTimeout = 3,              // T.O.  — job exceeded the wall-clock limit
  kExceedsDiskCapacity = 4,  // E.D.C. — shuffle spill exceeded cluster disks
  kNotImplemented = 5,
  kIOError = 6,
  kInternal = 7,
  kKeyError = 8,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus message.
///
/// `Status::OK()` is cheap (no allocation). Error statuses allocate a small
/// state block. Copyable and movable.
///
/// The class is `[[nodiscard]]`: a call site that drops a returned Status
/// fails the strict (-Werror) build. Intentional discards must say so with
/// DISTME_IGNORE_ERROR(expr).
class [[nodiscard]] Status {
 public:
  Status() noexcept : state_(nullptr) {}
  ~Status() { delete state_; }

  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      delete state_;
      state_ = other.state_ ? new State(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&& other) noexcept : state_(other.state_) { other.state_ = nullptr; }
  Status& operator=(Status&& other) noexcept {
    std::swap(state_, other.state_);
    return *this;
  }

  /// \brief A successful status.
  [[nodiscard]] static Status OK() { return Status(); }

  [[nodiscard]] static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfMemory(std::string msg) {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  [[nodiscard]] static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  [[nodiscard]] static Status ExceedsDiskCapacity(std::string msg) {
    return Status(StatusCode::kExceedsDiskCapacity, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status KeyError(std::string msg) {
    return Status(StatusCode::kKeyError, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return state_ == nullptr; }
  [[nodiscard]] bool IsOutOfMemory() const {
    return code() == StatusCode::kOutOfMemory;
  }
  [[nodiscard]] bool IsTimeout() const {
    return code() == StatusCode::kTimeout;
  }
  [[nodiscard]] bool IsExceedsDiskCapacity() const {
    return code() == StatusCode::kExceedsDiskCapacity;
  }
  [[nodiscard]] bool IsInvalid() const {
    return code() == StatusCode::kInvalidArgument;
  }

  [[nodiscard]] StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  [[nodiscard]] const std::string& message() const;

  /// \brief "OK" or "<CodeName>: <message>".
  [[nodiscard]] std::string ToString() const;

  /// \brief Marks a deliberate discard (pairs with the class-level
  /// [[nodiscard]]): logs nothing, simply consumes the value.
  void IgnoreError() const {}

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  State* state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace distme

/// \brief Propagates an error Status from the enclosing function.
#define DISTME_RETURN_NOT_OK(expr)                 \
  do {                                             \
    ::distme::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                     \
  } while (0)

/// \brief Aborts the process if `expr` is not OK (for tests/examples/benches).
#define DISTME_CHECK_OK(expr)                                       \
  do {                                                              \
    ::distme::Status _st = (expr);                                  \
    if (!_st.ok()) {                                                \
      ::distme::internal::DieOnBadStatus(_st, __FILE__, __LINE__);  \
    }                                                               \
  } while (0)

/// \brief Documents an intentional discard of a Status/Result expression;
/// the only sanctioned way to silence the [[nodiscard]] diagnostic.
#define DISTME_IGNORE_ERROR(expr) static_cast<void>(expr)

namespace distme::internal {
[[noreturn]] void DieOnBadStatus(const Status& st, const char* file, int line);

/// \brief Aborts with the status message; backs Result<T>::value() on error.
[[noreturn]] void DieOnBadResultAccess(const Status& st);

/// \brief A process-wide hook run once just before a fatal abort
/// (DieOnBadStatus / DieOnBadResultAccess), after the status message has
/// been printed. The hook must not allocate and must not abort again —
/// the observability layer installs the flight-recorder dump here so a
/// crash leaves a telemetry trail. Reentrancy is guarded by the caller.
using FatalHook = void (*)();
void SetFatalHook(FatalHook hook);

/// \brief Invokes the installed hook, at most once per process (guarded
/// against reentrant fatals from inside the hook).
void InvokeFatalHook();
}  // namespace distme::internal
