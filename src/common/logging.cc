#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace distme {

namespace {

int InitialLevel() {
  return static_cast<int>(
      ParseLogLevel(std::getenv("DISTME_LOG_LEVEL"), LogLevel::kWarning));
}

std::atomic<int> g_min_level{InitialLevel()};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel ParseLogLevel(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  if (text[1] == '\0' && text[0] >= '0' && text[0] <= '3') {
    return static_cast<LogLevel>(text[0] - '0');
  }
  std::string lower;
  for (const char* p = text; *p; ++p) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warning" || lower == "warn") return LogLevel::kWarning;
  if (lower == "error") return LogLevel::kError;
  return fallback;
}

int LogThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line
            << " tid=" << LogThreadId() << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  // One fwrite of the complete line under the lock: concurrent task-thread
  // logs can interleave only at line granularity, never mid-line.
  std::string line = stream_.str();
  line.push_back('\n');
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace internal
}  // namespace distme
