// Minimal leveled logging, off by default for library code.

#pragma once

#include <sstream>
#include <string>

namespace distme {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is actually emitted.
///
/// At startup the minimum level is taken from the `DISTME_LOG_LEVEL`
/// environment variable when set (case-insensitive level name or 0–3);
/// otherwise it defaults to Warning.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// \brief Parses "debug" / "info" / "warning" ("warn") / "error" or a digit
/// 0–3, case-insensitively; returns `fallback` for null/unrecognized input.
LogLevel ParseLogLevel(const char* text, LogLevel fallback);

/// \brief Small dense id of the calling thread (0, 1, 2, ... in first-log
/// order), used to tag log lines.
int LogThreadId();

namespace internal {

/// \brief Stream-style log sink; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace distme

#define DISTME_LOG(level)                                              \
  ::distme::internal::LogMessage(::distme::LogLevel::k##level, __FILE__, \
                                 __LINE__)
