// Minimal leveled logging, off by default for library code.

#pragma once

#include <sstream>
#include <string>

namespace distme {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// \brief Stream-style log sink; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace distme

#define DISTME_LOG(level)                                              \
  ::distme::internal::LogMessage(::distme::LogLevel::k##level, __FILE__, \
                                 __LINE__)
