#include "mm/methods.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace distme::mm {

const char* MethodKindName(MethodKind kind) {
  switch (kind) {
    case MethodKind::kBmm:
      return "BMM";
    case MethodKind::kCpmm:
      return "CPMM";
    case MethodKind::kRmm:
      return "RMM";
    case MethodKind::kCuboid:
      return "CuboidMM";
    case MethodKind::kSumma:
      return "SUMMA";
    case MethodKind::kSumma25d:
      return "2.5D";
    case MethodKind::kCrmm:
      return "CRMM";
  }
  return "?";
}

// ---------------------------------------------------------------- BMM

Result<int64_t> BmmMethod::NumTasks(const MMProblem& problem,
                                    const ClusterConfig&) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const int64_t max_tasks = BroadcastsB(problem) ? problem.I() : problem.J();
  if (tasks_ <= 0) return max_tasks;
  if (tasks_ > max_tasks) {
    return Status::Invalid("BMM supports at most " +
                           std::to_string(max_tasks) + " tasks");
  }
  return tasks_;
}

Status BmmMethod::ForEachTask(const MMProblem& problem,
                              const ClusterConfig& cluster,
                              const TaskFn& fn) const {
  DISTME_ASSIGN_OR_RETURN(const int64_t tasks, NumTasks(problem, cluster));
  const bool broadcast_b = BroadcastsB(problem);
  for (int64_t t = 0; t < tasks; ++t) {
    LocalTask task;
    task.id = t;
    if (broadcast_b) {
      // Row-partition A; broadcast the whole of B.
      const SplitRange r = Split(problem.I(), tasks, t);
      task.voxels =
          VoxelSet::Box(r.start, r.end, 0, problem.J(), 0, problem.K());
      task.b_broadcast = true;
    } else {
      // Column-partition B; broadcast the whole of A.
      const SplitRange r = Split(problem.J(), tasks, t);
      task.voxels =
          VoxelSet::Box(0, problem.I(), r.start, r.end, 0, problem.K());
      task.a_broadcast = true;
    }
    DISTME_RETURN_NOT_OK(fn(task));
  }
  return Status::OK();
}

Result<AnalyticCost> BmmMethod::Analytic(const MMProblem& problem,
                                         const ClusterConfig& cluster) const {
  DISTME_ASSIGN_OR_RETURN(const int64_t tasks, NumTasks(problem, cluster));
  if (BmmMethod::BroadcastsB(problem)) return BmmCost(problem, tasks);
  // Mirror: A broadcast — swap roles in the Table 2 formula.
  MMProblem mirrored;
  mirrored.a = problem.b;
  mirrored.b = problem.a;
  // Transposed shapes so I'=J; the formula only uses sizes, so this is safe.
  std::swap(mirrored.a.shape.rows, mirrored.a.shape.cols);
  std::swap(mirrored.b.shape.rows, mirrored.b.shape.cols);
  return BmmCost(mirrored, tasks);
}

// ---------------------------------------------------------------- CPMM

Result<int64_t> CpmmMethod::NumTasks(const MMProblem& problem,
                                     const ClusterConfig&) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  if (tasks_ <= 0) return problem.K();
  if (tasks_ > problem.K()) {
    return Status::Invalid("CPMM supports at most K = " +
                           std::to_string(problem.K()) + " tasks");
  }
  return tasks_;
}

Status CpmmMethod::ForEachTask(const MMProblem& problem,
                               const ClusterConfig& cluster,
                               const TaskFn& fn) const {
  DISTME_ASSIGN_OR_RETURN(const int64_t tasks, NumTasks(problem, cluster));
  for (int64_t t = 0; t < tasks; ++t) {
    const SplitRange r = Split(problem.K(), tasks, t);
    LocalTask task;
    task.id = t;
    task.voxels =
        VoxelSet::Box(0, problem.I(), 0, problem.J(), r.start, r.end);
    DISTME_RETURN_NOT_OK(fn(task));
  }
  return Status::OK();
}

Result<AnalyticCost> CpmmMethod::Analytic(const MMProblem& problem,
                                          const ClusterConfig& cluster) const {
  DISTME_ASSIGN_OR_RETURN(const int64_t tasks, NumTasks(problem, cluster));
  return CpmmCost(problem, tasks);
}

// ---------------------------------------------------------------- RMM

int64_t RmmMethod::ScatterMultiplier(int64_t tasks) {
  if (tasks <= 2) return 1;
  // Start near the golden-ratio fraction of T and walk to coprimality.
  int64_t g = std::max<int64_t>(1, static_cast<int64_t>(tasks * 0.6180339887));
  while (std::gcd(g, tasks) != 1) ++g;
  return g;
}

Result<int64_t> RmmMethod::NumTasks(const MMProblem& problem,
                                    const ClusterConfig&) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const int64_t max_tasks = problem.NumVoxels();
  // Default: T = I · J, the paper's best-performing setting.
  const int64_t t = tasks_ <= 0 ? problem.I() * problem.J() : tasks_;
  if (t > max_tasks) {
    return Status::Invalid("RMM supports at most I*J*K = " +
                           std::to_string(max_tasks) + " tasks");
  }
  return t;
}

Status RmmMethod::ForEachTask(const MMProblem& problem,
                              const ClusterConfig& cluster,
                              const TaskFn& fn) const {
  DISTME_ASSIGN_OR_RETURN(const int64_t tasks, NumTasks(problem, cluster));
  const int64_t g = ScatterMultiplier(tasks);
  // task(x) = (g*x) mod T; per-task voxels are the residue class
  // x ≡ g^{-1} t (mod T), enumerated with stride T. Computing g^{-1} t is
  // equivalent to finding the first x with (g*x) mod T == t; we walk the
  // residue directly via the extended-gcd-free identity below.
  // Since gcd(g, T) = 1, x0(t) = (t * ModInverse(g, T)) mod T.
  auto mod_inverse = [](int64_t a, int64_t m) {
    // Extended Euclid.
    int64_t old_r = a, r = m, old_s = 1, s = 0;
    while (r != 0) {
      const int64_t q = old_r / r;
      int64_t tmp = old_r - q * r;
      old_r = r;
      r = tmp;
      tmp = old_s - q * s;
      old_s = s;
      s = tmp;
    }
    return ((old_s % m) + m) % m;
  };
  const int64_t g_inv = mod_inverse(g, tasks);
  for (int64_t t = 0; t < tasks; ++t) {
    const int64_t start =
        static_cast<int64_t>((static_cast<unsigned __int128>(g_inv) * t) %
                             static_cast<unsigned __int128>(tasks));
    LocalTask task;
    task.id = t;
    task.voxels = VoxelSet::Strided(problem.I(), problem.J(), problem.K(),
                                    start, tasks);
    task.inputs_shared = false;
    task.aggregate_local = false;
    DISTME_RETURN_NOT_OK(fn(task));
  }
  return Status::OK();
}

Result<AnalyticCost> RmmMethod::Analytic(const MMProblem& problem,
                                         const ClusterConfig& cluster) const {
  DISTME_ASSIGN_OR_RETURN(const int64_t tasks, NumTasks(problem, cluster));
  return RmmCost(problem, tasks);
}

// ---------------------------------------------------------------- CuboidMM

std::string CuboidMethod::name() const {
  return "CuboidMM(" + std::to_string(spec_.P) + "," + std::to_string(spec_.Q) +
         "," + std::to_string(spec_.R) + ")";
}

Status CuboidMethod::ValidateSpec(const MMProblem& problem) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  if (spec_.P < 1 || spec_.P > problem.I() || spec_.Q < 1 ||
      spec_.Q > problem.J() || spec_.R < 1 || spec_.R > problem.K()) {
    return Status::Invalid("cuboid spec " + name() +
                           " out of range for I,J,K = " +
                           std::to_string(problem.I()) + "," +
                           std::to_string(problem.J()) + "," +
                           std::to_string(problem.K()));
  }
  return Status::OK();
}

Result<int64_t> CuboidMethod::NumTasks(const MMProblem& problem,
                                       const ClusterConfig&) const {
  DISTME_RETURN_NOT_OK(ValidateSpec(problem));
  return spec_.num_cuboids();
}

Status CuboidMethod::ForEachTask(const MMProblem& problem,
                                 const ClusterConfig&,
                                 const TaskFn& fn) const {
  DISTME_RETURN_NOT_OK(ValidateSpec(problem));
  int64_t id = 0;
  for (int64_t p = 0; p < spec_.P; ++p) {
    const SplitRange ir = Split(problem.I(), spec_.P, p);
    for (int64_t q = 0; q < spec_.Q; ++q) {
      const SplitRange jr = Split(problem.J(), spec_.Q, q);
      for (int64_t r = 0; r < spec_.R; ++r) {
        const SplitRange kr = Split(problem.K(), spec_.R, r);
        LocalTask task;
        task.id = id++;
        task.voxels = VoxelSet::Box(ir.start, ir.end, jr.start, jr.end,
                                    kr.start, kr.end);
        DISTME_RETURN_NOT_OK(fn(task));
      }
    }
  }
  return Status::OK();
}

Result<AnalyticCost> CuboidMethod::Analytic(const MMProblem& problem,
                                            const ClusterConfig&) const {
  DISTME_RETURN_NOT_OK(ValidateSpec(problem));
  return CuboidCost(problem, spec_);
}

// ---------------------------------------------------------------- SUMMA

CuboidSpec SummaMethod::GridFor(const MMProblem& problem,
                                const ClusterConfig& cluster) const {
  int64_t p = grid_p_;
  int64_t q = grid_q_;
  if (p <= 0 || q <= 0) {
    // Most-square factorization of the total slot count.
    const int64_t slots = cluster.total_slots();
    p = static_cast<int64_t>(std::sqrt(static_cast<double>(slots)));
    while (p > 1 && slots % p != 0) --p;
    q = slots / p;
  }
  // The grid cannot exceed the block grid of C.
  p = std::min(p, problem.I());
  q = std::min(q, problem.J());
  return CuboidSpec{p, q, 1};
}

Result<int64_t> SummaMethod::NumTasks(const MMProblem& problem,
                                      const ClusterConfig& cluster) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const CuboidSpec grid = GridFor(problem, cluster);
  return grid.P * grid.Q;
}

Status SummaMethod::ForEachTask(const MMProblem& problem,
                                const ClusterConfig& cluster,
                                const TaskFn& fn) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const CuboidSpec grid = GridFor(problem, cluster);
  CuboidMethod inner(grid);
  return inner.ForEachTask(problem, cluster, fn);
}

Result<AnalyticCost> SummaMethod::Analytic(const MMProblem& problem,
                                           const ClusterConfig& cluster) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  return CuboidCost(problem, GridFor(problem, cluster));
}

// ---------------------------------------------------------------- CRMM

int64_t CrmmMethod::MergeFactor(const MMProblem& problem,
                                const ClusterConfig& cluster) const {
  if (merge_ > 0) return merge_;
  // Largest cubic merge factor m such that one logical voxel (an m×m A
  // logical block + m×m B logical block + m×m C logical block) fits in θt.
  const double per_block_a = problem.a.BytesPerBlock();
  const double per_block_b = problem.b.BytesPerBlock();
  const double per_block_c = problem.C().BytesPerBlock();
  const int64_t max_dim =
      std::max({problem.I(), problem.J(), problem.K()});
  int64_t best = 1;
  for (int64_t m = 1; m <= max_dim; ++m) {
    const double bytes =
        static_cast<double>(m) * m * (per_block_a + per_block_b + per_block_c);
    if (bytes > static_cast<double>(cluster.task_memory_bytes)) break;
    best = m;
  }
  return best;
}

namespace {

// The coarse voxel grid CRMM works over.
struct CoarseDims {
  int64_t ci, cj, ck;
};

CoarseDims CoarseGrid(const MMProblem& p, int64_t m) {
  return {BlockedShape::CeilDiv(p.I(), m), BlockedShape::CeilDiv(p.J(), m),
          BlockedShape::CeilDiv(p.K(), m)};
}

}  // namespace

Result<int64_t> CrmmMethod::NumTasks(const MMProblem& problem,
                                     const ClusterConfig& cluster) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const CoarseDims d = CoarseGrid(problem, MergeFactor(problem, cluster));
  return d.ci * d.cj * d.ck;
}

bool CrmmMethod::NeedsAggregation(const MMProblem& problem) const {
  // Aggregation needed whenever the coarse k-dimension exceeds one. The
  // merge factor depends on the cluster; be conservative.
  return problem.K() > 1;
}

Status CrmmMethod::ForEachTask(const MMProblem& problem,
                               const ClusterConfig& cluster,
                               const TaskFn& fn) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const int64_t m = MergeFactor(problem, cluster);
  const CoarseDims d = CoarseGrid(problem, m);
  // One task per coarse (logical-block) voxel: a cubic box in fine space.
  // Within the box communication is shared (the logical block moves once);
  // across boxes nothing is shared — that is CRMM's limitation vs CuboidMM
  // (cubes instead of optimally-shaped cuboids).
  int64_t id = 0;
  for (int64_t ci = 0; ci < d.ci; ++ci) {
    for (int64_t cj = 0; cj < d.cj; ++cj) {
      for (int64_t ck = 0; ck < d.ck; ++ck) {
        LocalTask task;
        task.id = id++;
        task.voxels = VoxelSet::Box(
            ci * m, std::min((ci + 1) * m, problem.I()), cj * m,
            std::min((cj + 1) * m, problem.J()), ck * m,
            std::min((ck + 1) * m, problem.K()));
        DISTME_RETURN_NOT_OK(fn(task));
      }
    }
  }
  return Status::OK();
}

Result<AnalyticCost> CrmmMethod::Analytic(const MMProblem& problem,
                                          const ClusterConfig& cluster) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const int64_t m = MergeFactor(problem, cluster);
  const CoarseDims d = CoarseGrid(problem, m);
  AnalyticCost c;
  // RMM formula over the coarse grid, plus the logical-block-forming shuffle.
  c.repartition_elements = static_cast<double>(d.cj) * problem.a.nnz() +
                           static_cast<double>(d.ci) * problem.b.nnz() +
                           problem.a.nnz() + problem.b.nnz();
  c.aggregation_elements =
      static_cast<double>(d.ck) * problem.C().num_elements();
  const double tasks = static_cast<double>(d.ci) * d.cj * d.ck;
  c.memory_per_task_bytes =
      (static_cast<double>(d.cj) * problem.a.StoredBytes() +
       static_cast<double>(d.ci) * problem.b.StoredBytes() +
       static_cast<double>(d.ck) * problem.C().StoredBytes()) /
      tasks;
  c.max_tasks = tasks;
  return c;
}

double CrmmMethod::ExtraRepartitionBytes(const MMProblem& problem) const {
  return problem.a.StoredBytes() + problem.b.StoredBytes();
}

int64_t SummaMethod::SyncSteps(const MMProblem& problem) const {
  return problem.K();
}

// ---------------------------------------------------------------- 2.5D

CuboidSpec Summa25dMethod::GridFor(const MMProblem& problem,
                                   const ClusterConfig& cluster) const {
  const int64_t slots = cluster.total_slots();
  int64_t c = c_;
  if (c <= 0) {
    // Largest c whose c-fold-replicated inputs still fit a process:
    // resident bytes/process ≈ c · (|A| + |B|) / S + |C| / (S / c).
    const double inputs = problem.a.StoredBytes() + problem.b.StoredBytes();
    const double output = problem.C().StoredBytes();
    c = 1;
    for (int64_t candidate = 2; candidate <= slots; candidate *= 2) {
      const double per_process =
          static_cast<double>(candidate) * (inputs + output) /
          static_cast<double>(slots);
      if (per_process > static_cast<double>(cluster.task_memory_bytes)) break;
      if (slots % candidate != 0) continue;
      c = candidate;
    }
  }
  c = std::min<int64_t>(c, problem.K());
  c = std::max<int64_t>(c, 1);

  // Most-square factorization of slots / c for the ij-plane.
  const int64_t plane = std::max<int64_t>(1, slots / c);
  int64_t p = static_cast<int64_t>(std::sqrt(static_cast<double>(plane)));
  while (p > 1 && plane % p != 0) --p;
  int64_t q = plane / p;
  p = std::min(p, problem.I());
  q = std::min(q, problem.J());
  return CuboidSpec{p, q, c};
}

std::string Summa25dMethod::name() const {
  return c_ > 0 ? "2.5D(c=" + std::to_string(c_) + ")" : "2.5D";
}

Result<int64_t> Summa25dMethod::NumTasks(const MMProblem& problem,
                                         const ClusterConfig& cluster) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  return GridFor(problem, cluster).num_cuboids();
}

Status Summa25dMethod::ForEachTask(const MMProblem& problem,
                                   const ClusterConfig& cluster,
                                   const TaskFn& fn) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  CuboidMethod inner(GridFor(problem, cluster));
  return inner.ForEachTask(problem, cluster, fn);
}

Result<AnalyticCost> Summa25dMethod::Analytic(
    const MMProblem& problem, const ClusterConfig& cluster) const {
  DISTME_RETURN_NOT_OK(problem.Validate());
  return CuboidCost(problem, GridFor(problem, cluster));
}

bool Summa25dMethod::NeedsAggregation(const MMProblem& problem) const {
  // The c layers' partial C matrices are reduced whenever c > 1. With
  // auto-chosen c the interface has no cluster to consult, so be
  // conservative (a pass-through reduce of final blocks stays correct).
  if (problem.K() <= 1) return false;
  return c_ != 1;
}

int64_t Summa25dMethod::SyncSteps(const MMProblem& problem) const {
  // Each layer runs SUMMA over its K/c panel slice.
  return std::max<int64_t>(1, problem.K());
}

}  // namespace distme::mm
