// Method: the strategy interface for distributed matrix multiplication.
// A method enumerates the tasks of the local-multiplication step; the
// repartition and aggregation steps are derived from the tasks' voxel sets
// by the executors.

#pragma once

#include <memory>
#include <string>

#include "cluster/config.h"
#include "mm/cost_model.h"
#include "mm/plan.h"
#include "mm/problem.h"

namespace distme::mm {

enum class MethodKind { kBmm, kCpmm, kRmm, kCuboid, kSumma, kSumma25d, kCrmm };

const char* MethodKindName(MethodKind kind);

/// \brief A distributed matrix-multiplication method (Section 2.2 / 3).
class Method {
 public:
  virtual ~Method() = default;

  virtual MethodKind kind() const = 0;
  virtual std::string name() const = 0;

  /// \brief Number of local-multiplication tasks this method generates.
  [[nodiscard]] virtual Result<int64_t> NumTasks(const MMProblem& problem,
                                   const ClusterConfig& cluster) const = 0;

  /// \brief Streams the plan's tasks to `fn` without materializing them.
  [[nodiscard]] virtual Status ForEachTask(const MMProblem& problem,
                             const ClusterConfig& cluster,
                             const TaskFn& fn) const = 0;

  /// \brief Closed-form analytic costs (Table 2).
  [[nodiscard]] virtual Result<AnalyticCost> Analytic(const MMProblem& problem,
                                        const ClusterConfig& cluster) const = 0;

  /// \brief Whether the matrix aggregation step is needed (intermediate
  /// C blocks must be shuffled and reduced).
  virtual bool NeedsAggregation(const MMProblem& problem) const = 0;

  /// \brief Whether tasks can use cuboid-level GPU streaming. RMM cannot —
  /// its hash partitioning only allows block-level GPU computation
  /// (Section 6.2).
  virtual bool SupportsGpuStreaming() const { return true; }

  /// \brief Whether the process keeps whole local matrices resident as
  /// single arrays (ScaLAPACK/SciDB behaviour, Section 6.5) instead of
  /// spilling per-block.
  virtual bool ResidentLocalMatrices() const { return false; }

  /// \brief Extra repartition bytes beyond what tasks' input lists imply
  /// (e.g. CRMM's shuffle that forms logical blocks).
  virtual double ExtraRepartitionBytes(const MMProblem&) const { return 0.0; }

  /// \brief Number of bulk-synchronous barrier steps during local
  /// multiplication (SUMMA's per-panel broadcasts); 0 for fully
  /// asynchronous task execution.
  virtual int64_t SyncSteps(const MMProblem&) const { return 0; }
};

/// \brief Splits `n` items into `parts` balanced contiguous ranges;
/// returns [start, end) of range `idx`.
struct SplitRange {
  int64_t start;
  int64_t end;
};
inline SplitRange Split(int64_t n, int64_t parts, int64_t idx) {
  // First (n % parts) ranges get one extra item.
  const int64_t base = n / parts;
  const int64_t extra = n % parts;
  const int64_t start = idx * base + (idx < extra ? idx : extra);
  const int64_t len = base + (idx < extra ? 1 : 0);
  return {start, start + len};
}

}  // namespace distme::mm
