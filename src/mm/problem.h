// MMProblem: one distributed matrix multiplication C = A × B, described by
// the 3-dimensional voxel model of Section 2.2.

#pragma once

#include "common/result.h"
#include "mm/descriptor.h"

namespace distme::mm {

/// \brief A distributed matrix multiplication instance.
struct MMProblem {
  MatrixDescriptor a;
  MatrixDescriptor b;

  /// \brief Number of blocks on the i-axis (rows of A).
  int64_t I() const { return a.shape.block_rows(); }
  /// \brief Number of blocks on the j-axis (cols of B).
  int64_t J() const { return b.shape.block_cols(); }
  /// \brief Number of blocks on the k-axis (the common dimension).
  int64_t K() const { return a.shape.block_cols(); }

  /// \brief Total voxels I · J · K.
  int64_t NumVoxels() const { return I() * J() * K(); }

  /// \brief Worst-case (dense) descriptor for the output C.
  MatrixDescriptor C() const { return MatrixDescriptor::DenseProduct(a, b); }

  /// \brief Validates conformability and blocking.
  [[nodiscard]] Status Validate() const {
    if (a.shape.cols != b.shape.rows) {
      return Status::Invalid("inner dimensions do not match: A is " +
                             std::to_string(a.shape.rows) + "x" +
                             std::to_string(a.shape.cols) + ", B is " +
                             std::to_string(b.shape.rows) + "x" +
                             std::to_string(b.shape.cols));
    }
    if (a.shape.block_size != b.shape.block_size) {
      return Status::Invalid("block sizes do not match");
    }
    if (a.shape.block_size <= 0) return Status::Invalid("block size must be positive");
    if (a.shape.rows <= 0 || a.shape.cols <= 0 || b.shape.cols <= 0) {
      return Status::Invalid("matrix dimensions must be positive");
    }
    return Status::OK();
  }

  /// \brief Convenience constructor for dense × dense problems, dimensions
  /// in elements.
  static MMProblem DenseSquareBlocks(int64_t i_elems, int64_t k_elems,
                                     int64_t j_elems, int64_t block_size) {
    return MMProblem{MatrixDescriptor::Dense(i_elems, k_elems, block_size),
                     MatrixDescriptor::Dense(k_elems, j_elems, block_size)};
  }
};

}  // namespace distme::mm
