// The communication/memory cost model of the paper: Table 2 closed forms for
// BMM / CPMM / RMM / CuboidMM and the CuboidMM optimization functions Mem()
// (Eq. 3) and Cost() (Eq. 4).
//
// Units: communication is counted in *effective elements* (stored non-zeros
// for the inputs, dense worst-case elements for C — this is the unit the
// paper's Figure 9(b) Cost() curve uses: Cost(4,7,4) = 46.55e9 for the
// 70K×70K×70K, sparsity-0.5 dataset). Memory is counted in bytes and
// compared against θt.

#pragma once

#include <cstdint>

#include "mm/problem.h"

namespace distme::mm {

/// \brief A (P, Q, R) cuboid partitioning (Section 3.1): P, Q, R partitions
/// on the i-, j-, and k-axis respectively.
struct CuboidSpec {
  int64_t P = 1;
  int64_t Q = 1;
  int64_t R = 1;

  int64_t num_cuboids() const { return P * Q * R; }

  bool operator==(const CuboidSpec& o) const {
    return P == o.P && Q == o.Q && R == o.R;
  }
};

/// \brief Closed-form analytic costs of a method (Table 2).
struct AnalyticCost {
  double repartition_elements = 0;  ///< matrix repartition communication
  double aggregation_elements = 0;  ///< matrix aggregation communication
  double memory_per_task_bytes = 0;
  double max_tasks = 0;

  double total_comm_elements() const {
    return repartition_elements + aggregation_elements;
  }
};

/// \brief Table 2 row "BMM" with T tasks (assumes B is the broadcast side).
AnalyticCost BmmCost(const MMProblem& p, int64_t T);

/// \brief Table 2 row "CPMM" with T tasks.
AnalyticCost CpmmCost(const MMProblem& p, int64_t T);

/// \brief Table 2 row "RMM" with T tasks.
AnalyticCost RmmCost(const MMProblem& p, int64_t T);

/// \brief Table 2 row "CuboidMM": communication per Eq. (4), memory per
/// Eq. (3) (one cuboid per task, T = P·Q·R).
AnalyticCost CuboidCost(const MMProblem& p, const CuboidSpec& spec);

/// \brief Eq. (3): memory usage per task, |A|/(P·R) + |B|/(R·Q) + |C|/(P·Q),
/// in bytes.
double CuboidMemBytes(const MMProblem& p, const CuboidSpec& spec);

/// \brief Eq. (4): communication cost Q·|A| + P·|B| + R·|C|, in effective
/// elements.
double CuboidCostElements(const MMProblem& p, const CuboidSpec& spec);

}  // namespace distme::mm
