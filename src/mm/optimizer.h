// The CuboidMM parameter optimizer (Section 3.2): exhaustive search for
// (P*, Q*, R*) = argmin Cost(P,Q,R) subject to Mem(P,Q,R) ≤ θt, Eq. (2).

#pragma once

#include "cluster/config.h"
#include "common/result.h"
#include "mm/cost_model.h"

namespace distme::mm {

/// \brief Options controlling the search.
struct OptimizerOptions {
  /// Fraction of θt actually usable by matrix data (execution overhead
  /// headroom, analogous to Spark's memory fraction).
  double memory_safety_factor = 0.9;
  /// Prune candidates with P·Q·R < M·Tc so the cluster's parallelism is
  /// fully exploited (Section 3.2). When I·J·K < M·Tc this is impossible
  /// and the optimizer returns (I, J, K) instead.
  bool enforce_parallelism = true;
};

/// \brief Result of the (P,Q,R) search.
struct OptimizedCuboid {
  CuboidSpec spec;
  double cost_elements = 0;    ///< Cost(P*,Q*,R*), Eq. (4)
  double memory_bytes = 0;     ///< Mem(P*,Q*,R*), Eq. (3)
  /// True when the exceptional I·J·K < M·Tc rule fired and spec = (I,J,K).
  bool max_parallelism_fallback = false;
};

/// \brief Finds the optimal cuboid partitioning for `problem` on `cluster`.
///
/// The search space is P ∈ [1,I] × Q ∈ [1,J]; for each (P,Q) the optimal R
/// is derived in closed form (Cost is increasing and Mem decreasing in R, so
/// the best R is the smallest feasible one), making the search O(I·J)
/// while returning exactly the optimum of the full O(I·J·K) enumeration.
/// Ties are broken toward the first candidate in ascending (P, Q) order,
/// then the smaller memory footprint.
///
/// Returns OutOfMemory if even a single voxel per task exceeds θt.
[[nodiscard]] Result<OptimizedCuboid> OptimizeCuboid(const MMProblem& problem,
                                       const ClusterConfig& cluster,
                                       const OptimizerOptions& options = {});

/// \brief Brute-force reference enumerating every (P,Q,R); used by tests to
/// validate OptimizeCuboid. O(I·J·K).
[[nodiscard]] Result<OptimizedCuboid> OptimizeCuboidBruteForce(
    const MMProblem& problem, const ClusterConfig& cluster,
    const OptimizerOptions& options = {});

}  // namespace distme::mm
