// The concrete distributed matrix-multiplication methods:
//   BMM     — broadcast the smaller matrix (Section 2.2.1)
//   CPMM    — cross-product / outer-product per k (Section 2.2.2)
//   RMM     — replication with voxel-hash partitioning (Section 2.2.3)
//   CuboidMM— (P,Q,R)-cuboid partitioning, the paper's contribution (Sec. 3)
//   SUMMA   — ScaLAPACK's 2-D algorithm, (P,Q,1) grid (Section 7)
//   CRMM    — Marlin's coarsened RMM with logical blocks (Section 7)

#pragma once

#include "mm/method.h"

namespace distme::mm {

/// \brief Broadcast matrix multiplication. The smaller input is broadcast to
/// all T tasks; the larger is row- (or column-) partitioned. No aggregation.
class BmmMethod : public Method {
 public:
  /// \param tasks number of tasks; 0 = the method's maximum (I or J).
  explicit BmmMethod(int64_t tasks = 0) : tasks_(tasks) {}

  MethodKind kind() const override { return MethodKind::kBmm; }
  std::string name() const override { return "BMM"; }
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  bool NeedsAggregation(const MMProblem&) const override { return false; }

  /// \brief True if B (the right operand) is the broadcast side.
  static bool BroadcastsB(const MMProblem& problem) {
    return problem.b.StoredBytes() <= problem.a.StoredBytes();
  }

 private:
  int64_t tasks_;
};

/// \brief Cross-product matrix multiplication: A column-partitioned, B
/// row-partitioned; task k computes the outer product of A's k-th column of
/// blocks with B's k-th row of blocks; intermediates aggregated by (i, j).
class CpmmMethod : public Method {
 public:
  /// \param tasks number of tasks; 0 = K (the maximum, the paper's setting).
  explicit CpmmMethod(int64_t tasks = 0) : tasks_(tasks) {}

  MethodKind kind() const override { return MethodKind::kCpmm; }
  std::string name() const override { return "CPMM"; }
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  bool NeedsAggregation(const MMProblem& problem) const override {
    return problem.K() > 1;
  }

 private:
  int64_t tasks_;
};

/// \brief Replication-based matrix multiplication: every voxel is keyed
/// independently and hashed to a task; no communication sharing.
class RmmMethod : public Method {
 public:
  /// \param tasks number of tasks; 0 = I · J (the paper's best setting —
  /// Section 6.2 notes T = I·J·K "incurs some errors due to too many tasks").
  explicit RmmMethod(int64_t tasks = 0) : tasks_(tasks) {}

  MethodKind kind() const override { return MethodKind::kRmm; }
  std::string name() const override { return "RMM"; }
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  /// RMM's voxel-keyed intermediates always pass through a reduceByKey
  /// shuffle stage, even when K = 1 (the engine cannot know a key is
  /// unique without grouping).
  bool NeedsAggregation(const MMProblem&) const override { return true; }
  bool SupportsGpuStreaming() const override { return false; }

  /// \brief The multiplicative hash used to scatter voxels across tasks:
  /// task(x) = (g · x) mod T for linear voxel index x, with gcd(g, T) = 1.
  /// Being a bijection on Z_T, per-task voxels can be enumerated as a
  /// stride-T walk — scattered like a hash, invertible like a partition.
  static int64_t ScatterMultiplier(int64_t tasks);

 private:
  int64_t tasks_;
};

/// \brief CuboidMM (Section 3): (P,Q,R)-cuboid partitioning with one cuboid
/// per task. Generalizes BMM ((I,1,1)), CPMM ((1,1,K)), and RMM ((I,J,K)).
class CuboidMethod : public Method {
 public:
  explicit CuboidMethod(CuboidSpec spec) : spec_(spec) {}

  MethodKind kind() const override { return MethodKind::kCuboid; }
  std::string name() const override;
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  bool NeedsAggregation(const MMProblem&) const override {
    return spec_.R > 1;
  }

  const CuboidSpec& spec() const { return spec_; }

  [[nodiscard]] Status ValidateSpec(const MMProblem& problem) const;

 private:
  CuboidSpec spec_;
};

/// \brief SUMMA (ScaLAPACK): a fixed P×Q process grid covering the ij-plane
/// (R = 1); A panels broadcast along grid rows, B panels along grid columns,
/// bulk-synchronously over the K panel steps.
class SummaMethod : public Method {
 public:
  /// \brief Grid defaults to the most-square factorization of M·Tc.
  SummaMethod() = default;
  SummaMethod(int64_t grid_p, int64_t grid_q)
      : grid_p_(grid_p), grid_q_(grid_q) {}

  MethodKind kind() const override { return MethodKind::kSumma; }
  std::string name() const override { return "SUMMA"; }
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  bool NeedsAggregation(const MMProblem&) const override { return false; }
  bool ResidentLocalMatrices() const override { return true; }
  int64_t SyncSteps(const MMProblem& problem) const override;

  /// \brief The grid actually used for a given cluster.
  CuboidSpec GridFor(const MMProblem& problem,
                     const ClusterConfig& cluster) const;

 private:
  int64_t grid_p_ = 0;  // 0 = auto
  int64_t grid_q_ = 0;
};

/// \brief 2.5D matrix multiplication (Solomonik & Demmel; the HPC
/// communication-avoiding family between SUMMA (c = 1) and 3D algorithms):
/// a √(S/c) × √(S/c) × c process grid over S slots. Each of the c layers
/// owns a K/c slice and the layers' partial C's are reduced — in cuboid
/// terms, a (P, Q, c) partitioning with P·Q·c = S. Included to position
/// CuboidMM against the HPC lineage: 2.5D fixes the replication factor per
/// job; CuboidMM additionally shapes all three axes per input and memory
/// budget.
class Summa25dMethod : public Method {
 public:
  /// \param replication the layer count c; 0 = largest c such that the
  /// replicated inputs still fit the per-task memory budget.
  explicit Summa25dMethod(int64_t replication = 0) : c_(replication) {}

  MethodKind kind() const override { return MethodKind::kSumma25d; }
  std::string name() const override;
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  bool NeedsAggregation(const MMProblem& problem) const override;
  bool ResidentLocalMatrices() const override { return true; }
  int64_t SyncSteps(const MMProblem& problem) const override;

  /// \brief The (P, Q, c) grid used for a problem on a cluster.
  CuboidSpec GridFor(const MMProblem& problem,
                     const ClusterConfig& cluster) const;

 private:
  int64_t c_;
};

/// \brief CRMM (Marlin): RMM over coarsened "logical" cubic blocks. The
/// merge factor m shrinks (I, J, K) to (⌈I/m⌉, ⌈J/m⌉, ⌈K/m⌉); forming
/// logical blocks costs one extra shuffle of both inputs.
class CrmmMethod : public Method {
 public:
  /// \param merge_factor 0 = choose the largest m whose logical voxel fits θt.
  explicit CrmmMethod(int64_t merge_factor = 0) : merge_(merge_factor) {}

  MethodKind kind() const override { return MethodKind::kCrmm; }
  std::string name() const override { return "CRMM"; }
  [[nodiscard]] Result<int64_t> NumTasks(const MMProblem& problem,
                           const ClusterConfig& cluster) const override;
  [[nodiscard]] Status ForEachTask(const MMProblem& problem, const ClusterConfig& cluster,
                     const TaskFn& fn) const override;
  [[nodiscard]] Result<AnalyticCost> Analytic(const MMProblem& problem,
                                const ClusterConfig& cluster) const override;
  bool NeedsAggregation(const MMProblem& problem) const override;
  double ExtraRepartitionBytes(const MMProblem& problem) const override;

  /// \brief The merge factor used for a problem on a cluster.
  int64_t MergeFactor(const MMProblem& problem,
                      const ClusterConfig& cluster) const;

 private:
  int64_t merge_;
};

}  // namespace distme::mm
