// Plan primitives: voxel sets and local tasks. An MM method is a generator
// of LocalTasks; executors (real or simulated) consume them.

#pragma once

#include <cstdint>
#include <functional>

#include "common/result.h"

namespace distme::mm {

/// \brief One computational unit of the 3-dimensional model: computing the
/// intermediate block C^k_{i,j} = A_{i,k} · B_{k,j} (Section 2.2).
struct Voxel {
  int64_t i = 0;
  int64_t j = 0;
  int64_t k = 0;
};

/// \brief The set of voxels one task computes.
///
/// Two shapes arise in practice:
///  * kBox — an axis-aligned cuboid [i0,i1)×[j0,j1)×[k0,k1): used by BMM,
///    CPMM, CuboidMM, SUMMA. Consecutive voxels share blocks, enabling the
///    communication sharing of Figure 3(b).
///  * kStrided — every `stride`-th voxel of the row-major linearization of
///    the I×J×K voxel space: models RMM's hash partitioning, where a task's
///    voxels are non-consecutive and no communication sharing is possible.
class VoxelSet {
 public:
  enum class Kind { kBox, kStrided };

  /// \brief Axis-aligned cuboid of voxels.
  static VoxelSet Box(int64_t i0, int64_t i1, int64_t j0, int64_t j1,
                      int64_t k0, int64_t k1) {
    VoxelSet s;
    s.kind_ = Kind::kBox;
    s.i0_ = i0;
    s.i1_ = i1;
    s.j0_ = j0;
    s.j1_ = j1;
    s.k0_ = k0;
    s.k1_ = k1;
    return s;
  }

  /// \brief Voxels {start, start+stride, ...} of the linearized (I,J,K) space.
  static VoxelSet Strided(int64_t big_i, int64_t big_j, int64_t big_k,
                          int64_t start, int64_t stride) {
    VoxelSet s;
    s.kind_ = Kind::kStrided;
    s.i1_ = big_i;
    s.j1_ = big_j;
    s.k1_ = big_k;
    s.start_ = start;
    s.stride_ = stride;
    return s;
  }

  Kind kind() const { return kind_; }
  bool is_box() const { return kind_ == Kind::kBox; }

  /// \brief Number of voxels in the set.
  int64_t size() const {
    if (kind_ == Kind::kBox) {
      return (i1_ - i0_) * (j1_ - j0_) * (k1_ - k0_);
    }
    const int64_t total = i1_ * j1_ * k1_;
    if (start_ >= total) return 0;
    return (total - start_ - 1) / stride_ + 1;
  }

  // Box accessors (valid when is_box()).
  int64_t i0() const { return i0_; }
  int64_t i1() const { return i1_; }
  int64_t j0() const { return j0_; }
  int64_t j1() const { return j1_; }
  int64_t k0() const { return k0_; }
  int64_t k1() const { return k1_; }
  int64_t i_count() const { return i1_ - i0_; }
  int64_t j_count() const { return j1_ - j0_; }
  int64_t k_count() const { return k1_ - k0_; }

  /// \brief Invokes `fn(Voxel)` for every voxel, in deterministic order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (kind_ == Kind::kBox) {
      for (int64_t i = i0_; i < i1_; ++i) {
        for (int64_t j = j0_; j < j1_; ++j) {
          for (int64_t k = k0_; k < k1_; ++k) {
            fn(Voxel{i, j, k});
          }
        }
      }
      return;
    }
    const int64_t total = i1_ * j1_ * k1_;
    for (int64_t x = start_; x < total; x += stride_) {
      // Row-major decode: x = (i * J + j) * K + k.
      const int64_t k = x % k1_;
      const int64_t ij = x / k1_;
      fn(Voxel{ij / j1_, ij % j1_, k});
    }
  }

 private:
  Kind kind_ = Kind::kBox;
  // Box bounds; for kStrided, (i1_, j1_, k1_) hold the global (I, J, K).
  int64_t i0_ = 0, i1_ = 0, j0_ = 0, j1_ = 0, k0_ = 0, k1_ = 0;
  int64_t start_ = 0, stride_ = 1;
};

/// \brief One distributed task of the local-multiplication step.
struct LocalTask {
  int64_t id = 0;
  VoxelSet voxels;
  /// If true, each distinct input block is shipped to the task once (the
  /// communication sharing of cuboids); if false, inputs are shipped once
  /// per voxel (RMM's voxel-keyed shuffle).
  bool inputs_shared = true;
  /// If true, the task accumulates C^k blocks over its k range locally and
  /// emits one partial block per (i, j); if false, every voxel emits its own
  /// intermediate block to the aggregation shuffle.
  bool aggregate_local = true;
  /// If true, the task's B blocks arrive via broadcast rather than shuffle
  /// (BMM's repartition step when B is the smaller matrix).
  bool b_broadcast = false;
  /// If true, the task's A blocks arrive via broadcast (BMM with A smaller).
  bool a_broadcast = false;
};

/// \brief Callback invoked per task during plan enumeration.
using TaskFn = std::function<Status(const LocalTask&)>;

}  // namespace distme::mm
