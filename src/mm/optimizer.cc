#include "mm/optimizer.h"

#include <cmath>

namespace distme::mm {

namespace {

struct Candidate {
  CuboidSpec spec;
  double cost = 0.0;
  double mem = 0.0;
  double makespan = 0.0;  // wave-aware compute proxy
  bool valid = false;
};

// Compute-makespan proxy: tasks run in waves of `slots`, so the critical
// path is ceil(T / slots) tasks deep, each processing voxels/T voxels.
double MakespanProxy(const MMProblem& p, const CuboidSpec& spec,
                     int64_t slots) {
  const double tasks = static_cast<double>(spec.num_cuboids());
  const double waves =
      std::ceil(tasks / static_cast<double>(slots > 0 ? slots : 1));
  return waves * static_cast<double>(p.NumVoxels()) / tasks;
}

// Strictly-better comparison implementing the tie-break policy: minimize
// Cost() (Eq. 4); break ties toward the candidate that schedules into
// balanced waves, then toward the smaller memory footprint.
bool Better(const Candidate& lhs, const Candidate& rhs) {
  if (!rhs.valid) return true;
  if (lhs.cost != rhs.cost) return lhs.cost < rhs.cost;
  if (lhs.makespan != rhs.makespan) return lhs.makespan < rhs.makespan;
  return lhs.mem < rhs.mem;
}

}  // namespace

Result<OptimizedCuboid> OptimizeCuboid(const MMProblem& problem,
                                       const ClusterConfig& cluster,
                                       const OptimizerOptions& options) {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const int64_t big_i = problem.I();
  const int64_t big_j = problem.J();
  const int64_t big_k = problem.K();
  const double theta =
      options.memory_safety_factor *
      static_cast<double>(cluster.task_memory_bytes);
  const int64_t slots = cluster.total_slots();

  // Exceptional case (Section 3.2): fewer voxels than slots — use maximum
  // parallelism, which works like RMM.
  if (options.enforce_parallelism && problem.NumVoxels() < slots) {
    const CuboidSpec spec{big_i, big_j, big_k};
    OptimizedCuboid out;
    out.spec = spec;
    out.cost_elements = CuboidCostElements(problem, spec);
    out.memory_bytes = CuboidMemBytes(problem, spec);
    out.max_parallelism_fallback = true;
    if (out.memory_bytes > theta) {
      return Status::OutOfMemory(
          "even a single voxel per task exceeds the task memory budget");
    }
    return out;
  }

  const double bytes_a = problem.a.StoredBytes();
  const double bytes_b = problem.b.StoredBytes();
  const double bytes_c = problem.C().StoredBytes();

  Candidate best;
  for (int64_t p = 1; p <= big_i; ++p) {
    for (int64_t q = 1; q <= big_j; ++q) {
      // Memory: bytes_a/(P·R) + bytes_b/(R·Q) + bytes_c/(P·Q) ≤ θ
      //   ⇒ R ≥ (bytes_a/P + bytes_b/Q) / (θ − bytes_c/(P·Q)).
      const double c_term =
          bytes_c / (static_cast<double>(p) * static_cast<double>(q));
      int64_t r_min = 1;
      if (c_term > theta) continue;  // no R can fit
      const double numerator = bytes_a / p + bytes_b / q;
      if (numerator > 0.0 && theta - c_term > 0.0) {
        r_min = static_cast<int64_t>(
            std::ceil(numerator / (theta - c_term) - 1e-12));
        if (r_min < 1) r_min = 1;
      }
      if (options.enforce_parallelism) {
        const int64_t r_par = BlockedShape::CeilDiv(slots, p * q);
        if (r_par > r_min) r_min = r_par;
      }
      if (r_min > big_k) continue;
      CuboidSpec spec{p, q, r_min};
      double mem = CuboidMemBytes(problem, spec);
      // Guard against rounding: verify feasibility explicitly.
      if (mem > theta) {
        if (r_min + 1 > big_k) continue;
        spec.R = r_min + 1;
        mem = CuboidMemBytes(problem, spec);
        if (mem > theta) continue;
      }
      Candidate cand{spec, CuboidCostElements(problem, spec), mem,
                     MakespanProxy(problem, spec, slots), true};
      if (Better(cand, best)) best = cand;
    }
  }

  if (!best.valid) {
    return Status::OutOfMemory(
        "no (P,Q,R) satisfies the task memory budget of " +
        std::to_string(cluster.task_memory_bytes) + " bytes");
  }
  OptimizedCuboid out;
  out.spec = best.spec;
  out.cost_elements = best.cost;
  out.memory_bytes = best.mem;
  return out;
}

Result<OptimizedCuboid> OptimizeCuboidBruteForce(
    const MMProblem& problem, const ClusterConfig& cluster,
    const OptimizerOptions& options) {
  DISTME_RETURN_NOT_OK(problem.Validate());
  const double theta =
      options.memory_safety_factor *
      static_cast<double>(cluster.task_memory_bytes);
  const int64_t slots = cluster.total_slots();

  if (options.enforce_parallelism && problem.NumVoxels() < slots) {
    return OptimizeCuboid(problem, cluster, options);
  }

  Candidate best;
  for (int64_t p = 1; p <= problem.I(); ++p) {
    for (int64_t q = 1; q <= problem.J(); ++q) {
      for (int64_t r = 1; r <= problem.K(); ++r) {
        const CuboidSpec spec{p, q, r};
        if (options.enforce_parallelism && spec.num_cuboids() < slots) {
          continue;
        }
        const double mem = CuboidMemBytes(problem, spec);
        if (mem > theta) continue;
        Candidate cand{spec, CuboidCostElements(problem, spec), mem,
                       MakespanProxy(problem, spec, cluster.total_slots()),
                       true};
        if (Better(cand, best)) best = cand;
      }
    }
  }
  if (!best.valid) {
    return Status::OutOfMemory("no feasible (P,Q,R)");
  }
  OptimizedCuboid out;
  out.spec = best.spec;
  out.cost_elements = best.cost;
  out.memory_bytes = best.mem;
  return out;
}

}  // namespace distme::mm
