// MatrixDescriptor: the metadata the planner and simulator work from —
// logical shape, blocking, and sparsity — without materialized data.

#pragma once

#include <cstdint>

#include "common/units.h"
#include "matrix/block_grid.h"

namespace distme::mm {

/// \brief Describes a blocked matrix for planning purposes.
struct MatrixDescriptor {
  BlockedShape shape;
  /// Fraction of non-zero elements in [0, 1]; 1.0 = fully dense.
  double sparsity = 1.0;
  /// Whether blocks are stored dense (8 B/element) or CSR (16 B/non-zero).
  bool stored_dense = true;

  /// \brief Number of elements, |A| in the paper's notation.
  double num_elements() const {
    return static_cast<double>(shape.rows) * static_cast<double>(shape.cols);
  }

  /// \brief Number of non-zero elements.
  double nnz() const { return num_elements() * sparsity; }

  /// \brief Bytes this matrix occupies when shipped/stored.
  double StoredBytes() const {
    if (stored_dense) return num_elements() * kElementBytes;
    // CSR: value + column index per non-zero (row pointers negligible).
    return nnz() * (kElementBytes + 8.0);
  }

  /// \brief Average bytes per block.
  double BytesPerBlock() const {
    const double blocks = static_cast<double>(shape.block_rows()) *
                          static_cast<double>(shape.block_cols());
    return blocks == 0.0 ? 0.0 : StoredBytes() / blocks;
  }

  /// \brief Bytes for `count` average blocks.
  double BytesForBlocks(double count) const { return count * BytesPerBlock(); }

  /// \brief A dense descriptor (the paper's worst-case estimate) for the
  /// product C of two matrices described by `a` and `b`.
  static MatrixDescriptor DenseProduct(const MatrixDescriptor& a,
                                       const MatrixDescriptor& b) {
    MatrixDescriptor c;
    c.shape = BlockedShape{a.shape.rows, b.shape.cols, a.shape.block_size};
    c.sparsity = 1.0;
    c.stored_dense = true;
    return c;
  }

  /// \brief Descriptor of a dense rows×cols matrix.
  static MatrixDescriptor Dense(int64_t rows, int64_t cols,
                                int64_t block_size) {
    return MatrixDescriptor{BlockedShape{rows, cols, block_size}, 1.0, true};
  }

  /// \brief Descriptor of a sparse rows×cols matrix at given sparsity.
  static MatrixDescriptor Sparse(int64_t rows, int64_t cols,
                                 int64_t block_size, double sparsity) {
    return MatrixDescriptor{BlockedShape{rows, cols, block_size}, sparsity,
                            false};
  }

  /// \brief Descriptor matching an actual local blocked matrix.
  static MatrixDescriptor FromGrid(const BlockGrid& grid);
};

}  // namespace distme::mm
