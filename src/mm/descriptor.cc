#include "mm/descriptor.h"

namespace distme::mm {

MatrixDescriptor MatrixDescriptor::FromGrid(const BlockGrid& grid) {
  MatrixDescriptor d;
  d.shape = grid.shape();
  const double total = d.num_elements();
  d.sparsity = total == 0.0 ? 0.0 : grid.TotalNnz() / total;
  // Treat as dense storage if most blocks are dense.
  int64_t dense_blocks = 0;
  for (const auto& [idx, block] : grid.blocks()) {
    if (block.IsDense()) ++dense_blocks;
  }
  d.stored_dense = dense_blocks * 2 >= grid.num_blocks();
  return d;
}

}  // namespace distme::mm
