#include "mm/cost_model.h"

namespace distme::mm {

namespace {

// Effective element counts: stored non-zeros for inputs, dense for C.
double EffA(const MMProblem& p) { return p.a.nnz(); }
double EffB(const MMProblem& p) { return p.b.nnz(); }
double EffC(const MMProblem& p) { return p.C().num_elements(); }

double BytesA(const MMProblem& p) { return p.a.StoredBytes(); }
double BytesB(const MMProblem& p) { return p.b.StoredBytes(); }
double BytesC(const MMProblem& p) { return p.C().StoredBytes(); }

}  // namespace

AnalyticCost BmmCost(const MMProblem& p, int64_t T) {
  AnalyticCost c;
  const double t = static_cast<double>(T);
  c.repartition_elements = EffA(p) + t * EffB(p);
  c.aggregation_elements = 0.0;
  c.memory_per_task_bytes = BytesA(p) / t + BytesB(p) + BytesC(p) / t;
  c.max_tasks = static_cast<double>(p.I());
  return c;
}

AnalyticCost CpmmCost(const MMProblem& p, int64_t T) {
  AnalyticCost c;
  const double t = static_cast<double>(T);
  c.repartition_elements = EffA(p) + EffB(p);
  c.aggregation_elements = t * EffC(p);
  c.memory_per_task_bytes = BytesA(p) / t + BytesB(p) / t + BytesC(p);
  c.max_tasks = static_cast<double>(p.K());
  return c;
}

AnalyticCost RmmCost(const MMProblem& p, int64_t T) {
  AnalyticCost c;
  const double t = static_cast<double>(T);
  const double big_i = static_cast<double>(p.I());
  const double big_j = static_cast<double>(p.J());
  const double big_k = static_cast<double>(p.K());
  c.repartition_elements = big_j * EffA(p) + big_i * EffB(p);
  c.aggregation_elements = big_k * EffC(p);
  c.memory_per_task_bytes =
      (big_j * BytesA(p) + big_i * BytesB(p) + big_k * BytesC(p)) / t;
  c.max_tasks = big_i * big_j * big_k;
  return c;
}

double CuboidMemBytes(const MMProblem& p, const CuboidSpec& spec) {
  const double pp = static_cast<double>(spec.P);
  const double qq = static_cast<double>(spec.Q);
  const double rr = static_cast<double>(spec.R);
  return BytesA(p) / (pp * rr) + BytesB(p) / (rr * qq) +
         BytesC(p) / (pp * qq);
}

double CuboidCostElements(const MMProblem& p, const CuboidSpec& spec) {
  return static_cast<double>(spec.Q) * EffA(p) +
         static_cast<double>(spec.P) * EffB(p) +
         static_cast<double>(spec.R) * EffC(p);
}

AnalyticCost CuboidCost(const MMProblem& p, const CuboidSpec& spec) {
  AnalyticCost c;
  c.repartition_elements = static_cast<double>(spec.Q) * EffA(p) +
                           static_cast<double>(spec.P) * EffB(p);
  c.aggregation_elements = static_cast<double>(spec.R) * EffC(p);
  c.memory_per_task_bytes = CuboidMemBytes(p, spec);
  c.max_tasks = static_cast<double>(p.NumVoxels());
  return c;
}

}  // namespace distme::mm
