// Block-level operations: multiply-accumulate with format dispatch,
// element-wise combinators, transpose. These are the "kernel functions"
// of the paper's local multiplication step, on CPU.

#pragma once

#include "common/result.h"
#include "matrix/block.h"

namespace distme::blas {

/// \brief acc += A_block * B_block, dispatching on the four format
/// combinations (dense×dense → Dgemm, sparse×dense → DcsrMm, ...).
///
/// `acc` must be A.rows() × B.cols(). Mirrors the paper's use of
/// cublasDgemm for dense and cusparseDcsrmm for sparse blocks.
[[nodiscard]] Status MultiplyAccumulate(const Block& a, const Block& b, DenseMatrix* acc);

/// \brief Returns A_block * B_block as a dense block.
[[nodiscard]] Result<Block> MultiplyBlocks(const Block& a, const Block& b);

/// \brief Element-wise binary op codes supported by the engine.
enum class ElementWiseOp { kAdd, kSub, kMul, kDiv };

/// \brief Element-wise combine of two equally-shaped blocks.
///
/// Division guards against zero denominators with +epsilon, matching the
/// standard GNMF update implementations.
[[nodiscard]] Result<Block> ElementWise(ElementWiseOp op, const Block& a, const Block& b,
                          double epsilon = 0.0);

/// \brief Adds two blocks (the aggregation-step reducer).
[[nodiscard]] Result<Block> AddBlocks(const Block& a, const Block& b);

/// \brief Block transpose.
Block TransposeBlock(const Block& block);

/// \brief Multiplies every element by a scalar.
Block ScaleBlock(const Block& block, double factor);

/// \brief Floating-point multiply-add count for multiplying two blocks —
/// the simulator's work metric.
int64_t MultiplyFlops(int64_t a_rows, int64_t a_cols, int64_t b_cols);

}  // namespace distme::blas
