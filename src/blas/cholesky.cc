#include "blas/cholesky.h"

#include <cmath>

namespace distme::blas {

Result<DenseMatrix> Cholesky(const DenseMatrix& a) {
  if (a.rows() != a.cols()) {
    return Status::Invalid("Cholesky requires a square matrix");
  }
  const int64_t n = a.rows();
  DenseMatrix l(n, n);
  for (int64_t j = 0; j < n; ++j) {
    // Diagonal: l_jj = sqrt(a_jj − Σ_k l_jk²).
    double diag = a.At(j, j);
    const double* lrow_j = l.row(j);
    for (int64_t k = 0; k < j; ++k) diag -= lrow_j[k] * lrow_j[k];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::Invalid(
          "matrix is not positive definite (pivot " + std::to_string(j) +
          " = " + std::to_string(diag) + ")");
    }
    const double ljj = std::sqrt(diag);
    l.Set(j, j, ljj);
    // Column below the diagonal.
    for (int64_t i = j + 1; i < n; ++i) {
      double sum = a.At(i, j);
      const double* lrow_i = l.row(i);
      for (int64_t k = 0; k < j; ++k) sum -= lrow_i[k] * lrow_j[k];
      l.Set(i, j, sum / ljj);
    }
  }
  return l;
}

Result<DenseMatrix> SolveLowerTriangular(const DenseMatrix& l,
                                         const DenseMatrix& b) {
  if (l.rows() != l.cols()) return Status::Invalid("L must be square");
  if (l.rows() != b.rows()) return Status::Invalid("dimension mismatch");
  const int64_t n = l.rows();
  const int64_t m = b.cols();
  DenseMatrix y = b;
  for (int64_t i = 0; i < n; ++i) {
    const double lii = l.At(i, i);
    if (lii == 0.0) return Status::Invalid("singular triangular factor");
    for (int64_t c = 0; c < m; ++c) {
      double sum = y.At(i, c);
      for (int64_t k = 0; k < i; ++k) sum -= l.At(i, k) * y.At(k, c);
      y.Set(i, c, sum / lii);
    }
  }
  return y;
}

Result<DenseMatrix> SolveUpperTriangularFromLower(const DenseMatrix& l,
                                                  const DenseMatrix& y) {
  if (l.rows() != l.cols()) return Status::Invalid("L must be square");
  if (l.rows() != y.rows()) return Status::Invalid("dimension mismatch");
  const int64_t n = l.rows();
  const int64_t m = y.cols();
  DenseMatrix x = y;
  for (int64_t i = n - 1; i >= 0; --i) {
    const double lii = l.At(i, i);
    if (lii == 0.0) return Status::Invalid("singular triangular factor");
    for (int64_t c = 0; c < m; ++c) {
      double sum = x.At(i, c);
      // (Lᵀ)_{i,k} = L_{k,i} for k > i.
      for (int64_t k = i + 1; k < n; ++k) sum -= l.At(k, i) * x.At(k, c);
      x.Set(i, c, sum / lii);
    }
  }
  return x;
}

Result<DenseMatrix> CholeskySolve(const DenseMatrix& a,
                                  const DenseMatrix& b) {
  DISTME_ASSIGN_OR_RETURN(DenseMatrix l, Cholesky(a));
  DISTME_ASSIGN_OR_RETURN(DenseMatrix y, SolveLowerTriangular(l, b));
  return SolveUpperTriangularFromLower(l, y);
}

}  // namespace distme::blas
