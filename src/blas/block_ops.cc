#include "blas/block_ops.h"

#include "blas/gemm.h"
#include "blas/spmm.h"

namespace distme::blas {

Status MultiplyAccumulate(const Block& a, const Block& b, DenseMatrix* acc) {
  if (a.cols() != b.rows()) {
    return Status::Invalid("inner dimensions do not match");
  }
  if (acc->rows() != a.rows() || acc->cols() != b.cols()) {
    return Status::Invalid("accumulator has wrong shape");
  }
  if (a.IsDense() && b.IsDense()) {
    Dgemm(1.0, a.dense(), b.dense(), 1.0, acc);
  } else if (a.IsSparse() && b.IsDense()) {
    DcsrMm(a.sparse(), b.dense(), acc);
  } else if (a.IsDense() && b.IsSparse()) {
    DgeCsrMm(a.dense(), b.sparse(), acc);
  } else {
    DcsrCsrMm(a.sparse(), b.sparse(), acc);
  }
  return Status::OK();
}

Result<Block> MultiplyBlocks(const Block& a, const Block& b) {
  DenseMatrix acc(a.rows(), b.cols());
  DISTME_RETURN_NOT_OK(MultiplyAccumulate(a, b, &acc));
  return Block::Dense(std::move(acc));
}

Result<Block> ElementWise(ElementWiseOp op, const Block& a, const Block& b,
                          double epsilon) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::Invalid("element-wise operands have different shapes");
  }
  // Sparse fast path for multiply: iterate only A's non-zeros.
  if (op == ElementWiseOp::kMul && a.IsSparse()) {
    const CsrMatrix& s = a.sparse();
    std::vector<Triplet> out;
    out.reserve(static_cast<size_t>(s.nnz()));
    for (int64_t r = 0; r < s.rows(); ++r) {
      for (int64_t k = s.row_ptr()[r]; k < s.row_ptr()[r + 1]; ++k) {
        const int64_t c = s.col_idx()[k];
        const double v = s.values()[k] * b.At(r, c);
        if (v != 0.0) out.push_back({r, c, v});
      }
    }
    DISTME_ASSIGN_OR_RETURN(CsrMatrix csr,
                            CsrMatrix::FromTriplets(a.rows(), a.cols(),
                                                    std::move(out)));
    return Block::Sparse(std::move(csr));
  }

  DenseMatrix da = a.ToDense();
  DenseMatrix db = b.ToDense();
  DenseMatrix out(a.rows(), a.cols());
  const double* pa = da.data();
  const double* pb = db.data();
  double* po = out.mutable_data();
  const int64_t n = out.num_elements();
  switch (op) {
    case ElementWiseOp::kAdd:
      for (int64_t i = 0; i < n; ++i) po[i] = pa[i] + pb[i];
      break;
    case ElementWiseOp::kSub:
      for (int64_t i = 0; i < n; ++i) po[i] = pa[i] - pb[i];
      break;
    case ElementWiseOp::kMul:
      for (int64_t i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
      break;
    case ElementWiseOp::kDiv:
      for (int64_t i = 0; i < n; ++i) po[i] = pa[i] / (pb[i] + epsilon);
      break;
  }
  return Block::Dense(std::move(out));
}

Result<Block> AddBlocks(const Block& a, const Block& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return Status::Invalid("cannot add blocks of different shapes");
  }
  // Zero blocks are common during aggregation; skip the work.
  if (a.nnz() == 0) return b;
  if (b.nnz() == 0) return a;
  if (a.IsSparse() && b.IsSparse()) {
    std::vector<Triplet> triplets;
    triplets.reserve(static_cast<size_t>(a.nnz() + b.nnz()));
    for (const CsrMatrix* m : {&a.sparse(), &b.sparse()}) {
      for (int64_t r = 0; r < m->rows(); ++r) {
        for (int64_t k = m->row_ptr()[r]; k < m->row_ptr()[r + 1]; ++k) {
          triplets.push_back({r, m->col_idx()[k], m->values()[k]});
        }
      }
    }
    DISTME_ASSIGN_OR_RETURN(CsrMatrix csr,
                            CsrMatrix::FromTriplets(a.rows(), a.cols(),
                                                    std::move(triplets)));
    return Block::Sparse(std::move(csr));
  }
  return ElementWise(ElementWiseOp::kAdd, a, b);
}

Block TransposeBlock(const Block& block) {
  if (block.IsDense()) return Block::Dense(block.dense().Transpose());
  return Block::Sparse(block.sparse().Transpose());
}

Block ScaleBlock(const Block& block, double factor) {
  if (block.IsSparse()) {
    const CsrMatrix& s = block.sparse();
    std::vector<Triplet> out;
    out.reserve(static_cast<size_t>(s.nnz()));
    for (int64_t r = 0; r < s.rows(); ++r) {
      for (int64_t k = s.row_ptr()[r]; k < s.row_ptr()[r + 1]; ++k) {
        out.push_back({r, s.col_idx()[k], s.values()[k] * factor});
      }
    }
    return Block::Sparse(*CsrMatrix::FromTriplets(s.rows(), s.cols(),
                                                  std::move(out)));
  }
  DenseMatrix d = block.dense();
  double* p = d.mutable_data();
  for (int64_t i = 0; i < d.num_elements(); ++i) p[i] *= factor;
  return Block::Dense(std::move(d));
}

int64_t MultiplyFlops(int64_t a_rows, int64_t a_cols, int64_t b_cols) {
  return 2 * a_rows * a_cols * b_cols;
}

}  // namespace distme::blas
