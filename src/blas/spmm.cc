#include "blas/spmm.h"

#include <cassert>

namespace distme::blas {

void DcsrMm(const CsrMatrix& a, const DenseMatrix& b, DenseMatrix* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  const int64_t n = b.cols();
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* crow = c->mutable_row(i);
    for (int64_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const double av = a.values()[k];
      const double* brow = b.row(a.col_idx()[k]);
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void DgeCsrMm(const DenseMatrix& a, const CsrMatrix& b, DenseMatrix* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  const int64_t m = a.rows();
  // For each non-zero B(r, j): C(:, j) += A(:, r) * value. Iterating rows of
  // B keeps A column access strided but B access sequential.
  for (int64_t r = 0; r < b.rows(); ++r) {
    for (int64_t k = b.row_ptr()[r]; k < b.row_ptr()[r + 1]; ++k) {
      const int64_t j = b.col_idx()[k];
      const double bv = b.values()[k];
      for (int64_t i = 0; i < m; ++i) {
        c->Add(i, j, a.At(i, r) * bv);
      }
    }
  }
}

void DcsrCsrMm(const CsrMatrix& a, const CsrMatrix& b, DenseMatrix* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    double* crow = c->mutable_row(i);
    for (int64_t ka = a.row_ptr()[i]; ka < a.row_ptr()[i + 1]; ++ka) {
      const int64_t r = a.col_idx()[ka];
      const double av = a.values()[ka];
      for (int64_t kb = b.row_ptr()[r]; kb < b.row_ptr()[r + 1]; ++kb) {
        crow[b.col_idx()[kb]] += av * b.values()[kb];
      }
    }
  }
}

}  // namespace distme::blas
