// Single-node blocked matrix multiply — the correctness reference for every
// distributed method.

#pragma once

#include "common/result.h"
#include "matrix/block_grid.h"

namespace distme::blas {

/// \brief Computes C = A × B on blocked matrices locally (no distribution).
///
/// Requires equal block sizes and A.cols == B.rows. Output blocks that end
/// up all-zero are omitted from the grid.
[[nodiscard]] Result<BlockGrid> LocalMultiply(const BlockGrid& a, const BlockGrid& b);

/// \brief Blocked transpose.
BlockGrid LocalTranspose(const BlockGrid& m);

}  // namespace distme::blas
