// Blocked Cholesky factorization and triangular solves — one of the
// matrix-computation applications the paper's introduction motivates.
// Used on the (small, dense) Gram matrices that distributed multiplications
// produce, e.g. solving normal equations AᵀA x = Aᵀb.

#pragma once

#include "common/result.h"
#include "matrix/dense_matrix.h"

namespace distme::blas {

/// \brief Factors a symmetric positive-definite matrix A = L·Lᵀ.
/// Returns the lower-triangular L; fails with Invalid if A is not SPD
/// (within numerical tolerance) or not square.
[[nodiscard]] Result<DenseMatrix> Cholesky(const DenseMatrix& a);

/// \brief Solves L·y = b for lower-triangular L (forward substitution).
/// b may have multiple columns.
[[nodiscard]] Result<DenseMatrix> SolveLowerTriangular(const DenseMatrix& l,
                                         const DenseMatrix& b);

/// \brief Solves Lᵀ·x = y for lower-triangular L (back substitution).
[[nodiscard]] Result<DenseMatrix> SolveUpperTriangularFromLower(const DenseMatrix& l,
                                                  const DenseMatrix& y);

/// \brief Solves the SPD system A·x = b via Cholesky (A = L·Lᵀ, then the
/// two triangular solves).
[[nodiscard]] Result<DenseMatrix> CholeskySolve(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace distme::blas
