#include "blas/local_mm.h"

#include "blas/block_ops.h"

namespace distme::blas {

Result<BlockGrid> LocalMultiply(const BlockGrid& a, const BlockGrid& b) {
  if (a.shape().cols != b.shape().rows) {
    return Status::Invalid("inner matrix dimensions do not match");
  }
  if (a.shape().block_size != b.shape().block_size) {
    return Status::Invalid("block sizes do not match");
  }
  BlockGrid c(BlockedShape{a.shape().rows, b.shape().cols,
                           a.shape().block_size});
  const int64_t big_i = a.block_rows();
  const int64_t big_k = a.block_cols();
  const int64_t big_j = b.block_cols();
  for (int64_t i = 0; i < big_i; ++i) {
    for (int64_t j = 0; j < big_j; ++j) {
      DenseMatrix acc(c.shape().BlockRowsAt(i), c.shape().BlockColsAt(j));
      bool any = false;
      for (int64_t k = 0; k < big_k; ++k) {
        if (!a.Has({i, k}) || !b.Has({k, j})) continue;
        DISTME_RETURN_NOT_OK(
            MultiplyAccumulate(a.Get({i, k}), b.Get({k, j}), &acc));
        any = true;
      }
      if (any && acc.CountNonZeros() > 0) {
        DISTME_RETURN_NOT_OK(c.Put({i, j}, Block::Dense(std::move(acc))));
      }
    }
  }
  return c;
}

BlockGrid LocalTranspose(const BlockGrid& m) {
  BlockGrid out(BlockedShape{m.shape().cols, m.shape().rows,
                             m.shape().block_size});
  for (const auto& [idx, block] : m.blocks()) {
    DISTME_CHECK_OK(out.Put({idx.j, idx.i}, TransposeBlock(block)));
  }
  return out;
}

}  // namespace distme::blas
