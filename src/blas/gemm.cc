#include "blas/gemm.h"

#include <algorithm>
#include <cassert>

namespace distme::blas {

namespace {

// Tile sizes chosen so one A tile + one B tile fit comfortably in L2.
constexpr int64_t kTileI = 64;
constexpr int64_t kTileK = 256;
constexpr int64_t kTileJ = 256;

}  // namespace

void Dgemm(double alpha, const DenseMatrix& a, const DenseMatrix& b,
           double beta, DenseMatrix* c) {
  assert(a.cols() == b.rows());
  assert(c->rows() == a.rows() && c->cols() == b.cols());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();

  if (beta != 1.0) {
    double* pc = c->mutable_data();
    if (beta == 0.0) {
      std::fill(pc, pc + m * n, 0.0);
    } else {
      for (int64_t idx = 0; idx < m * n; ++idx) pc[idx] *= beta;
    }
  }
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;

  const double* pa = a.data();
  const double* pb = b.data();
  double* pc = c->mutable_data();

  // i-k-j loop order with tiling: the inner j loop is a contiguous
  // axpy over a B row, which vectorizes well.
  for (int64_t i0 = 0; i0 < m; i0 += kTileI) {
    const int64_t i_end = std::min(i0 + kTileI, m);
    for (int64_t k0 = 0; k0 < k; k0 += kTileK) {
      const int64_t k_end = std::min(k0 + kTileK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kTileJ) {
        const int64_t j_end = std::min(j0 + kTileJ, n);
        for (int64_t i = i0; i < i_end; ++i) {
          double* crow = pc + i * n;
          const double* arow = pa + i * k;
          for (int64_t kk = k0; kk < k_end; ++kk) {
            const double av = alpha * arow[kk];
            if (av == 0.0) continue;
            const double* brow = pb + kk * n;
            for (int64_t j = j0; j < j_end; ++j) {
              crow[j] += av * brow[j];
            }
          }
        }
      }
    }
  }
}

DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols());
  Dgemm(1.0, a, b, 0.0, &c);
  return c;
}

void DgemmReference(double alpha, const DenseMatrix& a, const DenseMatrix& b,
                    double beta, DenseMatrix* c) {
  assert(a.cols() == b.rows());
  const int64_t m = a.rows();
  const int64_t k = a.cols();
  const int64_t n = b.cols();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        sum += a.At(i, kk) * b.At(kk, j);
      }
      c->Set(i, j, alpha * sum + beta * c->At(i, j));
    }
  }
}

}  // namespace distme::blas
