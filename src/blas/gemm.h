// CPU dense matrix-multiplication kernels (the LAPACK/MKL stand-in the paper
// cites for CPU-based local multiplication).

#pragma once

#include "matrix/dense_matrix.h"

namespace distme::blas {

/// \brief C = alpha * A * B + beta * C (row-major, cache-tiled).
///
/// Requires A.cols() == B.rows(), C is A.rows() × B.cols().
void Dgemm(double alpha, const DenseMatrix& a, const DenseMatrix& b,
           double beta, DenseMatrix* c);

/// \brief Convenience: returns A * B.
DenseMatrix Multiply(const DenseMatrix& a, const DenseMatrix& b);

/// \brief Naive triple-loop reference used to validate the tiled kernel.
void DgemmReference(double alpha, const DenseMatrix& a, const DenseMatrix& b,
                    double beta, DenseMatrix* c);

}  // namespace distme::blas
