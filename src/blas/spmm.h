// Sparse × dense kernels (the cuSPARSE csrmm stand-in on CPU).

#pragma once

#include "matrix/dense_matrix.h"
#include "matrix/sparse_matrix.h"

namespace distme::blas {

/// \brief C += A * B where A is CSR and B, C dense.
void DcsrMm(const CsrMatrix& a, const DenseMatrix& b, DenseMatrix* c);

/// \brief C += A * B where A is dense and B is CSR.
void DgeCsrMm(const DenseMatrix& a, const CsrMatrix& b, DenseMatrix* c);

/// \brief C += A * B where both A and B are CSR; C accumulates densely.
void DcsrCsrMm(const CsrMatrix& a, const CsrMatrix& b, DenseMatrix* c);

}  // namespace distme::blas
