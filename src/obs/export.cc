#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace distme::obs {

void JsonWriter::Separate() {
  if (pending_value_) {
    pending_value_ = false;
    return;
  }
  if (first_stack_.empty()) return;
  if (first_stack_.back()) {
    first_stack_.back() = false;
  } else {
    out_.push_back(',');
  }
}

void JsonWriter::AppendQuoted(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\r':
        out_.append("\\r");
        break;
      case '\t':
        out_.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::Value(int64_t value) {
  Separate();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_.append(buf);
}

void JsonWriter::Value(double value) {
  Separate();
  if (!std::isfinite(value)) {
    // JSON has no NaN/Inf token. `null` is the honest encoding — a literal
    // 0 silently turns "no observations yet" (min = +inf) into a plausible
    // measurement downstream.
    out_.append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_.append(buf);
}

void JsonWriter::Value(bool value) {
  Separate();
  out_.append(value ? "true" : "false");
}

namespace {

void AppendArgValue(const TraceArgValue& value, JsonWriter* w) {
  switch (value.kind) {
    case TraceArgValue::Kind::kInt:
      w->Value(value.i);
      break;
    case TraceArgValue::Kind::kDouble:
      w->Value(value.d);
      break;
    case TraceArgValue::Kind::kString:
      w->Value(value.s);
      break;
  }
}

// Metadata event ("ph":"M") naming a process or thread track.
void AppendMetadataEvent(const char* meta_name, int pid, int tid,
                         const std::string& label, JsonWriter* w) {
  w->BeginObject();
  w->Key("name");
  w->Value(meta_name);
  w->Key("ph");
  w->Value("M");
  w->Key("ts");
  w->Value(int64_t{0});
  w->Key("pid");
  w->Value(pid);
  w->Key("tid");
  w->Value(tid);
  w->Key("args");
  w->BeginObject();
  w->Key("name");
  w->Value(label);
  w->EndObject();
  w->EndObject();
}

}  // namespace

std::string ChromeTraceJson(const Tracer& tracer,
                            const std::vector<TraceEvent>& events) {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.Value("ms");
  w.Key("traceEvents");
  w.BeginArray();
  for (const auto& [pid, name] : tracer.process_names()) {
    AppendMetadataEvent("process_name", pid, 0, name, &w);
  }
  for (const auto& [track, name] : tracer.thread_names()) {
    AppendMetadataEvent("thread_name", track.first, track.second, name, &w);
  }
  for (const TraceEvent& event : events) {
    w.BeginObject();
    w.Key("name");
    w.Value(event.name);
    if (!event.category.empty()) {
      w.Key("cat");
      w.Value(event.category);
    }
    w.Key("ph");
    w.Value("X");
    w.Key("ts");
    w.Value(event.ts_us);
    w.Key("dur");
    w.Value(event.dur_us);
    w.Key("pid");
    w.Value(event.pid);
    w.Key("tid");
    w.Value(event.tid);
    if (!event.args.empty()) {
      w.Key("args");
      w.BeginObject();
      for (const auto& [key, value] : event.args) {
        w.Key(key);
        AppendArgValue(value, &w);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status WriteChromeTrace(Tracer& tracer, const std::string& path) {
  return WriteTextFile(path, ChromeTraceJson(tracer, tracer.Drain()));
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open output file: " + path);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IOError("short write to output file: " + path);
  }
  return Status::OK();
}

void AppendMetricsJson(const MetricsSnapshot& snapshot, JsonWriter* writer) {
  writer->BeginArray();
  for (const MetricPoint& point : snapshot.points) {
    writer->BeginObject();
    writer->Key("name");
    writer->Value(point.name);
    if (!point.labels.empty()) {
      writer->Key("labels");
      writer->BeginObject();
      for (const auto& [key, value] : point.labels) {
        writer->Key(key);
        writer->Value(value);
      }
      writer->EndObject();
    }
    switch (point.kind) {
      case MetricKind::kCounter:
        writer->Key("type");
        writer->Value("counter");
        writer->Key("value");
        writer->Value(point.value);
        break;
      case MetricKind::kGauge:
        writer->Key("type");
        writer->Value("gauge");
        writer->Key("value");
        writer->Value(point.value);
        break;
      case MetricKind::kHistogram:
        writer->Key("type");
        writer->Value("histogram");
        writer->Key("count");
        writer->Value(point.value);
        writer->Key("sum");
        writer->Value(point.sum);
        writer->Key("min");
        writer->Value(point.min);
        writer->Key("max");
        writer->Value(point.max);
        writer->Key("p50");
        writer->Value(point.p50);
        writer->Key("p95");
        writer->Value(point.p95);
        writer->Key("p99");
        writer->Value(point.p99);
        break;
    }
    writer->EndObject();
  }
  writer->EndArray();
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  JsonWriter writer;
  AppendMetricsJson(snapshot, &writer);
  return writer.str();
}

}  // namespace distme::obs
