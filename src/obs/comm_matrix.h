// CommMatrix: per-(source node, destination node, stage) byte accounting for
// shuffle traffic. DistME's evaluation is driven by *where bytes move*
// (CuboidMM wins on shuffle volume — paper §4, Fig. 7), so both executors
// feed one of these: RealExecutor records every remote block fetch and
// aggregation emit with its true endpoints; SimExecutor spreads each task's
// modelled transfer volume over the uniform-hash block homes.
//
// Recording is lock-free (a relaxed atomic add into a dense grid), so task
// threads can hammer it without coordination. Analysis happens on immutable
// snapshots: totals, per-link max, and the skew ratio (max link over mean
// off-diagonal link — 1.0 for perfectly balanced all-to-all, N·(N−1) when a
// single link carries everything).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace distme::obs {

class JsonWriter;

/// \brief Which of the paper's communication steps a transfer belongs to.
enum class CommStage { kRepartition = 0, kAggregation = 1 };

inline constexpr int kNumCommStages = 2;

const char* CommStageName(CommStage stage);

/// \brief An immutable copy of a CommMatrix, restricted to the nodes that
/// actually appeared. Supports per-run deltas via `Delta()`.
struct CommMatrixSnapshot {
  int num_nodes = 0;
  /// cells[stage][src * num_nodes + dst], bytes.
  std::array<std::vector<int64_t>, kNumCommStages> cells;

  bool empty() const { return num_nodes == 0; }

  /// \brief Bytes moved src → dst in `stage` (0 for out-of-range nodes).
  int64_t Bytes(CommStage stage, int src, int dst) const;
  /// \brief Bytes moved src → dst summed over stages.
  int64_t LinkBytes(int src, int dst) const;

  int64_t TotalBytes() const;
  int64_t TotalBytes(CommStage stage) const;

  /// \brief The heaviest network link (off-diagonal; diagonal cells are
  /// node-local traffic and never contend for a NIC).
  int64_t MaxLinkBytes() const;
  /// \brief Off-diagonal total divided by the N·(N−1) possible links.
  double MeanLinkBytes() const;
  /// \brief Links (off-diagonal) that moved at least one byte.
  int ActiveLinks() const;
  /// \brief Max link over mean link: 1.0 = balanced all-to-all, higher =
  /// skewed (a straggling link). 0 when nothing crossed the network.
  double SkewRatio() const;

  /// \brief Cell-wise `this − before`, for per-run extraction from a
  /// long-lived (session- or bench-owned) matrix. `before` may be smaller
  /// (earlier runs saw fewer nodes); missing cells count as zero.
  CommMatrixSnapshot Delta(const CommMatrixSnapshot& before) const;

  /// \brief Aligned text rendering: one src → dst grid per stage with
  /// row/column totals, plus the summary line (total / max link / skew).
  std::string ToTable() const;

  /// \brief Appends {"num_nodes":…, "total_bytes":…, …, "stages":{…}}.
  void AppendJson(JsonWriter* writer) const;
  std::string ToJson() const;
};

/// \brief Thread-safe recorder of per-link shuffle traffic.
///
/// The grid is allocated once at a fixed capacity; node ids at or above
/// `kMaxNodes` fold modulo the capacity (clusters in this repo are ≤ tens of
/// nodes, so folding never triggers in practice). Record() is a relaxed
/// atomic add — safe from any number of task threads.
class CommMatrix {
 public:
  static constexpr int kMaxNodes = 64;

  CommMatrix();

  CommMatrix(const CommMatrix&) = delete;
  CommMatrix& operator=(const CommMatrix&) = delete;

  /// \brief Accounts `bytes` moved src → dst during `stage`. Negative or
  /// zero byte counts are ignored.
  void Record(CommStage stage, int src, int dst, int64_t bytes);

  /// \brief Highest node id seen so far plus one (0 before any Record).
  int num_nodes() const {
    return max_node_.load(std::memory_order_relaxed) + 1;
  }

  CommMatrixSnapshot Snapshot() const;

  /// \brief Zeroes every cell (the observed node set is kept).
  void Reset();

 private:
  static size_t CellIndex(CommStage stage, int src, int dst) {
    return (static_cast<size_t>(stage) * kMaxNodes +
            static_cast<size_t>(src)) *
               kMaxNodes +
           static_cast<size_t>(dst);
  }

  std::unique_ptr<std::atomic<int64_t>[]> cells_
      DISTME_LOCKFREE("pointer fixed in ctor; cells are relaxed atomics");
  std::atomic<int> max_node_{-1};
};

}  // namespace distme::obs
