#include "obs/critical_path.h"

#include <algorithm>
#include <map>
#include <utility>

namespace distme::obs {

namespace {

// Attribution bucket for a stage-barrier hop. Repartition and aggregation
// barriers are shuffle work; a multiply barrier (sim dispatch/sync slack)
// is compute; anything else is engine overhead.
const char* StageResource(const std::string& name) {
  if (name.find("repartition") != std::string::npos ||
      name.find("aggregat") != std::string::npos) {
    return "shuffle";
  }
  if (name.find("multiply") != std::string::npos) return "compute";
  return "overhead";
}

int64_t Clamp(int64_t v, int64_t lo, int64_t hi) {
  return std::max(lo, std::min(v, hi));
}

// Splits the opaque "gpu" attribution bucket into {gpu-kernel, gpu-h2d,
// gpu-d2h, gpu-bubble} by the device-window fractions. Largest-remainder
// rounding keeps the split exact: the pieces sum to the original "gpu" µs,
// so path_us and the tiling invariant are untouched. Mirrored by
// scripts/distme_analyze.py — keep the arithmetic identical.
void SplitGpuAttribution(const GpuWindowFractions& f,
                         std::map<std::string, int64_t>* attribution) {
  const auto it = attribution->find("gpu");
  if (it == attribution->end() || it->second <= 0) return;
  const double fsum = f.kernel_bound + f.h2d_bound + f.d2h_bound + f.bubble;
  if (fsum <= 0.0) return;  // no window info: leave "gpu" opaque
  const int64_t total = it->second;
  attribution->erase(it);
  struct Part {
    const char* name;
    double frac;
    int64_t whole = 0;
    double remainder = 0.0;
  };
  Part parts[4] = {{"gpu-kernel", f.kernel_bound},
                   {"gpu-h2d", f.h2d_bound},
                   {"gpu-d2h", f.d2h_bound},
                   {"gpu-bubble", f.bubble}};
  int64_t assigned = 0;
  for (Part& p : parts) {
    const double exact = static_cast<double>(total) * (p.frac / fsum);
    p.whole = static_cast<int64_t>(exact);
    p.remainder = exact - static_cast<double>(p.whole);
    assigned += p.whole;
  }
  int64_t leftover = total - assigned;
  std::stable_sort(std::begin(parts), std::end(parts),
                   [](const Part& l, const Part& r) {
                     return l.remainder > r.remainder;
                   });
  for (Part& p : parts) {
    if (leftover <= 0) break;
    ++p.whole;
    --leftover;
  }
  for (const Part& p : parts) {
    if (p.whole > 0) (*attribution)[p.name] += p.whole;
  }
}

}  // namespace

std::string CriticalPathAnalysis::bottleneck() const {
  std::string best;
  int64_t best_us = -1;
  for (const auto& [resource, us] : attribution_us) {
    if (us > best_us) {
      best = resource;
      best_us = us;
    }
  }
  return best;
}

double CriticalPathAnalysis::bottleneck_fraction() const {
  if (path_us <= 0) return 0.0;
  const std::string top = bottleneck();
  const auto it = attribution_us.find(top);
  if (it == attribution_us.end()) return 0.0;
  return static_cast<double>(it->second) / static_cast<double>(path_us);
}

CriticalPathAnalysis AnalyzeCriticalPath(const CausalGraph& graph,
                                         const GpuWindowFractions* gpu_split) {
  CriticalPathAnalysis out;
  out.wall_us = graph.wall_us();
  out.run_ok = graph.run_ok;
  if (graph.run_finish_us <= graph.run_start_us) return out;

  // Tasks become ready at the multiply-stage barrier when the run has one
  // (sim emits stage barriers); otherwise at run start (the real executor
  // materializes every task up front).
  int64_t ready_base = graph.run_start_us;
  for (const CausalStage& s : graph.stages) {
    if (s.name.find("multiply") != std::string::npos) {
      ready_base = s.begin_us;
      break;
    }
  }

  // Per-task blocked-time decomposition. The components are defined so
  // they sum to the span identically: slot_wait is the pre-start wait,
  // fetch/gpu are the recorded edge totals clamped into the execution
  // interval, exec is the remainder.
  out.tasks.reserve(graph.tasks.size());
  for (const CausalTask& t : graph.tasks) {
    TaskBlockedTime b;
    b.task_id = t.task_id;
    b.node = t.node;
    b.slot = t.slot;
    b.start_us = t.start_us;
    b.finish_us = t.finish_us;
    b.ready_us = Clamp(ready_base, graph.run_start_us, t.start_us);
    const int64_t dur = std::max<int64_t>(0, t.finish_us - t.start_us);
    b.fetch_wait_us = Clamp(t.fetch_wait_us, 0, dur);
    b.gpu_wait_us = Clamp(t.gpu_wait_us, 0, dur - b.fetch_wait_us);
    b.exec_us = dur - b.fetch_wait_us - b.gpu_wait_us;
    b.slot_wait_us = t.start_us - b.ready_us;
    out.tasks.push_back(b);
    out.aggregate_us["slot_wait"] += b.slot_wait_us;
    out.aggregate_us["fetch_wait"] += b.fetch_wait_us;
    out.aggregate_us["gpu_wait"] += b.gpu_wait_us;
    out.aggregate_us["exec"] += b.exec_us;
  }
  for (const CausalStage& s : graph.stages) {
    out.stage_us[s.name] += s.span_us();
  }

  // Per-slot task chains: tasks on one (node, slot) are serialized, so a
  // task's binding predecessor (beyond its ready time) is the previous
  // task to run on its slot.
  std::map<std::pair<int32_t, int32_t>, std::vector<size_t>> by_slot;
  for (size_t i = 0; i < out.tasks.size(); ++i) {
    by_slot[{out.tasks[i].node, out.tasks[i].slot}].push_back(i);
  }
  std::vector<int64_t> pred_finish(out.tasks.size(), -1);
  std::vector<int> pred_index(out.tasks.size(), -1);
  for (auto& [slot_key, indices] : by_slot) {
    std::sort(indices.begin(), indices.end(), [&](size_t l, size_t r) {
      return out.tasks[l].start_us < out.tasks[r].start_us;
    });
    for (size_t k = 1; k < indices.size(); ++k) {
      const TaskBlockedTime& prev = out.tasks[indices[k - 1]];
      const TaskBlockedTime& cur = out.tasks[indices[k]];
      if (prev.finish_us <= cur.start_us) {
        pred_finish[indices[k]] = prev.finish_us;
        pred_index[indices[k]] = static_cast<int>(indices[k - 1]);
      }
    }
  }

  // Reverse binding-predecessor walk. Each iteration explains the
  // interval ending at `cursor` with the latest-ending cause — a task
  // finish, a stage barrier, or (nothing recorded) engine overhead — and
  // moves the cursor to that cause's own start. The hops therefore tile
  // [run_start, run_finish] and path_us == wall_us by construction.
  std::vector<CriticalHop> rev;
  auto add_hop = [&rev](std::string label, std::string resource,
                        int64_t task_id, int64_t begin, int64_t end) {
    if (end <= begin) return;
    CriticalHop hop;
    hop.label = std::move(label);
    hop.resource = std::move(resource);
    hop.task_id = task_id;
    hop.begin_us = begin;
    hop.end_us = end;
    rev.push_back(std::move(hop));
  };
  // graph.tasks (and so out.tasks) are sorted by finish time: the latest
  // task finishing at or before an instant is found by binary search.
  auto latest_finished_before = [&](int64_t cursor) -> int {
    int best = -1;
    for (size_t i = 0; i < out.tasks.size(); ++i) {
      if (out.tasks[i].finish_us <= cursor) best = static_cast<int>(i);
    }
    return best;
  };

  int64_t cursor = graph.run_finish_us;
  while (cursor > graph.run_start_us) {
    const int ti = latest_finished_before(cursor);
    if (ti >= 0 && out.tasks[static_cast<size_t>(ti)].finish_us == cursor) {
      // Chain backwards through tasks: decompose this one, then jump to
      // its binding predecessor (same-slot chain or ready barrier).
      int i = ti;
      while (i >= 0) {
        const TaskBlockedTime& t = out.tasks[static_cast<size_t>(i)];
        const std::string id = std::to_string(t.task_id);
        const int64_t fetch_end = t.start_us + t.fetch_wait_us;
        const int64_t gpu_end = fetch_end + t.gpu_wait_us;
        add_hop("task " + id + " exec", "compute", t.task_id, gpu_end,
                t.finish_us);
        add_hop("task " + id + " gpu_wait", "gpu", t.task_id, fetch_end,
                gpu_end);
        add_hop("task " + id + " fetch_wait", "shuffle", t.task_id,
                t.start_us, fetch_end);
        const size_t ui = static_cast<size_t>(i);
        const int64_t bind = std::max(t.ready_us, pred_finish[ui]);
        add_hop("task " + id + " slot_wait", "scheduling", t.task_id, bind,
                t.start_us);
        cursor = bind;
        if (pred_index[ui] >= 0 && pred_finish[ui] >= t.ready_us &&
            pred_finish[ui] == bind) {
          i = pred_index[ui];
        } else {
          i = -1;
        }
      }
      continue;
    }
    // Stage barrier covering the cursor (latest-beginning one wins).
    const CausalStage* stage = nullptr;
    for (const CausalStage& s : graph.stages) {
      if (s.begin_us < cursor && s.end_us >= cursor &&
          (stage == nullptr || s.begin_us > stage->begin_us)) {
        stage = &s;
      }
    }
    const int64_t t_finish =
        ti >= 0 ? out.tasks[static_cast<size_t>(ti)].finish_us : -1;
    if (stage != nullptr) {
      int64_t lo = std::max(stage->begin_us, graph.run_start_us);
      lo = std::max(lo, t_finish);
      if (lo < cursor) {
        add_hop("stage " + stage->name, StageResource(stage->name), -1, lo,
                cursor);
        cursor = lo;
        continue;
      }
    }
    // Nothing recorded explains this interval: engine overhead back to
    // the nearest recorded boundary (task finish, stage end, run start).
    int64_t lo = std::max(graph.run_start_us, t_finish);
    for (const CausalStage& s : graph.stages) {
      if (s.end_us < cursor && s.end_us > lo) lo = s.end_us;
    }
    if (lo >= cursor) lo = graph.run_start_us;  // force progress
    add_hop("overhead", "overhead", -1, lo, cursor);
    cursor = lo;
  }

  std::reverse(rev.begin(), rev.end());
  out.hops = std::move(rev);
  for (const CriticalHop& hop : out.hops) {
    out.attribution_us[hop.resource] += hop.duration_us();
    out.path_us += hop.duration_us();
  }
  if (gpu_split != nullptr) {
    SplitGpuAttribution(*gpu_split, &out.attribution_us);
  }
  return out;
}

void CriticalPathAnalysis::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("wall_us");
  w->Value(wall_us);
  w->Key("path_us");
  w->Value(path_us);
  w->Key("run_ok");
  w->Value(run_ok);
  w->Key("bottleneck");
  w->Value(bottleneck());
  w->Key("bottleneck_fraction");
  w->Value(bottleneck_fraction());
  w->Key("attribution_us");
  w->BeginObject();
  for (const auto& [resource, us] : attribution_us) {
    w->Key(resource);
    w->Value(us);
  }
  w->EndObject();
  w->Key("stage_us");
  w->BeginObject();
  for (const auto& [name, us] : stage_us) {
    w->Key(name);
    w->Value(us);
  }
  w->EndObject();
  w->Key("aggregate_us");
  w->BeginObject();
  for (const auto& [kind, us] : aggregate_us) {
    w->Key(kind);
    w->Value(us);
  }
  w->EndObject();
  w->Key("hops");
  w->BeginArray();
  for (const CriticalHop& hop : hops) {
    w->BeginObject();
    w->Key("label");
    w->Value(hop.label);
    w->Key("resource");
    w->Value(hop.resource);
    w->Key("task_id");
    w->Value(hop.task_id);
    w->Key("begin_us");
    w->Value(hop.begin_us);
    w->Key("end_us");
    w->Value(hop.end_us);
    w->Key("duration_us");
    w->Value(hop.duration_us());
    w->EndObject();
  }
  w->EndArray();
  w->Key("tasks");
  w->BeginArray();
  for (const TaskBlockedTime& t : tasks) {
    w->BeginObject();
    w->Key("task_id");
    w->Value(t.task_id);
    w->Key("node");
    w->Value(t.node);
    w->Key("slot");
    w->Value(t.slot);
    w->Key("ready_us");
    w->Value(t.ready_us);
    w->Key("start_us");
    w->Value(t.start_us);
    w->Key("finish_us");
    w->Value(t.finish_us);
    w->Key("slot_wait_us");
    w->Value(t.slot_wait_us);
    w->Key("fetch_wait_us");
    w->Value(t.fetch_wait_us);
    w->Key("gpu_wait_us");
    w->Value(t.gpu_wait_us);
    w->Key("exec_us");
    w->Value(t.exec_us);
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

std::string CriticalPathAnalysis::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

}  // namespace distme::obs
