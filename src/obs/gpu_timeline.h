// GPU pipeline observability: reconstructs per-engine device timelines from
// flight-recorder schema-3 interval events (gpu_h2d / gpu_d2h / gpu_kernel
// begin/end pairs + gpu_alloc occupancy marks) and computes overlap reports —
// the Nsight-Systems-shaped view of whether CuboidMM's streaming actually
// overlaps PCI-E copies with kernels, where the pipeline bubbles are, and how
// close a run sits to the PCI-E roofline.
//
// Exactness contract (checked by gpu_timeline_test):
//   - For every engine, busy + idle tiles the device-active window exactly.
//   - The exclusive four-bucket decomposition {kernel-bound, h2d-bound,
//     d2h-bound, bubble} tiles the window exactly (priority kernel > h2d >
//     d2h when engines overlap), so attribution never double-counts.
//   - overlapped ≤ min(copy-busy, kernel-busy) by construction.
// All arithmetic is integer µs on the device's virtual clock, so the C++
// analyzer, `GET /gpu`, the explain GPU section, and the Python mirror in
// scripts/distme_analyze.py --gpu report bit-identical numbers for one run.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/flight_recorder.h"

namespace distme::obs {

// ---------------------------------------------------------------------------
// Event tag packing. The flight-event `b` field of every GPU interval event
// carries a packed (device ordinal, cuboid id, subcuboid index) triple:
//   bits 48..55  device ordinal within its node (0..255)
//   bits 24..47  cuboid id (a process-wide counter; kGpuNoCuboidId = untagged)
//   bits  0..23  subcuboid index within the cuboid
// The streaming path packs (cuboid, sub) with ordinal 0 and the device ORs
// its own ordinal in at emission time (GpuTagWithOrdinal).

/// \brief Sentinel cuboid-id field value for untagged (block-level) work.
inline constexpr int64_t kGpuNoCuboidId = (int64_t{1} << 24) - 1;

/// \brief Packs a (ordinal, cuboid, sub_index) triple into an event tag.
/// Fields are masked to their widths; a negative `cuboid_id` packs the
/// untagged sentinel.
int64_t PackGpuTag(int32_t ordinal, int64_t cuboid_id, int64_t sub_index);

/// \brief Replaces the ordinal byte of `tag` with `ordinal` (the device
/// stamps its identity onto caller-supplied tags).
int64_t GpuTagWithOrdinal(int32_t ordinal, int64_t tag);

/// \brief Decoded event tag. `cuboid_id` is -1 for untagged work.
struct GpuTag {
  int32_t ordinal = 0;
  int64_t cuboid_id = -1;
  int64_t sub_index = 0;
};

GpuTag UnpackGpuTag(int64_t packed);

// ---------------------------------------------------------------------------

/// \brief The three serial engines of a device: copy-in, copy-out, compute.
enum class GpuEngine : uint8_t { kH2d = 0, kD2h, kKernel, kNumEngines };

/// \brief Stable lowercase name ("h2d", "d2h", "kernel").
const char* GpuEngineName(GpuEngine engine);

/// \brief One reconstructed engine interval on a device's virtual clock.
struct GpuInterval {
  GpuEngine engine = GpuEngine::kH2d;
  int32_t stream = -1;    ///< stream id the operation was enqueued on
  int64_t begin_us = 0;   ///< device virtual clock, µs
  int64_t end_us = 0;     ///< ≥ begin_us (µs rounding can make it equal)
  int64_t payload = 0;    ///< bytes (copies) or flops (kernels)
  int64_t cuboid_id = -1; ///< -1 = untagged (block-level) work
  int64_t sub_index = 0;  ///< subcuboid index within the cuboid
};

/// \brief Window fractions of the exclusive decomposition — how the
/// device-active window splits into {kernel-bound, h2d-bound, d2h-bound,
/// bubble}. Feeds the critical-path attribution split of the opaque "gpu"
/// bucket. Fractions sum to 1 when the window is non-empty.
struct GpuWindowFractions {
  double kernel_bound = 0.0;
  double h2d_bound = 0.0;
  double d2h_bound = 0.0;
  double bubble = 0.0;
};

/// \brief Copy/compute overlap accounting over one set of intervals (a
/// device window, one cuboid, or the whole-run aggregate).
struct OverlapReport {
  int64_t window_begin_us = 0;  ///< min interval begin
  int64_t window_end_us = 0;    ///< max interval end

  // Per-engine busy time. Engines serialize their intervals, so busy is
  // both the union measure and the sum of interval lengths.
  int64_t h2d_busy_us = 0;
  int64_t d2h_busy_us = 0;
  int64_t kernel_busy_us = 0;

  int64_t copy_busy_us = 0;   ///< measure(h2d ∪ d2h active)
  int64_t overlapped_us = 0;  ///< measure(copy active ∩ kernel active)

  // Exclusive window decomposition (priority kernel > h2d > d2h > bubble):
  // the four buckets tile [window_begin_us, window_end_us] exactly.
  int64_t kernel_bound_us = 0;
  int64_t h2d_bound_us = 0;
  int64_t d2h_bound_us = 0;
  int64_t bubble_us = 0;

  int64_t bubble_count = 0;  ///< number of idle gaps inside the window
  /// The idle gaps themselves, sorted ([begin_us, end_us) pairs). Empty on
  /// cross-device aggregates, where a single wall interval is meaningless.
  std::vector<std::pair<int64_t, int64_t>> bubbles;

  int64_t h2d_bytes = 0;
  int64_t d2h_bytes = 0;
  int64_t kernel_flops = 0;
  int64_t h2d_copies = 0;
  int64_t d2h_copies = 0;
  int64_t kernel_launches = 0;

  /// Configured PCI-E peak (bytes/s) for the roofline comparison; 0 when
  /// the caller has no hardware model at hand.
  double pcie_peak_bytes_per_sec = 0.0;

  int64_t window_us() const { return window_end_us - window_begin_us; }
  /// overlapped / min(copy_busy, kernel_busy); 0 when either is idle.
  double overlap_ratio() const;
  /// kernel_busy / window; 0 on an empty window.
  double kernel_utilization() const;
  /// (h2d_bytes + d2h_bytes) / copy_busy — the achieved PCI-E bandwidth.
  double effective_pcie_bytes_per_sec() const;
  GpuWindowFractions WindowFractions() const;

  /// \brief Appends this report as one JSON object (at most 64 bubble
  /// intervals are listed; `bubble_count` is always the true count).
  void AppendJson(JsonWriter* writer) const;
};

/// \brief One device's reconstructed timeline plus its reports.
struct GpuDeviceTimeline {
  int32_t node = -1;
  int32_t ordinal = 0;
  std::vector<GpuInterval> intervals;  ///< sorted by (begin, end)
  OverlapReport report;                ///< over the device-active window
  std::map<int64_t, OverlapReport> cuboids;  ///< per cuboid id
  int64_t occupancy_high_water_bytes = 0;    ///< max gpu_alloc `a` seen
};

/// \brief Whole-run analysis across every device that emitted events.
struct GpuTimelineAnalysis {
  std::vector<GpuDeviceTimeline> devices;  ///< sorted by (node, ordinal)
  /// Aggregate over all devices: busy/bound/byte fields are sums and the
  /// window is the *sum of device-active windows* (window_begin_us is 0),
  /// so the tiling invariant and overlapped ≤ min(copy, kernel) still hold.
  OverlapReport run;
  int64_t occupancy_high_water_bytes = 0;  ///< max over devices

  bool empty() const { return devices.empty(); }
  void AppendJson(JsonWriter* writer) const;
  std::string ToJson() const;
};

/// \brief Reconstructs per-engine timelines and overlap reports from a
/// flight snapshot. When the snapshot contains a complete run (a run_start
/// before the last run_finish), only GPU events inside that run's sequence
/// bracket are analyzed — the device virtual clock persists across runs, so
/// sequence bracketing is the correct per-run filter. Otherwise every GPU
/// event in `events` is analyzed (callers that pre-filter to one run's
/// events get exactly that run).
GpuTimelineAnalysis AnalyzeGpuTimeline(const std::vector<FlightEvent>& events,
                                       double pcie_peak_bytes_per_sec = 0.0);

}  // namespace distme::obs
