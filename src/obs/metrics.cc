#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace distme::obs {

namespace {

// Bucket 0 holds everything below 2^kMinExponent; the last bucket holds
// everything at or above 2^(kMinExponent + kBuckets - 2).
constexpr int kMinExponent = -30;

std::string EntryKey(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [k, v] : sorted) {
    key.push_back('\x1f');
    key.append(k);
    key.push_back('=');
    key.append(v);
  }
  return key;
}

// fetch_add for atomic<double> via CAS: portable pre-/post-P0020 compilers.
void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (current > value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketFor(double value) {
  if (!(value > 0.0)) return 0;
  const int exponent = std::ilogb(value);
  return std::clamp(exponent - kMinExponent + 1, 0, kBuckets - 1);
}

double Histogram::BucketLowerBound(int b) {
  if (b <= 0) return 0.0;
  return std::ldexp(1.0, kMinExponent + b - 1);
}

void Histogram::Observe(double value) {
  buckets_[static_cast<size_t>(BucketFor(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&sum_, value);
  AtomicMaxDouble(&max_, value);
  AtomicMinDouble(&min_, value);
}

double Histogram::Min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isinf(m) ? 0.0 : m;
}

double Histogram::Percentile(double p) const {
  const int64_t total = Count();
  if (total <= 0) return 0.0;
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(total);
  int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const int64_t in_bucket =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lo = BucketLowerBound(b);
      const double hi = b + 1 < kBuckets ? BucketLowerBound(b + 1)
                                         : Max();
      const double frac =
          std::clamp((rank - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      // Clamp interpolation into the observed range for tighter estimates.
      const double estimate = lo + (hi - lo) * frac;
      return std::clamp(estimate, Min(), Max());
    }
    cumulative += in_bucket;
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

namespace {

// Rank interpolation over explicit bucket counts — the same estimate
// Histogram::Percentile makes, but over a caller-supplied (delta) array.
double PercentileFromBuckets(const std::vector<int64_t>& buckets,
                             int64_t total, double p, double lo_clamp,
                             double hi_clamp) {
  if (total <= 0) return 0.0;
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  int64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    const int64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      const double lo = Histogram::BucketLowerBound(static_cast<int>(b));
      const double hi =
          b + 1 < buckets.size()
              ? Histogram::BucketLowerBound(static_cast<int>(b) + 1)
              : hi_clamp;
      const double frac =
          std::clamp((rank - static_cast<double>(cumulative)) /
                         static_cast<double>(in_bucket),
                     0.0, 1.0);
      return std::clamp(lo + (hi - lo) * frac, lo_clamp, hi_clamp);
    }
    cumulative += in_bucket;
  }
  return hi_clamp;
}

}  // namespace

HistogramDeltaStats HistogramDelta(const MetricPoint& after,
                                   const MetricPoint* before) {
  HistogramDeltaStats stats;
  if (after.kind != MetricKind::kHistogram) return stats;
  std::vector<int64_t> delta = after.buckets;
  if (before != nullptr && before->kind == MetricKind::kHistogram) {
    for (size_t b = 0; b < delta.size() && b < before->buckets.size(); ++b) {
      delta[b] -= before->buckets[b];
    }
  }
  int64_t count = 0;
  int lowest = -1;
  int highest = -1;
  for (size_t b = 0; b < delta.size(); ++b) {
    if (delta[b] < 0) delta[b] = 0;  // instrument was Reset() mid-window
    if (delta[b] == 0) continue;
    count += delta[b];
    if (lowest < 0) lowest = static_cast<int>(b);
    highest = static_cast<int>(b);
  }
  stats.count = count;
  stats.sum = after.sum - (before != nullptr ? before->sum : 0.0);
  if (count == 0) return stats;
  // Bucket-bound extremes, tightened by the cumulative extremes (which
  // bound every run's observations from outside).
  stats.min = std::max(Histogram::BucketLowerBound(lowest), after.min);
  stats.max =
      highest + 1 < static_cast<int>(delta.size())
          ? std::min(Histogram::BucketLowerBound(highest + 1), after.max)
          : after.max;
  if (stats.max < stats.min) stats.max = stats.min;
  stats.p50 = PercentileFromBuckets(delta, count, 50, stats.min, stats.max);
  stats.p95 = PercentileFromBuckets(delta, count, 95, stats.min, stats.max);
  stats.p99 = PercentileFromBuckets(delta, count, 99, stats.min, stats.max);
  return stats;
}

const MetricPoint* MetricsSnapshot::Find(std::string_view name,
                                         const LabelSet& labels) const {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricPoint& point : points) {
    if (point.name != name) continue;
    LabelSet point_labels = point.labels;
    std::sort(point_labels.begin(), point_labels.end());
    if (point_labels == sorted) return &point;
  }
  return nullptr;
}

int64_t MetricsSnapshot::TotalValue(std::string_view name) const {
  int64_t total = 0;
  for (const MetricPoint& point : points) {
    if (point.name == name) total += point.value;
  }
  return total;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      const LabelSet& labels,
                                                      MetricKind kind) {
  const std::string key = EntryKey(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = labels;
  entry->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry->histogram = std::make_unique<Histogram>();
      break;
  }
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(key, raw);
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const LabelSet& labels) {
  return FindOrCreate(name, labels, MetricKind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name,
                                 const LabelSet& labels) {
  return FindOrCreate(name, labels, MetricKind::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const LabelSet& labels) {
  return FindOrCreate(name, labels, MetricKind::kHistogram)->histogram.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.points.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricPoint point;
    point.name = entry->name;
    point.labels = entry->labels;
    point.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        point.value = entry->counter->Value();
        break;
      case MetricKind::kGauge:
        point.value = entry->gauge->Value();
        break;
      case MetricKind::kHistogram:
        point.value = entry->histogram->Count();
        point.sum = entry->histogram->Sum();
        point.min = entry->histogram->Min();
        point.max = entry->histogram->Max();
        point.p50 = entry->histogram->Percentile(50);
        point.p95 = entry->histogram->Percentile(95);
        point.p99 = entry->histogram->Percentile(99);
        point.buckets.reserve(Histogram::kBuckets);
        for (int b = 0; b < Histogram::kBuckets; ++b) {
          point.buckets.push_back(entry->histogram->BucketCount(b));
        }
        break;
    }
    snapshot.points.push_back(std::move(point));
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case MetricKind::kCounter:
        entry->counter->Reset();
        break;
      case MetricKind::kGauge:
        entry->gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

}  // namespace distme::obs
