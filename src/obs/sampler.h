// Background telemetry sampler: a thread that snapshots a MetricsRegistry
// (and optionally a CommMatrix) every `period_ms` into an in-memory time
// series with bounded retention. The engine's instruments are cumulative;
// sampling them on a fixed cadence is what turns "total bytes shuffled"
// into "bytes/s over the run" — the raw material for the paper's Fig. 7
// utilisation timelines, without any per-event cost on the hot path.
//
// Retention is a ring of the most recent `max_samples` snapshots
// (default 600 — ten minutes at the default 1 s period). Timestamps come
// from the steady clock, so consecutive samples are strictly monotonic.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/comm_matrix.h"
#include "obs/metrics.h"

namespace distme::obs {

struct SamplerOptions {
  /// Sampling period. Values below 1 ms are clamped to 1 ms.
  int64_t period_ms = 1000;
  /// Retention: how many most-recent samples are kept.
  size_t max_samples = 600;
};

/// \brief One point of the sampled time series.
struct Sample {
  /// Steady-clock microseconds (comparable across samples, not wall time).
  int64_t ts_us = 0;
  MetricsSnapshot metrics;
  /// CommMatrix summary at sample time (0 when no matrix is attached).
  int64_t comm_total_bytes = 0;
  int64_t comm_max_link_bytes = 0;
  double comm_skew = 0.0;
};

/// \brief Periodic snapshotter of registry + comm matrix.
///
/// Start() spawns the thread; Stop() (or destruction) joins it. Samples()
/// returns a copy of the retained series and is safe to call while the
/// sampler runs.
class Sampler {
 public:
  /// `registry` must outlive the sampler; `comm` may be nullptr.
  Sampler(const MetricsRegistry* registry, const CommMatrix* comm,
          SamplerOptions options = {});
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// \brief Starts the background thread. No-op if already running.
  void Start();

  /// \brief Stops and joins the background thread. Idempotent.
  void Stop();

  /// \brief Takes one sample synchronously (also used by the thread).
  void SampleOnce();

  /// \brief Copy of the retained time series, oldest first.
  std::vector<Sample> Samples() const;

  /// \brief Total samples taken since construction (retention may have
  /// dropped older ones from Samples()).
  int64_t total_samples() const {
    return total_samples_.load(std::memory_order_relaxed);
  }

  bool running() const { return running_.load(std::memory_order_acquire); }

  const SamplerOptions& options() const { return options_; }

 private:
  void Loop();

  const MetricsRegistry* registry_
      DISTME_LOCKFREE("set in ctor, immutable; pointee internally synchronized");
  const CommMatrix* comm_
      DISTME_LOCKFREE("set in ctor, immutable; pointee internally synchronized");
  SamplerOptions options_ DISTME_LOCKFREE("set in ctor, immutable after");

  std::thread thread_ DISTME_UNSHARED("touched only by Start/Stop callers");
  std::atomic<bool> running_{false};
  std::atomic<int64_t> total_samples_{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ DISTME_GUARDED_BY(mutex_) = false;
  std::deque<Sample> samples_ DISTME_GUARDED_BY(mutex_);
};

}  // namespace distme::obs
