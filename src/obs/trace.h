// Scoped trace spans with per-thread buffers, exportable as Chrome
// trace-event JSON (chrome://tracing / Perfetto).
//
// A Tracer owns the trace clock (microseconds since its construction) and a
// lock-free-on-the-hot-path set of per-thread event buffers. TraceSpan is an
// RAII handle: construction stamps the start time, destruction records one
// complete ("ph":"X") event. When the tracer is disabled — or null — span
// construction is a single relaxed-atomic load and branch (or just the null
// check), so instrumented code pays nothing in production runs.
//
// Track mapping follows the engine's cluster model: pid = simulated node,
// tid = task slot. Call Tracer::ScopedTrack in worker threads to route all
// spans opened underneath (including library code that never sees node ids,
// e.g. gpumm streaming) onto the right track.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace distme::obs {

/// \brief A trace-event argument value: integer, double, or string.
struct TraceArgValue {
  enum class Kind { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double d = 0;
  std::string s;

  static TraceArgValue Int(int64_t v) {
    TraceArgValue a;
    a.kind = Kind::kInt;
    a.i = v;
    return a;
  }
  static TraceArgValue Double(double v) {
    TraceArgValue a;
    a.kind = Kind::kDouble;
    a.d = v;
    return a;
  }
  static TraceArgValue Str(std::string v) {
    TraceArgValue a;
    a.kind = Kind::kString;
    a.s = std::move(v);
    return a;
  }
};

/// \brief One complete span in the Chrome trace-event model.
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t ts_us = 0;   ///< start, µs since the tracer epoch
  int64_t dur_us = 0;  ///< duration, µs
  int pid = 0;         ///< process track — one per simulated node
  int tid = 0;         ///< thread track — one per task slot
  std::vector<std::pair<std::string, TraceArgValue>> args;
};

/// \brief Collects spans from many threads; drained by the exporters.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// \brief The disabled-path check: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// \brief Microseconds since this tracer was constructed.
  int64_t NowMicros() const;

  /// \brief Appends `event` to the calling thread's buffer.
  void Record(TraceEvent event);

  /// \brief Moves out every recorded event, sorted by (ts, dur desc) so
  /// enclosing spans precede the spans they contain.
  std::vector<TraceEvent> Drain();

  /// \brief Number of buffered events across all threads (for tests).
  size_t EventCount() const;

  /// \brief Names the `pid` track ("node0", ...) in exported traces.
  void SetProcessName(int pid, std::string name);
  /// \brief Names the (`pid`, `tid`) track ("slot3", ...).
  void SetThreadName(int pid, int tid, std::string name);

  /// \brief Copies of the track-name tables. By value: the maps are guarded
  /// by mutex_, so handing out a reference would let callers read them while
  /// SetProcessName/SetThreadName mutate concurrently.
  std::map<int, std::string> process_names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return process_names_;
  }
  std::map<std::pair<int, int>, std::string> thread_names() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return thread_names_;
  }

  /// \brief Sets the calling thread's (pid, tid) track for spans opened in
  /// this scope; restores the previous track on destruction.
  class ScopedTrack {
   public:
    ScopedTrack(int pid, int tid);
    ~ScopedTrack();

    ScopedTrack(const ScopedTrack&) = delete;
    ScopedTrack& operator=(const ScopedTrack&) = delete;

   private:
    int prev_pid_;
    int prev_tid_;
  };

  /// \brief The calling thread's current track (defaults to (0, 0)).
  static int CurrentPid();
  static int CurrentTid();

 private:
  struct ThreadBuffer {
    std::mutex mutex;  // uncontended except while draining
    std::vector<TraceEvent> events DISTME_GUARDED_BY(mutex);
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  const uint64_t tracer_id_;  // keys the per-thread buffer cache
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ DISTME_GUARDED_BY(mutex_);
  std::map<int, std::string> process_names_ DISTME_GUARDED_BY(mutex_);
  std::map<std::pair<int, int>, std::string> thread_names_
      DISTME_GUARDED_BY(mutex_);
};

/// \brief RAII span: stamps start on construction, records a complete event
/// on destruction (or explicit End()). Inert when `tracer` is null or
/// disabled — the constructor is then a branch and nothing else.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, const char* category = "")
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ == nullptr) return;
    event_.name = name;
    event_.category = category;
    event_.pid = Tracer::CurrentPid();
    event_.tid = Tracer::CurrentTid();
    event_.ts_us = tracer_->NowMicros();
  }

  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return tracer_ != nullptr; }

  void AddArg(const char* key, int64_t value) {
    if (tracer_ != nullptr) {
      event_.args.emplace_back(key, TraceArgValue::Int(value));
    }
  }
  void AddArg(const char* key, double value) {
    if (tracer_ != nullptr) {
      event_.args.emplace_back(key, TraceArgValue::Double(value));
    }
  }
  void AddArg(const char* key, std::string value) {
    if (tracer_ != nullptr) {
      event_.args.emplace_back(key, TraceArgValue::Str(std::move(value)));
    }
  }

  /// \brief Discards the span without recording it (e.g. a fetch that
  /// turned out to be node-local and never crossed the network).
  void Cancel() { tracer_ = nullptr; }

  /// \brief Ends the span now (idempotent; the destructor is then a no-op).
  void End() {
    if (tracer_ == nullptr) return;
    event_.dur_us = tracer_->NowMicros() - event_.ts_us;
    tracer_->Record(std::move(event_));
    tracer_ = nullptr;
  }

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace distme::obs
