#include "obs/causal_graph.h"

#include <algorithm>
#include <unordered_map>

namespace distme::obs {

CausalGraph BuildCausalGraph(const std::vector<FlightEvent>& events) {
  CausalGraph graph;

  // Analysis targets the most recent complete run in the snapshot: the
  // last kRunFinish, paired with the last kRunStart before it. (A ring
  // can hold several runs, or the tail of a wrapped one.)
  size_t finish_idx = events.size();
  for (size_t i = events.size(); i-- > 0;) {
    if (events[i].type == FlightEventType::kRunFinish) {
      finish_idx = i;
      break;
    }
  }
  if (finish_idx == events.size()) return graph;
  size_t start_idx = finish_idx;  // sentinel: == finish_idx means not found
  for (size_t i = finish_idx; i-- > 0;) {
    if (events[i].type == FlightEventType::kRunStart) {
      start_idx = i;
      break;
    }
  }
  if (start_idx == finish_idx) return graph;

  const FlightEvent& run_start = events[start_idx];
  const FlightEvent& run_finish = events[finish_idx];
  graph.run_start_us = run_start.ts_us;
  graph.run_finish_us = run_finish.ts_us;
  graph.planned_tasks = run_start.a;
  graph.run_ok = run_finish.b == 0;

  std::unordered_map<int64_t, CausalTask> tasks;
  for (size_t i = start_idx; i <= finish_idx; ++i) {
    const FlightEvent& e = events[i];
    switch (e.type) {
      case FlightEventType::kTaskStart: {
        CausalTask& t = tasks[e.a];
        t.task_id = e.a;
        t.node = e.node;
        t.slot = e.slot;
        t.start_us = e.ts_us;
        // A retry's fresh kTaskStart resets the per-attempt accumulators;
        // the analysis describes the attempt that actually finished.
        t.fetch_wait_us = 0;
        t.gpu_wait_us = 0;
        t.finish_us = 0;
        ++t.attempts;
        break;
      }
      case FlightEventType::kTaskFinish: {
        CausalTask& t = tasks[e.a];
        t.task_id = e.a;
        if (t.node < 0) t.node = e.node;
        if (t.slot < 0) t.slot = e.slot;
        t.finish_us = e.ts_us;
        if (t.attempts == 0) {
          // The attempt's start was overwritten by ring wrap; reconstruct
          // it from the duration the finish event carries in `b`.
          t.start_us = e.ts_us - e.b;
          t.attempts = 1;
        }
        break;
      }
      case FlightEventType::kDepEdge: {
        CausalTask& t = tasks[e.a];
        t.task_id = e.a;
        switch (FlightEdgeKindFromName(e.detail)) {
          case FlightEdgeKind::kFetchWait:
            t.fetch_wait_us += e.b;
            break;
          case FlightEdgeKind::kGpuWait:
            t.gpu_wait_us += e.b;
            break;
          default:
            // kSlotWait and kExec are derived (slot chains / remainder),
            // kStage edges belong to stages, not tasks.
            break;
        }
        break;
      }
      case FlightEventType::kStageBegin: {
        CausalStage stage;
        stage.name = e.detail != nullptr ? e.detail : "stage";
        stage.begin_us = e.ts_us;
        stage.end_us = 0;
        graph.stages.push_back(std::move(stage));
        break;
      }
      case FlightEventType::kStageEnd: {
        const std::string name = e.detail != nullptr ? e.detail : "stage";
        for (size_t s = graph.stages.size(); s-- > 0;) {
          if (graph.stages[s].name == name && graph.stages[s].end_us == 0) {
            graph.stages[s].end_us = e.ts_us;
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  graph.tasks.reserve(tasks.size());
  for (auto& [id, t] : tasks) {
    if (t.finish_us == 0) continue;  // never finished (failed run tail)
    graph.tasks.push_back(t);
  }
  std::sort(graph.tasks.begin(), graph.tasks.end(),
            [](const CausalTask& l, const CausalTask& r) {
              if (l.finish_us != r.finish_us) return l.finish_us < r.finish_us;
              return l.task_id < r.task_id;
            });
  // Drop stages that never closed (truncated snapshot).
  graph.stages.erase(
      std::remove_if(graph.stages.begin(), graph.stages.end(),
                     [](const CausalStage& s) { return s.end_us == 0; }),
      graph.stages.end());
  return graph;
}

}  // namespace distme::obs
