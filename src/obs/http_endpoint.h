// A minimal blocking HTTP/1.0 scrape endpoint over plain BSD sockets —
// just enough protocol for `curl http://127.0.0.1:<port>/metrics` and a
// Prometheus scraper, no external dependency. One background accept thread
// serves requests sequentially (scrapes are rare and responses small);
// Stop() (or destruction) closes the listener and joins the thread.
//
// Opt-in: nothing binds unless Start() is called. Binding is loopback-only
// (127.0.0.1) — this is an introspection port, not a public API.

#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace distme::obs {

/// \brief What a handler returns for one request path.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// \brief Loopback HTTP server for live telemetry scrapes.
class HttpEndpoint {
 public:
  /// Maps a request path ("/metrics", "/flight", ...) to a response. Runs
  /// on the endpoint's accept thread; must be thread-safe against the
  /// engine (handlers snapshot registries, which are).
  using Handler = std::function<HttpResponse(const std::string& path)>;

  explicit HttpEndpoint(Handler handler);
  ~HttpEndpoint();

  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// \brief Binds 127.0.0.1:`port` (0 = pick an ephemeral port), starts the
  /// accept thread. Fails if already started or the bind/listen fails.
  [[nodiscard]] Status Start(int port);

  /// \brief Stops accepting, closes the listener, joins the thread.
  /// Idempotent.
  void Stop();

  /// \brief The bound port (useful with Start(0)); -1 when not running.
  int port() const { return port_.load(std::memory_order_acquire); }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// \brief Requests served so far (for tests).
  int64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  Handler handler_ DISTME_LOCKFREE("set in ctor, immutable after");
  std::thread thread_ DISTME_UNSHARED("touched only by Start/Stop callers");
  std::atomic<int> listen_fd_{-1};
  std::atomic<int> port_{-1};
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<int64_t> requests_{0};
};

}  // namespace distme::obs
