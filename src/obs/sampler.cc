#include "obs/sampler.h"

#include <chrono>
#include <utility>

namespace distme::obs {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Sampler::Sampler(const MetricsRegistry* registry, const CommMatrix* comm,
                 SamplerOptions options)
    : registry_(registry), comm_(comm), options_(options) {
  if (options_.period_ms < 1) options_.period_ms = 1;
  if (options_.max_samples < 1) options_.max_samples = 1;
}

Sampler::~Sampler() { Stop(); }

void Sampler::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Sampler::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void Sampler::SampleOnce() {
  Sample sample;
  sample.ts_us = SteadyNowMicros();
  sample.metrics = registry_->Snapshot();
  if (comm_ != nullptr) {
    const CommMatrixSnapshot snap = comm_->Snapshot();
    sample.comm_total_bytes = snap.TotalBytes();
    sample.comm_max_link_bytes = snap.MaxLinkBytes();
    sample.comm_skew = snap.SkewRatio();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Steady clock can report the same microsecond twice under very short
    // periods; nudge forward so the series stays strictly monotonic.
    if (!samples_.empty() && sample.ts_us <= samples_.back().ts_us) {
      sample.ts_us = samples_.back().ts_us + 1;
    }
    samples_.push_back(std::move(sample));
    while (samples_.size() > options_.max_samples) samples_.pop_front();
  }
  total_samples_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Sample> Sampler::Samples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::vector<Sample>(samples_.begin(), samples_.end());
}

void Sampler::Loop() {
  const auto period = std::chrono::milliseconds(options_.period_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    SampleOnce();
    lock.lock();
    cv_.wait_for(lock, period, [this] { return stop_requested_; });
  }
}

}  // namespace distme::obs
