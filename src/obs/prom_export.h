// Prometheus text-format (version 0.0.4) rendering of a metrics snapshot,
// served live by obs::HttpEndpoint at GET /metrics.
//
// Mapping from the registry's model:
//   Counter   -> `# TYPE <name> counter`  + one sample per label set
//   Gauge     -> `# TYPE <name> gauge`    + one sample per label set
//   Histogram -> `# TYPE <name> histogram` + cumulative `_bucket{le=…}`
//                series over the exponential buckets, plus `_sum`/`_count`
// Metric names are sanitized (`distme.task.seconds` ->
// `distme_task_seconds`); label values are escaped per the exposition
// format (\\, \", \n). Non-finite doubles render as the exposition
// format's `NaN` / `+Inf` / `-Inf` tokens — never as bare garbage.

#pragma once

#include <string>

#include "obs/metrics.h"

namespace distme::obs {

/// \brief `name` with every character outside [a-zA-Z0-9_:] replaced by
/// '_' (and a leading '_' prepended if the first character is a digit).
std::string PrometheusName(std::string_view name);

/// \brief A label value with `\`, `"`, and newline escaped for the
/// exposition format.
std::string PrometheusEscapeLabelValue(std::string_view value);

/// \brief Renders `snapshot` as Prometheus text exposition format. Points
/// are grouped by metric name so each name gets exactly one `# TYPE` line.
std::string PrometheusText(const MetricsSnapshot& snapshot);

}  // namespace distme::obs
