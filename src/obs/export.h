// Exporters for the observability layer: Chrome trace-event JSON (loadable
// in chrome://tracing or https://ui.perfetto.dev) and a structured JSON
// rendering of a metrics snapshot, embedded by the engine's run report.

#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme::obs {

/// \brief Minimal JSON string builder with correct escaping. Append-only;
/// the caller provides structure via the Begin/End and Key helpers.
class JsonWriter {
 public:
  void BeginObject() { Separate(); out_.push_back('{'); PushFirst(); }
  void EndObject() { out_.push_back('}'); PopFirst(); }
  void BeginArray() { Separate(); out_.push_back('['); PushFirst(); }
  void EndArray() { out_.push_back(']'); PopFirst(); }

  void Key(std::string_view key) {
    Separate();
    AppendQuoted(key);
    out_.push_back(':');
    pending_value_ = true;
  }

  void Value(std::string_view value) { Separate(); AppendQuoted(value); }
  void Value(const char* value) { Value(std::string_view(value)); }
  void Value(int64_t value);
  void Value(int value) { Value(static_cast<int64_t>(value)); }
  void Value(double value);
  void Value(bool value);

  const std::string& str() const { return out_; }

 private:
  void Separate();
  void PushFirst() { first_stack_.push_back(true); pending_value_ = false; }
  void PopFirst() {
    if (!first_stack_.empty()) first_stack_.pop_back();
    pending_value_ = false;
  }
  void AppendQuoted(std::string_view s);

  std::string out_;
  std::vector<bool> first_stack_;
  bool pending_value_ = false;
};

/// \brief Renders `events` (plus the tracer's track names) as a Chrome
/// trace-event JSON document: {"traceEvents": [...], "displayTimeUnit":"ms"}.
/// Every event carries the required keys `name`, `ph`, `ts`, `pid`, `tid`.
std::string ChromeTraceJson(const Tracer& tracer,
                            const std::vector<TraceEvent>& events);

/// \brief Drains `tracer` and writes the Chrome trace JSON to `path`.
[[nodiscard]] Status WriteChromeTrace(Tracer& tracer, const std::string& path);

/// \brief Writes `content` to `path`, failing on short writes. Shared by the
/// trace / metrics / bench-result exporters.
[[nodiscard]] Status WriteTextFile(const std::string& path, std::string_view content);

/// \brief Appends `snapshot` to `writer` as a JSON array of metric points.
void AppendMetricsJson(const MetricsSnapshot& snapshot, JsonWriter* writer);

/// \brief Standalone JSON array of metric points.
std::string MetricsJson(const MetricsSnapshot& snapshot);

}  // namespace distme::obs
