// CausalGraph: a run reconstructed as a weighted task DAG from a
// flight-recorder snapshot. The executors emit plain events (task start /
// finish, stage begin / end) plus `kDepEdge` blocked-time edges; this
// module folds the event stream back into per-task nodes with a
// blocked-time decomposition and per-stage barrier intervals. It is the
// input to the critical-path analysis (obs/critical_path.h) and the C++
// twin of the parser in scripts/distme_analyze.py.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace distme::obs {

/// \brief One task of the reconstructed run: its placement, its observed
/// interval, and how much of that interval each blocked-time edge kind
/// accounts for.
struct CausalTask {
  int64_t task_id = -1;
  int32_t node = -1;
  int32_t slot = -1;
  int64_t start_us = 0;   ///< last attempt's kTaskStart timestamp
  int64_t finish_us = 0;  ///< kTaskFinish timestamp
  int64_t fetch_wait_us = 0;  ///< Σ kFetchWait edges of the last attempt
  int64_t gpu_wait_us = 0;    ///< Σ kGpuWait edges of the last attempt
  int32_t attempts = 0;

  int64_t span_us() const { return finish_us - start_us; }
};

/// \brief One stage barrier interval ("repartition", "aggregation", ...).
struct CausalStage {
  std::string name;
  int64_t begin_us = 0;
  int64_t end_us = 0;

  int64_t span_us() const { return end_us - begin_us; }
};

/// \brief A run decoded from a flight snapshot: run bounds, completed
/// tasks (ordered by finish time), and stage intervals.
struct CausalGraph {
  int64_t run_start_us = 0;
  int64_t run_finish_us = 0;
  int64_t planned_tasks = 0;  ///< from kRunStart's `a` field
  bool run_ok = false;        ///< kRunFinish seen with b == 0 (success)
  std::vector<CausalTask> tasks;
  std::vector<CausalStage> stages;

  int64_t wall_us() const { return run_finish_us - run_start_us; }
};

/// \brief Reconstructs the LAST complete run present in `events` (a ring
/// snapshot may hold several runs; analysis always targets the most
/// recent kRunStart...kRunFinish pair). Tasks whose start was overwritten
/// by ring wrap fall back to `finish - b` (kTaskFinish carries the
/// attempt's duration in `b`); tasks with no finish event are dropped.
/// Returns an empty graph (wall_us() == 0) if no complete run is found.
CausalGraph BuildCausalGraph(const std::vector<FlightEvent>& events);

}  // namespace distme::obs
