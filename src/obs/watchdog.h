// Straggler watchdog: a background thread that periodically scans the set
// of in-flight tasks and flags any whose elapsed time exceeds
// `threshold_factor` × the stage's median task duration. DistME's LPT
// scheduling (paper §5.2) assumes task runtimes cluster around the cost
// model's estimate; a straggler — skewed data, a contended GPU, an
// injected fault — silently stretches the stage's critical path. The
// watchdog makes that visible while the run is still going: it bumps
// `distme.watchdog.stragglers`, appends a flight-recorder event, and logs
// a warning, once per task attempt.
//
// The median comes from the registry's `distme.task.seconds` histogram
// (bucket-interpolated, accurate within one power of two — plenty for a
// 4× threshold). Tracking is lock-free: executors claim a slot in a fixed
// array with a CAS on task start and release it on finish, so the hot
// path costs two relaxed atomic stores either side of the task body.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

#include "common/thread_annotations.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace distme::obs {

struct WatchdogOptions {
  /// Scan period. Values below 1 ms are clamped to 1 ms.
  int64_t period_ms = 100;
  /// A task is a straggler once elapsed > threshold_factor × stage median.
  double threshold_factor = 4.0;
  /// Never flag tasks younger than this — medians of sub-millisecond tasks
  /// are noise and a 4× multiple of noise flags everything.
  int64_t min_task_us = 10'000;
  /// Capacity of the in-flight task table. Claims beyond it are dropped
  /// (those tasks are simply not watched).
  int max_tracked = 256;
};

/// \brief Watches in-flight tasks for stragglers.
///
/// `registry` must outlive the watchdog and is both the median source
/// (`distme.task.seconds`) and the sink (`distme.watchdog.stragglers`).
/// `flight` may be nullptr.
class Watchdog {
 public:
  Watchdog(MetricsRegistry* registry, FlightRecorder* flight,
           WatchdogOptions options = {});
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// \brief Starts the background scan thread. No-op if already running.
  void Start();

  /// \brief Stops and joins the scan thread. Idempotent.
  void Stop();

  /// \brief Registers a task attempt as in-flight. Returns a token to pass
  /// to TaskFinished, or -1 if the table is full (caller just skips the
  /// TaskFinished call). Thread-safe, lock-free.
  int TaskStarted(int64_t task_id, int node, int slot);

  /// \brief Removes an in-flight task. Tokens from TaskStarted only.
  void TaskFinished(int token);

  /// \brief One scan against the steady clock (also used by the thread).
  /// Returns the number of *newly* flagged stragglers.
  int ScanOnce();

  /// \brief Deterministic scan for tests: `now_us` plays the role of the
  /// current steady-clock reading (compared against TaskStarted times from
  /// the same clock).
  int ScanNow(int64_t now_us);

  /// \brief Stragglers flagged since construction.
  int64_t stragglers_flagged() const {
    return flagged_total_.load(std::memory_order_relaxed);
  }

  /// \brief Tasks currently tracked (for tests).
  int active_tasks() const;

  bool running() const { return running_.load(std::memory_order_acquire); }

  const WatchdogOptions& options() const { return options_; }

 private:
  struct TaskSlot {
    /// -1 = free; >= 0 = task id in flight.
    std::atomic<int64_t> task_id{-1};
    std::atomic<int64_t> start_us{0};
    std::atomic<int32_t> node{-1};
    std::atomic<int32_t> exec_slot{-1};
    std::atomic<bool> flagged{false};
  };

  void Loop();

  MetricsRegistry* registry_
      DISTME_LOCKFREE("set in ctor, immutable; pointee internally synchronized");
  FlightRecorder* flight_
      DISTME_LOCKFREE("set in ctor, immutable; pointee is a seqlock ring");
  WatchdogOptions options_ DISTME_LOCKFREE("set in ctor, immutable after");
  Counter* straggler_counter_
      DISTME_LOCKFREE("set in ctor, immutable; Counter is relaxed atomics");

  std::unique_ptr<TaskSlot[]> slots_
      DISTME_LOCKFREE("pointer fixed in ctor; slots are CAS-claimed atomics");

  std::thread thread_ DISTME_UNSHARED("touched only by Start/Stop callers");
  std::atomic<bool> running_{false};
  std::atomic<int64_t> flagged_total_{0};

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ DISTME_GUARDED_BY(mutex_) = false;
};

}  // namespace distme::obs
