#include "obs/watchdog.h"

#include <chrono>

#include "common/logging.h"

namespace distme::obs {

namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Watchdog::Watchdog(MetricsRegistry* registry, FlightRecorder* flight,
                   WatchdogOptions options)
    : registry_(registry), flight_(flight), options_(options) {
  if (options_.period_ms < 1) options_.period_ms = 1;
  if (options_.max_tracked < 1) options_.max_tracked = 1;
  if (options_.threshold_factor < 1.0) options_.threshold_factor = 1.0;
  straggler_counter_ = registry_->GetCounter("distme.watchdog.stragglers");
  slots_ = std::make_unique<TaskSlot[]>(
      static_cast<size_t>(options_.max_tracked));
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

int Watchdog::TaskStarted(int64_t task_id, int node, int slot) {
  const int64_t now = SteadyNowMicros();
  for (int i = 0; i < options_.max_tracked; ++i) {
    TaskSlot& s = slots_[static_cast<size_t>(i)];
    int64_t expected = -1;
    if (s.task_id.compare_exchange_strong(expected, task_id,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      s.start_us.store(now, std::memory_order_relaxed);
      s.node.store(node, std::memory_order_relaxed);
      s.exec_slot.store(slot, std::memory_order_relaxed);
      s.flagged.store(false, std::memory_order_release);
      return i;
    }
  }
  return -1;  // table full — this attempt simply goes unwatched
}

void Watchdog::TaskFinished(int token) {
  if (token < 0 || token >= options_.max_tracked) return;
  slots_[static_cast<size_t>(token)].task_id.store(
      -1, std::memory_order_release);
}

int Watchdog::ScanOnce() { return ScanNow(SteadyNowMicros()); }

int Watchdog::ScanNow(int64_t now_us) {
  // Median task duration so far, from the cumulative stage histogram. A
  // scan before any task finished has no median — nothing to compare
  // against, so nothing is flagged.
  Histogram* hist = registry_->GetHistogram("distme.task.seconds");
  if (hist->Count() == 0) return 0;
  const double median_us = hist->Percentile(50.0) * 1e6;
  const double threshold_us = options_.threshold_factor * median_us;

  int newly_flagged = 0;
  for (int i = 0; i < options_.max_tracked; ++i) {
    TaskSlot& s = slots_[static_cast<size_t>(i)];
    const int64_t task_id = s.task_id.load(std::memory_order_acquire);
    if (task_id < 0) continue;
    if (s.flagged.load(std::memory_order_relaxed)) continue;
    const int64_t elapsed =
        now_us - s.start_us.load(std::memory_order_relaxed);
    if (elapsed < options_.min_task_us) continue;
    if (static_cast<double>(elapsed) <= threshold_us) continue;
    // Flag exactly once per attempt, even if the slot is concurrently
    // released and reclaimed: a reclaim resets `flagged`, and a stale flag
    // on a freed slot is harmless (task_id check above skips it).
    bool expected = false;
    if (!s.flagged.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      continue;
    }
    const int node = s.node.load(std::memory_order_relaxed);
    const int exec_slot = s.exec_slot.load(std::memory_order_relaxed);
    straggler_counter_->Add(1);
    flagged_total_.fetch_add(1, std::memory_order_relaxed);
    ++newly_flagged;
    if (flight_ != nullptr) {
      flight_->Record(FlightEventType::kWatchdogStraggler, node, exec_slot,
                      task_id, elapsed, "exceeded k x stage median");
    }
    DISTME_LOG(Warning) << "watchdog: task " << task_id << " (node " << node
                        << ", slot " << exec_slot << ") running "
                        << elapsed / 1000 << " ms, > "
                        << options_.threshold_factor << "x stage median ("
                        << static_cast<int64_t>(median_us) / 1000 << " ms)";
  }
  return newly_flagged;
}

int Watchdog::active_tasks() const {
  int active = 0;
  for (int i = 0; i < options_.max_tracked; ++i) {
    if (slots_[static_cast<size_t>(i)].task_id.load(
            std::memory_order_acquire) >= 0) {
      ++active;
    }
  }
  return active;
}

void Watchdog::Loop() {
  const auto period = std::chrono::milliseconds(options_.period_ms);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, period, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

}  // namespace distme::obs
