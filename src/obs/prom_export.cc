#include "obs/prom_export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <vector>

namespace distme::obs {

namespace {

// Exposition-format double: finite values via %.17g, non-finite as the
// format's spelled-out tokens (Prometheus accepts NaN/+Inf/-Inf; a bare
// printf "inf"/"nan" is locale/libc-dependent and must never leak out).
void AppendDouble(double value, std::string* out) {
  if (std::isnan(value)) {
    out->append("NaN");
    return;
  }
  if (std::isinf(value)) {
    out->append(value > 0 ? "+Inf" : "-Inf");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendInt(int64_t value, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out->append(buf);
}

// {name="value",...} with escaped values; `extra` appends one more label
// (used for the histogram `le`). Empty label set and no extra -> nothing.
void AppendLabels(const LabelSet& labels, const std::string& extra_key,
                  const std::string& extra_value, std::string* out) {
  if (labels.empty() && extra_key.empty()) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(PrometheusName(key));
    out->append("=\"");
    out->append(PrometheusEscapeLabelValue(value));
    out->push_back('"');
  }
  if (!extra_key.empty()) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->append("=\"");
    out->append(PrometheusEscapeLabelValue(extra_value));
    out->push_back('"');
  }
  out->push_back('}');
}

const char* TypeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendHistogram(const std::string& name, const MetricPoint& point,
                     std::string* out) {
  // Cumulative buckets. Only buckets that hold observations get an
  // explicit `le` bound (the exposition format allows sparse bucket lists
  // as long as counts are cumulative); `le="+Inf"` always closes the
  // series with the total count.
  int64_t cumulative = 0;
  for (size_t b = 0; b < point.buckets.size(); ++b) {
    if (point.buckets[b] == 0) continue;
    cumulative += point.buckets[b];
    const double upper =
        b + 1 < static_cast<size_t>(Histogram::kBuckets)
            ? Histogram::BucketLowerBound(static_cast<int>(b) + 1)
            : std::numeric_limits<double>::infinity();
    std::string le;
    {
      std::string tmp;
      AppendDouble(upper, &tmp);
      le = std::move(tmp);
    }
    out->append(name);
    out->append("_bucket");
    AppendLabels(point.labels, "le", le, out);
    out->push_back(' ');
    AppendInt(cumulative, out);
    out->push_back('\n');
  }
  out->append(name);
  out->append("_bucket");
  AppendLabels(point.labels, "le", "+Inf", out);
  out->push_back(' ');
  AppendInt(point.value, out);
  out->push_back('\n');

  out->append(name);
  out->append("_sum");
  AppendLabels(point.labels, "", "", out);
  out->push_back(' ');
  AppendDouble(point.sum, out);
  out->push_back('\n');

  out->append(name);
  out->append("_count");
  AppendLabels(point.labels, "", "", out);
  out->push_back(' ');
  AppendInt(point.value, out);
  out->push_back('\n');
}

}  // namespace

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool digit = c >= '0' && c <= '9';
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    c == '_' || c == ':' || digit;
    // A digit can't lead a metric name: keep it, but prepend an underscore.
    if (i == 0 && digit) out.push_back('_');
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  // Group points by sanitized name: one # TYPE line per metric family,
  // every label set underneath it. Two registry names that sanitize to the
  // same family keep the first kind seen (names are dot-namespaced and
  // never collide in practice).
  std::map<std::string, std::vector<const MetricPoint*>> families;
  for (const MetricPoint& point : snapshot.points) {
    families[PrometheusName(point.name)].push_back(&point);
  }
  std::string out;
  for (const auto& [name, points] : families) {
    out.append("# TYPE ");
    out.append(name);
    out.push_back(' ');
    out.append(TypeName(points.front()->kind));
    out.push_back('\n');
    for (const MetricPoint* point : points) {
      switch (point->kind) {
        case MetricKind::kCounter:
        case MetricKind::kGauge:
          out.append(name);
          AppendLabels(point->labels, "", "", &out);
          out.push_back(' ');
          AppendInt(point->value, &out);
          out.push_back('\n');
          break;
        case MetricKind::kHistogram:
          AppendHistogram(name, *point, &out);
          break;
      }
    }
  }
  return out;
}

}  // namespace distme::obs
