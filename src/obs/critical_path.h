// Critical-path analysis over a CausalGraph: which chain of work bound the
// run's wall-clock time, and what resource each hop of that chain was
// waiting on. The walk starts at run-finish and repeatedly follows the
// *binding predecessor* — the latest-ending thing that had to complete
// before the cursor instant — so the emitted hops tile [run_start,
// run_finish] exactly and the path length equals the run's wall time by
// construction (the consistency check ExplainReport surfaces).
//
// Per-task blocked-time decomposition: a task's span (finish − ready) is
// split into slot_wait (ready but no worker slot) + fetch_wait (remote
// input blocks) + gpu_wait (GPU transfer/kernel) + exec (the remainder,
// actual compute). The components sum to the span identically — asserted
// in tests, relied on by the attribution rollup.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/causal_graph.h"
#include "obs/export.h"
#include "obs/gpu_timeline.h"

namespace distme::obs {

/// \brief One task's span decomposed into blocked-time components.
/// Invariant: slot_wait + fetch_wait + gpu_wait + exec == finish − ready.
struct TaskBlockedTime {
  int64_t task_id = -1;
  int32_t node = -1;
  int32_t slot = -1;
  int64_t ready_us = 0;   ///< when the task could first have started
  int64_t start_us = 0;
  int64_t finish_us = 0;
  int64_t slot_wait_us = 0;
  int64_t fetch_wait_us = 0;
  int64_t gpu_wait_us = 0;
  int64_t exec_us = 0;

  int64_t span_us() const { return finish_us - ready_us; }
  int64_t components_us() const {
    return slot_wait_us + fetch_wait_us + gpu_wait_us + exec_us;
  }
};

/// \brief One hop of the critical path: a contiguous interval of the run
/// attributed to a resource bucket.
struct CriticalHop {
  std::string label;     ///< "task 12 exec", "stage repartition", "overhead"
  std::string resource;  ///< shuffle | compute | gpu | scheduling | overhead
  int64_t task_id = -1;  ///< -1 for stage / gap hops
  int64_t begin_us = 0;
  int64_t end_us = 0;

  int64_t duration_us() const { return end_us - begin_us; }
};

/// \brief The full analysis: critical path, per-task decomposition, and
/// the per-resource / per-stage rollups.
struct CriticalPathAnalysis {
  int64_t wall_us = 0;  ///< run_finish − run_start from the graph
  int64_t path_us = 0;  ///< Σ hop durations; == wall_us by construction
  bool run_ok = false;
  std::vector<CriticalHop> hops;       ///< oldest-first, tiling the run
  std::vector<TaskBlockedTime> tasks;  ///< every completed task
  /// Critical-path µs per resource bucket (the "61% shuffle-bound" rollup).
  std::map<std::string, int64_t> attribution_us;
  /// Total span µs per stage-barrier name ("repartition", ...).
  std::map<std::string, int64_t> stage_us;
  /// Fleet-wide µs per blocked-time component, summed over ALL tasks
  /// (not just the path) — separates "the path was shuffle-bound" from
  /// "everyone was shuffle-bound".
  std::map<std::string, int64_t> aggregate_us;

  /// \brief Resource bucket with the largest critical-path attribution
  /// ("" for an empty analysis).
  std::string bottleneck() const;
  /// \brief bottleneck()'s share of the path (0 if empty).
  double bottleneck_fraction() const;

  void AppendJson(JsonWriter* writer) const;
  std::string ToJson() const;
};

/// \brief Runs the analysis. An empty graph yields an empty analysis
/// (wall_us == 0, no hops).
///
/// When `gpu_split` is non-null (window fractions from a GPU overlap
/// report, see obs/gpu_timeline.h), the opaque "gpu" attribution bucket is
/// apportioned into {gpu-kernel, gpu-h2d, gpu-d2h, gpu-bubble} by the
/// device-window fractions, using largest-remainder rounding so the split
/// pieces sum to the original "gpu" µs exactly (path_us is unchanged).
/// Individual hops keep the "gpu" resource label; only the rollup splits.
CriticalPathAnalysis AnalyzeCriticalPath(
    const CausalGraph& graph, const GpuWindowFractions* gpu_split = nullptr);

}  // namespace distme::obs
