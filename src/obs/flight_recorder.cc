#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "obs/export.h"

namespace distme::obs {

namespace {

// Keep entry-for-entry in sync with FlightEventType (distme-lint rule
// `flight-enum-sync` checks that each name is the snake_case of the
// enumerator at the same index; the static_assert below checks the count).
constexpr const char* kFlightEventTypeNames[] = {
    "run_start",           // kRunStart
    "run_finish",          // kRunFinish
    "task_start",          // kTaskStart
    "task_finish",         // kTaskFinish
    "task_retry",          // kTaskRetry
    "block_fetch",         // kBlockFetch
    "block_emit",          // kBlockEmit
    "gpu_submit",          // kGpuSubmit
    "gpu_complete",        // kGpuComplete
    "mem_high_water",      // kMemHighWater
    "watchdog_straggler",  // kWatchdogStraggler
    "fatal",               // kFatal
    "dep_edge",            // kDepEdge
    "stage_begin",         // kStageBegin
    "stage_end",           // kStageEnd
    "gpu_h2d_begin",       // kGpuH2dBegin
    "gpu_h2d_end",         // kGpuH2dEnd
    "gpu_d2h_begin",       // kGpuD2hBegin
    "gpu_d2h_end",         // kGpuD2hEnd
    "gpu_kernel_begin",    // kGpuKernelBegin
    "gpu_kernel_end",      // kGpuKernelEnd
    "gpu_alloc",           // kGpuAlloc
};

static_assert(std::size(kFlightEventTypeNames) ==
                  static_cast<size_t>(FlightEventType::kNumTypes),
              "kFlightEventTypeNames must cover every FlightEventType");

// Keep entry-for-entry in sync with FlightEdgeKind (distme-lint rule
// `flight-edge-sync` checks that each name is the snake_case of the
// enumerator at the same index; the static_assert below checks the count).
constexpr const char* kFlightEdgeKindNames[] = {
    "slot_wait",   // kSlotWait
    "fetch_wait",  // kFetchWait
    "gpu_wait",    // kGpuWait
    "exec",        // kExec
    "stage",       // kStage
};

static_assert(std::size(kFlightEdgeKindNames) ==
                  static_cast<size_t>(FlightEdgeKind::kNumKinds),
              "kFlightEdgeKindNames must cover every FlightEdgeKind");

size_t RoundUpPow2(size_t v) {
  size_t p = 64;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

const char* FlightEventTypeName(FlightEventType type) {
  const size_t i = static_cast<size_t>(type);
  if (i >= std::size(kFlightEventTypeNames)) return "unknown";
  return kFlightEventTypeNames[i];
}

const char* FlightEdgeKindName(FlightEdgeKind kind) {
  const size_t i = static_cast<size_t>(kind);
  if (i >= std::size(kFlightEdgeKindNames)) return "unknown";
  return kFlightEdgeKindNames[i];
}

FlightEdgeKind FlightEdgeKindFromName(const char* name) {
  if (name != nullptr) {
    for (size_t i = 0; i < std::size(kFlightEdgeKindNames); ++i) {
      if (std::strcmp(name, kFlightEdgeKindNames[i]) == 0) {
        return static_cast<FlightEdgeKind>(i);
      }
    }
  }
  return FlightEdgeKind::kNumKinds;
}

// One ring slot. Every payload field is an atomic so a concurrent snapshot
// never tears a field; `seq` is the seqlock version: 0 = never written,
// odd = write in progress, even = 2 × (global sequence number).
struct FlightRecorder::Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<int64_t> ts_us{0};
  std::atomic<uint8_t> type{0};
  std::atomic<int32_t> node{-1};
  std::atomic<int32_t> slot{-1};
  std::atomic<int64_t> a{0};
  std::atomic<int64_t> b{0};
  std::atomic<const char*> detail{nullptr};
};

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      slots_(std::make_unique<Slot[]>(RoundUpPow2(capacity))),
      epoch_(std::chrono::steady_clock::now()) {
  wall_epoch_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  steady_epoch_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                         epoch_.time_since_epoch())
                         .count();
}

FlightRecorder::~FlightRecorder() { UninstallFatalDump(); }

int64_t FlightRecorder::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void FlightRecorder::Record(FlightEventType type, int32_t node, int32_t slot,
                            int64_t a, int64_t b, const char* detail) {
  RecordAt(NowMicros(), type, node, slot, a, b, detail);
}

void FlightRecorder::RecordAt(int64_t ts_us, FlightEventType type,
                              int32_t node, int32_t slot, int64_t a,
                              int64_t b, const char* detail) {
  const int64_t now = ts_us;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[seq & (capacity_ - 1)];
  // Seqlock publish: odd marks the write in progress; a reader that sees
  // the odd value (or different values before/after its copy) discards the
  // slot. If two writers ever land on the same slot (a full ring wrap
  // during one write), the loser's version wins and the reader still only
  // accepts a consistent pair.
  s.seq.store(2 * seq - 1, std::memory_order_release);
  s.ts_us.store(now, std::memory_order_relaxed);
  s.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  s.node.store(node, std::memory_order_relaxed);
  s.slot.store(slot, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.detail.store(detail, std::memory_order_relaxed);
  s.seq.store(2 * seq, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(const Slot& slot, FlightEvent* out) const {
  const uint64_t v1 = slot.seq.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1) != 0) return false;
  out->seq = v1 / 2;
  out->ts_us = slot.ts_us.load(std::memory_order_relaxed);
  out->type = static_cast<FlightEventType>(
      slot.type.load(std::memory_order_relaxed));
  out->node = slot.node.load(std::memory_order_relaxed);
  out->slot = slot.slot.load(std::memory_order_relaxed);
  out->a = slot.a.load(std::memory_order_relaxed);
  out->b = slot.b.load(std::memory_order_relaxed);
  out->detail = slot.detail.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_relaxed) == v1;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    FlightEvent e;
    if (ReadSlot(slots_[i], &e)) events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& l, const FlightEvent& r) {
              return l.seq < r.seq;
            });
  return events;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  // Schema 2 added the wall-clock anchor: event ts_us values are µs since
  // the recorder's construction, which happened at `wall_epoch_us` on the
  // system clock (and `steady_epoch_us` on the process steady clock).
  // Schema 3 adds the per-engine GPU interval events (gpu_h2d/gpu_d2h/
  // gpu_kernel begin/end pairs + gpu_alloc), whose ts_us values sit on the
  // emitting device's virtual clock instead.
  w.Key("schema");
  w.Value(static_cast<int64_t>(3));
  w.Key("wall_epoch_us");
  w.Value(wall_epoch_us_);
  w.Key("steady_epoch_us");
  w.Value(steady_epoch_us_);
  w.Key("total_recorded");
  w.Value(static_cast<int64_t>(TotalRecorded()));
  w.Key("capacity");
  w.Value(static_cast<int64_t>(capacity_));
  w.Key("events");
  w.BeginArray();
  for (const FlightEvent& e : events) {
    w.BeginObject();
    w.Key("seq");
    w.Value(static_cast<int64_t>(e.seq));
    w.Key("ts_us");
    w.Value(e.ts_us);
    w.Key("type");
    w.Value(FlightEventTypeName(e.type));
    w.Key("node");
    w.Value(e.node);
    w.Key("slot");
    w.Value(e.slot);
    w.Key("a");
    w.Value(e.a);
    w.Key("b");
    w.Value(e.b);
    if (e.detail != nullptr) {
      w.Key("detail");
      w.Value(e.detail);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  return WriteTextFile(path, ToJson());
}

namespace {

// write(2) the whole buffer, retrying on short writes. Async-signal-safe.
void WriteAllToStderr(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(STDERR_FILENO, data + off, len - off);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

}  // namespace

void FlightRecorder::FatalDumpToStderr() const {
  // No heap use past this point: the process is dying and the allocator may
  // be the thing that broke. Iterate the ring oldest-first via the global
  // sequence, format each slot into a stack buffer, write(2) it out.
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf),
                        "=== DistME flight recorder: last %zu of %llu "
                        "events ===\n",
                        std::min<size_t>(capacity_, TotalRecorded()),
                        static_cast<unsigned long long>(TotalRecorded()));
  if (n > 0) WriteAllToStderr(buf, static_cast<size_t>(n));
  const uint64_t end = next_.load(std::memory_order_relaxed);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  for (uint64_t seq = begin + 1; seq <= end; ++seq) {
    FlightEvent e;
    if (!ReadSlot(slots_[seq & (capacity_ - 1)], &e) || e.seq != seq) {
      continue;  // overwritten or mid-write; skip rather than misreport
    }
    n = std::snprintf(buf, sizeof(buf),
                      "[flight %8llu %10lld us] %-18s node=%d slot=%d "
                      "a=%lld b=%lld%s%s\n",
                      static_cast<unsigned long long>(e.seq),
                      static_cast<long long>(e.ts_us),
                      FlightEventTypeName(e.type), e.node, e.slot,
                      static_cast<long long>(e.a),
                      static_cast<long long>(e.b),
                      e.detail != nullptr ? " " : "",
                      e.detail != nullptr ? e.detail : "");
    if (n > 0) {
      WriteAllToStderr(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
    }
  }
  WriteAllToStderr("=== end flight recorder ===\n", 28);
}

namespace {

// Bounded registry of recorders to dump on a fatal abort. Slots are claimed
// and released with CAS; the dump hook walks all of them. A recorder past
// the bound simply isn't registered — the fatal path stays allocation-free
// and bounded no matter how many sessions a process creates.
constexpr size_t kMaxFatalRecorders = 8;
std::atomic<const FlightRecorder*> g_fatal_recorders[kMaxFatalRecorders];

void FatalDumpAll() {
  // Reentrancy guard: a crash inside the dump must not recurse.
  static std::atomic<bool> dumping{false};
  bool expected = false;
  if (!dumping.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return;
  }
  for (auto& slot : g_fatal_recorders) {
    const FlightRecorder* recorder = slot.load(std::memory_order_acquire);
    if (recorder != nullptr) recorder->FatalDumpToStderr();
  }
  dumping.store(false, std::memory_order_release);
}

}  // namespace

void FlightRecorder::InstallFatalDump() {
  if (fatal_dump_installed_) return;
  for (auto& slot : g_fatal_recorders) {
    const FlightRecorder* expected = nullptr;
    if (slot.compare_exchange_strong(expected, this,
                                     std::memory_order_acq_rel)) {
      fatal_dump_installed_ = true;
      internal::SetFatalHook(&FatalDumpAll);
      return;
    }
  }
  // Registry full: silently skip (the bound keeps the fatal path simple).
}

void FlightRecorder::UninstallFatalDump() {
  if (!fatal_dump_installed_) return;
  for (auto& slot : g_fatal_recorders) {
    const FlightRecorder* expected = this;
    if (slot.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel)) {
      break;
    }
  }
  fatal_dump_installed_ = false;
}

}  // namespace distme::obs
