#include "obs/http_endpoint.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace distme::obs {

namespace {

const char* StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    default:
      return "500 Internal Server Error";
  }
}

}  // namespace

HttpEndpoint::HttpEndpoint(Handler handler) : handler_(std::move(handler)) {}

HttpEndpoint::~HttpEndpoint() { Stop(); }

Status HttpEndpoint::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::Invalid("http endpoint already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("http endpoint: socket() failed: " +
                           std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IOError(
        "http endpoint: cannot bind 127.0.0.1:" + std::to_string(port) +
        ": " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    const Status st = Status::IOError("http endpoint: listen() failed: " +
                                      std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const Status st = Status::IOError("http endpoint: getsockname() failed");
    ::close(fd);
    return st;
  }
  listen_fd_.store(fd, std::memory_order_release);
  port_.store(static_cast<int>(ntohs(addr.sin_port)),
              std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpEndpoint::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  port_.store(-1, std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

void HttpEndpoint::AcceptLoop() {
  const int fd = listen_fd_.load(std::memory_order_acquire);
  while (!stop_.load(std::memory_order_acquire)) {
    // Poll with a short timeout so Stop() is observed promptly without a
    // wake-up socket.
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound how long a stalled client can hold the (single) serving thread.
    timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpEndpoint::ServeConnection(int fd) {
  // Read until the end of the request headers (or 8 KiB — scrape requests
  // are one line plus a handful of headers).
  std::string request;
  char buf[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  if (request.empty()) return;

  // "GET /path HTTP/1.x". A request whose headers never terminate within
  // the size bound, or whose request line has no method/path shape, is a
  // 400; a well-formed non-GET method is a 405.
  HttpResponse response;
  const bool headers_complete =
      request.find("\r\n\r\n") != std::string::npos ||
      request.find("\n\n") != std::string::npos;
  const size_t line_end = request.find_first_of("\r\n");
  const std::string line = request.substr(0, line_end);
  const size_t method_end = line.find(' ');
  if (!headers_complete && request.size() >= 8192) {
    response.status = 400;
    response.body = "request too large\n";
  } else if (method_end == std::string::npos || method_end == 0) {
    response.status = 400;
    response.body = "malformed request line\n";
  } else if (line.compare(0, method_end, "GET") != 0) {
    response.status = 405;
    response.body = "only GET is supported\n";
  } else {
    const size_t path_start = method_end + 1;
    const size_t path_end = line.find(' ', path_start);
    std::string path =
        line.substr(path_start, path_end == std::string::npos
                                    ? std::string::npos
                                    : path_end - path_start);
    const size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (path.empty() || path[0] != '/') {
      response.status = 400;
      response.body = "malformed request path\n";
    } else {
      response = handler_(path);
    }
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  char header[256];
  const int header_len = std::snprintf(
      header, sizeof(header),
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      StatusLine(response.status), response.content_type.c_str(),
      response.body.size());
  std::string reply(header, static_cast<size_t>(header_len));
  reply += response.body;
  size_t off = 0;
  while (off < reply.size()) {
    const ssize_t n = ::send(fd, reply.data() + off, reply.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

}  // namespace distme::obs
