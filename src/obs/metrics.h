// Engine-wide metrics: lock-free Counter / Gauge / Histogram instruments
// owned by a thread-safe MetricsRegistry. Registration (name + label lookup)
// takes a mutex; the returned instrument pointers are stable for the
// registry's lifetime and their update paths are plain relaxed atomics, so
// task threads can hammer them without coordination.
//
// Metric names follow the scheme `distme.<subsystem>.<name>` (see the
// Observability section of DESIGN.md).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace distme::obs {

/// \brief A (key, value) label list, e.g. {{"reason", "injected_crash"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter. Lock-free.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Instantaneous value that can move both ways. Lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// \brief Raises the gauge to `value` if it is below it (records maxima).
  void SetMax(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (current < value &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Exponential-bucket histogram (base-2 buckets over the value's
/// binary exponent). Count and sum are exact; percentile estimates are
/// linearly interpolated inside the matching bucket, so they are accurate
/// to within one power of two. Lock-free.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(double value);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Min() const;
  double Max() const { return max_.load(std::memory_order_relaxed); }
  /// \brief Estimated value at percentile `p` in [0, 100].
  double Percentile(double p) const;
  void Reset();

  /// \brief Lower bound of bucket `b` (0 for the first bucket).
  static double BucketLowerBound(int b);

  /// \brief Observation count currently in bucket `b`.
  int64_t BucketCount(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

 private:
  static int BucketFor(double value);

  std::array<std::atomic<int64_t>, kBuckets> buckets_{}
      DISTME_LOCKFREE("array of relaxed atomics; each cell is independent");
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +inf until the first observation: a CAS-min can then race-freely fold
  /// in concurrent first observations (a "first one wins" flag cannot — the
  /// winner's store races with other threads' min updates).
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// \brief One instrument's state at snapshot time.
struct MetricPoint {
  std::string name;
  LabelSet labels;
  MetricKind kind = MetricKind::kCounter;
  /// Counter/Gauge value; Histogram count.
  int64_t value = 0;
  /// Histogram-only statistics.
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  /// Histogram-only per-bucket counts (size Histogram::kBuckets), so two
  /// snapshots of a cumulative histogram can be subtracted into exact
  /// per-run bucket counts (see HistogramDelta).
  std::vector<int64_t> buckets;
};

/// \brief Statistics of the observations made *between* two snapshots of
/// the same histogram. Count and sum are exact; min/max/percentiles are
/// bucket-interpolated (accurate within one power of two), since cumulative
/// extremes cannot be attributed to a single run.
struct HistogramDeltaStats {
  int64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// \brief Per-run histogram statistics from the bucket-level difference of
/// `after` minus `before`. `before == nullptr` means "empty histogram"
/// (first run against a fresh registry). Both points must come from
/// snapshots of the same instrument; non-histogram points yield {}.
HistogramDeltaStats HistogramDelta(const MetricPoint& after,
                                   const MetricPoint* before);

/// \brief A consistent-enough copy of every registered instrument.
struct MetricsSnapshot {
  std::vector<MetricPoint> points;

  /// \brief The point with exactly this name and label set, or nullptr.
  const MetricPoint* Find(std::string_view name,
                          const LabelSet& labels = {}) const;
  /// \brief Sum of Counter/Gauge values across all label sets of `name`.
  int64_t TotalValue(std::string_view name) const;
};

/// \brief Thread-safe registry of named, optionally labeled instruments.
///
/// GetX() returns the same instrument for the same (name, labels) pair;
/// instrument pointers remain valid until the registry is destroyed.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name, const LabelSet& labels = {});
  Gauge* GetGauge(std::string_view name, const LabelSet& labels = {});
  Histogram* GetHistogram(std::string_view name, const LabelSet& labels = {});

  MetricsSnapshot Snapshot() const;
  /// \brief Zeroes every registered instrument (instruments stay registered).
  void Reset();

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, const LabelSet& labels,
                      MetricKind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_ DISTME_GUARDED_BY(mutex_);
  std::unordered_map<std::string, Entry*> index_ DISTME_GUARDED_BY(mutex_);
};

}  // namespace distme::obs
