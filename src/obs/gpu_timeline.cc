#include "obs/gpu_timeline.h"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

namespace distme::obs {

namespace {

constexpr int64_t kOrdinalShift = 48;
constexpr int64_t kCuboidShift = 24;
constexpr int64_t kOrdinalMask = 0xFF;
constexpr int64_t kCuboidMask = (int64_t{1} << 24) - 1;
constexpr int64_t kSubMask = (int64_t{1} << 24) - 1;

}  // namespace

int64_t PackGpuTag(int32_t ordinal, int64_t cuboid_id, int64_t sub_index) {
  const int64_t cuboid_field =
      cuboid_id < 0 ? kGpuNoCuboidId : (cuboid_id & kCuboidMask);
  return ((static_cast<int64_t>(ordinal) & kOrdinalMask) << kOrdinalShift) |
         (cuboid_field << kCuboidShift) | (sub_index & kSubMask);
}

int64_t GpuTagWithOrdinal(int32_t ordinal, int64_t tag) {
  return (tag & ~(kOrdinalMask << kOrdinalShift)) |
         ((static_cast<int64_t>(ordinal) & kOrdinalMask) << kOrdinalShift);
}

GpuTag UnpackGpuTag(int64_t packed) {
  GpuTag tag;
  tag.ordinal = static_cast<int32_t>((packed >> kOrdinalShift) & kOrdinalMask);
  const int64_t cuboid_field = (packed >> kCuboidShift) & kCuboidMask;
  tag.cuboid_id = cuboid_field == kGpuNoCuboidId ? -1 : cuboid_field;
  tag.sub_index = packed & kSubMask;
  return tag;
}

const char* GpuEngineName(GpuEngine engine) {
  switch (engine) {
    case GpuEngine::kH2d:
      return "h2d";
    case GpuEngine::kD2h:
      return "d2h";
    case GpuEngine::kKernel:
      return "kernel";
    default:
      return "unknown";
  }
}

double OverlapReport::overlap_ratio() const {
  const int64_t cap = std::min(copy_busy_us, kernel_busy_us);
  if (cap <= 0) return 0.0;
  return static_cast<double>(overlapped_us) / static_cast<double>(cap);
}

double OverlapReport::kernel_utilization() const {
  const int64_t w = window_us();
  if (w <= 0) return 0.0;
  return static_cast<double>(kernel_busy_us) / static_cast<double>(w);
}

double OverlapReport::effective_pcie_bytes_per_sec() const {
  if (copy_busy_us <= 0) return 0.0;
  return static_cast<double>(h2d_bytes + d2h_bytes) /
         (static_cast<double>(copy_busy_us) * 1e-6);
}

GpuWindowFractions OverlapReport::WindowFractions() const {
  GpuWindowFractions f;
  const int64_t w = window_us();
  if (w <= 0) return f;
  const double dw = static_cast<double>(w);
  f.kernel_bound = static_cast<double>(kernel_bound_us) / dw;
  f.h2d_bound = static_cast<double>(h2d_bound_us) / dw;
  f.d2h_bound = static_cast<double>(d2h_bound_us) / dw;
  f.bubble = static_cast<double>(bubble_us) / dw;
  return f;
}

void OverlapReport::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("window_begin_us");
  w->Value(window_begin_us);
  w->Key("window_end_us");
  w->Value(window_end_us);
  w->Key("window_us");
  w->Value(window_us());
  w->Key("h2d_busy_us");
  w->Value(h2d_busy_us);
  w->Key("d2h_busy_us");
  w->Value(d2h_busy_us);
  w->Key("kernel_busy_us");
  w->Value(kernel_busy_us);
  w->Key("copy_busy_us");
  w->Value(copy_busy_us);
  w->Key("overlapped_us");
  w->Value(overlapped_us);
  w->Key("kernel_bound_us");
  w->Value(kernel_bound_us);
  w->Key("h2d_bound_us");
  w->Value(h2d_bound_us);
  w->Key("d2h_bound_us");
  w->Value(d2h_bound_us);
  w->Key("bubble_us");
  w->Value(bubble_us);
  w->Key("bubble_count");
  w->Value(bubble_count);
  w->Key("bubbles");
  w->BeginArray();
  // Cap the listed intervals: bubble_count above is always the true count.
  const size_t listed = std::min<size_t>(bubbles.size(), 64);
  for (size_t i = 0; i < listed; ++i) {
    w->BeginArray();
    w->Value(bubbles[i].first);
    w->Value(bubbles[i].second);
    w->EndArray();
  }
  w->EndArray();
  w->Key("h2d_bytes");
  w->Value(h2d_bytes);
  w->Key("d2h_bytes");
  w->Value(d2h_bytes);
  w->Key("kernel_flops");
  w->Value(kernel_flops);
  w->Key("h2d_copies");
  w->Value(h2d_copies);
  w->Key("d2h_copies");
  w->Value(d2h_copies);
  w->Key("kernel_launches");
  w->Value(kernel_launches);
  w->Key("overlap_ratio");
  w->Value(overlap_ratio());
  w->Key("kernel_utilization");
  w->Value(kernel_utilization());
  w->Key("effective_pcie_bytes_per_sec");
  w->Value(effective_pcie_bytes_per_sec());
  w->Key("pcie_peak_bytes_per_sec");
  w->Value(pcie_peak_bytes_per_sec);
  w->EndObject();
}

namespace {

// Overlap accounting over one interval set via a boundary sweep. Between
// two consecutive boundary timestamps the set of active engines is
// constant, so each segment lands in exactly one of the four exclusive
// buckets (priority kernel > h2d > d2h > bubble) — the buckets tile the
// window by construction, and overlapped ≤ min(copy, kernel) falls out of
// the same sweep (an overlapped segment adds to both busy sums).
OverlapReport ComputeReport(const std::vector<const GpuInterval*>& intervals,
                            double pcie_peak_bytes_per_sec) {
  OverlapReport r;
  r.pcie_peak_bytes_per_sec = pcie_peak_bytes_per_sec;
  if (intervals.empty()) return r;

  r.window_begin_us = intervals.front()->begin_us;
  r.window_end_us = intervals.front()->end_us;
  for (const GpuInterval* iv : intervals) {
    r.window_begin_us = std::min(r.window_begin_us, iv->begin_us);
    r.window_end_us = std::max(r.window_end_us, iv->end_us);
    switch (iv->engine) {
      case GpuEngine::kH2d:
        ++r.h2d_copies;
        r.h2d_bytes += iv->payload;
        break;
      case GpuEngine::kD2h:
        ++r.d2h_copies;
        r.d2h_bytes += iv->payload;
        break;
      case GpuEngine::kKernel:
        ++r.kernel_launches;
        r.kernel_flops += iv->payload;
        break;
      default:
        break;
    }
  }

  struct Edge {
    int64_t t;
    uint8_t engine;
    int8_t delta;
  };
  std::vector<Edge> edges;
  edges.reserve(intervals.size() * 2);
  for (const GpuInterval* iv : intervals) {
    edges.push_back({iv->begin_us, static_cast<uint8_t>(iv->engine), +1});
    edges.push_back({iv->end_us, static_cast<uint8_t>(iv->engine), -1});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& l, const Edge& r2) { return l.t < r2.t; });

  int active[3] = {0, 0, 0};
  int64_t prev = edges.front().t;
  size_t i = 0;
  while (i < edges.size()) {
    const int64_t t = edges[i].t;
    const int64_t len = t - prev;
    if (len > 0) {
      const bool h = active[static_cast<int>(GpuEngine::kH2d)] > 0;
      const bool d = active[static_cast<int>(GpuEngine::kD2h)] > 0;
      const bool k = active[static_cast<int>(GpuEngine::kKernel)] > 0;
      if (h) r.h2d_busy_us += len;
      if (d) r.d2h_busy_us += len;
      if (k) r.kernel_busy_us += len;
      if (h || d) r.copy_busy_us += len;
      if ((h || d) && k) r.overlapped_us += len;
      if (k) {
        r.kernel_bound_us += len;
      } else if (h) {
        r.h2d_bound_us += len;
      } else if (d) {
        r.d2h_bound_us += len;
      } else {
        r.bubble_us += len;
        if (!r.bubbles.empty() && r.bubbles.back().second == prev) {
          r.bubbles.back().second = t;  // zero-length op split the gap
        } else {
          r.bubbles.emplace_back(prev, t);
        }
      }
    }
    while (i < edges.size() && edges[i].t == t) {
      active[edges[i].engine] += edges[i].delta;
      ++i;
    }
    prev = t;
  }
  r.bubble_count = static_cast<int64_t>(r.bubbles.size());
  return r;
}

bool IsGpuBegin(FlightEventType t, GpuEngine* engine) {
  switch (t) {
    case FlightEventType::kGpuH2dBegin:
      *engine = GpuEngine::kH2d;
      return true;
    case FlightEventType::kGpuD2hBegin:
      *engine = GpuEngine::kD2h;
      return true;
    case FlightEventType::kGpuKernelBegin:
      *engine = GpuEngine::kKernel;
      return true;
    default:
      return false;
  }
}

bool IsGpuEnd(FlightEventType t, GpuEngine* engine) {
  switch (t) {
    case FlightEventType::kGpuH2dEnd:
      *engine = GpuEngine::kH2d;
      return true;
    case FlightEventType::kGpuD2hEnd:
      *engine = GpuEngine::kD2h;
      return true;
    case FlightEventType::kGpuKernelEnd:
      *engine = GpuEngine::kKernel;
      return true;
    default:
      return false;
  }
}

}  // namespace

GpuTimelineAnalysis AnalyzeGpuTimeline(const std::vector<FlightEvent>& events,
                                       double pcie_peak_bytes_per_sec) {
  GpuTimelineAnalysis analysis;

  // Bracket to the last complete run when the snapshot contains one: the
  // device virtual clock persists across runs, so filtering by the
  // [run_start, run_finish] *sequence* range is the correct per-run cut.
  uint64_t finish_seq = 0;
  for (const FlightEvent& e : events) {
    if (e.type == FlightEventType::kRunFinish && e.seq > finish_seq) {
      finish_seq = e.seq;
    }
  }
  uint64_t start_seq = 0;
  if (finish_seq != 0) {
    for (const FlightEvent& e : events) {
      if (e.type == FlightEventType::kRunStart && e.seq < finish_seq &&
          e.seq > start_seq) {
        start_seq = e.seq;
      }
    }
  }
  const bool bracketed = finish_seq != 0 && start_seq != 0;

  // Sort the relevant events by sequence so k-th begin pairs with k-th end
  // per (node, ordinal, engine) — the device emits each pair back to back
  // under its mutex, so FIFO matching in sequence order is exact.
  std::vector<const FlightEvent*> gpu_events;
  for (const FlightEvent& e : events) {
    if (bracketed && (e.seq <= start_seq || e.seq >= finish_seq)) continue;
    GpuEngine engine;
    if (IsGpuBegin(e.type, &engine) || IsGpuEnd(e.type, &engine) ||
        e.type == FlightEventType::kGpuAlloc) {
      gpu_events.push_back(&e);
    }
  }
  std::sort(gpu_events.begin(), gpu_events.end(),
            [](const FlightEvent* l, const FlightEvent* r) {
              return l->seq < r->seq;
            });

  struct DeviceBuild {
    std::vector<GpuInterval> intervals;
    int64_t high_water = 0;
  };
  std::map<std::pair<int32_t, int32_t>, DeviceBuild> builds;
  std::map<std::tuple<int32_t, int32_t, uint8_t>,
           std::deque<const FlightEvent*>>
      pending;

  for (const FlightEvent* e : gpu_events) {
    const GpuTag tag = UnpackGpuTag(e->b);
    const std::pair<int32_t, int32_t> dev_key{e->node, tag.ordinal};
    if (e->type == FlightEventType::kGpuAlloc) {
      DeviceBuild& build = builds[dev_key];
      build.high_water = std::max(build.high_water, e->a);
      continue;
    }
    GpuEngine engine;
    if (IsGpuBegin(e->type, &engine)) {
      pending[{e->node, tag.ordinal, static_cast<uint8_t>(engine)}]
          .push_back(e);
      continue;
    }
    if (!IsGpuEnd(e->type, &engine)) continue;
    auto& queue =
        pending[{e->node, tag.ordinal, static_cast<uint8_t>(engine)}];
    if (queue.empty()) continue;  // orphan end: its begin fell off the ring
    const FlightEvent* begin = queue.front();
    queue.pop_front();
    GpuInterval iv;
    iv.engine = engine;
    iv.stream = begin->slot;
    iv.begin_us = begin->ts_us;
    iv.end_us = std::max(e->ts_us, begin->ts_us);
    iv.payload = begin->a;
    iv.cuboid_id = tag.cuboid_id;
    iv.sub_index = tag.sub_index;
    builds[dev_key].intervals.push_back(iv);
  }
  // Unmatched begins (their ends fell outside the snapshot) are dropped:
  // only complete intervals enter the accounting.

  for (auto& [key, build] : builds) {
    if (build.intervals.empty() && build.high_water == 0) continue;
    GpuDeviceTimeline device;
    device.node = key.first;
    device.ordinal = key.second;
    device.occupancy_high_water_bytes = build.high_water;
    device.intervals = std::move(build.intervals);
    std::sort(device.intervals.begin(), device.intervals.end(),
              [](const GpuInterval& l, const GpuInterval& r) {
                return std::tie(l.begin_us, l.end_us) <
                       std::tie(r.begin_us, r.end_us);
              });
    std::vector<const GpuInterval*> all;
    all.reserve(device.intervals.size());
    std::map<int64_t, std::vector<const GpuInterval*>> by_cuboid;
    for (const GpuInterval& iv : device.intervals) {
      all.push_back(&iv);
      if (iv.cuboid_id >= 0) by_cuboid[iv.cuboid_id].push_back(&iv);
    }
    device.report = ComputeReport(all, pcie_peak_bytes_per_sec);
    for (const auto& [cuboid_id, ivs] : by_cuboid) {
      device.cuboids[cuboid_id] =
          ComputeReport(ivs, pcie_peak_bytes_per_sec);
    }
    analysis.devices.push_back(std::move(device));
  }

  // Whole-run aggregate: sums over devices, window = Σ device windows (a
  // duration, not a wall interval — window_begin_us stays 0). Tiling holds
  // for sums, and Σ min(copyᵢ, kernelᵢ) ≤ min(Σ copy, Σ kernel) keeps the
  // overlap invariant.
  OverlapReport& run = analysis.run;
  run.pcie_peak_bytes_per_sec = pcie_peak_bytes_per_sec;
  for (const GpuDeviceTimeline& device : analysis.devices) {
    const OverlapReport& r = device.report;
    run.window_end_us += r.window_us();
    run.h2d_busy_us += r.h2d_busy_us;
    run.d2h_busy_us += r.d2h_busy_us;
    run.kernel_busy_us += r.kernel_busy_us;
    run.copy_busy_us += r.copy_busy_us;
    run.overlapped_us += r.overlapped_us;
    run.kernel_bound_us += r.kernel_bound_us;
    run.h2d_bound_us += r.h2d_bound_us;
    run.d2h_bound_us += r.d2h_bound_us;
    run.bubble_us += r.bubble_us;
    run.bubble_count += r.bubble_count;
    run.h2d_bytes += r.h2d_bytes;
    run.d2h_bytes += r.d2h_bytes;
    run.kernel_flops += r.kernel_flops;
    run.h2d_copies += r.h2d_copies;
    run.d2h_copies += r.d2h_copies;
    run.kernel_launches += r.kernel_launches;
    analysis.occupancy_high_water_bytes =
        std::max(analysis.occupancy_high_water_bytes,
                 device.occupancy_high_water_bytes);
  }
  return analysis;
}

void GpuTimelineAnalysis::AppendJson(JsonWriter* w) const {
  w->BeginObject();
  w->Key("devices");
  w->BeginArray();
  for (const GpuDeviceTimeline& device : devices) {
    w->BeginObject();
    w->Key("node");
    w->Value(device.node);
    w->Key("ordinal");
    w->Value(device.ordinal);
    w->Key("occupancy_high_water_bytes");
    w->Value(device.occupancy_high_water_bytes);
    w->Key("report");
    device.report.AppendJson(w);
    w->Key("cuboids");
    w->BeginArray();
    for (const auto& [cuboid_id, report] : device.cuboids) {
      w->BeginObject();
      w->Key("cuboid_id");
      w->Value(cuboid_id);
      w->Key("report");
      report.AppendJson(w);
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  }
  w->EndArray();
  w->Key("run");
  run.AppendJson(w);
  w->Key("occupancy_high_water_bytes");
  w->Value(occupancy_high_water_bytes);
  w->EndObject();
}

std::string GpuTimelineAnalysis::ToJson() const {
  JsonWriter w;
  AppendJson(&w);
  return w.str();
}

}  // namespace distme::obs
