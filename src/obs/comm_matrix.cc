#include "obs/comm_matrix.h"

#include <algorithm>
#include <cstdio>

#include "common/units.h"
#include "obs/export.h"

namespace distme::obs {

const char* CommStageName(CommStage stage) {
  switch (stage) {
    case CommStage::kRepartition:
      return "repartition";
    case CommStage::kAggregation:
      return "aggregation";
  }
  return "?";
}

CommMatrix::CommMatrix()
    : cells_(std::make_unique<std::atomic<int64_t>[]>(
          kNumCommStages * kMaxNodes * kMaxNodes)) {
  Reset();
}

void CommMatrix::Record(CommStage stage, int src, int dst, int64_t bytes) {
  if (bytes <= 0 || src < 0 || dst < 0) return;
  src %= kMaxNodes;
  dst %= kMaxNodes;
  cells_[CellIndex(stage, src, dst)].fetch_add(bytes,
                                               std::memory_order_relaxed);
  const int hi = src > dst ? src : dst;
  int current = max_node_.load(std::memory_order_relaxed);
  while (current < hi &&
         !max_node_.compare_exchange_weak(current, hi,
                                          std::memory_order_relaxed)) {
  }
}

CommMatrixSnapshot CommMatrix::Snapshot() const {
  CommMatrixSnapshot snapshot;
  snapshot.num_nodes = num_nodes();
  const int n = snapshot.num_nodes;
  for (int s = 0; s < kNumCommStages; ++s) {
    snapshot.cells[static_cast<size_t>(s)].resize(
        static_cast<size_t>(n) * static_cast<size_t>(n));
    for (int src = 0; src < n; ++src) {
      for (int dst = 0; dst < n; ++dst) {
        snapshot.cells[static_cast<size_t>(s)]
                      [static_cast<size_t>(src) * static_cast<size_t>(n) +
                       static_cast<size_t>(dst)] =
            cells_[CellIndex(static_cast<CommStage>(s), src, dst)].load(
                std::memory_order_relaxed);
      }
    }
  }
  return snapshot;
}

void CommMatrix::Reset() {
  for (size_t i = 0;
       i < static_cast<size_t>(kNumCommStages) * kMaxNodes * kMaxNodes; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
}

int64_t CommMatrixSnapshot::Bytes(CommStage stage, int src, int dst) const {
  if (src < 0 || dst < 0 || src >= num_nodes || dst >= num_nodes) return 0;
  return cells[static_cast<size_t>(stage)]
              [static_cast<size_t>(src) * static_cast<size_t>(num_nodes) +
               static_cast<size_t>(dst)];
}

int64_t CommMatrixSnapshot::LinkBytes(int src, int dst) const {
  return Bytes(CommStage::kRepartition, src, dst) +
         Bytes(CommStage::kAggregation, src, dst);
}

int64_t CommMatrixSnapshot::TotalBytes(CommStage stage) const {
  int64_t total = 0;
  for (int64_t cell : cells[static_cast<size_t>(stage)]) total += cell;
  return total;
}

int64_t CommMatrixSnapshot::TotalBytes() const {
  return TotalBytes(CommStage::kRepartition) +
         TotalBytes(CommStage::kAggregation);
}

int64_t CommMatrixSnapshot::MaxLinkBytes() const {
  int64_t max = 0;
  for (int src = 0; src < num_nodes; ++src) {
    for (int dst = 0; dst < num_nodes; ++dst) {
      if (src == dst) continue;
      max = std::max(max, LinkBytes(src, dst));
    }
  }
  return max;
}

double CommMatrixSnapshot::MeanLinkBytes() const {
  if (num_nodes < 2) return 0.0;
  int64_t off_diagonal = 0;
  for (int src = 0; src < num_nodes; ++src) {
    for (int dst = 0; dst < num_nodes; ++dst) {
      if (src != dst) off_diagonal += LinkBytes(src, dst);
    }
  }
  return static_cast<double>(off_diagonal) /
         (static_cast<double>(num_nodes) * (num_nodes - 1));
}

int CommMatrixSnapshot::ActiveLinks() const {
  int active = 0;
  for (int src = 0; src < num_nodes; ++src) {
    for (int dst = 0; dst < num_nodes; ++dst) {
      active += src != dst && LinkBytes(src, dst) > 0;
    }
  }
  return active;
}

double CommMatrixSnapshot::SkewRatio() const {
  const double mean = MeanLinkBytes();
  if (mean <= 0.0) return 0.0;
  return static_cast<double>(MaxLinkBytes()) / mean;
}

CommMatrixSnapshot CommMatrixSnapshot::Delta(
    const CommMatrixSnapshot& before) const {
  CommMatrixSnapshot delta = *this;
  for (int s = 0; s < kNumCommStages; ++s) {
    for (int src = 0; src < before.num_nodes; ++src) {
      for (int dst = 0; dst < before.num_nodes; ++dst) {
        if (src >= num_nodes || dst >= num_nodes) continue;
        delta.cells[static_cast<size_t>(s)]
                   [static_cast<size_t>(src) *
                        static_cast<size_t>(num_nodes) +
                    static_cast<size_t>(dst)] -=
            before.cells[static_cast<size_t>(s)]
                        [static_cast<size_t>(src) *
                             static_cast<size_t>(before.num_nodes) +
                         static_cast<size_t>(dst)];
      }
    }
  }
  return delta;
}

std::string CommMatrixSnapshot::ToTable() const {
  std::string out;
  char buf[128];
  if (empty()) return "comm matrix: no traffic recorded\n";
  for (int s = 0; s < kNumCommStages; ++s) {
    const auto stage = static_cast<CommStage>(s);
    if (TotalBytes(stage) == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s (src \\ dst):\n",
                  CommStageName(stage));
    out += buf;
    out += "         ";
    for (int dst = 0; dst < num_nodes; ++dst) {
      std::snprintf(buf, sizeof(buf), "%12s",
                    ("node" + std::to_string(dst)).c_str());
      out += buf;
    }
    out += "         total\n";
    for (int src = 0; src < num_nodes; ++src) {
      std::snprintf(buf, sizeof(buf), "  node%-3d", src);
      out += buf;
      int64_t row_total = 0;
      for (int dst = 0; dst < num_nodes; ++dst) {
        const int64_t b = Bytes(stage, src, dst);
        row_total += b;
        std::snprintf(buf, sizeof(buf), "%12s",
                      b == 0 ? "-"
                             : FormatBytes(static_cast<double>(b)).c_str());
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "%14s\n",
                    FormatBytes(static_cast<double>(row_total)).c_str());
      out += buf;
    }
  }
  std::snprintf(
      buf, sizeof(buf),
      "total %s | max link %s | %d active links | skew %.2f\n",
      FormatBytes(static_cast<double>(TotalBytes())).c_str(),
      FormatBytes(static_cast<double>(MaxLinkBytes())).c_str(), ActiveLinks(),
      SkewRatio());
  out += buf;
  return out;
}

void CommMatrixSnapshot::AppendJson(JsonWriter* writer) const {
  writer->BeginObject();
  writer->Key("num_nodes");
  writer->Value(num_nodes);
  writer->Key("total_bytes");
  writer->Value(TotalBytes());
  writer->Key("max_link_bytes");
  writer->Value(MaxLinkBytes());
  writer->Key("mean_link_bytes");
  writer->Value(MeanLinkBytes());
  writer->Key("active_links");
  writer->Value(ActiveLinks());
  writer->Key("skew_ratio");
  writer->Value(SkewRatio());
  writer->Key("stages");
  writer->BeginObject();
  for (int s = 0; s < kNumCommStages; ++s) {
    const auto stage = static_cast<CommStage>(s);
    writer->Key(CommStageName(stage));
    writer->BeginObject();
    writer->Key("total_bytes");
    writer->Value(TotalBytes(stage));
    writer->Key("bytes");
    writer->BeginArray();  // row-major [src][dst]
    for (int src = 0; src < num_nodes; ++src) {
      writer->BeginArray();
      for (int dst = 0; dst < num_nodes; ++dst) {
        writer->Value(Bytes(stage, src, dst));
      }
      writer->EndArray();
    }
    writer->EndArray();
    writer->EndObject();
  }
  writer->EndObject();
  writer->EndObject();
}

std::string CommMatrixSnapshot::ToJson() const {
  JsonWriter writer;
  AppendJson(&writer);
  return writer.str();
}

}  // namespace distme::obs
