// FlightRecorder: a lock-free, fixed-capacity ring buffer of structured
// engine events — the "black box" of a run. Executors, the GPU streaming
// path, and the memory tracker append events on the hot path (a handful of
// relaxed atomic stores, no allocation, no locks); the ring keeps the most
// recent `capacity` events and can be dumped on demand (JSON), on a failed
// run (RealExecutor's fault-injection path), or on a fatal abort
// (Result<T>::value() on an error) without allocating.
//
// Concurrency model: writers claim a global sequence number with one
// fetch_add, then publish into slot (seq % capacity) under a per-slot
// seqlock (odd = write in progress). Every payload field is itself an
// atomic, so a concurrent reader never tears a field and TSan stays silent;
// the seqlock version check rejects slots that were mid-overwrite. A reader
// can therefore snapshot the ring while eight workers hammer it.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace distme::obs {

/// \brief The kind of engine event a flight-recorder entry describes.
///
/// The enum and the string table `kFlightEventTypeNames` in
/// flight_recorder.cc must stay in sync entry-for-entry (each name is the
/// snake_case of the enumerator) — checked at compile time by a
/// static_assert on the count and by distme-lint rule `flight-enum-sync`
/// on the order.
enum class FlightEventType : uint8_t {
  kRunStart = 0,       ///< executor run begins (a = planned tasks)
  kRunFinish,          ///< executor run ends (a = 0 ok / status code)
  kTaskStart,          ///< task attempt begins (a = task id, b = attempt)
  kTaskFinish,         ///< task attempt succeeded (a = task id, b = µs)
  kTaskRetry,          ///< task attempt failed (a = task id, b = attempt)
  kBlockFetch,         ///< remote block fetch (slot = src node, a = bytes)
  kBlockEmit,          ///< cross-node aggregation emit (a = bytes)
  kGpuSubmit,          ///< GPU subcuboid submitted (a = subcuboid index)
  kGpuComplete,        ///< GPU subcuboid completed (a = index, b = µs)
  kMemHighWater,       ///< task memory high-water doubled (a = peak bytes)
  kWatchdogStraggler,  ///< watchdog flagged a straggler (a = id, b = age µs)
  kFatal,              ///< fatal error; the ring is being dumped
  kDepEdge,            ///< causal edge (a = task id, b = µs, detail = kind)
  kStageBegin,         ///< stage barrier opens (detail = stage name)
  kStageEnd,           ///< stage barrier closes (detail = stage name)
  // Schema 3: per-engine GPU interval events. All six interval kinds share
  // one payload layout — ts_us is the device's *virtual* clock in µs, node
  // is the device's node, slot is the stream id, `a` is bytes (copies) or
  // flops (kernels), and `b` is a packed tag (device ordinal + cuboid id +
  // subcuboid index; see obs/gpu_timeline.h). Begin/end pairs are emitted
  // back to back under the device mutex, so the k-th begin on a
  // (node, ordinal, engine) matches the k-th end in sequence order.
  kGpuH2dBegin,        ///< H2D chunk copy starts on the copy-in engine
  kGpuH2dEnd,          ///< H2D chunk copy completes
  kGpuD2hBegin,        ///< D2H writeback starts on the copy-out engine
  kGpuD2hEnd,          ///< D2H writeback completes
  kGpuKernelBegin,     ///< kernel starts on the compute engine (a = flops)
  kGpuKernelEnd,       ///< kernel completes
  kGpuAlloc,           ///< device buffer alloc/free (a = memory in use,
                       ///< detail = "alloc"/"free") for θg occupancy
  kNumTypes            // sentinel — keep last
};

/// \brief Stable snake_case name of `type` ("task_start", ...).
const char* FlightEventTypeName(FlightEventType type);

/// \brief What a `kDepEdge` event attributes its waited/spent time to.
///
/// An edge event records "task `a` spent `b` µs bound by <kind>, ending at
/// `ts_us`". The causal-graph builder folds these into the per-task
/// blocked-time decomposition (slot_wait + fetch_wait + gpu_wait + exec ==
/// task span). The enum and `kFlightEdgeKindNames` in flight_recorder.cc
/// must stay in sync entry-for-entry (snake_case of the enumerator) —
/// checked by a static_assert on the count and by distme-lint rule
/// `flight-edge-sync` on the order.
enum class FlightEdgeKind : uint8_t {
  kSlotWait = 0,  ///< ready but no worker slot free (scheduling)
  kFetchWait,     ///< blocked fetching remote input blocks (shuffle)
  kGpuWait,       ///< blocked on GPU transfer/kernel completion
  kExec,          ///< actually computing on the worker slot
  kStage,         ///< stage-barrier dependency (repartition/aggregation)
  kNumKinds       // sentinel — keep last
};

/// \brief Stable snake_case name of `kind` ("fetch_wait", ...). The
/// returned pointer is a string literal, so it is safe to pass as a
/// flight-event `detail`.
const char* FlightEdgeKindName(FlightEdgeKind kind);

/// \brief Reverse lookup of FlightEdgeKindName; kNumKinds if unknown.
FlightEdgeKind FlightEdgeKindFromName(const char* name);

/// \brief One decoded flight-recorder event (a snapshot copy of a slot).
struct FlightEvent {
  uint64_t seq = 0;   ///< global sequence number (1-based, gap-free)
  int64_t ts_us = 0;  ///< µs since the recorder was constructed
  FlightEventType type = FlightEventType::kRunStart;
  int32_t node = -1;  ///< simulated node (-1 = driver / not applicable)
  int32_t slot = -1;  ///< task slot, or the peer node for transfers
  int64_t a = 0;      ///< event-specific (see FlightEventType)
  int64_t b = 0;      ///< event-specific
  /// Static-storage detail string (always a literal; never freed).
  const char* detail = nullptr;
};

/// \brief Lock-free fixed-capacity ring of engine events.
class FlightRecorder {
 public:
  /// \brief `capacity` is rounded up to a power of two (min 64).
  explicit FlightRecorder(size_t capacity = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// \brief Appends one event. Lock-free, allocation-free; safe from any
  /// number of threads. `detail` MUST be a string literal (or otherwise
  /// have static storage duration) — the ring stores the pointer.
  void Record(FlightEventType type, int32_t node = -1, int32_t slot = -1,
              int64_t a = 0, int64_t b = 0, const char* detail = nullptr);

  /// \brief Like Record() but with a caller-supplied timestamp instead of
  /// NowMicros(). Lets the sim executor emit events on its simulated
  /// clock, so a sim dump replays through the same causal-analysis path
  /// as a real one.
  void RecordAt(int64_t ts_us, FlightEventType type, int32_t node = -1,
                int32_t slot = -1, int64_t a = 0, int64_t b = 0,
                const char* detail = nullptr);

  /// \brief Appends a `kDepEdge` event: task `task_id` on (node, slot)
  /// spent `duration_us` µs bound by `kind`, the interval ending now.
  void RecordEdge(FlightEdgeKind kind, int32_t node, int32_t slot,
                  int64_t task_id, int64_t duration_us) {
    Record(FlightEventType::kDepEdge, node, slot, task_id, duration_us,
           FlightEdgeKindName(kind));
  }

  /// \brief RecordEdge() with a caller-supplied interval-end timestamp.
  void RecordEdgeAt(int64_t ts_us, FlightEdgeKind kind, int32_t node,
                    int32_t slot, int64_t task_id, int64_t duration_us) {
    RecordAt(ts_us, FlightEventType::kDepEdge, node, slot, task_id,
             duration_us, FlightEdgeKindName(kind));
  }

  /// \brief Total events ever recorded (≥ the number retained).
  uint64_t TotalRecorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// \brief µs since this recorder was constructed (the event clock).
  int64_t NowMicros() const;

  /// \brief Wall-clock anchor: system_clock µs since the Unix epoch at
  /// construction (when the event clock read 0). Lets a dump be
  /// correlated with sampler timestamps and with other dumps.
  int64_t WallEpochMicros() const { return wall_epoch_us_; }

  /// \brief steady_clock µs (arbitrary epoch) at construction — the
  /// offset between the event clock and the process steady clock.
  int64_t SteadyEpochMicros() const { return steady_epoch_us_; }

  /// \brief Copies out the retained events, oldest first. Events being
  /// overwritten concurrently are skipped, never torn.
  std::vector<FlightEvent> Snapshot() const;

  /// \brief JSON dump: {"schema":3, "wall_epoch_us":…, "steady_epoch_us":…,
  /// "total_recorded":…, "capacity":…, "events":[…]}.
  std::string ToJson() const;

  /// \brief Writes ToJson() to `path`.
  [[nodiscard]] Status DumpToFile(const std::string& path) const;

  /// \brief Allocation-free dump of the ring to stderr, for fatal paths:
  /// formats each slot into a stack buffer and write(2)s it. Safe to call
  /// after a fatal status (no heap use, no locks).
  void FatalDumpToStderr() const;

  /// \brief Registers this recorder so a fatal abort
  /// (Result<T>::value()/ValueOrDie() on an error, DISTME_CHECK_OK) dumps
  /// it to stderr before the process dies. Bounded registry (8 recorders);
  /// registration past the bound is silently dropped. The destructor
  /// unregisters automatically.
  void InstallFatalDump();
  void UninstallFatalDump();

 private:
  struct Slot;

  // Seqlock-validated copy of one slot; false if empty or mid-write.
  bool ReadSlot(const Slot& slot, FlightEvent* out) const;

  const size_t capacity_;  // power of two
  std::unique_ptr<Slot[]> slots_
      DISTME_LOCKFREE("pointer fixed in ctor; slots are per-slot seqlocks");
  std::atomic<uint64_t> next_{0};
  const std::chrono::steady_clock::time_point epoch_;
  int64_t wall_epoch_us_ DISTME_LOCKFREE("written once in ctor") = 0;
  int64_t steady_epoch_us_ DISTME_LOCKFREE("written once in ctor") = 0;
  bool fatal_dump_installed_
      DISTME_UNSHARED("Install/Uninstall are owner-thread calls") = false;
};

}  // namespace distme::obs
