#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>

namespace distme::obs {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

struct TrackContext {
  int pid = 0;
  int tid = 0;
};

thread_local TrackContext t_track;

// Per-thread cache of this thread's buffer in each live tracer. Keyed by a
// unique tracer id (not the pointer), so a tracer reallocated at the same
// address can never alias a stale entry.
thread_local std::unordered_map<uint64_t, void*> t_buffer_cache;

}  // namespace

Tracer::Tracer()
    : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  auto it = t_buffer_cache.find(tracer_id_);
  if (it != t_buffer_cache.end()) {
    return static_cast<ThreadBuffer*>(it->second);
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buffer.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers_.push_back(std::move(buffer));
  }
  t_buffer_cache.emplace(tracer_id_, raw);
  return raw;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mutex);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<TraceEvent> all;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      std::move(buffer->events.begin(), buffer->events.end(),
                std::back_inserter(all));
      buffer->events.clear();
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;
                   });
  return all;
}

size_t Tracer::EventCount() const {
  size_t total = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

void Tracer::SetProcessName(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_names_[pid] = std::move(name);
}

void Tracer::SetThreadName(int pid, int tid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  thread_names_[{pid, tid}] = std::move(name);
}

Tracer::ScopedTrack::ScopedTrack(int pid, int tid)
    : prev_pid_(t_track.pid), prev_tid_(t_track.tid) {
  t_track.pid = pid;
  t_track.tid = tid;
}

Tracer::ScopedTrack::~ScopedTrack() {
  t_track.pid = prev_pid_;
  t_track.tid = prev_tid_;
}

int Tracer::CurrentPid() { return t_track.pid; }
int Tracer::CurrentTid() { return t_track.tid; }

}  // namespace distme::obs
