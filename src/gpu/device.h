// A software GPU device: the substitution for the paper's GTX 1080 Ti.
//
// The device executes kernel bodies on the CPU (so results are real) while
// keeping a *virtual* timeline calibrated to GPU hardware: per-stream FIFO
// ordering, one H2D and one D2H copy engine (H2D copies of different streams
// cannot overlap each other — Section 4.3), and a serial kernel engine.
// Synchronize() returns the virtual completion time, which is what the
// discrete-event executor charges for the local multiplication step.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "common/result.h"
#include "sim/timeline.h"

namespace distme::gpu {

using StreamId = int32_t;
using BufferId = int64_t;

/// \brief Counters accumulated by a device.
struct DeviceStats {
  int64_t h2d_bytes = 0;
  int64_t d2h_bytes = 0;
  int64_t kernel_calls = 0;
  int64_t h2d_copies = 0;
  int64_t d2h_copies = 0;
  double h2d_seconds = 0;     ///< virtual copy-engine busy time, host→device
  double d2h_seconds = 0;     ///< virtual copy-engine busy time, device→host
  double kernel_seconds = 0;  ///< virtual kernel-engine busy time
  int64_t peak_memory_bytes = 0;

  /// \brief GPU core utilization over a window of `elapsed` seconds.
  double UtilizationOver(double elapsed) const {
    return elapsed <= 0.0 ? 0.0 : kernel_seconds / elapsed;
  }
};

/// \brief The simulated GPU.
///
/// Thread-safe: multiple tasks on a node may enqueue concurrently, which is
/// the behaviour CUDA MPS provides (Section 4.1). Kernel bodies run inline
/// under the device lock — faithfully serializing device work.
class Device {
 public:
  Device(const GpuSpec& spec, const HardwareModel& hw)
      : spec_(spec), hw_(hw) {}

  /// \brief Reserves device memory; OutOfMemory if the device is full.
  [[nodiscard]] Result<BufferId> Allocate(int64_t bytes, const std::string& label);

  /// \brief Releases a buffer.
  [[nodiscard]] Status Free(BufferId id);

  /// \brief Creates a new stream; ops on the same stream are FIFO.
  StreamId CreateStream();

  /// \brief Enqueues a host→device copy of `bytes` on `stream`.
  [[nodiscard]] Status EnqueueH2D(StreamId stream, int64_t bytes);

  /// \brief Enqueues a device→host copy of `bytes` on `stream`.
  [[nodiscard]] Status EnqueueD2H(StreamId stream, int64_t bytes);

  /// \brief Enqueues a kernel of `flops` work; `body` (may be empty) runs
  /// immediately (the "device computation"), timing is virtual.
  /// `sparse` selects the sparse-throughput model (cusparseDcsrmm vs
  /// cublasDgemm).
  [[nodiscard]] Status EnqueueKernel(StreamId stream, int64_t flops,
                       const std::function<void()>& body = nullptr,
                       bool sparse = false);

  /// \brief Waits for all streams; returns the virtual time at which the
  /// last enqueued operation completes.
  double Synchronize();

  const DeviceStats& stats() const { return stats_; }
  const GpuSpec& spec() const { return spec_; }
  int64_t memory_used() const { return memory_used_; }

  /// \brief Resets timelines and counters (memory stays allocated).
  void ResetTimeline();

 private:
  [[nodiscard]] Status ValidateStream(StreamId stream) const;

  GpuSpec spec_;
  HardwareModel hw_;
  mutable std::mutex mutex_;
  std::vector<sim::ResourceTimeline> streams_;
  sim::ResourceTimeline h2d_engine_;
  sim::ResourceTimeline d2h_engine_;
  sim::ResourceTimeline kernel_engine_;
  DeviceStats stats_;
  int64_t memory_used_ = 0;
  int64_t next_buffer_ = 1;
  std::vector<std::pair<BufferId, int64_t>> buffers_;
  double last_completion_ = 0;
};

}  // namespace distme::gpu
