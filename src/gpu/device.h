// A software GPU device: the substitution for the paper's GTX 1080 Ti.
//
// The device executes kernel bodies on the CPU (so results are real) while
// keeping a *virtual* timeline calibrated to GPU hardware: per-stream FIFO
// ordering, one H2D and one D2H copy engine (H2D copies of different streams
// cannot overlap each other — Section 4.3), and a serial kernel engine.
// Synchronize() returns the virtual completion time, which is what the
// discrete-event executor charges for the local multiplication step.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/flight_recorder.h"
#include "sim/timeline.h"

namespace distme::gpu {

using StreamId = int32_t;
using BufferId = int64_t;

/// \brief Counters accumulated by a device.
struct DeviceStats {
  int64_t h2d_bytes = 0;
  int64_t d2h_bytes = 0;
  int64_t kernel_calls = 0;
  int64_t h2d_copies = 0;
  int64_t d2h_copies = 0;
  double h2d_seconds = 0;     ///< virtual copy-engine busy time, host→device
  double d2h_seconds = 0;     ///< virtual copy-engine busy time, device→host
  double kernel_seconds = 0;  ///< virtual kernel-engine busy time
  int64_t peak_memory_bytes = 0;

  /// \brief GPU core utilization over a window of `elapsed` seconds.
  double UtilizationOver(double elapsed) const {
    return elapsed <= 0.0 ? 0.0 : kernel_seconds / elapsed;
  }
};

/// \brief The simulated GPU.
///
/// Thread-safe: multiple tasks on a node may enqueue concurrently, which is
/// the behaviour CUDA MPS provides (Section 4.1). Kernel bodies run inline
/// under the device lock — faithfully serializing device work.
class Device {
 public:
  Device(const GpuSpec& spec, const HardwareModel& hw)
      : spec_(spec), hw_(hw) {}

  /// \brief Reserves device memory; OutOfMemory if the device is full.
  [[nodiscard]] Result<BufferId> Allocate(int64_t bytes, const std::string& label);

  /// \brief Releases a buffer.
  [[nodiscard]] Status Free(BufferId id);

  /// \brief Creates a new stream; ops on the same stream are FIFO.
  StreamId CreateStream();

  /// \brief Attaches a flight recorder: every subsequent H2D/D2H/kernel
  /// enqueue emits a begin/end interval pair (flight schema 3) timestamped
  /// on the device's *virtual* clock, and Allocate/Free emit `gpu_alloc`
  /// occupancy marks. `node`/`ordinal` identify this device in the events
  /// (the ordinal is stamped into the packed tag, see obs/gpu_timeline.h).
  /// Passing nullptr detaches.
  void AttachFlight(obs::FlightRecorder* flight, int32_t node,
                    int32_t ordinal);

  /// \brief Enqueues a host→device copy of `bytes` on `stream`. `tag` is an
  /// optional packed (cuboid, subcuboid) label carried into the flight
  /// events (obs::PackGpuTag); negative = untagged.
  [[nodiscard]] Status EnqueueH2D(StreamId stream, int64_t bytes,
                                  int64_t tag = -1);

  /// \brief Enqueues a device→host copy of `bytes` on `stream`.
  [[nodiscard]] Status EnqueueD2H(StreamId stream, int64_t bytes,
                                  int64_t tag = -1);

  /// \brief Enqueues a kernel of `flops` work; `body` (may be empty) runs
  /// immediately (the "device computation"), timing is virtual.
  /// `sparse` selects the sparse-throughput model (cusparseDcsrmm vs
  /// cublasDgemm).
  [[nodiscard]] Status EnqueueKernel(StreamId stream, int64_t flops,
                       const std::function<void()>& body = nullptr,
                       bool sparse = false, int64_t tag = -1);

  /// \brief Waits for all streams; returns the virtual time at which the
  /// last enqueued operation completes.
  double Synchronize();

  /// \brief Copy of the accumulated counters. By value: `stats_` is guarded
  /// by mutex_, so a reference would let callers read it while another task
  /// thread enqueues work on the device.
  DeviceStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  const GpuSpec& spec() const { return spec_; }
  int64_t memory_used() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return memory_used_;
  }

  /// \brief Resets timelines and counters (memory stays allocated).
  void ResetTimeline();

 private:
  [[nodiscard]] Status ValidateStream(StreamId stream) const
      DISTME_REQUIRES(mutex_);

  // Emits a begin/end interval pair for [start, start + duration) (virtual
  // seconds) under mutex_. No-op when no recorder is attached.
  void EmitInterval(obs::FlightEventType begin, obs::FlightEventType end,
                    StreamId stream, int64_t payload, int64_t tag,
                    double start, double duration) DISTME_REQUIRES(mutex_);

  GpuSpec spec_ DISTME_LOCKFREE("set in ctor, immutable after");
  HardwareModel hw_ DISTME_LOCKFREE("set in ctor, immutable after");
  mutable std::mutex mutex_;
  std::vector<sim::ResourceTimeline> streams_ DISTME_GUARDED_BY(mutex_);
  sim::ResourceTimeline h2d_engine_ DISTME_GUARDED_BY(mutex_);
  sim::ResourceTimeline d2h_engine_ DISTME_GUARDED_BY(mutex_);
  sim::ResourceTimeline kernel_engine_ DISTME_GUARDED_BY(mutex_);
  DeviceStats stats_ DISTME_GUARDED_BY(mutex_);
  int64_t memory_used_ DISTME_GUARDED_BY(mutex_) = 0;
  int64_t next_buffer_ DISTME_GUARDED_BY(mutex_) = 1;
  std::vector<std::pair<BufferId, int64_t>> buffers_ DISTME_GUARDED_BY(mutex_);
  double last_completion_ DISTME_GUARDED_BY(mutex_) = 0;
  obs::FlightRecorder* flight_ DISTME_GUARDED_BY(mutex_) = nullptr;
  int32_t node_ DISTME_GUARDED_BY(mutex_) = -1;
  int32_t ordinal_ DISTME_GUARDED_BY(mutex_) = 0;
};

}  // namespace distme::gpu
