#include "gpu/device.h"

#include <algorithm>
#include <cmath>

#include "obs/gpu_timeline.h"

namespace distme::gpu {

namespace {

// Device virtual clock (seconds) → flight-event µs.
int64_t ToMicros(double seconds) { return std::llround(seconds * 1e6); }

}  // namespace

void Device::AttachFlight(obs::FlightRecorder* flight, int32_t node,
                          int32_t ordinal) {
  std::lock_guard<std::mutex> lock(mutex_);
  flight_ = flight;
  node_ = node;
  ordinal_ = ordinal;
}

void Device::EmitInterval(obs::FlightEventType begin, obs::FlightEventType end,
                          StreamId stream, int64_t payload, int64_t tag,
                          double start, double duration) {
  if (flight_ == nullptr) return;
  // Stamp this device's ordinal into the tag; untagged (block-level) work
  // packs the no-cuboid sentinel so the analyzer still attributes the
  // interval to the right device.
  const int64_t packed = tag >= 0 ? obs::GpuTagWithOrdinal(ordinal_, tag)
                                  : obs::PackGpuTag(ordinal_, -1, 0);
  // Both events of the pair are recorded back to back under mutex_, so the
  // k-th begin on a (node, ordinal, engine) matches the k-th end in
  // sequence order — the pairing invariant obs::AnalyzeGpuTimeline relies
  // on. Timestamps are the *virtual* start/completion, known at enqueue.
  flight_->RecordAt(ToMicros(start), begin, node_, stream, payload, packed);
  flight_->RecordAt(ToMicros(start + duration), end, node_, stream, payload,
                    packed);
}

Result<BufferId> Device::Allocate(int64_t bytes, const std::string& label) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes < 0) return Status::Invalid("negative allocation");
  if (memory_used_ + bytes > spec_.memory_bytes) {
    return Status::OutOfMemory("GPU " + label + ": requested " +
                               std::to_string(bytes) + " B, " +
                               std::to_string(spec_.memory_bytes -
                                              memory_used_) +
                               " B free");
  }
  memory_used_ += bytes;
  stats_.peak_memory_bytes = std::max(stats_.peak_memory_bytes, memory_used_);
  const BufferId id = next_buffer_++;
  buffers_.emplace_back(id, bytes);
  if (flight_ != nullptr) {
    flight_->RecordAt(ToMicros(last_completion_),
                      obs::FlightEventType::kGpuAlloc, node_, -1,
                      memory_used_, obs::PackGpuTag(ordinal_, -1, 0), "alloc");
  }
  return id;
}

Status Device::Free(BufferId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->first == id) {
      memory_used_ -= it->second;
      buffers_.erase(it);
      if (flight_ != nullptr) {
        flight_->RecordAt(ToMicros(last_completion_),
                          obs::FlightEventType::kGpuAlloc, node_, -1,
                          memory_used_, obs::PackGpuTag(ordinal_, -1, 0),
                          "free");
      }
      return Status::OK();
    }
  }
  return Status::KeyError("unknown GPU buffer " + std::to_string(id));
}

StreamId Device::CreateStream() {
  std::lock_guard<std::mutex> lock(mutex_);
  streams_.emplace_back();
  return static_cast<StreamId>(streams_.size() - 1);
}

Status Device::ValidateStream(StreamId stream) const {
  if (stream < 0 || static_cast<size_t>(stream) >= streams_.size()) {
    return Status::KeyError("unknown GPU stream " + std::to_string(stream));
  }
  return Status::OK();
}

Status Device::EnqueueH2D(StreamId stream, int64_t bytes, int64_t tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  DISTME_RETURN_NOT_OK(ValidateStream(stream));
  auto& s = streams_[static_cast<size_t>(stream)];
  const double duration = static_cast<double>(bytes) / hw_.pcie_bandwidth;
  // The copy engine serializes H2D copies across streams.
  const double start = h2d_engine_.Schedule(s.available(), duration);
  s.Schedule(start + duration, 0.0);
  stats_.h2d_bytes += bytes;
  stats_.h2d_seconds += duration;
  ++stats_.h2d_copies;
  last_completion_ = std::max(last_completion_, start + duration);
  EmitInterval(obs::FlightEventType::kGpuH2dBegin,
               obs::FlightEventType::kGpuH2dEnd, stream, bytes, tag, start,
               duration);
  return Status::OK();
}

Status Device::EnqueueD2H(StreamId stream, int64_t bytes, int64_t tag) {
  std::lock_guard<std::mutex> lock(mutex_);
  DISTME_RETURN_NOT_OK(ValidateStream(stream));
  auto& s = streams_[static_cast<size_t>(stream)];
  const double duration = static_cast<double>(bytes) / hw_.pcie_bandwidth;
  const double start = d2h_engine_.Schedule(s.available(), duration);
  s.Schedule(start + duration, 0.0);
  stats_.d2h_bytes += bytes;
  stats_.d2h_seconds += duration;
  ++stats_.d2h_copies;
  last_completion_ = std::max(last_completion_, start + duration);
  EmitInterval(obs::FlightEventType::kGpuD2hBegin,
               obs::FlightEventType::kGpuD2hEnd, stream, bytes, tag, start,
               duration);
  return Status::OK();
}

Status Device::EnqueueKernel(StreamId stream, int64_t flops,
                             const std::function<void()>& body, bool sparse,
                             int64_t tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  DISTME_RETURN_NOT_OK(ValidateStream(stream));
  auto& s = streams_[static_cast<size_t>(stream)];
  const double throughput =
      sparse ? hw_.gpu_sparse_flops : hw_.gpu_gemm_flops;
  const double duration =
      hw_.kernel_launch_overhead + static_cast<double>(flops) / throughput;
  const double start = kernel_engine_.Schedule(s.available(), duration);
  s.Schedule(start + duration, 0.0);
  stats_.kernel_seconds += duration;
  ++stats_.kernel_calls;
  last_completion_ = std::max(last_completion_, start + duration);
  EmitInterval(obs::FlightEventType::kGpuKernelBegin,
               obs::FlightEventType::kGpuKernelEnd, stream, flops, tag, start,
               duration);
  if (body) body();
  return Status::OK();
}

double Device::Synchronize() {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_completion_;
}

void Device::ResetTimeline() {
  std::lock_guard<std::mutex> lock(mutex_);
  streams_.clear();
  h2d_engine_.Reset();
  d2h_engine_.Reset();
  kernel_engine_.Reset();
  stats_ = DeviceStats{};
  last_completion_ = 0;
}

}  // namespace distme::gpu
