// The Algorithm-1 streaming executor: processes one cuboid on the (software)
// GPU, subcuboid by subcuboid, with per-j-column streams, chunked A copies,
// block-wise asynchronous B copies, and C kept resident across the k-axis.

#pragma once

#include <map>
#include <unordered_map>
#include <utility>

#include "common/result.h"
#include "gpu/device.h"
#include "gpumm/subcuboid.h"
#include "matrix/block.h"
#include "matrix/block_grid.h"
#include "mm/plan.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace distme::gpumm {

/// \brief Provides the input blocks of a cuboid to the streaming executor.
///
/// Implementations back this with the distributed store (real executor) or a
/// local grid (tests).
class BlockSource {
 public:
  virtual ~BlockSource() = default;
  /// \brief A block of the left operand at block index (i, k).
  [[nodiscard]] virtual Result<Block> GetA(int64_t i, int64_t k) = 0;
  /// \brief A block of the right operand at block index (k, j).
  [[nodiscard]] virtual Result<Block> GetB(int64_t k, int64_t j) = 0;
};

/// \brief BlockSource over two local BlockGrids.
class GridBlockSource : public BlockSource {
 public:
  GridBlockSource(const BlockGrid* a, const BlockGrid* b) : a_(a), b_(b) {}
  [[nodiscard]] Result<Block> GetA(int64_t i, int64_t k) override {
    return a_->Get({i, k});
  }
  [[nodiscard]] Result<Block> GetB(int64_t k, int64_t j) override {
    return b_->Get({k, j});
  }

 private:
  const BlockGrid* a_;
  const BlockGrid* b_;
};

/// \brief BlockSource over blocks staged ahead of compute — the handoff
/// buffer between the real executor's (possibly asynchronous) fetch stage
/// and the streaming path.
///
/// The fetch stage Stage()s each input block as it lands; the compute stage
/// then hands the whole source to RunCuboidOnGpu (or reads blocks directly
/// via A()/B() for CPU kernels). Ownership moves fetch → compute through a
/// pipeline queue, so exactly one thread touches the source at any instant
/// and no locking is needed here. With a prefetch depth ≥ 1 the executor
/// keeps one staged source feeding the GPU while the next fills — the
/// double-buffered staging handoff.
class StagedBlockSource : public BlockSource {
 public:
  [[nodiscard]] Result<Block> GetA(int64_t i, int64_t k) override {
    auto it = a_.find({i, k});
    if (it == a_.end()) return Status::KeyError("A block not staged");
    return it->second;
  }
  [[nodiscard]] Result<Block> GetB(int64_t k, int64_t j) override {
    auto it = b_.find({k, j});
    if (it == b_.end()) return Status::KeyError("B block not staged");
    return it->second;
  }

  void StageA(int64_t i, int64_t k, Block block) {
    a_[{i, k}] = std::move(block);
  }
  void StageB(int64_t k, int64_t j, Block block) {
    b_[{k, j}] = std::move(block);
  }

  bool HasA(int64_t i, int64_t k) const { return a_.count({i, k}) > 0; }
  bool HasB(int64_t k, int64_t j) const { return b_.count({k, j}) > 0; }

  /// \brief Borrow a staged block (must have been staged; compute side).
  const Block& A(int64_t i, int64_t k) const { return a_.at({i, k}); }
  const Block& B(int64_t k, int64_t j) const { return b_.at({k, j}); }

  size_t staged_blocks() const { return a_.size() + b_.size(); }

 private:
  std::unordered_map<BlockIndex, Block, BlockIndexHash> a_;
  std::unordered_map<BlockIndex, Block, BlockIndexHash> b_;
};

/// \brief Output of processing one cuboid on the GPU.
struct GpuCuboidResult {
  /// Accumulated C blocks keyed by global (block-row, block-col). Partial
  /// results if the cuboid does not span the full k-axis.
  std::map<std::pair<int64_t, int64_t>, DenseMatrix> c_blocks;
  /// The (P2*, Q2*, R2*) used.
  OptimizedSubcuboid subcuboid;
  /// Device counters attributable to this cuboid (deltas).
  gpu::DeviceStats stats;
  /// Virtual completion time of the task's device work.
  double device_seconds = 0;
};

/// \brief Runs Algorithm 1 for the cuboid `box` (a kBox VoxelSet in the
/// global voxel space of A × B).
///
/// `theta_g` is the per-task GPU memory budget θg used by the subcuboid
/// optimizer and enforced when allocating the A/B/C buffers.
///
/// When `tracer` is non-null and enabled, a span is recorded per subcuboid
/// and per streamed A chunk on the calling thread's current trace track.
///
/// When `flight` is non-null, a gpu_submit/gpu_complete flight-recorder
/// event pair brackets each subcuboid's device work (node/slot taken from
/// the calling thread's current trace track). Independently, when the
/// device itself has a recorder attached (gpu::Device::AttachFlight), every
/// H2D chunk copy, B-block copy, kernel launch, and D2H writeback this
/// function enqueues becomes a schema-3 interval event pair tagged with a
/// process-wide cuboid id and the subcuboid index, which
/// obs::AnalyzeGpuTimeline folds into per-cuboid overlap reports.
///
/// Device buffers are released on every exit path — a failing BlockSource
/// or enqueue mid-stream returns a clean Status without leaking device
/// memory.
[[nodiscard]] Result<GpuCuboidResult> RunCuboidOnGpu(const mm::VoxelSet& box,
                                       const BlockedShape& a_shape,
                                       const BlockedShape& b_shape,
                                       BlockSource* source,
                                       gpu::Device* device, int64_t theta_g,
                                       obs::Tracer* tracer = nullptr,
                                       obs::FlightRecorder* flight = nullptr);

}  // namespace distme::gpumm
