#include "gpumm/subcuboid.h"

#include <algorithm>
#include <cmath>

namespace distme::gpumm {

double SubcuboidCostBytes(const SubcuboidProblem& p, const mm::CuboidSpec& s) {
  return static_cast<double>(s.Q) * p.a_bytes +
         static_cast<double>(s.P) * p.b_bytes + p.c_bytes;
}

double SubcuboidMemBytes(const SubcuboidProblem& p, const mm::CuboidSpec& s) {
  return p.a_bytes / (static_cast<double>(s.P) * s.R) +
         p.b_bytes / (static_cast<double>(s.R) * s.Q) +
         p.c_bytes / (static_cast<double>(s.P) * s.Q);
}

Result<OptimizedSubcuboid> OptimizeSubcuboid(const SubcuboidProblem& problem,
                                             int64_t gpu_task_memory_bytes) {
  const double theta = static_cast<double>(gpu_task_memory_bytes);
  if (theta <= 0) return Status::Invalid("θg must be positive");

  bool found = false;
  OptimizedSubcuboid best;
  double best_cost = 0;
  for (int64_t p2 = 1; p2 <= problem.i_blocks; ++p2) {
    for (int64_t q2 = 1; q2 <= problem.j_blocks; ++q2) {
      // Smallest feasible R2 (cost does not depend on R2):
      // a/(P2·R2) + b/(R2·Q2) ≤ θ − c/(P2·Q2).
      const double c_term =
          problem.c_bytes / (static_cast<double>(p2) * q2);
      if (c_term > theta) continue;
      int64_t r2 = 1;
      const double numerator = problem.a_bytes / p2 + problem.b_bytes / q2;
      if (numerator > 0 && theta - c_term > 0) {
        r2 = std::max<int64_t>(
            1, static_cast<int64_t>(
                   std::ceil(numerator / (theta - c_term) - 1e-12)));
      }
      if (r2 > problem.k_blocks) continue;
      mm::CuboidSpec spec{p2, q2, r2};
      double mem = SubcuboidMemBytes(problem, spec);
      if (mem > theta) {
        if (r2 + 1 > problem.k_blocks) continue;
        spec.R = r2 + 1;
        mem = SubcuboidMemBytes(problem, spec);
        if (mem > theta) continue;
      }
      const double cost = SubcuboidCostBytes(problem, spec);
      // Tie-break: fewer iterations (smaller P2·Q2·R2), then smaller memory.
      const bool better =
          !found || cost < best_cost ||
          (cost == best_cost &&
           spec.num_cuboids() < best.spec.num_cuboids());
      if (better) {
        best.spec = spec;
        best.memory_bytes = mem;
        best.pcie_bytes = cost;
        best_cost = cost;
        found = true;
      }
    }
  }
  if (!found) {
    return Status::OutOfMemory(
        "no (P2,Q2,R2) fits the GPU task memory budget of " +
        std::to_string(gpu_task_memory_bytes) + " bytes");
  }
  return best;
}

GpuTaskTime EstimateStreamingTime(const SubcuboidProblem& problem,
                                  const OptimizedSubcuboid& sub,
                                  const HardwareModel& hw, bool sparse,
                                  double sharing_factor,
                                  double pcie_sharing_factor) {
  GpuTaskTime t;
  if (pcie_sharing_factor < 0) pcie_sharing_factor = sharing_factor;
  const double pcie = hw.pcie_bandwidth / pcie_sharing_factor;
  const double flops_rate =
      (sparse ? hw.gpu_sparse_flops : hw.gpu_gemm_flops) / sharing_factor;
  const double h2d_bytes = sub.pcie_bytes - problem.c_bytes;
  t.h2d_seconds = h2d_bytes / pcie;
  t.d2h_seconds = problem.c_bytes / pcie;
  t.iterations = sub.spec.num_cuboids();
  const int64_t kernels =
      problem.i_blocks * problem.j_blocks * problem.k_blocks;
  t.kernel_seconds = problem.flops / flops_rate +
                     static_cast<double>(kernels) * hw.kernel_launch_overhead;
  // Streams overlap H2D with kernels; the pipeline is limited by the slower
  // side, plus a fill bubble of one subcuboid's copy and the final D2H.
  const double fill =
      t.iterations > 0 ? t.h2d_seconds / static_cast<double>(t.iterations)
                       : 0.0;
  t.elapsed_seconds =
      std::max(t.h2d_seconds, t.kernel_seconds) + fill + t.d2h_seconds;
  return t;
}

GpuTaskTime EstimateBlockLevelTime(int64_t num_voxels, double a_block_bytes,
                                   double b_block_bytes, double c_block_bytes,
                                   double flops, const HardwareModel& hw,
                                   bool sparse, double sharing_factor,
                                   double pcie_sharing_factor) {
  GpuTaskTime t;
  if (pcie_sharing_factor < 0) pcie_sharing_factor = sharing_factor;
  const double pcie = hw.pcie_bandwidth / pcie_sharing_factor;
  const double flops_rate =
      (sparse ? hw.gpu_sparse_flops : hw.gpu_gemm_flops) / sharing_factor;
  const double voxels = static_cast<double>(num_voxels);
  // Each voxel ships its A and B block in and its intermediate C block out.
  t.h2d_seconds = voxels * (a_block_bytes + b_block_bytes) / pcie;
  t.d2h_seconds = voxels * c_block_bytes / pcie;
  t.kernel_seconds =
      flops / flops_rate + voxels * hw.kernel_launch_overhead;
  // Block-level execution stages every operand block through host-side
  // (de)serialization into transfer buffers per call — the JCuda path the
  // paper's modified SystemML(G)/MatFast(G) take. Streaming avoids this by
  // staging whole chunks once (Section 4.3). Staging runs on the task's own
  // core, so it is not divided by the GPU sharing factor.
  const double staging_seconds =
      voxels * (a_block_bytes + b_block_bytes + c_block_bytes) /
      hw.serialization_bandwidth;
  // No overlap: staging, copies and kernels strictly alternate.
  t.elapsed_seconds =
      staging_seconds + t.h2d_seconds + t.kernel_seconds + t.d2h_seconds;
  t.iterations = num_voxels;
  return t;
}

}  // namespace distme::gpumm
