// Subcuboid partitioning for GPU acceleration (Section 4.1-4.2): a cuboid
// assigned to a task is further split into (P2, Q2, R2) subcuboids so each
// fits the per-task GPU memory budget θg, minimizing PCI-E traffic (Eq. 6).

#pragma once

#include "cluster/config.h"
#include "common/result.h"
#include "mm/cost_model.h"

namespace distme::gpumm {

/// \brief The per-task view of a cuboid to be processed on the GPU.
struct SubcuboidProblem {
  int64_t i_blocks = 1;  ///< cuboid extent on the i-axis, in blocks
  int64_t j_blocks = 1;
  int64_t k_blocks = 1;
  double a_bytes = 0;  ///< |A^m|: bytes of the cuboid's A-side
  double b_bytes = 0;  ///< |B^m|
  double c_bytes = 0;  ///< |C^m| (dense estimate)
  double flops = 0;    ///< total multiply-add work in the cuboid
};

/// \brief Result of the Eq. (5) optimization.
struct OptimizedSubcuboid {
  mm::CuboidSpec spec;     ///< (P2*, Q2*, R2*)
  double memory_bytes = 0; ///< Mem^m per Eq. (3) over the cuboid
  double pcie_bytes = 0;   ///< Cost^m per Eq. (6): Q2·|Am| + P2·|Bm| + |Cm|
};

/// \brief Eq. (6): PCI-E communication, Q2·|Am| + P2·|Bm| + |Cm| bytes.
/// The C term has no R2 factor: intermediate C blocks stay resident in GPU
/// memory across the k-axis iterations and cross PCI-E once.
double SubcuboidCostBytes(const SubcuboidProblem& p, const mm::CuboidSpec& s);

/// \brief Memory of one subcuboid in GPU memory, bytes.
double SubcuboidMemBytes(const SubcuboidProblem& p, const mm::CuboidSpec& s);

/// \brief Exhaustive search for (P2*, Q2*, R2*) per Eq. (5).
///
/// Cost is independent of R2, so for each (P2, Q2) the smallest feasible R2
/// wins (fewest iterations). The optimization "tends to produce
/// (1, 1, R2)-subcuboid partitioning" (Section 4.2) — P2/Q2 grow only when
/// C itself cannot fit θg.
[[nodiscard]] Result<OptimizedSubcuboid> OptimizeSubcuboid(const SubcuboidProblem& problem,
                                             int64_t gpu_task_memory_bytes);

/// \brief Virtual-time estimate for processing one cuboid on the GPU.
struct GpuTaskTime {
  double h2d_seconds = 0;
  double d2h_seconds = 0;
  double kernel_seconds = 0;
  double elapsed_seconds = 0;  ///< with copy/compute overlap applied
  int64_t iterations = 0;      ///< number of subcuboids
};

/// \brief Analytic model of the streaming executor (Section 4.3): H2D copies
/// overlap kernel execution via CUDA-like streams, so the slower of the two
/// pipelines dominates; the final D2H of C cannot overlap.
///
/// `sharing_factor` divides the kernel throughput (tasks sharing one device
/// via MPS); `pcie_sharing_factor` divides the PCI-E bandwidth (tasks
/// sharing the node's bus — with multiple GPUs per node these differ;
/// < 0 means "same as sharing_factor").
GpuTaskTime EstimateStreamingTime(const SubcuboidProblem& problem,
                                  const OptimizedSubcuboid& sub,
                                  const HardwareModel& hw, bool sparse,
                                  double sharing_factor = 1.0,
                                  double pcie_sharing_factor = -1.0);

/// \brief Analytic model of naive block-level GPU execution (what RMM and
/// the GPU-modified SystemML/MatFast do): every voxel ships its operand
/// blocks over PCI-E with no reuse and no copy/compute overlap.
GpuTaskTime EstimateBlockLevelTime(int64_t num_voxels, double a_block_bytes,
                                   double b_block_bytes, double c_block_bytes,
                                   double flops, const HardwareModel& hw,
                                   bool sparse, double sharing_factor = 1.0,
                                   double pcie_sharing_factor = -1.0);

}  // namespace distme::gpumm
