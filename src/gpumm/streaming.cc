#include "gpumm/streaming.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "blas/block_ops.h"
#include "mm/method.h"
#include "obs/gpu_timeline.h"

namespace distme::gpumm {

namespace {

// Dense worst-case bytes of a sub-rectangle of blocks.
double DenseBytes(const BlockedShape& shape, int64_t row_blocks,
                  int64_t col_blocks) {
  const double bs = static_cast<double>(shape.block_size);
  return static_cast<double>(row_blocks) * col_blocks * bs * bs *
         kElementBytes;
}

// Process-wide cuboid id for flight-event tagging: every RunCuboidOnGpu
// invocation gets a distinct label so per-cuboid overlap reports never mix
// two cuboids, even across concurrent tasks. Wraps short of the packed-tag
// field's untagged sentinel.
int64_t NextCuboidId() {
  static std::atomic<int64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) %
         obs::kGpuNoCuboidId;
}

// Frees the cuboid's device buffers on every exit path: an early error
// return (a failed BlockSource fetch, an enqueue failure) must not leak
// device memory. The success path frees through FreeAll() so a Free error
// still surfaces as a Status.
class BufferGuard {
 public:
  explicit BufferGuard(gpu::Device* device) : device_(device) {}
  BufferGuard(const BufferGuard&) = delete;
  BufferGuard& operator=(const BufferGuard&) = delete;
  ~BufferGuard() {
    for (const gpu::BufferId id : ids_) device_->Free(id).IgnoreError();
  }

  void Add(gpu::BufferId id) { ids_.push_back(id); }

  [[nodiscard]] Status FreeAll() {
    Status first = Status::OK();
    for (const gpu::BufferId id : ids_) {
      Status st = device_->Free(id);
      if (!st.ok() && first.ok()) first = std::move(st);
    }
    ids_.clear();
    return first;
  }

 private:
  gpu::Device* device_;
  std::vector<gpu::BufferId> ids_;
};

}  // namespace

Result<GpuCuboidResult> RunCuboidOnGpu(const mm::VoxelSet& box,
                                       const BlockedShape& a_shape,
                                       const BlockedShape& b_shape,
                                       BlockSource* source,
                                       gpu::Device* device, int64_t theta_g,
                                       obs::Tracer* tracer,
                                       obs::FlightRecorder* flight) {
  if (!box.is_box()) {
    return Status::Invalid(
        "cuboid-level GPU streaming requires a box voxel set "
        "(hash-partitioned tasks only support block-level execution)");
  }
  const gpu::DeviceStats before = device->stats();
  const double t_before = device->Synchronize();

  obs::TraceSpan cuboid_span(tracer, "gpu.cuboid", "gpu");
  cuboid_span.AddArg("voxels", box.size());

  // ---- Lines 1-5 of Algorithm 1: optimize and partition. --------------
  SubcuboidProblem sp;
  sp.i_blocks = box.i_count();
  sp.j_blocks = box.j_count();
  sp.k_blocks = box.k_count();
  // Worst-case dense estimates, as the planner uses (Section 2.2.2).
  sp.a_bytes = DenseBytes(a_shape, sp.i_blocks, sp.k_blocks);
  sp.b_bytes = DenseBytes(b_shape, sp.k_blocks, sp.j_blocks);
  sp.c_bytes = DenseBytes(a_shape, sp.i_blocks, sp.j_blocks);
  const double bs = static_cast<double>(a_shape.block_size);
  sp.flops = 2.0 * static_cast<double>(box.size()) * bs * bs * bs;

  DISTME_ASSIGN_OR_RETURN(OptimizedSubcuboid sub,
                          OptimizeSubcuboid(sp, theta_g));
  const auto [p2, q2, r2] = sub.spec;

  // Subcuboid extent along J drives the stream count (Lines 6-7); the I
  // extent only shapes the per-stream accumulators sized below.
  const int64_t j_sub = BlockedShape::CeilDiv(sp.j_blocks, q2);

  // ---- Lines 6-7: create J' streams, allocate buffers. ----------------
  std::vector<gpu::StreamId> streams;
  streams.reserve(static_cast<size_t>(j_sub));
  for (int64_t j = 0; j < j_sub; ++j) streams.push_back(device->CreateStream());

  const int64_t buf_a = static_cast<int64_t>(sp.a_bytes / (p2 * r2)) + 1;
  const int64_t buf_b = static_cast<int64_t>(sp.b_bytes / (r2 * q2)) + 1;
  const int64_t buf_c = static_cast<int64_t>(sp.c_bytes / (p2 * q2)) + 1;
  BufferGuard buffers(device);
  DISTME_ASSIGN_OR_RETURN(gpu::BufferId a_id, device->Allocate(buf_a, "BufA"));
  buffers.Add(a_id);
  DISTME_ASSIGN_OR_RETURN(gpu::BufferId b_id, device->Allocate(buf_b, "BufB"));
  buffers.Add(b_id);
  DISTME_ASSIGN_OR_RETURN(gpu::BufferId c_id, device->Allocate(buf_c, "BufC"));
  buffers.Add(c_id);

  // Flight-event tag for this cuboid's device intervals; the device stamps
  // its own ordinal into the packed value (see obs/gpu_timeline.h).
  const int64_t cuboid_id = NextCuboidId();

  GpuCuboidResult result;
  result.subcuboid = sub;

  // C accumulators live host-side (the "device memory" is virtual); one per
  // global (i, j) in the cuboid.
  auto acc_key = [](int64_t i, int64_t j) { return std::make_pair(i, j); };
  auto ensure_acc = [&](int64_t i, int64_t j) -> DenseMatrix* {
    auto key = acc_key(i, j);
    auto it = result.c_blocks.find(key);
    if (it == result.c_blocks.end()) {
      it = result.c_blocks
               .emplace(key, DenseMatrix(a_shape.BlockRowsAt(i),
                                         b_shape.BlockColsAt(j)))
               .first;
    }
    return &it->second;
  };

  // ---- Lines 8-22: process subcuboids, sorted by (p2, q2, r2) with r2
  // fastest so C blocks stay resident along the k-axis. ------------------
  Status kernel_status = Status::OK();
  for (int64_t pi = 0; pi < p2; ++pi) {
    const mm::SplitRange ir = mm::Split(sp.i_blocks, p2, pi);
    for (int64_t qi = 0; qi < q2; ++qi) {
      const mm::SplitRange jr = mm::Split(sp.j_blocks, q2, qi);
      for (int64_t ri = 0; ri < r2; ++ri) {
        const mm::SplitRange kr = mm::Split(sp.k_blocks, r2, ri);

        obs::TraceSpan sub_span(tracer, "gpu.subcuboid", "gpu");
        sub_span.AddArg("p", pi);
        sub_span.AddArg("q", qi);
        sub_span.AddArg("r", ri);

        // Linear subcuboid index for the flight recorder (r2 fastest, the
        // same order this loop nest visits them).
        const int64_t sub_index = (pi * q2 + qi) * r2 + ri;
        if (flight != nullptr) {
          flight->Record(obs::FlightEventType::kGpuSubmit,
                         obs::Tracer::CurrentPid(), obs::Tracer::CurrentTid(),
                         sub_index, p2 * q2 * r2);
        }

        // Line 12: copy A' of this subcuboid to BufA as one chunk.
        int64_t a_chunk_bytes = 0;
        std::vector<std::vector<Block>> a_blocks(
            static_cast<size_t>(ir.end - ir.start));
        {
          obs::TraceSpan chunk_span(tracer, "gpu.h2d_chunk", "gpu");
          for (int64_t i = ir.start; i < ir.end; ++i) {
            for (int64_t k = kr.start; k < kr.end; ++k) {
              DISTME_ASSIGN_OR_RETURN(
                  Block blk, source->GetA(box.i0() + i, box.k0() + k));
              a_chunk_bytes += blk.SizeBytes();
              a_blocks[static_cast<size_t>(i - ir.start)].push_back(
                  std::move(blk));
            }
          }
          chunk_span.AddArg("bytes", a_chunk_bytes);
        }
        const int64_t sub_tag =
            obs::PackGpuTag(0, cuboid_id, sub_index);
        DISTME_RETURN_NOT_OK(
            device->EnqueueH2D(streams[0], a_chunk_bytes, sub_tag));

        // Lines 13-18: per (k, j), async-copy B block on stream j, then
        // launch I' kernels on the same stream.
        for (int64_t k = kr.start; k < kr.end; ++k) {
          for (int64_t j = jr.start; j < jr.end; ++j) {
            const gpu::StreamId stream = streams[static_cast<size_t>(j)];
            DISTME_ASSIGN_OR_RETURN(
                Block b_blk, source->GetB(box.k0() + k, box.j0() + j));
            DISTME_RETURN_NOT_OK(
                device->EnqueueH2D(stream, b_blk.SizeBytes(), sub_tag));
            for (int64_t i = ir.start; i < ir.end; ++i) {
              const Block& a_blk =
                  a_blocks[static_cast<size_t>(i - ir.start)]
                          [static_cast<size_t>(k - kr.start)];
              const bool sparse = a_blk.IsSparse() || b_blk.IsSparse();
              const int64_t flops =
                  sparse ? 2 * std::min(a_blk.nnz(), b_blk.nnz() == 0
                                                         ? a_blk.nnz()
                                                         : b_blk.nnz()) *
                               b_blk.cols()
                         : blas::MultiplyFlops(a_blk.rows(), a_blk.cols(),
                                               b_blk.cols());
              DenseMatrix* acc =
                  ensure_acc(box.i0() + i, box.j0() + j);
              DISTME_RETURN_NOT_OK(device->EnqueueKernel(
                  stream, flops,
                  [&a_blk, &b_blk, acc, &kernel_status]() {
                    Status st =
                        blas::MultiplyAccumulate(a_blk, b_blk, acc);
                    if (!st.ok() && kernel_status.ok()) {
                      kernel_status = std::move(st);
                    }
                  },
                  sparse, sub_tag));
            }
          }
        }

        // Lines 19-21: last subcuboid on the k-axis — copy C' back.
        if (ri == r2 - 1) {
          for (int64_t j = jr.start; j < jr.end; ++j) {
            int64_t c_col_bytes = 0;
            for (int64_t i = ir.start; i < ir.end; ++i) {
              c_col_bytes +=
                  ensure_acc(box.i0() + i, box.j0() + j)->SizeBytes();
            }
            DISTME_RETURN_NOT_OK(device->EnqueueD2H(
                streams[static_cast<size_t>(j)], c_col_bytes, sub_tag));
          }
        }

        if (flight != nullptr) {
          flight->Record(obs::FlightEventType::kGpuComplete,
                         obs::Tracer::CurrentPid(), obs::Tracer::CurrentTid(),
                         sub_index, a_chunk_bytes);
        }
      }
    }
  }
  DISTME_RETURN_NOT_OK(kernel_status);

  result.device_seconds = device->Synchronize() - t_before;
  const gpu::DeviceStats after = device->stats();
  result.stats.h2d_bytes = after.h2d_bytes - before.h2d_bytes;
  result.stats.d2h_bytes = after.d2h_bytes - before.d2h_bytes;
  result.stats.kernel_calls = after.kernel_calls - before.kernel_calls;
  result.stats.h2d_seconds = after.h2d_seconds - before.h2d_seconds;
  result.stats.d2h_seconds = after.d2h_seconds - before.d2h_seconds;
  result.stats.kernel_seconds = after.kernel_seconds - before.kernel_seconds;
  result.stats.h2d_copies = after.h2d_copies - before.h2d_copies;
  result.stats.d2h_copies = after.d2h_copies - before.d2h_copies;

  DISTME_RETURN_NOT_OK(buffers.FreeAll());
  return result;
}

}  // namespace distme::gpumm
