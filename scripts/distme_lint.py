#!/usr/bin/env python3
"""distme-lint: fast, AST-free checker for DistME repo invariants.

Usage: distme_lint.py [options] <path> [<path> ...]

Options:
  --list-rules     print the rule names, one per line, and exit
  --changed-only   report findings only in files changed vs git HEAD
                   (unstaged, staged, and untracked); the cross-file class
                   model is still built from every given path, so rules
                   that look across files keep seeing unchanged
                   declarations. Outside a git checkout this falls back to
                   linting everything (with a notice on stderr).
  --jobs N         lint up to N files in parallel (default: the CPU count;
                   1 runs everything inline in this process)

Paths may be files or directories (directories are walked for .h/.cc files).
Prints one `path:line: [rule] message` per finding and exits nonzero if any
finding is produced. Rules (see DESIGN.md "Correctness tooling"):

  pragma-once        every header starts its code with `#pragma once`
  concurrency        raw std::mutex/std::thread/... only inside the engine,
                     obs, and gpu wrappers (CONCURRENCY_ALLOW below); library
                     code must go through those layers
  naked-new          no naked `new` / C allocation in src/ — wrap in
                     make_unique/make_shared or a smart-pointer constructor
  no-cout            no std::cout in library code (src/, tests/) — use
                     DISTME_LOG; bench/ and examples/ are exempt
  include-order      self-include first in a .cc, then <system> includes,
                     then "project" includes; a header never includes itself
  nodiscard-status   every Status/Result-returning declaration in a src/
                     header carries [[nodiscard]]
  flight-enum-sync   the flight-recorder event-name string table stays
                     entry-for-entry in sync with FlightEventType: same
                     count, and each string is the snake_case of the
                     enumerator at the same index
  flight-edge-sync   same invariant for the dependency-edge kinds: the
                     kFlightEdgeKindNames table stays entry-for-entry in
                     sync with FlightEdgeKind (before kNumKinds)

  Lock-discipline pass (src/ only; see DESIGN.md §"Lock discipline" and
  src/common/thread_annotations.h):

  lock-annotate      a class owning a std::mutex/std::shared_mutex or a
                     std::atomic must annotate every other mutable member
                     with DISTME_GUARDED_BY / DISTME_SHARDED_BY /
                     DISTME_LOCKFREE(reason) / DISTME_UNSHARED(reason).
                     Exempt on their own: the synchronization members
                     themselves (mutexes, condition variables), members
                     whose declared type is a std::atomic, const values,
                     and static/constexpr constants
  lock-held          a method body that touches a DISTME_GUARDED_BY (or
                     DISTME_SHARDED_BY) member must visibly hold the named
                     mutex — a lock_guard/scoped_lock/unique_lock/
                     shared_lock naming it in the body, a manual .lock()
                     on it, or the method annotated DISTME_REQUIRES(mutex).
                     Constructors and destructors are exempt (no concurrent
                     access can exist yet / any concurrent access is
                     already a use-after-free)
  atomic-order       std::atomic loads/stores/RMWs in src/ must state an
                     explicit std::memory_order — seq_cst-by-default hides
                     the author's intent and costs fences on ARM

Suppressing a finding: append `// distme-lint: allow(<rule>)` to the line, or
add the file to the rule's allowlist below with a one-line justification.
Suppressions are themselves part of the reviewed diff, so every escape hatch
is visible in code review.
"""

import multiprocessing
import os
import re
import subprocess
import sys

# --- allowlists ------------------------------------------------------------

# Files allowed to use raw concurrency primitives. Everything else must use
# the engine/obs wrappers (task slots, registries, tracers) so that the TSan
# stress suite exercises every lock in the system.
CONCURRENCY_ALLOW = (
    "src/engine/",            # RealExecutor task slots, DistributedMatrix stores
    "src/obs/",               # MetricsRegistry, Tracer (lock-free + registration lock)
    "src/gpu/",               # software-GPU stream/event simulation
    "src/common/logging.cc",  # the per-line stderr write lock
    "tests/",                 # tests may spawn threads freely
    "bench/",                 # benches may spawn threads freely
)

# Files allowed to use naked new/delete. Keep this list short and justified.
NAKED_NEW_ALLOW = (
    "src/common/status.h",   # manual State block: Status must stay one pointer wide
    "src/common/status.cc",  # same State block, allocation on the error path only
)

CONCURRENCY_TOKENS = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|thread|jthread|"
    r"condition_variable|condition_variable_any)\b"
)
CONCURRENCY_INCLUDES = re.compile(
    r'#\s*include\s*<(thread|mutex|shared_mutex|condition_variable)>'
)
NAKED_NEW = re.compile(r"\bnew\b\s*[\(A-Za-z_:<]")
WRAPPED_NEW = re.compile(
    r"(make_unique|make_shared|unique_ptr\s*<[^;]*?>\s*\(\s*new|"
    r"shared_ptr\s*<[^;]*?>\s*\(\s*new)"
)
C_ALLOC = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
COUT = re.compile(r"std::cout\b")
INCLUDE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')
# A declaration returning Status/Result: the type, whitespace, a function
# name, and an open paren. Deliberately does not match constructors
# (`Status(...)`), reference returns (`Status& operator=`), or fields.
NODISCARD_DECL = re.compile(
    r"^\s*(\[\[nodiscard\]\]\s+)?(virtual\s+)?(static\s+)?"
    r"(Status|Result<[^();]*>)\s+~?[A-Za-z_]\w*\s*\("
)
SUPPRESS = re.compile(r"//\s*distme-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


def strip_code(line):
    """Removes string/char literals and // comments (crudely, no AST)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append('""' if quote == '"' else "''")
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


class File:
    """One source file, pre-processed for the rules: raw lines, code-only
    lines (comments and literals blanked), and per-line suppressions."""

    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read().splitlines()
        self.suppressed = {}  # line number (1-based) -> set of rule names
        for idx, line in enumerate(self.raw, start=1):
            m = SUPPRESS.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                self.suppressed[idx] = rules
        self.code = self._strip_all()

    def _strip_all(self):
        code = []
        in_block = False
        for line in self.raw:
            if in_block:
                end = line.find("*/")
                if end < 0:
                    code.append("")
                    continue
                line = " " * (end + 2) + line[end + 2:]
                in_block = False
            line = strip_code(line)
            # Strip /* ... */ spans that open on this line.
            while True:
                start = line.find("/*")
                if start < 0:
                    break
                end = line.find("*/", start + 2)
                if end < 0:
                    line = line[:start]
                    in_block = True
                    break
                line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
            code.append(line)
        return code

    def allows(self, lineno, rule):
        return rule in self.suppressed.get(lineno, set())

    def allows_range(self, first, last, rule):
        return any(self.allows(n, rule) for n in range(first, last + 1))


def norm(path):
    return os.path.relpath(path).replace(os.sep, "/")


def in_any(path, prefixes):
    return any(path.startswith(p) or ("/" + p) in path for p in prefixes)


# --- structure parser (classes, members, method bodies) --------------------
#
# A brace-depth scanner over the comment/literal-stripped lines. It is not a
# C++ parser; it recognizes exactly the shapes the lock-discipline rules
# need: class/struct bodies with their member statements, and function
# bodies (inline in a class, or `Class::Method` definitions at namespace
# depth) with their extents. Preprocessor lines are blanked first.

PREPROC = re.compile(r"^\s*#")
ACCESS_LABEL = re.compile(r"\b(?:public|private|protected)\s*:")
ANNOT_PAREN = re.compile(r"\bDISTME_[A-Z_]+\s*\((?:[^()]|\([^()]*\))*\)")
ANNOT_BARE = re.compile(r"\bDISTME_[A-Z_]+\b")
CLASS_HEAD = re.compile(
    r"\b(?:class|struct)\s+([A-Za-z_][\w:]*)\s*(?:final\s*)?(?::[^;{]*)?$")
REQUIRES_ANNOT = re.compile(r"\bDISTME_REQUIRES(?:_SHARED)?\s*\(([^()]*)\)")
GUARD_ANNOT = re.compile(
    r"\bDISTME_(GUARDED_BY|PT_GUARDED_BY|SHARDED_BY)\s*\(([^()]*)\)")
EXEMPT_ANNOT = re.compile(r"\bDISTME_(LOCKFREE|UNSHARED)\s*\(")
SYNC_TYPE = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?)\b")
ATOMIC_TYPE = re.compile(r"\bstd\s*::\s*atomic\b")
MEMBER_SKIP = re.compile(
    r"^(?:using\b|typedef\b|friend\b|static_assert\b|template\b|class\b|"
    r"struct\b|enum\b|union\b|operator\b|extern\b|static\b|constexpr\b|"
    r"inline\b|\[\[)")
DECLARATOR_NAME = re.compile(r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*$")
FUNC_QUAL_TAIL = re.compile(r"(?:\bconst|\bnoexcept|\boverride|\bfinal|&&|&)\s*$")
TRAILING_RETURN = re.compile(r"->\s*[\w:<>,\s&*\[\]]+$")
QUALIFIED_NAME_TAIL = re.compile(r"((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)$")


def _blank_preproc(code_lines):
    out = []
    cont = False
    for line in code_lines:
        if cont or PREPROC.match(line):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            out.append(line)
    return out


def strip_annotations(text):
    return ANNOT_BARE.sub(" ", ANNOT_PAREN.sub(" ", text))


def first_toplevel_paren(text):
    """Index of the first '(' outside template angle brackets, or -1."""
    depth = 0
    for i, c in enumerate(text):
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif c == "(" and depth == 0:
            return i
    return -1


def parse_requires(text):
    """Mutex names from DISTME_REQUIRES(...) annotations: the last
    identifier of each comma-separated argument (`impl_->mutex_` names
    `mutex_`)."""
    out = set()
    for m in REQUIRES_ANNOT.finditer(text):
        for part in m.group(1).split(","):
            ids = re.findall(r"[A-Za-z_]\w*", part)
            if ids:
                out.add(ids[-1])
    return out


def looks_like_function(head):
    s = head.rstrip()
    while True:
        m = FUNC_QUAL_TAIL.search(s)
        if not m:
            break
        s = s[:m.start()].rstrip()
    m = TRAILING_RETURN.search(s)
    if m:
        s = s[:m.start()].rstrip()
    return s.endswith(")") and first_toplevel_paren(s) >= 0


def func_name(head):
    """The (possibly Class::qualified) name before the parameter list."""
    pos = first_toplevel_paren(head)
    if pos < 0:
        return None
    prefix = head[:pos].rstrip()
    m = QUALIFIED_NAME_TAIL.search(prefix)
    return re.sub(r"\s+", "", m.group(1)) if m else None


def _parse_member(info, stmt, first_line, last_line):
    """Classifies one `;`-terminated statement inside a class body."""
    sa = " ".join(ACCESS_LABEL.sub(" ", stmt).split())
    if not sa:
        return
    plain = " ".join(strip_annotations(sa).split())
    if not plain:
        return
    if SYNC_TYPE.search(plain):
        # The synchronization itself (or a collection of it, e.g.
        # std::vector<std::mutex>): triggers the class, needs no annotation.
        info["triggered"] = True
        return
    if ATOMIC_TYPE.search(plain):
        info["triggered"] = True
    if first_toplevel_paren(plain) >= 0:
        # A method declaration; harvest DISTME_REQUIRES for rule lock-held.
        reqs = parse_requires(sa)
        if reqs:
            name = func_name(plain)
            if name:
                info["methods"].setdefault(name.split("::")[-1],
                                           set()).update(reqs)
        return
    if MEMBER_SKIP.match(plain):
        return
    guard = GUARD_ANNOT.search(sa)
    decl = plain[8:] if plain.startswith("mutable ") else plain
    member = {
        "line": first_line,
        "end_line": last_line,
        "name": None,
        "guard": None,      # (kind, mutex) for GUARDED_BY/SHARDED_BY
        "needs": False,     # unannotated member of a triggered class
    }
    # Declarator name: strip any initializer, then take the last identifier.
    name_part = re.split(r"=", decl, maxsplit=1)[0]
    name_part = re.sub(r"\{[^{}]*\}\s*$", "", name_part).rstrip()
    m = DECLARATOR_NAME.search(name_part)
    if m:
        member["name"] = m.group(1)
    if guard:
        ids = re.findall(r"[A-Za-z_]\w*", guard.group(2))
        if ids:
            member["guard"] = (guard.group(1), ids[-1])
    elif not EXEMPT_ANNOT.search(sa):
        exempt = (decl.startswith("std::atomic") or
                  (decl.startswith("const ") and "*" not in decl))
        member["needs"] = not exempt
    info["members"].append(member)


def parse_structures(code_lines):
    """Returns {"classes": [...], "functions": [...]} for one file.

    A class dict: name, line, triggered (owns a mutex or atomic), members
    (see _parse_member), methods (name -> set of required mutexes).
    A function dict: name (possibly qualified), cls (owning class name or
    None), requires (mutex names from def-site DISTME_REQUIRES), body
    (text), body_line (1-based first body line).
    """
    lines = _blank_preproc(code_lines)
    classes, functions = [], []
    stack = []
    buf = []
    stmt_line = None

    def reset():
        nonlocal stmt_line
        buf.clear()
        stmt_line = None

    def classify(head):
        top = stack[-1]["kind"] if stack else None
        if top in ("func", "nested"):
            return ("nested", None)
        sa = " ".join(ACCESS_LABEL.sub(" ", strip_annotations(head)).split())
        if re.search(r"\benum\b", sa):
            return ("other", None)
        if re.search(r"\bnamespace\b", sa):
            return ("other", None)
        m = CLASS_HEAD.search(sa)
        if m:
            return ("class", m.group(1).split("::")[-1])
        if looks_like_function(sa):
            return ("func", (func_name(sa), parse_requires(head)))
        s = sa.rstrip()
        if s.endswith(("=", ",", "(", "[")) or re.search(r"[\w>\]]$", s):
            return ("init", None)
        return ("other", None)

    for lineno, line in enumerate(lines, start=1):
        i = 0
        while i < len(line):
            c = line[i]
            if c == "{":
                kind, payload = classify("".join(buf))
                if kind == "init":
                    buf.append(c)
                    stack.append({"kind": "init"})
                elif kind == "class":
                    stack.append({"kind": "class", "info": {
                        "name": payload, "line": stmt_line or lineno,
                        "triggered": False, "members": [], "methods": {}}})
                    reset()
                elif kind == "func":
                    name, requires = payload
                    cls = None
                    enclosing = stack[-1] if stack else None
                    if enclosing is not None and enclosing["kind"] == "class":
                        cls = enclosing["info"]["name"]
                    elif name and "::" in name:
                        cls = name.split("::")[-2].lstrip("~")
                    stack.append({"kind": "func", "name": name, "cls": cls,
                                  "requires": requires,
                                  "start": (lineno, i + 1)})
                    reset()
                else:
                    stack.append({"kind": kind})
                    reset()
            elif c == "}":
                if stack:
                    fr = stack.pop()
                    if fr["kind"] == "init":
                        buf.append(c)
                        i += 1
                        continue
                    if fr["kind"] == "func":
                        sl, sc = fr["start"]
                        if sl == lineno:
                            body = lines[sl - 1][sc:i]
                        else:
                            body = "\n".join(
                                [lines[sl - 1][sc:]] +
                                lines[sl:lineno - 1] +
                                [lines[lineno - 1][:i]])
                        functions.append({
                            "name": fr["name"], "cls": fr["cls"],
                            "requires": fr["requires"], "body": body,
                            "body_line": sl})
                    elif fr["kind"] == "class":
                        classes.append(fr["info"])
                    reset()
            elif c == ";":
                if stack and stack[-1]["kind"] == "class":
                    _parse_member(stack[-1]["info"], "".join(buf),
                                  stmt_line or lineno, lineno)
                reset()
            else:
                buf.append(c)
                if stmt_line is None and not c.isspace():
                    stmt_line = lineno
            i += 1
        if buf:
            buf.append("\n")
    return {"classes": classes, "functions": functions}


def build_model_entry(structure):
    """Per-file slice of the cross-file class model: for every parsed class,
    its guarded members and the per-method DISTME_REQUIRES sets."""
    entry = {}
    for cls in structure["classes"]:
        guarded = {m["name"]: m["guard"] for m in cls["members"]
                   if m["guard"] is not None and m["name"] is not None}
        methods = {name: sorted(reqs)
                   for name, reqs in cls["methods"].items()}
        if guarded or methods:
            slot = entry.setdefault(cls["name"],
                                    {"guarded": {}, "methods": {}})
            slot["guarded"].update(guarded)
            slot["methods"].update(methods)
    return entry


def merge_model(entries):
    model = {}
    for entry in entries:
        for name, slot in entry.items():
            dst = model.setdefault(name, {"guarded": {}, "methods": {}})
            dst["guarded"].update(slot["guarded"])
            dst["methods"].update(slot["methods"])
    return model


# --- rules -----------------------------------------------------------------

def rule_pragma_once(f, rel, report):
    if not rel.endswith(".h"):
        return
    for lineno, line in enumerate(f.code, start=1):
        text = line.strip()
        if not text:
            continue
        if re.match(r"#\s*pragma\s+once", text):
            return
        report(lineno, "pragma-once",
               "header must start with `#pragma once` before any code")
        return
    report(1, "pragma-once", "header is empty or has no `#pragma once`")


def rule_concurrency(f, rel, report):
    if in_any(rel, CONCURRENCY_ALLOW):
        return
    for lineno, line in enumerate(f.code, start=1):
        m = CONCURRENCY_TOKENS.search(line) or CONCURRENCY_INCLUDES.search(line)
        if m and not f.allows(lineno, "concurrency"):
            report(lineno, "concurrency",
                   f"raw `{m.group(0)}` outside the concurrency allowlist "
                   "(use the engine/obs wrappers, or extend "
                   "CONCURRENCY_ALLOW with a justification)")


def rule_naked_new(f, rel, report):
    if not in_any(rel, ("src/",)):
        return
    if in_any(rel, NAKED_NEW_ALLOW):
        return
    for lineno, line in enumerate(f.code, start=1):
        if f.allows(lineno, "naked-new"):
            continue
        m = C_ALLOC.search(line)
        if m:
            report(lineno, "naked-new",
                   f"C allocation `{m.group(1)}()` in library code "
                   "(use containers or smart pointers)")
            continue
        if NAKED_NEW.search(line) and not WRAPPED_NEW.search(line):
            report(lineno, "naked-new",
                   "naked `new` in library code (use std::make_unique / "
                   "std::make_shared, or wrap in a smart-pointer constructor "
                   "on the same line)")


def rule_no_cout(f, rel, report):
    if in_any(rel, ("bench/", "examples/")):
        return
    for lineno, line in enumerate(f.code, start=1):
        if COUT.search(line) and not f.allows(lineno, "no-cout"):
            report(lineno, "no-cout",
                   "std::cout in library code (use DISTME_LOG, or return the "
                   "string to the caller)")


def rule_include_order(f, rel, report):
    # Parse from the raw lines (the literal-stripper blanks "..." targets),
    # but only where the stripped line still starts a preprocessor directive
    # — this skips includes that live inside comments.
    includes = []  # (lineno, kind, target) where kind is '<' or '"'
    for lineno, line in enumerate(f.raw, start=1):
        m = INCLUDE.match(line)
        if m and f.code[lineno - 1].lstrip().startswith("#"):
            includes.append((lineno, m.group(1), m.group(2)))
    if not includes:
        return

    stem = os.path.splitext(os.path.basename(rel))[0]
    if rel.endswith(".h"):
        for lineno, kind, target in includes:
            if kind == '"' and os.path.splitext(os.path.basename(target))[0] == stem \
                    and not f.allows(lineno, "include-order"):
                report(lineno, "include-order", f'header includes itself ("{target}")')
        return

    # .cc: the self-include (same stem) must be the very first include.
    self_pos = None
    for pos, (lineno, kind, target) in enumerate(includes):
        if kind == '"' and os.path.splitext(os.path.basename(target))[0] == stem:
            self_pos = pos
            break
    if self_pos is not None and self_pos != 0:
        lineno = includes[self_pos][0]
        if not f.allows(lineno, "include-order"):
            report(lineno, "include-order",
                   f'self-include "{includes[self_pos][2]}" must be the first '
                   "include of the .cc")

    # After the optional self-include: <system> block before "project" block.
    rest = includes[1:] if self_pos == 0 else includes
    seen_quote = False
    for lineno, kind, target in rest:
        if kind == '"':
            seen_quote = True
        elif seen_quote and not f.allows(lineno, "include-order"):
            report(lineno, "include-order",
                   f"<{target}> after a project include — order is: "
                   'self-include, <system> block, "project" block')


def rule_nodiscard_status(f, rel, report):
    if not (rel.startswith("src/") and rel.endswith(".h")):
        return
    for lineno, line in enumerate(f.code, start=1):
        m = NODISCARD_DECL.match(line)
        if not m or "(" not in line:
            continue
        if m.group(1) is None and not f.allows(lineno, "nodiscard-status"):
            report(lineno, "nodiscard-status",
                   "Status/Result-returning declaration without [[nodiscard]]")


FLIGHT_ENUM = re.compile(
    r"enum\s+class\s+FlightEventType[^{]*\{(.*?)\}", re.DOTALL)
FLIGHT_NAMES = re.compile(
    r"kFlightEventTypeNames\[\]\s*=\s*\{(.*?)\};", re.DOTALL)


def snake_case(enumerator):
    """kMemHighWater -> mem_high_water (strips the leading k)."""
    body = enumerator[1:] if enumerator.startswith("k") else enumerator
    return re.sub(r"(?<!^)([A-Z])", r"_\1", body).lower()


def rule_flight_enum_sync(f, rel, report):
    # The string table lives in flight_recorder.cc; the enum in its sibling
    # header. A new enumerator without its name (or vice versa) silently
    # mislabels every later event in dumps and JSON — catch it here, at the
    # exact index that drifted.
    if not rel.endswith("flight_recorder.cc"):
        return
    header_path = os.path.splitext(f.path)[0] + ".h"
    try:
        with open(header_path, "r", encoding="utf-8", errors="replace") as h:
            header_text = h.read()
    except OSError:
        report(1, "flight-enum-sync",
               f"missing sibling header {os.path.basename(header_path)} "
               "(cannot check the event enum)")
        return

    enum_match = FLIGHT_ENUM.search(header_text)
    if not enum_match:
        report(1, "flight-enum-sync",
               "no `enum class FlightEventType` in the sibling header")
        return
    enum_body = re.sub(r"//[^\n]*", "", enum_match.group(1))
    enumerators = [e for e in re.findall(r"\bk[A-Z][A-Za-z0-9]*\b", enum_body)
                   if e != "kNumTypes"]

    raw_text = "\n".join(f.raw)
    names_match = FLIGHT_NAMES.search(raw_text)
    if not names_match:
        report(1, "flight-enum-sync",
               "no `kFlightEventTypeNames[] = {...}` string table in the .cc")
        return
    names = re.findall(r'"([^"]*)"', names_match.group(1))
    table_line = raw_text[:names_match.start()].count("\n") + 1

    if len(names) != len(enumerators):
        report(table_line, "flight-enum-sync",
               f"string table has {len(names)} entries but FlightEventType "
               f"has {len(enumerators)} enumerators before kNumTypes")
        return
    for idx, (enumerator, name) in enumerate(zip(enumerators, names)):
        expected = snake_case(enumerator)
        if name != expected:
            report(table_line, "flight-enum-sync",
                   f"entry {idx} is \"{name}\" but enumerator {enumerator} "
                   f"wants \"{expected}\" — table and enum have drifted")


FLIGHT_EDGE_ENUM = re.compile(
    r"enum\s+class\s+FlightEdgeKind[^{]*\{(.*?)\}", re.DOTALL)
FLIGHT_EDGE_NAMES = re.compile(
    r"kFlightEdgeKindNames\[\]\s*=\s*\{(.*?)\};", re.DOTALL)


def rule_flight_edge_sync(f, rel, report):
    # Same invariant as flight-enum-sync, for the dependency-edge kinds: the
    # analyzer (scripts/distme_analyze.py) and FlightEdgeKindFromName both
    # decode edges by these strings, so a drifted entry silently reclassifies
    # blocked time in every report.
    if not rel.endswith("flight_recorder.cc"):
        return
    header_path = os.path.splitext(f.path)[0] + ".h"
    try:
        with open(header_path, "r", encoding="utf-8", errors="replace") as h:
            header_text = h.read()
    except OSError:
        return  # flight-enum-sync already reports the missing header

    enum_match = FLIGHT_EDGE_ENUM.search(header_text)
    if not enum_match:
        report(1, "flight-edge-sync",
               "no `enum class FlightEdgeKind` in the sibling header")
        return
    enum_body = re.sub(r"//[^\n]*", "", enum_match.group(1))
    enumerators = [e for e in re.findall(r"\bk[A-Z][A-Za-z0-9]*\b", enum_body)
                   if e != "kNumKinds"]

    raw_text = "\n".join(f.raw)
    names_match = FLIGHT_EDGE_NAMES.search(raw_text)
    if not names_match:
        report(1, "flight-edge-sync",
               "no `kFlightEdgeKindNames[] = {...}` string table in the .cc")
        return
    names = re.findall(r'"([^"]*)"', names_match.group(1))
    table_line = raw_text[:names_match.start()].count("\n") + 1

    if len(names) != len(enumerators):
        report(table_line, "flight-edge-sync",
               f"string table has {len(names)} entries but FlightEdgeKind "
               f"has {len(enumerators)} enumerators before kNumKinds")
        return
    for idx, (enumerator, name) in enumerate(zip(enumerators, names)):
        expected = snake_case(enumerator)
        if name != expected:
            report(table_line, "flight-edge-sync",
                   f"entry {idx} is \"{name}\" but enumerator {enumerator} "
                   f"wants \"{expected}\" — table and enum have drifted")


# --- lock-discipline rules (src/ only) -------------------------------------

ATOMIC_OP = re.compile(
    r"(?:\.|->)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\(")


def rule_lock_annotate(f, rel, structure, model, report):
    del model
    for cls in structure["classes"]:
        if not cls["triggered"]:
            continue
        for member in cls["members"]:
            if not member["needs"]:
                continue
            if f.allows_range(member["line"], member["end_line"],
                              "lock-annotate"):
                continue
            name = member["name"] or "<member>"
            report(member["line"], "lock-annotate",
                   f"`{name}` in mutex/atomic-owning class `{cls['name']}` "
                   "has no annotation — state its synchronization with "
                   "DISTME_GUARDED_BY(m) / DISTME_SHARDED_BY(m) / "
                   "DISTME_LOCKFREE(reason) / DISTME_UNSHARED(reason)")


def _lock_visible(body, mutex):
    if re.search(r"\b(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b"
                 r"[^;]*?\b" + re.escape(mutex) + r"\b", body):
        return True
    return re.search(r"\b" + re.escape(mutex) +
                     r"\b\s*(?:\[[^\]]*\])?\s*\.\s*lock\s*\(", body) is not None


def rule_lock_held(f, rel, structure, model, report):
    for fn in structure["functions"]:
        cls = fn["cls"]
        if cls is None:
            continue
        cinfo = model.get(cls)
        if not cinfo or not cinfo["guarded"]:
            continue
        short = (fn["name"] or "").split("::")[-1]
        if short in (cls, "~" + cls):
            continue  # ctors/dtors run before/after any sharing
        requires = set(fn["requires"]) | set(cinfo["methods"].get(short, []))
        body = fn["body"]
        for member, (kind, mutex) in sorted(cinfo["guarded"].items()):
            m = re.search(r"\b" + re.escape(member) + r"\b", body)
            if m is None:
                continue
            if mutex in requires or _lock_visible(body, mutex):
                continue
            lineno = fn["body_line"] + body[:m.start()].count("\n")
            if f.allows(lineno, "lock-held"):
                continue
            what = "DISTME_SHARDED_BY" if kind == "SHARDED_BY" \
                else "DISTME_GUARDED_BY"
            report(lineno, "lock-held",
                   f"`{member}` is {what}({mutex}) but `{fn['name']}` "
                   f"neither holds a visible `{mutex}` lock "
                   "(lock_guard/scoped_lock/unique_lock/shared_lock or "
                   f"`.lock()`) nor is annotated DISTME_REQUIRES({mutex})")


def rule_atomic_order(f, rel, structure, model, report):
    del structure, model
    for lineno, line in enumerate(f.code, start=1):
        for m in ATOMIC_OP.finditer(line):
            stmt = line[m.start():]
            j = lineno
            while ";" not in stmt and j < lineno + 8 and j < len(f.code):
                stmt += " " + f.code[j]
                j += 1
            if "memory_order" in stmt:
                continue
            if f.allows(lineno, "atomic-order"):
                continue
            report(lineno, "atomic-order",
                   f"std::atomic `.{m.group(1)}()` without an explicit "
                   "std::memory_order — seq_cst-by-default hides intent; "
                   "say memory_order_relaxed/acquire/release/... explicitly")


RULES = [
    rule_pragma_once,
    rule_concurrency,
    rule_naked_new,
    rule_no_cout,
    rule_include_order,
    rule_nodiscard_status,
    rule_flight_enum_sync,
    rule_flight_edge_sync,
]

LOCK_RULES = [
    rule_lock_annotate,
    rule_lock_held,
    rule_atomic_order,
]

RULE_NAMES = [
    "pragma-once", "concurrency", "naked-new", "no-cout", "include-order",
    "nodiscard-status", "flight-enum-sync", "flight-edge-sync",
    "lock-annotate", "lock-held", "atomic-order",
]


def collect(paths):
    exts = (".h", ".hpp", ".cc", ".cpp")
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith((".", "build")))
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(exts))
        elif path.endswith(exts):
            files.append(path)
    return files


# --- drivers (inline and multiprocessing) ----------------------------------

def parse_for_model(path):
    """Phase 1 worker: one file's slice of the class model."""
    try:
        f = File(path)
    except OSError:
        return {}
    return build_model_entry(parse_structures(f.code))


_MODEL = None  # worker-global, set by the pool initializer


def _pool_init(model):
    global _MODEL
    _MODEL = model


def lint_file(path, model=None):
    """Phase 2 worker: all rules over one file. Returns finding tuples."""
    if model is None:
        model = _MODEL
    rel = norm(path)
    findings = []

    def report(lineno, rule, message):
        findings.append((rel, lineno, rule, message))

    try:
        f = File(path)
    except OSError as e:
        return [(rel, 0, "io", f"unreadable: {e}")]
    for rule in RULES:
        rule(f, rel, report)
    if in_any(rel, ("src/",)):
        structure = parse_structures(f.code)
        for rule in LOCK_RULES:
            rule(f, rel, structure, model or {}, report)
    return findings


def changed_file_set():
    """Repo-relative paths changed vs HEAD plus untracked files, or None
    when not in a git checkout."""
    def run(*argv):
        return subprocess.run(argv, capture_output=True, text=True)

    diff = run("git", "diff", "--name-only", "HEAD")
    if diff.returncode != 0:
        return None
    untracked = run("git", "ls-files", "--others", "--exclude-standard")
    toplevel = run("git", "rev-parse", "--show-toplevel")
    root = toplevel.stdout.strip() if toplevel.returncode == 0 else os.getcwd()
    changed = set()
    for line in diff.stdout.splitlines() + untracked.stdout.splitlines():
        if line:
            changed.add(os.path.relpath(os.path.join(root, line))
                        .replace(os.sep, "/"))
    return changed


def main(argv):
    paths = []
    jobs = None
    changed_only = False
    args = iter(argv[1:])
    for a in args:
        if a == "--list-rules":
            print("\n".join(RULE_NAMES))
            return 0
        if a == "--changed-only":
            changed_only = True
        elif a == "--jobs":
            jobs = int(next(args, "1"))
        elif a.startswith("--jobs="):
            jobs = int(a.split("=", 1)[1])
        elif a.startswith("--"):
            print(f"distme-lint: unknown option {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    files = collect(paths)
    lint_targets = files
    if changed_only:
        changed = changed_file_set()
        if changed is None:
            print("distme-lint: --changed-only outside a git checkout — "
                  "linting everything", file=sys.stderr)
        else:
            lint_targets = [p for p in files if norm(p) in changed]

    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(lint_targets) or 1))

    if jobs == 1:
        model = merge_model(parse_for_model(p) for p in files)
        results = [lint_file(p, model) for p in lint_targets]
    else:
        with multiprocessing.Pool(jobs) as pool:
            model = merge_model(pool.map(parse_for_model, files))
        with multiprocessing.Pool(jobs, _pool_init, (model,)) as pool:
            results = pool.map(lint_file, lint_targets)

    findings = sorted(f for per_file in results for f in per_file)
    for rel, lineno, rule, message in findings:
        if rule == "io":
            print(f"{rel}:{lineno}: [io] {message}", file=sys.stderr)
        else:
            print(f"{rel}:{lineno}: [{rule}] {message}")
    if findings:
        print(f"distme-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
