#!/usr/bin/env python3
"""distme-lint: fast, AST-free checker for DistME repo invariants.

Usage: distme_lint.py [--list-rules] <path> [<path> ...]

Paths may be files or directories (directories are walked for .h/.cc files).
Prints one `path:line: [rule] message` per finding and exits nonzero if any
finding is produced. Rules (see DESIGN.md "Correctness tooling"):

  pragma-once        every header starts its code with `#pragma once`
  concurrency        raw std::mutex/std::thread/... only inside the engine,
                     obs, and gpu wrappers (CONCURRENCY_ALLOW below); library
                     code must go through those layers
  naked-new          no naked `new` / C allocation in src/ — wrap in
                     make_unique/make_shared or a smart-pointer constructor
  no-cout            no std::cout in library code (src/, tests/) — use
                     DISTME_LOG; bench/ and examples/ are exempt
  include-order      self-include first in a .cc, then <system> includes,
                     then "project" includes; a header never includes itself
  nodiscard-status   every Status/Result-returning declaration in a src/
                     header carries [[nodiscard]]
  flight-enum-sync   the flight-recorder event-name string table stays
                     entry-for-entry in sync with FlightEventType: same
                     count, and each string is the snake_case of the
                     enumerator at the same index
  flight-edge-sync   same invariant for the dependency-edge kinds: the
                     kFlightEdgeKindNames table stays entry-for-entry in
                     sync with FlightEdgeKind (before kNumKinds)

Suppressing a finding: append `// distme-lint: allow(<rule>)` to the line, or
add the file to the rule's allowlist below with a one-line justification.
Suppressions are themselves part of the reviewed diff, so every escape hatch
is visible in code review.
"""

import os
import re
import sys

# --- allowlists ------------------------------------------------------------

# Files allowed to use raw concurrency primitives. Everything else must use
# the engine/obs wrappers (task slots, registries, tracers) so that the TSan
# stress suite exercises every lock in the system.
CONCURRENCY_ALLOW = (
    "src/engine/",            # RealExecutor task slots, DistributedMatrix stores
    "src/obs/",               # MetricsRegistry, Tracer (lock-free + registration lock)
    "src/gpu/",               # software-GPU stream/event simulation
    "src/common/logging.cc",  # the per-line stderr write lock
    "tests/",                 # tests may spawn threads freely
    "bench/",                 # benches may spawn threads freely
)

# Files allowed to use naked new/delete. Keep this list short and justified.
NAKED_NEW_ALLOW = (
    "src/common/status.h",   # manual State block: Status must stay one pointer wide
    "src/common/status.cc",  # same State block, allocation on the error path only
)

CONCURRENCY_TOKENS = re.compile(
    r"std::(mutex|shared_mutex|recursive_mutex|timed_mutex|thread|jthread|"
    r"condition_variable|condition_variable_any)\b"
)
CONCURRENCY_INCLUDES = re.compile(
    r'#\s*include\s*<(thread|mutex|shared_mutex|condition_variable)>'
)
NAKED_NEW = re.compile(r"\bnew\b\s*[\(A-Za-z_:<]")
WRAPPED_NEW = re.compile(
    r"(make_unique|make_shared|unique_ptr\s*<[^;]*?>\s*\(\s*new|"
    r"shared_ptr\s*<[^;]*?>\s*\(\s*new)"
)
C_ALLOC = re.compile(r"\b(malloc|calloc|realloc|free)\s*\(")
COUT = re.compile(r"std::cout\b")
INCLUDE = re.compile(r'^\s*#\s*include\s*([<"])([^>"]+)[>"]')
# A declaration returning Status/Result: the type, whitespace, a function
# name, and an open paren. Deliberately does not match constructors
# (`Status(...)`), reference returns (`Status& operator=`), or fields.
NODISCARD_DECL = re.compile(
    r"^\s*(\[\[nodiscard\]\]\s+)?(virtual\s+)?(static\s+)?"
    r"(Status|Result<[^();]*>)\s+~?[A-Za-z_]\w*\s*\("
)
SUPPRESS = re.compile(r"//\s*distme-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


def strip_code(line):
    """Removes string/char literals and // comments (crudely, no AST)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '"' or c == "'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append('""' if quote == '"' else "''")
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


class File:
    """One source file, pre-processed for the rules: raw lines, code-only
    lines (comments and literals blanked), and per-line suppressions."""

    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read().splitlines()
        self.suppressed = {}  # line number (1-based) -> set of rule names
        for idx, line in enumerate(self.raw, start=1):
            m = SUPPRESS.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                self.suppressed[idx] = rules
        self.code = self._strip_all()

    def _strip_all(self):
        code = []
        in_block = False
        for line in self.raw:
            if in_block:
                end = line.find("*/")
                if end < 0:
                    code.append("")
                    continue
                line = " " * (end + 2) + line[end + 2:]
                in_block = False
            line = strip_code(line)
            # Strip /* ... */ spans that open on this line.
            while True:
                start = line.find("/*")
                if start < 0:
                    break
                end = line.find("*/", start + 2)
                if end < 0:
                    line = line[:start]
                    in_block = True
                    break
                line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
            code.append(line)
        return code

    def allows(self, lineno, rule):
        return rule in self.suppressed.get(lineno, set())


def norm(path):
    return os.path.relpath(path).replace(os.sep, "/")


def in_any(path, prefixes):
    return any(path.startswith(p) or ("/" + p) in path for p in prefixes)


# --- rules -----------------------------------------------------------------

def rule_pragma_once(f, rel, report):
    if not rel.endswith(".h"):
        return
    for lineno, line in enumerate(f.code, start=1):
        text = line.strip()
        if not text:
            continue
        if re.match(r"#\s*pragma\s+once", text):
            return
        report(lineno, "pragma-once",
               "header must start with `#pragma once` before any code")
        return
    report(1, "pragma-once", "header is empty or has no `#pragma once`")


def rule_concurrency(f, rel, report):
    if in_any(rel, CONCURRENCY_ALLOW):
        return
    for lineno, line in enumerate(f.code, start=1):
        m = CONCURRENCY_TOKENS.search(line) or CONCURRENCY_INCLUDES.search(line)
        if m and not f.allows(lineno, "concurrency"):
            report(lineno, "concurrency",
                   f"raw `{m.group(0)}` outside the concurrency allowlist "
                   "(use the engine/obs wrappers, or extend "
                   "CONCURRENCY_ALLOW with a justification)")


def rule_naked_new(f, rel, report):
    if not in_any(rel, ("src/",)):
        return
    if in_any(rel, NAKED_NEW_ALLOW):
        return
    for lineno, line in enumerate(f.code, start=1):
        if f.allows(lineno, "naked-new"):
            continue
        m = C_ALLOC.search(line)
        if m:
            report(lineno, "naked-new",
                   f"C allocation `{m.group(1)}()` in library code "
                   "(use containers or smart pointers)")
            continue
        if NAKED_NEW.search(line) and not WRAPPED_NEW.search(line):
            report(lineno, "naked-new",
                   "naked `new` in library code (use std::make_unique / "
                   "std::make_shared, or wrap in a smart-pointer constructor "
                   "on the same line)")


def rule_no_cout(f, rel, report):
    if in_any(rel, ("bench/", "examples/")):
        return
    for lineno, line in enumerate(f.code, start=1):
        if COUT.search(line) and not f.allows(lineno, "no-cout"):
            report(lineno, "no-cout",
                   "std::cout in library code (use DISTME_LOG, or return the "
                   "string to the caller)")


def rule_include_order(f, rel, report):
    # Parse from the raw lines (the literal-stripper blanks "..." targets),
    # but only where the stripped line still starts a preprocessor directive
    # — this skips includes that live inside comments.
    includes = []  # (lineno, kind, target) where kind is '<' or '"'
    for lineno, line in enumerate(f.raw, start=1):
        m = INCLUDE.match(line)
        if m and f.code[lineno - 1].lstrip().startswith("#"):
            includes.append((lineno, m.group(1), m.group(2)))
    if not includes:
        return

    stem = os.path.splitext(os.path.basename(rel))[0]
    if rel.endswith(".h"):
        for lineno, kind, target in includes:
            if kind == '"' and os.path.splitext(os.path.basename(target))[0] == stem \
                    and not f.allows(lineno, "include-order"):
                report(lineno, "include-order", f'header includes itself ("{target}")')
        return

    # .cc: the self-include (same stem) must be the very first include.
    self_pos = None
    for pos, (lineno, kind, target) in enumerate(includes):
        if kind == '"' and os.path.splitext(os.path.basename(target))[0] == stem:
            self_pos = pos
            break
    if self_pos is not None and self_pos != 0:
        lineno = includes[self_pos][0]
        if not f.allows(lineno, "include-order"):
            report(lineno, "include-order",
                   f'self-include "{includes[self_pos][2]}" must be the first '
                   "include of the .cc")

    # After the optional self-include: <system> block before "project" block.
    rest = includes[1:] if self_pos == 0 else includes
    seen_quote = False
    for lineno, kind, target in rest:
        if kind == '"':
            seen_quote = True
        elif seen_quote and not f.allows(lineno, "include-order"):
            report(lineno, "include-order",
                   f"<{target}> after a project include — order is: "
                   'self-include, <system> block, "project" block')


def rule_nodiscard_status(f, rel, report):
    if not (rel.startswith("src/") and rel.endswith(".h")):
        return
    for lineno, line in enumerate(f.code, start=1):
        m = NODISCARD_DECL.match(line)
        if not m or "(" not in line:
            continue
        if m.group(1) is None and not f.allows(lineno, "nodiscard-status"):
            report(lineno, "nodiscard-status",
                   "Status/Result-returning declaration without [[nodiscard]]")


FLIGHT_ENUM = re.compile(
    r"enum\s+class\s+FlightEventType[^{]*\{(.*?)\}", re.DOTALL)
FLIGHT_NAMES = re.compile(
    r"kFlightEventTypeNames\[\]\s*=\s*\{(.*?)\};", re.DOTALL)


def snake_case(enumerator):
    """kMemHighWater -> mem_high_water (strips the leading k)."""
    body = enumerator[1:] if enumerator.startswith("k") else enumerator
    return re.sub(r"(?<!^)([A-Z])", r"_\1", body).lower()


def rule_flight_enum_sync(f, rel, report):
    # The string table lives in flight_recorder.cc; the enum in its sibling
    # header. A new enumerator without its name (or vice versa) silently
    # mislabels every later event in dumps and JSON — catch it here, at the
    # exact index that drifted.
    if not rel.endswith("flight_recorder.cc"):
        return
    header_path = os.path.splitext(f.path)[0] + ".h"
    try:
        with open(header_path, "r", encoding="utf-8", errors="replace") as h:
            header_text = h.read()
    except OSError:
        report(1, "flight-enum-sync",
               f"missing sibling header {os.path.basename(header_path)} "
               "(cannot check the event enum)")
        return

    enum_match = FLIGHT_ENUM.search(header_text)
    if not enum_match:
        report(1, "flight-enum-sync",
               "no `enum class FlightEventType` in the sibling header")
        return
    enum_body = re.sub(r"//[^\n]*", "", enum_match.group(1))
    enumerators = [e for e in re.findall(r"\bk[A-Z][A-Za-z0-9]*\b", enum_body)
                   if e != "kNumTypes"]

    raw_text = "\n".join(f.raw)
    names_match = FLIGHT_NAMES.search(raw_text)
    if not names_match:
        report(1, "flight-enum-sync",
               "no `kFlightEventTypeNames[] = {...}` string table in the .cc")
        return
    names = re.findall(r'"([^"]*)"', names_match.group(1))
    table_line = raw_text[:names_match.start()].count("\n") + 1

    if len(names) != len(enumerators):
        report(table_line, "flight-enum-sync",
               f"string table has {len(names)} entries but FlightEventType "
               f"has {len(enumerators)} enumerators before kNumTypes")
        return
    for idx, (enumerator, name) in enumerate(zip(enumerators, names)):
        expected = snake_case(enumerator)
        if name != expected:
            report(table_line, "flight-enum-sync",
                   f"entry {idx} is \"{name}\" but enumerator {enumerator} "
                   f"wants \"{expected}\" — table and enum have drifted")


FLIGHT_EDGE_ENUM = re.compile(
    r"enum\s+class\s+FlightEdgeKind[^{]*\{(.*?)\}", re.DOTALL)
FLIGHT_EDGE_NAMES = re.compile(
    r"kFlightEdgeKindNames\[\]\s*=\s*\{(.*?)\};", re.DOTALL)


def rule_flight_edge_sync(f, rel, report):
    # Same invariant as flight-enum-sync, for the dependency-edge kinds: the
    # analyzer (scripts/distme_analyze.py) and FlightEdgeKindFromName both
    # decode edges by these strings, so a drifted entry silently reclassifies
    # blocked time in every report.
    if not rel.endswith("flight_recorder.cc"):
        return
    header_path = os.path.splitext(f.path)[0] + ".h"
    try:
        with open(header_path, "r", encoding="utf-8", errors="replace") as h:
            header_text = h.read()
    except OSError:
        return  # flight-enum-sync already reports the missing header

    enum_match = FLIGHT_EDGE_ENUM.search(header_text)
    if not enum_match:
        report(1, "flight-edge-sync",
               "no `enum class FlightEdgeKind` in the sibling header")
        return
    enum_body = re.sub(r"//[^\n]*", "", enum_match.group(1))
    enumerators = [e for e in re.findall(r"\bk[A-Z][A-Za-z0-9]*\b", enum_body)
                   if e != "kNumKinds"]

    raw_text = "\n".join(f.raw)
    names_match = FLIGHT_EDGE_NAMES.search(raw_text)
    if not names_match:
        report(1, "flight-edge-sync",
               "no `kFlightEdgeKindNames[] = {...}` string table in the .cc")
        return
    names = re.findall(r'"([^"]*)"', names_match.group(1))
    table_line = raw_text[:names_match.start()].count("\n") + 1

    if len(names) != len(enumerators):
        report(table_line, "flight-edge-sync",
               f"string table has {len(names)} entries but FlightEdgeKind "
               f"has {len(enumerators)} enumerators before kNumKinds")
        return
    for idx, (enumerator, name) in enumerate(zip(enumerators, names)):
        expected = snake_case(enumerator)
        if name != expected:
            report(table_line, "flight-edge-sync",
                   f"entry {idx} is \"{name}\" but enumerator {enumerator} "
                   f"wants \"{expected}\" — table and enum have drifted")


RULES = [
    rule_pragma_once,
    rule_concurrency,
    rule_naked_new,
    rule_no_cout,
    rule_include_order,
    rule_nodiscard_status,
    rule_flight_enum_sync,
    rule_flight_edge_sync,
]

RULE_NAMES = [
    "pragma-once", "concurrency", "naked-new", "no-cout", "include-order",
    "nodiscard-status", "flight-enum-sync", "flight-edge-sync",
]


def collect(paths):
    exts = (".h", ".hpp", ".cc", ".cpp")
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith((".", "build")))
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(exts))
        elif path.endswith(exts):
            files.append(path)
    return files


def main(argv):
    args = [a for a in argv[1:] if a != "--list-rules"]
    if len(args) != len(argv) - 1:
        print("\n".join(RULE_NAMES))
        return 0
    if not args:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    findings = 0
    for path in collect(args):
        rel = norm(path)
        try:
            f = File(path)
        except OSError as e:
            print(f"{rel}:0: [io] unreadable: {e}", file=sys.stderr)
            findings += 1
            continue

        def report(lineno, rule, message):
            nonlocal findings
            findings += 1
            print(f"{rel}:{lineno}: [{rule}] {message}")

        for rule in RULES:
            rule(f, rel, report)

    if findings:
        print(f"distme-lint: {findings} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
