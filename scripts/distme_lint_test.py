#!/usr/bin/env python3
"""Fixture tests for distme_lint.py: every rule gets at least one violating
snippet (lint must exit nonzero and name the rule) and one clean counterpart
(lint must exit 0). Run directly or via check_tier1.sh --lint:

    python3 scripts/distme_lint_test.py
"""

import os
import subprocess
import sys
import tempfile
import unittest

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "distme_lint.py")


class LintFixtureTest(unittest.TestCase):
    def run_lint(self, files):
        """Writes {relpath: content} into a temp tree, lints it from its
        root, and returns (exit_code, stdout)."""
        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
                paths.append(rel)
            proc = subprocess.run(
                [sys.executable, LINT] + sorted(paths),
                cwd=tmp, capture_output=True, text=True)
            return proc.returncode, proc.stdout

    def assert_flags(self, rule, files):
        code, out = self.run_lint(files)
        self.assertNotEqual(code, 0, f"{rule}: expected a finding\n{out}")
        self.assertIn(f"[{rule}]", out, f"{rule}: wrong rule fired\n{out}")

    def assert_clean(self, files):
        code, out = self.run_lint(files)
        self.assertEqual(code, 0, f"expected clean\n{out}")

    # --- pragma-once ------------------------------------------------------

    def test_header_without_pragma_once(self):
        self.assert_flags("pragma-once", {
            "src/core/foo.h": "namespace x {}\n"})

    def test_header_with_pragma_once_after_comment_is_clean(self):
        self.assert_clean({
            "src/core/foo.h": "// A header.\n#pragma once\nnamespace x {}\n"})

    # --- concurrency ------------------------------------------------------

    def test_mutex_outside_allowlist(self):
        self.assert_flags("concurrency", {
            "src/matrix/foo.cc": "#include <mutex>\nstd::mutex m;\n"})

    def test_thread_include_outside_allowlist(self):
        self.assert_flags("concurrency", {
            "src/core/foo.cc": "#include <thread>\n"})

    def test_mutex_in_engine_is_allowed(self):
        self.assert_clean({
            "src/engine/foo.cc": "#include <mutex>\nstd::mutex m;\n"})

    def test_mutex_in_tests_is_allowed(self):
        self.assert_clean({
            "tests/foo_test.cc": "#include <thread>\nstd::thread t;\n"})

    def test_inline_suppression(self):
        self.assert_clean({
            "src/matrix/foo.cc":
                "std::mutex m;  // distme-lint: allow(concurrency)\n"})

    # --- naked-new --------------------------------------------------------

    def test_naked_new(self):
        self.assert_flags("naked-new", {
            "src/core/foo.cc": "int* p = new int[3];\n"})

    def test_malloc(self):
        self.assert_flags("naked-new", {
            "src/core/foo.cc": "void* p = malloc(16);\n"})

    def test_wrapped_new_is_clean(self):
        self.assert_clean({
            "src/core/foo.cc":
                "auto a = std::make_unique<int[]>(3);\n"
                "auto b = std::shared_ptr<Foo>(new Foo());\n"
                "auto c = std::unique_ptr<Foo>(new Foo());\n"})

    def test_new_in_comment_is_clean(self):
        self.assert_clean({
            "src/core/foo.cc":
                "// Returns the transpose as a new matrix.\n"
                "/* also: new Foo() in a block comment */\n"})

    def test_new_outside_src_is_clean(self):
        self.assert_clean({
            "tests/foo_test.cc": "int* p = new int[3];\n"})

    # --- no-cout ----------------------------------------------------------

    def test_cout_in_src(self):
        self.assert_flags("no-cout", {
            "src/core/foo.cc": '#include <iostream>\nvoid f() { std::cout << 1; }\n'})

    def test_cout_in_tests(self):
        self.assert_flags("no-cout", {
            "tests/foo_test.cc": "void f() { std::cout << 1; }\n"})

    def test_cout_in_bench_is_clean(self):
        self.assert_clean({
            "bench/foo.cc": "void f() { std::cout << 1; }\n"})

    def test_cout_in_string_literal_is_clean(self):
        self.assert_clean({
            "src/core/foo.cc": 'const char* kDoc = "use std::cout";\n'})

    # --- include-order ----------------------------------------------------

    def test_system_include_after_project_include(self):
        self.assert_flags("include-order", {
            "src/core/foo.cc":
                '#include "core/foo.h"\n'
                '#include "core/bar.h"\n'
                "#include <vector>\n"})

    def test_self_include_not_first(self):
        self.assert_flags("include-order", {
            "src/core/foo.cc":
                "#include <vector>\n"
                '#include "core/foo.h"\n'})

    def test_canonical_order_is_clean(self):
        self.assert_clean({
            "src/core/foo.cc":
                '#include "core/foo.h"\n'
                "#include <string>\n"
                "#include <vector>\n"
                '#include "core/bar.h"\n'})

    def test_header_including_itself(self):
        self.assert_flags("include-order", {
            "src/core/foo.h": '#pragma once\n#include "core/foo.h"\n'})

    # --- nodiscard-status -------------------------------------------------

    def test_status_api_without_nodiscard(self):
        self.assert_flags("nodiscard-status", {
            "src/core/foo.h": "#pragma once\nStatus Save(int x);\n"})

    def test_result_api_without_nodiscard(self):
        self.assert_flags("nodiscard-status", {
            "src/core/foo.h":
                "#pragma once\nResult<Block> Load(const std::string& p);\n"})

    def test_annotated_api_is_clean(self):
        self.assert_clean({
            "src/core/foo.h":
                "#pragma once\n"
                "[[nodiscard]] Status Save(int x);\n"
                "[[nodiscard]] virtual Result<int> Choose() = 0;\n"
                "[[nodiscard]] static Status OK();\n"})

    def test_constructor_field_and_reference_are_clean(self):
        self.assert_clean({
            "src/core/foo.h":
                "#pragma once\n"
                "struct R {\n"
                "  Status(StatusCode code, std::string msg);\n"
                "  Status& operator=(const Status& other);\n"
                "  Status outcome;\n"
                "};\n"})

    def test_cc_files_are_exempt(self):
        # Definitions inherit the attribute from the header declaration.
        self.assert_clean({
            "src/core/foo.cc": "Status Save(int x) { return Status::OK(); }\n"})

    # --- flight-enum-sync -------------------------------------------------

    # Includes a slice of the schema-3 GPU interval kinds: multi-word
    # camel-case with digits (H2d/D2h) is exactly where a hand-maintained
    # name table drifts (h2d_begin vs h2_d_begin).
    FLIGHT_HEADER = (
        "#pragma once\n"
        "enum class FlightEventType : uint8_t {\n"
        "  kRunStart = 0,\n"
        "  kTaskRetry,\n"
        "  kMemHighWater,\n"
        "  kGpuH2dBegin,\n"
        "  kGpuD2hEnd,\n"
        "  kGpuKernelBegin,\n"
        "  kGpuAlloc,\n"
        "  kNumTypes,\n"
        "};\n"
        "enum class FlightEdgeKind : uint8_t {\n"
        "  kSlotWait = 0,\n"
        "  kFetchWait,\n"
        "  kExec,\n"
        "  kNumKinds,\n"
        "};\n")

    FLIGHT_NAMES = ["run_start", "task_retry", "mem_high_water",
                    "gpu_h2d_begin", "gpu_d2h_end", "gpu_kernel_begin",
                    "gpu_alloc"]

    def flight_cc(self, names,
                  edge_names=("slot_wait", "fetch_wait", "exec")):
        entries = "".join(f'    "{n}",\n' for n in names)
        edges = "".join(f'    "{n}",\n' for n in edge_names)
        return ('#include "obs/flight_recorder.h"\n'
                "constexpr const char* kFlightEventTypeNames[] = {\n"
                f"{entries}"
                "};\n"
                "constexpr const char* kFlightEdgeKindNames[] = {\n"
                f"{edges}"
                "};\n")

    def test_flight_table_in_sync_is_clean(self):
        self.assert_clean({
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES)})

    def test_flight_table_missing_entry(self):
        self.assert_flags("flight-enum-sync", {
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES[:-1])})

    def test_flight_table_misnamed_entry(self):
        self.assert_flags("flight-enum-sync", {
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES[:3] + ["gpu_h2_d_begin"] +
                self.FLIGHT_NAMES[4:])})

    def test_flight_table_out_of_order(self):
        self.assert_flags("flight-enum-sync", {
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES[:5] + ["gpu_alloc",
                                         "gpu_kernel_begin"])})

    def test_flight_cc_without_header(self):
        self.assert_flags("flight-enum-sync", {
            "src/obs/flight_recorder.cc": self.flight_cc(["run_start"])})

    def test_the_real_flight_recorder_is_in_sync(self):
        # Guard the actual sources, not just fixtures: lint the repo's own
        # flight_recorder.cc in place.
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        target = os.path.join(repo, "src", "obs", "flight_recorder.cc")
        proc = subprocess.run(
            [sys.executable, LINT, target],
            cwd=repo, capture_output=True, text=True)
        self.assertNotIn("[flight-enum-sync]", proc.stdout)
        self.assertNotIn("[flight-edge-sync]", proc.stdout)

    # --- flight-edge-sync -------------------------------------------------

    def test_edge_table_in_sync_is_clean(self):
        self.assert_clean({
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES)})

    def test_edge_table_missing_entry(self):
        self.assert_flags("flight-edge-sync", {
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES,
                edge_names=("slot_wait", "fetch_wait"))})

    def test_edge_table_misnamed_entry(self):
        self.assert_flags("flight-edge-sync", {
            "src/obs/flight_recorder.h": self.FLIGHT_HEADER,
            "src/obs/flight_recorder.cc": self.flight_cc(
                self.FLIGHT_NAMES,
                edge_names=("slot_wait", "fetchwait", "exec"))})

    def test_edge_enum_missing_from_header(self):
        header_without_edges = (
            "#pragma once\n"
            "enum class FlightEventType : uint8_t {\n"
            "  kRunStart = 0,\n"
            "  kNumTypes,\n"
            "};\n")
        self.assert_flags("flight-edge-sync", {
            "src/obs/flight_recorder.h": header_without_edges,
            "src/obs/flight_recorder.cc": self.flight_cc(["run_start"])})

    # --- lock-annotate ----------------------------------------------------

    # A minimal mutex-owning class with one guarded and one bare member.
    # src/engine/ is on the concurrency allowlist, so only the lock rules
    # fire on these fixtures.
    def counter_header(self, extra_member="  int bare_;\n"):
        return ("#pragma once\n"
                "#include <mutex>\n"
                "class Counter {\n"
                " public:\n"
                "  void Add(int d);\n"
                " private:\n"
                "  mutable std::mutex mutex_;\n"
                "  int total_ DISTME_GUARDED_BY(mutex_) = 0;\n"
                f"{extra_member}"
                "};\n")

    def test_unannotated_member_in_mutex_class(self):
        self.assert_flags("lock-annotate", {
            "src/engine/counter.h": self.counter_header()})

    def test_fully_annotated_class_is_clean(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(
                "  int hits_ DISTME_GUARDED_BY(mutex_) = 0;\n")})

    def test_lockfree_and_unshared_annotations_are_accepted(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(
                '  int epoch_ DISTME_LOCKFREE("set in ctor") = 0;\n'
                '  int scratch_ DISTME_UNSHARED("owner-thread only") = 0;\n')})

    def test_atomic_member_triggers_and_is_exempt(self):
        # An atomic makes the class concurrency-relevant (so `bare_` is
        # flagged) but needs no annotation itself.
        self.assert_flags("lock-annotate", {
            "src/engine/gauge.h":
                "#pragma once\n"
                "#include <atomic>\n"
                "class Gauge {\n"
                "  std::atomic<int> level_{0};\n"
                "  int bare_;\n"
                "};\n"})

    def test_const_member_is_exempt(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(
                "  const int capacity_ = 8;\n")})

    def test_plain_class_without_mutex_is_clean(self):
        self.assert_clean({
            "src/engine/point.h":
                "#pragma once\n"
                "class Point {\n"
                "  int x_ = 0;\n"
                "  int y_ = 0;\n"
                "};\n"})

    def test_lock_annotate_allow_escape(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(
                "  int bare_;  // distme-lint: allow(lock-annotate)\n")})

    def test_lock_annotate_skipped_outside_src(self):
        self.assert_clean({
            "tests/counter_test.cc":
                "#include <mutex>\n"
                "class Harness {\n"
                "  std::mutex mutex_;\n"
                "  int bare_;\n"
                "};\n"})

    # --- lock-held --------------------------------------------------------

    def counter_cc(self, body):
        return ('#include "engine/counter.h"\n'
                f"void Counter::Add(int d) {{\n{body}}}\n")

    def test_guarded_member_touched_without_lock(self):
        self.assert_flags("lock-held", {
            "src/engine/counter.h": self.counter_header(""),
            "src/engine/counter.cc": self.counter_cc(
                "  total_ += d;\n")})

    def test_guarded_member_under_lock_guard_is_clean(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(""),
            "src/engine/counter.cc": self.counter_cc(
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  total_ += d;\n")})

    def test_requires_annotation_satisfies_lock_held(self):
        header = ("#pragma once\n"
                  "#include <mutex>\n"
                  "class Counter {\n"
                  " public:\n"
                  "  void Add(int d);\n"
                  " private:\n"
                  "  void AddLocked(int d) DISTME_REQUIRES(mutex_);\n"
                  "  mutable std::mutex mutex_;\n"
                  "  int total_ DISTME_GUARDED_BY(mutex_) = 0;\n"
                  "};\n")
        self.assert_clean({
            "src/engine/counter.h": header,
            "src/engine/counter.cc":
                '#include "engine/counter.h"\n'
                "void Counter::Add(int d) {\n"
                "  std::lock_guard<std::mutex> lock(mutex_);\n"
                "  AddLocked(d);\n"
                "}\n"
                "void Counter::AddLocked(int d) { total_ += d; }\n"})

    def test_ctor_is_exempt_from_lock_held(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(""),
            "src/engine/counter.cc":
                '#include "engine/counter.h"\n'
                "Counter::Counter() { total_ = 0; }\n"})

    def test_inline_header_method_without_lock(self):
        self.assert_flags("lock-held", {
            "src/engine/counter.h":
                "#pragma once\n"
                "#include <mutex>\n"
                "class Counter {\n"
                " public:\n"
                "  int total() const { return total_; }\n"
                " private:\n"
                "  mutable std::mutex mutex_;\n"
                "  int total_ DISTME_GUARDED_BY(mutex_) = 0;\n"
                "};\n"})

    def test_sharded_by_locked_collection_is_clean(self):
        self.assert_clean({
            "src/engine/table.h":
                "#pragma once\n"
                "#include <mutex>\n"
                "#include <vector>\n"
                "class Table {\n"
                " public:\n"
                "  void Put(int node, int v);\n"
                " private:\n"
                "  std::vector<std::vector<int>> stores_\n"
                "      DISTME_SHARDED_BY(mutexes_);\n"
                "  mutable std::vector<std::mutex> mutexes_;\n"
                "};\n",
            "src/engine/table.cc":
                '#include "engine/table.h"\n'
                "void Table::Put(int node, int v) {\n"
                "  std::lock_guard<std::mutex> lock(mutexes_[node]);\n"
                "  stores_[node].push_back(v);\n"
                "}\n"})

    def test_sharded_by_without_lock_is_flagged(self):
        self.assert_flags("lock-held", {
            "src/engine/table.h":
                "#pragma once\n"
                "#include <mutex>\n"
                "#include <vector>\n"
                "class Table {\n"
                " public:\n"
                "  void Put(int node, int v);\n"
                " private:\n"
                "  std::vector<std::vector<int>> stores_\n"
                "      DISTME_SHARDED_BY(mutexes_);\n"
                "  mutable std::vector<std::mutex> mutexes_;\n"
                "};\n",
            "src/engine/table.cc":
                '#include "engine/table.h"\n'
                "void Table::Put(int node, int v) {\n"
                "  stores_[node].push_back(v);\n"
                "}\n"})

    def test_lock_held_allow_escape(self):
        self.assert_clean({
            "src/engine/counter.h": self.counter_header(""),
            "src/engine/counter.cc": self.counter_cc(
                "  total_ += d;  // distme-lint: allow(lock-held)\n")})

    # --- atomic-order -----------------------------------------------------

    def test_atomic_load_without_order(self):
        self.assert_flags("atomic-order", {
            "src/engine/foo.cc":
                "#include <atomic>\n"
                "std::atomic<int> a{0};\n"
                "int f() { return a.load(); }\n"})

    def test_atomic_store_with_order_is_clean(self):
        self.assert_clean({
            "src/engine/foo.cc":
                "#include <atomic>\n"
                "std::atomic<int> a{0};\n"
                "void f() { a.store(1, std::memory_order_release); }\n"})

    def test_atomic_fetch_add_without_order(self):
        self.assert_flags("atomic-order", {
            "src/engine/foo.cc":
                "#include <atomic>\n"
                "std::atomic<int> a{0};\n"
                "void f() { a.fetch_add(1); }\n"})

    def test_multiline_atomic_call_with_order_is_clean(self):
        # The order token lands on a later line of the same statement.
        self.assert_clean({
            "src/engine/foo.cc":
                "#include <atomic>\n"
                "std::atomic<bool> flag{false};\n"
                "bool f() {\n"
                "  bool expected = false;\n"
                "  return flag.compare_exchange_strong(\n"
                "      expected, true,\n"
                "      std::memory_order_acq_rel);\n"
                "}\n"})

    def test_atomic_order_allow_escape(self):
        self.assert_clean({
            "src/engine/foo.cc":
                "#include <atomic>\n"
                "std::atomic<int> a{0};\n"
                "int f() {\n"
                "  return a.load();  // distme-lint: allow(atomic-order)\n"
                "}\n"})

    def test_atomic_order_skipped_in_tests(self):
        self.assert_clean({
            "tests/foo_test.cc":
                "#include <atomic>\n"
                "std::atomic<int> a{0};\n"
                "int f() { return a.load(); }\n"})

    # --- real sources & driver flags --------------------------------------

    def test_the_real_tree_passes_lock_rules(self):
        # The annotation sweep must stay complete: lint the repo's own src/
        # in place and require zero lock-discipline findings.
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        proc = subprocess.run(
            [sys.executable, LINT, "src/"],
            cwd=repo, capture_output=True, text=True)
        for rule in ("lock-annotate", "lock-held", "atomic-order"):
            self.assertNotIn(f"[{rule}]", proc.stdout,
                             f"real tree fails {rule}\n{proc.stdout}")

    def test_list_rules_names_the_lock_rules(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--list-rules"],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0)
        for rule in ("lock-annotate", "lock-held", "atomic-order"):
            self.assertIn(rule, proc.stdout)

    def test_parallel_jobs_match_serial(self):
        # --jobs 2 must report exactly what the in-process path reports.
        files = {
            "src/engine/counter.h": self.counter_header(),
            "src/engine/counter.cc": self.counter_cc("  total_ += d;\n"),
        }
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
            serial = subprocess.run(
                [sys.executable, LINT, "--jobs", "1"] + sorted(files),
                cwd=tmp, capture_output=True, text=True)
            par = subprocess.run(
                [sys.executable, LINT, "--jobs", "2"] + sorted(files),
                cwd=tmp, capture_output=True, text=True)
        self.assertEqual(serial.stdout, par.stdout)
        self.assertEqual(serial.returncode, par.returncode)
        self.assertIn("[lock-annotate]", par.stdout)
        self.assertIn("[lock-held]", par.stdout)

    def test_changed_only_lints_only_dirty_files(self):
        # In a fresh git repo with one committed-clean file and one dirty
        # violating file, --changed-only must flag the dirty one only.
        files = {
            "src/engine/clean.h": "#pragma once\nclass Clean {};\n",
            "src/engine/foo.cc":
                "#include <atomic>\n"
                "std::atomic<int> a{0};\n"
                "int f() { return a.load(); }\n",
        }
        with tempfile.TemporaryDirectory() as tmp:
            for rel, content in files.items():
                path = os.path.join(tmp, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
            env = dict(os.environ,
                       GIT_AUTHOR_NAME="t", GIT_AUTHOR_EMAIL="t@t",
                       GIT_COMMITTER_NAME="t", GIT_COMMITTER_EMAIL="t@t")
            for cmd in (["git", "init", "-q"],
                        ["git", "add", "src/engine/clean.h"],
                        ["git", "commit", "-qm", "seed"]):
                subprocess.run(cmd, cwd=tmp, env=env, check=True,
                               capture_output=True)
            proc = subprocess.run(
                [sys.executable, LINT, "--changed-only", "src/"],
                cwd=tmp, capture_output=True, text=True)
        self.assertIn("[atomic-order]", proc.stdout)
        self.assertIn("foo.cc", proc.stdout)
        self.assertNotIn("clean.h", proc.stdout)


if __name__ == "__main__":
    unittest.main(verbosity=2)
