#!/usr/bin/env bash
# Tier-1 verification plus the correctness gates:
#   1. the ROADMAP.md tier-1 line: configure, build, ctest
#   2. a strict whole-tree -Werror build (error discipline: every dropped
#      Status/Result fails here, via the class-level [[nodiscard]])
#   3. an end-to-end trace: run a bench with --trace-out= and lint the JSON
#   4. with --lint: distme-lint over src/ tests/ bench/ plus the linter's own
#      fixture suite (see scripts/distme_lint.py)
#   5. with --bench: the perf-regression baseline check (deterministic
#      bench outputs vs BENCH_BASELINE.json, >15% drift fails)
#   6. with --analyze: the lock-discipline gates — distme-lint's
#      lock-annotate/lock-held/atomic-order passes (always) and, when a
#      clang++ is installed, a -DDISTME_THREAD_SAFETY=ON build that turns
#      the DISTME_* annotations into clang -Werror=thread-safety errors.
#      Without clang the compiler stage prints a visible skip notice; the
#      Python passes are the portable floor and always run.
#
# Usage: scripts/check_tier1.sh [--bench] [--lint] [--analyze]
#   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench_check=0
run_lint=0
run_analyze=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench_check=1 ;;
    --lint) run_lint=1 ;;
    --analyze) run_analyze=1 ;;
    *) echo "check_tier1: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo
echo "== whole tree under -Wall -Wextra -Werror =="
cmake -B build-strict -S . -DDISTME_WERROR=ON >/dev/null
cmake --build build-strict -j "$(nproc)"

echo
echo "== emitted trace passes trace_lint =="
trace_out="$(mktemp /tmp/distme_trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
./build/bench/bench_validation_real --trace-out="$trace_out" >/dev/null
python3 scripts/trace_lint.py "$trace_out"

if [[ "$run_lint" -eq 1 ]]; then
  echo
  echo "== distme-lint: repo invariants =="
  python3 scripts/distme_lint.py src/ tests/ bench/
  echo
  echo "== distme-lint fixture suite =="
  python3 scripts/distme_lint_test.py
fi

if [[ "$run_analyze" -eq 1 ]]; then
  echo
  echo "== lock discipline: distme-lint lock-annotate / lock-held / atomic-order =="
  # The lock rules are part of the default rule set; run the full linter and
  # the fixture suite so a green --analyze means the same thing everywhere.
  python3 scripts/distme_lint.py src/ tests/ bench/
  python3 scripts/distme_lint_test.py
  echo
  echo "== lock discipline: clang -Wthread-safety =="
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DDISTME_THREAD_SAFETY=ON >/dev/null
    cmake --build build-tsa -j "$(nproc)"
  else
    echo "check_tier1: clang++ not installed — skipping the -Wthread-safety"
    echo "check_tier1: build stage; the distme-lint lock rules above are the"
    echo "check_tier1: enforced floor in this environment"
  fi
fi

if [[ "$run_bench_check" -eq 1 ]]; then
  echo
  echo "== bench baseline (perf-regression) check =="
  python3 scripts/bench_baseline.py --check
fi

echo
echo "check_tier1: all gates passed"
