#!/usr/bin/env bash
# Tier-1 verification plus the observability-layer gates:
#   1. the ROADMAP.md tier-1 line: configure, build, ctest
#   2. a strict -Wall -Wextra -Werror build of the obs library
#   3. an end-to-end trace: run a bench with --trace-out= and lint the JSON
#   4. with --bench: the perf-regression baseline check (deterministic
#      bench outputs vs BENCH_BASELINE.json, >15% drift fails)
#
# Usage: scripts/check_tier1.sh [--bench]   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench_check=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench_check=1 ;;
    *) echo "check_tier1: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo
echo "== obs library under -Wall -Wextra -Werror =="
cmake -B build-strict-obs -S . \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror" >/dev/null
cmake --build build-strict-obs -j "$(nproc)" --target distme_obs

echo
echo "== emitted trace passes trace_lint =="
trace_out="$(mktemp /tmp/distme_trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
./build/bench/bench_validation_real --trace-out="$trace_out" >/dev/null
python3 scripts/trace_lint.py "$trace_out"

if [[ "$run_bench_check" -eq 1 ]]; then
  echo
  echo "== bench baseline (perf-regression) check =="
  python3 scripts/bench_baseline.py --check
fi

echo
echo "check_tier1: all gates passed"
