#!/usr/bin/env bash
# Tier-1 verification plus the correctness gates:
#   1. the ROADMAP.md tier-1 line: configure, build, ctest
#   2. a strict whole-tree -Werror build (error discipline: every dropped
#      Status/Result fails here, via the class-level [[nodiscard]])
#   3. an end-to-end trace: run a bench with --trace-out= and lint the JSON
#   4. with --lint: distme-lint over src/ tests/ bench/ plus the linter's own
#      fixture suite (see scripts/distme_lint.py)
#   5. with --bench: the perf-regression baseline check (deterministic
#      bench outputs vs BENCH_BASELINE.json, >15% drift fails)
#
# Usage: scripts/check_tier1.sh [--bench] [--lint]   (from the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

run_bench_check=0
run_lint=0
for arg in "$@"; do
  case "$arg" in
    --bench) run_bench_check=1 ;;
    --lint) run_lint=1 ;;
    *) echo "check_tier1: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build + ctest =="
cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

echo
echo "== whole tree under -Wall -Wextra -Werror =="
cmake -B build-strict -S . -DDISTME_WERROR=ON >/dev/null
cmake --build build-strict -j "$(nproc)"

echo
echo "== emitted trace passes trace_lint =="
trace_out="$(mktemp /tmp/distme_trace.XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
./build/bench/bench_validation_real --trace-out="$trace_out" >/dev/null
python3 scripts/trace_lint.py "$trace_out"

if [[ "$run_lint" -eq 1 ]]; then
  echo
  echo "== distme-lint: repo invariants =="
  python3 scripts/distme_lint.py src/ tests/ bench/
  echo
  echo "== distme-lint fixture suite =="
  python3 scripts/distme_lint_test.py
fi

if [[ "$run_bench_check" -eq 1 ]]; then
  echo
  echo "== bench baseline (perf-regression) check =="
  python3 scripts/bench_baseline.py --check
fi

echo
echo "check_tier1: all gates passed"
