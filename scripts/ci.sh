#!/usr/bin/env bash
# The one-command gate: build + ctest + strict obs build + trace lint +
# bench-baseline (perf-regression) check. This is the command CI runs and the
# command to run locally before sending a change.
#
# Usage: scripts/ci.sh   (from anywhere inside the repo)

set -euo pipefail
cd "$(dirname "$0")/.."

exec scripts/check_tier1.sh --bench
