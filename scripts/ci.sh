#!/usr/bin/env bash
# The one-command gate: build + ctest + strict -Werror build + trace lint +
# bench-baseline (perf-regression) check + causal-analyzer smoke (a sim
# flight dump must analyze and self-diff cleanly). This is the command CI
# runs and the command to run locally before sending a change.
#
# Usage: scripts/ci.sh [--sanitize] [--lint] [--analyze]
#   (from anywhere in the repo)
#
#   --lint       distme-lint over src/ tests/ bench/, the linter's own
#                fixture suite, and (when clang-tidy is installed) an
#                advisory clang-tidy pass — tidy findings are printed, never
#                fatal; the distme-lint stages are mandatory.
#   --analyze    the lock-discipline gates (DESIGN.md §4.8): distme-lint's
#                lock-annotate/lock-held/atomic-order passes + fixture suite
#                (always, fatal), a clang -DDISTME_THREAD_SAFETY=ON build
#                when clang++ is installed, and the *enforced* clang-tidy
#                concurrency profile (.clang-tidy-enforced, fatal) when
#                clang-tidy is installed. The clang stages print a visible
#                skip notice in gcc-only environments.
#   --sanitize   the sanitizer matrix: the full tier-1 ctest suite under
#                ASan+UBSan (build-asan/), and the concurrency stress +
#                live-telemetry suites under TSan (build-tsan/). Suppression
#                files live in scripts/sanitizers/ and start out empty — a
#                report is a bug.

set -euo pipefail
cd "$(dirname "$0")/.."

run_sanitize=0
run_lint=0
run_analyze=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) run_sanitize=1 ;;
    --lint) run_lint=1 ;;
    --analyze) run_analyze=1 ;;
    *) echo "ci: unknown argument '$arg'" >&2; exit 2 ;;
  esac
done

tier1_args=(--bench)
if [[ "$run_lint" -eq 1 ]]; then
  tier1_args+=(--lint)
fi
if [[ "$run_analyze" -eq 1 ]]; then
  tier1_args+=(--analyze)
fi
scripts/check_tier1.sh "${tier1_args[@]}"

echo
echo "== causal analyzer smoke: sim flight dump -> distme_analyze =="
dump_a="$(mktemp /tmp/distme_flight.XXXXXX.json)"
dump_b="$(mktemp /tmp/distme_flight.XXXXXX.json)"
trap 'rm -f "$dump_a" "$dump_b"' EXIT
./build/bench/bench_micro_engine --sim-flight-dump="$dump_a" >/dev/null
./build/bench/bench_micro_engine --sim-flight-dump="$dump_b" >/dev/null
python3 scripts/distme_analyze.py "$dump_a"
# Two dumps of the same workload must diff to a stable top-1 bottleneck.
diff_out="$(python3 scripts/distme_analyze.py "$dump_a" "$dump_b" --diff)"
echo "$diff_out"
grep -q '\[stable\]' <<<"$diff_out"

echo
echo "== gpu timeline smoke: device interval dump -> --gpu / --timeline =="
gpu_dump="$(mktemp /tmp/distme_gpu.XXXXXX.json)"
gpu_trace="$(mktemp /tmp/distme_gpu_trace.XXXXXX.json)"
gpu_out="$(mktemp /tmp/distme_gpu_out.XXXXXX.txt)"
trap 'rm -f "$dump_a" "$dump_b" "$gpu_dump" "$gpu_trace" "$gpu_out"' EXIT
./build/bench/bench_micro_engine --gpu-flight-dump="$gpu_dump" > "$gpu_out"
python3 scripts/distme_analyze.py "$gpu_dump" --gpu --pcie-peak-gib 12
# The Python mirror must reproduce the C++ analysis number for number: the
# dump mode prints the AnalyzeGpuTimeline aggregate, compare field by field.
python3 - "$gpu_out" "$gpu_dump" <<'PYEOF'
import json, subprocess, sys
cpp = json.loads([l for l in open(sys.argv[1])
                  if l.startswith("gpu run aggregate: ")][0]
                 .split(": ", 1)[1])
py = json.loads(subprocess.check_output(
    [sys.executable, "scripts/distme_analyze.py", sys.argv[2],
     "--gpu", "--json", "--pcie-peak-gib", "12"]))
def walk(a, b, path):
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys differ"
        for k in a:
            walk(a[k], b[k], f"{path}.{k}")
    elif isinstance(a, list):
        assert len(a) == len(b), f"{path}: length differs"
        for i, (x, y) in enumerate(zip(a, b)):
            walk(x, y, f"{path}[{i}]")
    elif isinstance(a, float) or isinstance(b, float):
        assert abs(a - b) <= 1e-9 * max(1, abs(a)), f"{path}: {a} != {b}"
    else:
        assert a == b, f"{path}: {a} != {b}"
walk(cpp, py, "$")
print("gpu smoke: python --gpu matches the C++ analysis")
PYEOF
# Chrome-trace export must satisfy the viewer invariants.
python3 scripts/distme_analyze.py "$gpu_dump" --timeline "$gpu_trace" >/dev/null
python3 scripts/trace_lint.py "$gpu_trace"

if [[ "$run_lint" -eq 1 ]]; then
  echo
  echo "== clang-tidy (advisory) =="
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # Advisory: report, don't fail. The mandatory checks are distme-lint's.
    clang-tidy -p build --quiet \
      $(git ls-files 'src/*.cc' 2>/dev/null || find src -name '*.cc') \
      || echo "ci: clang-tidy reported findings (advisory, not fatal)"
  else
    echo "ci: clang-tidy not installed — skipping advisory pass"
  fi
fi

if [[ "$run_analyze" -eq 1 ]]; then
  echo
  echo "== clang-tidy (enforced concurrency profile) =="
  if command -v clang-tidy >/dev/null 2>&1; then
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    # Fatal, unlike the --lint advisory pass: .clang-tidy-enforced holds the
    # concurrency-* / use-after-move subset we always fix.
    clang-tidy -p build --quiet --config-file=.clang-tidy-enforced \
      $(git ls-files 'src/*.cc' 2>/dev/null || find src -name '*.cc')
  else
    echo "ci: clang-tidy not installed — skipping the enforced concurrency"
    echo "ci: profile (.clang-tidy-enforced); distme-lint's lock rules ran"
    echo "ci: above and remain the enforced floor"
  fi
fi

if [[ "$run_sanitize" -eq 1 ]]; then
  echo
  echo "== sanitizer matrix: ASan+UBSan over the full tier-1 suite =="
  cmake -B build-asan -S . -DDISTME_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$(nproc)"
  (cd build-asan && \
    ASAN_OPTIONS="suppressions=$PWD/../scripts/sanitizers/asan.supp:detect_leaks=1:abort_on_error=1" \
    UBSAN_OPTIONS="suppressions=$PWD/../scripts/sanitizers/ubsan.supp:print_stacktrace=1:halt_on_error=1" \
    ctest --output-on-failure -j "$(nproc)")

  echo
  echo "== sanitizer matrix: TSan over the concurrency + telemetry suites =="
  cmake -B build-tsan -S . -DDISTME_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "$(nproc)" \
    --target stress_concurrency_test --target live_telemetry_test \
    --target gpu_timeline_test
  # Includes PipelinedMultiplyHammer: 8-slot prefetch pipelines (fetch /
  # compute / emit threads crossing bounded queues and prefetch gates)
  # racing a 1 ms sampler and watchdog — the TSan regression test for the
  # RealExecutor async handoff.
  TSAN_OPTIONS="suppressions=$PWD/scripts/sanitizers/tsan.supp:halt_on_error=1:second_deadlock_stack=1" \
    ./build-tsan/tests/stress_concurrency_test
  # The live-telemetry suite races the sampler/watchdog/endpoint threads
  # against session teardown — exactly the shutdown-ordering bugs TSan sees.
  TSAN_OPTIONS="suppressions=$PWD/scripts/sanitizers/tsan.supp:halt_on_error=1:second_deadlock_stack=1" \
    ./build-tsan/tests/live_telemetry_test
  # The GPU-timeline suite drives device interval emission (ring writes
  # from under the device mutex) and the snapshot-side reconstruction.
  TSAN_OPTIONS="suppressions=$PWD/scripts/sanitizers/tsan.supp:halt_on_error=1:second_deadlock_stack=1" \
    ./build-tsan/tests/gpu_timeline_test
fi

echo
echo "ci: all requested gates passed"
