#!/usr/bin/env python3
"""Perf-regression baseline harness for the deterministic benchmarks.

Each bench binary accepts --bench-json=<path> and writes
{"bench": <name>, "results": {<key>: <number>, ...}}. This script runs the
deterministic subset (model-derived byte/task counts, not wall-clock), merges
the outputs, and either records them as the committed baseline or checks the
fresh numbers against it.

  scripts/bench_baseline.py --record            # (re)write BENCH_BASELINE.json
  scripts/bench_baseline.py --check             # fail on >15% drift
  scripts/bench_baseline.py --check --tolerance=0.30

Exit status: 0 = within tolerance, 1 = regression / missing key / bench
failure. Only relative drift beyond the tolerance fails; keys present in the
fresh run but absent from the baseline are reported as "new" and do not fail
(record again to adopt them).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

# (binary, extra argv) pairs. Deterministic benches only: their results are
# closed-form model outputs (shuffle bytes, task counts, analytic costs),
# identical on every machine. Wall-clock benches (bench_fig7_systems etc.)
# are excluded on purpose. The two ratios below are the exception that
# proves the rule: *_overhead_ratio keys are wall-clock derived but
# scale-free (feature-on time / feature-off time, min-of-alternating-reps),
# so ~1.0 on any machine — drift beyond tolerance means the sampler or the
# critical-path analyzer got expensive.
BENCHES = [
    ("bench_table2_costs", []),
    ("bench_validation_real", []),
    ("bench_fig7_comm", []),
    # Its gpu_util_* / gpu_overlap_ratio keys come from the virtual device
    # timeline — deterministic on any machine — and the binary itself fails
    # when the analytic model drifts from the measured overlap.
    ("bench_fig7_gpu_util", []),
    ("bench_micro_engine",
     ["--sampler-overhead-only", "--analyzer-overhead-only",
      "--gpu-obs-overhead-only", "--pipeline-overlap-only"]),
]

# Per-key tolerance overrides: (bench, key) -> allowed relative drift. The
# overhead ratios centre on 1.0, so the default 15% would wave through a
# feature that suddenly costs 15% of every run — gate them at 5% instead
# (a recorded baseline of ~1.02 plus 5% still rejects anything near 1.10).
TOLERANCE_OVERRIDES = {
    ("bench_micro_engine", "sampler_overhead_ratio"): 0.05,
    ("bench_micro_engine", "analyzer_overhead_ratio"): 0.05,
    ("bench_micro_engine", "gpu_obs_overhead_ratio"): 0.05,
    # Overlap gate, not an overhead gate: the bench floors the recorded
    # depth-4 / depth-0 fetch-wait ratio at 0.35, so a 1.00 relative
    # tolerance on the 0.35 base fails exactly when the fresh ratio exceeds
    # 0.70 — i.e. when the prefetch pipeline stops hiding at least 30% of
    # the fleet's fetch-wait time.
    ("bench_micro_engine", "pipeline_fetch_wait_ratio"): 1.00,
}

BASELINE = "BENCH_BASELINE.json"


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_benches(build_dir):
    """Runs every bench with --bench-json and returns {bench: {key: value}}."""
    merged = {}
    for bench, extra_args in BENCHES:
        binary = os.path.join(build_dir, "bench", bench)
        if not os.path.isfile(binary):
            print(f"bench_baseline: missing binary {binary} (build first?)",
                  file=sys.stderr)
            return None
        with tempfile.NamedTemporaryFile(
                suffix=".json", prefix=f"{bench}.", delete=False) as tmp:
            out_path = tmp.name
        try:
            proc = subprocess.run(
                [binary, f"--bench-json={out_path}"] + extra_args,
                stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
            if proc.returncode != 0:
                sys.stderr.write(proc.stderr.decode(errors="replace"))
                print(f"bench_baseline: {bench} exited "
                      f"{proc.returncode}", file=sys.stderr)
                return None
            with open(out_path) as f:
                payload = json.load(f)
            merged[bench] = payload["results"]
        finally:
            os.unlink(out_path)
    return merged


def compare(baseline, fresh, tolerance):
    """Returns (ok, lines): per-key verdicts of fresh vs baseline. The
    default tolerance applies unless TOLERANCE_OVERRIDES names a tighter
    (or looser) one for a specific (bench, key)."""
    ok = True
    lines = []
    for bench, base_results in sorted(baseline.items()):
        fresh_results = fresh.get(bench)
        if fresh_results is None:
            ok = False
            lines.append(f"MISSING BENCH {bench}")
            continue
        for key, base_value in sorted(base_results.items()):
            if key not in fresh_results:
                ok = False
                lines.append(f"MISSING {bench}:{key}")
                continue
            value = fresh_results[key]
            key_tolerance = TOLERANCE_OVERRIDES.get((bench, key), tolerance)
            if base_value == 0:
                # No relative scale; any nonzero drift on an exact-zero
                # baseline is a behavior change.
                drift_ok = value == 0
                rel = float("inf") if value != 0 else 0.0
            else:
                rel = (value - base_value) / abs(base_value)
                drift_ok = abs(rel) <= key_tolerance
            if not drift_ok:
                ok = False
                lines.append(
                    f"REGRESSION {bench}:{key}: {base_value:g} -> "
                    f"{value:g} ({rel:+.1%}, tolerance {key_tolerance:.0%})")
        for key in sorted(set(fresh_results) - set(base_results)):
            lines.append(f"new (unbaselined) {bench}:{key} = "
                         f"{fresh_results[key]:g}")
    for bench in sorted(set(fresh) - set(baseline)):
        lines.append(f"new (unbaselined) bench {bench}")
    return ok, lines


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", action="store_true",
                      help=f"run benches and (re)write {BASELINE}")
    mode.add_argument("--check", action="store_true",
                      help=f"run benches and compare against {BASELINE}")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative drift per key (default 0.15)")
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline path (default: <repo>/{BASELINE})")
    args = parser.parse_args()

    root = repo_root()
    build_dir = args.build_dir if os.path.isabs(args.build_dir) \
        else os.path.join(root, args.build_dir)
    baseline_path = args.baseline or os.path.join(root, BASELINE)

    fresh = run_benches(build_dir)
    if fresh is None:
        return 1

    if args.record:
        with open(baseline_path, "w") as f:
            json.dump(fresh, f, indent=2, sort_keys=True)
            f.write("\n")
        total = sum(len(r) for r in fresh.values())
        print(f"bench_baseline: recorded {total} keys from "
              f"{len(fresh)} benches to {baseline_path}")
        return 0

    if not os.path.isfile(baseline_path):
        print(f"bench_baseline: no baseline at {baseline_path}; "
              f"run --record first", file=sys.stderr)
        return 1
    with open(baseline_path) as f:
        baseline = json.load(f)

    ok, lines = compare(baseline, fresh, args.tolerance)
    for line in lines:
        print(f"bench_baseline: {line}")
    checked = sum(len(r) for r in baseline.values())
    if ok:
        print(f"bench_baseline: OK — {checked} keys within "
              f"{args.tolerance:.0%} of {os.path.basename(baseline_path)}")
        return 0
    print("bench_baseline: FAILED", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
