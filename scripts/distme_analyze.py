#!/usr/bin/env python3
"""Bottleneck analysis of DistME flight-recorder dumps.

One dump -> a critical-path / bottleneck report; two dumps -> a structural
run-diff (wall and per-resource attribution deltas, per-stage regressions,
bottleneck stability). The analysis mirrors src/obs/causal_graph.cc and
src/obs/critical_path.cc: reconstruct the last complete run from the event
stream, decompose each task's span into slot_wait / fetch_wait / gpu_wait /
exec, then walk binding predecessors backwards from run-finish so the path
tiles the run exactly (path length == flight wall time).

  scripts/distme_analyze.py run.json                 # bottleneck report
  scripts/distme_analyze.py before.json after.json   # run-diff
  scripts/distme_analyze.py run.json --json          # machine-readable

Exit status: 0 = analysis produced, 1 = no complete run in the dump /
unreadable input.
"""

import argparse
import datetime
import json
import sys

TASK_EDGE_KINDS = ("fetch_wait", "gpu_wait")


def load_dump(path):
    """Reads a flight dump; returns (header dict, events list) or None."""
    try:
        with open(path) as f:
            dump = json.load(f)
    except (OSError, ValueError) as e:
        print(f"distme_analyze: cannot read {path}: {e}", file=sys.stderr)
        return None
    events = dump.get("events")
    if not isinstance(events, list):
        print(f"distme_analyze: {path} has no 'events' array",
              file=sys.stderr)
        return None
    header = {
        "schema": dump.get("schema", 1),
        "wall_epoch_us": dump.get("wall_epoch_us"),
        "total_recorded": dump.get("total_recorded", len(events)),
        "capacity": dump.get("capacity"),
    }
    return header, events


def build_graph(events):
    """Mirror of BuildCausalGraph: the last complete run as a dict, or
    None when the dump holds no run_start...run_finish pair."""
    finish_idx = None
    for i in range(len(events) - 1, -1, -1):
        if events[i].get("type") == "run_finish":
            finish_idx = i
            break
    if finish_idx is None:
        return None
    start_idx = None
    for i in range(finish_idx - 1, -1, -1):
        if events[i].get("type") == "run_start":
            start_idx = i
            break
    if start_idx is None:
        return None

    run_start = events[start_idx]
    run_finish = events[finish_idx]
    graph = {
        "run_start_us": run_start["ts_us"],
        "run_finish_us": run_finish["ts_us"],
        "planned_tasks": run_start.get("a", 0),
        "run_ok": run_finish.get("b", 0) == 0,
        "tasks": [],
        "stages": [],
    }
    tasks = {}
    for e in events[start_idx:finish_idx + 1]:
        etype = e.get("type")
        if etype == "task_start":
            t = tasks.setdefault(e["a"], {})
            t.update(task_id=e["a"], node=e.get("node", -1),
                     slot=e.get("slot", -1), start_us=e["ts_us"],
                     fetch_wait_us=0, gpu_wait_us=0, finish_us=None,
                     attempts=t.get("attempts", 0) + 1)
        elif etype == "task_finish":
            t = tasks.setdefault(e["a"], {"task_id": e["a"], "attempts": 0,
                                          "fetch_wait_us": 0,
                                          "gpu_wait_us": 0})
            t.setdefault("node", e.get("node", -1))
            t.setdefault("slot", e.get("slot", -1))
            t["finish_us"] = e["ts_us"]
            if t["attempts"] == 0:
                # Start overwritten by ring wrap: task_finish carries the
                # attempt duration in `b`.
                t["start_us"] = e["ts_us"] - e.get("b", 0)
                t["attempts"] = 1
        elif etype == "dep_edge":
            kind = e.get("detail")
            if kind in TASK_EDGE_KINDS:
                t = tasks.setdefault(e["a"], {"task_id": e["a"],
                                              "attempts": 0,
                                              "fetch_wait_us": 0,
                                              "gpu_wait_us": 0})
                t[kind + "_us"] = t.get(kind + "_us", 0) + e.get("b", 0)
        elif etype == "stage_begin":
            graph["stages"].append({"name": e.get("detail", "stage"),
                                    "begin_us": e["ts_us"], "end_us": None})
        elif etype == "stage_end":
            name = e.get("detail", "stage")
            for s in reversed(graph["stages"]):
                if s["name"] == name and s["end_us"] is None:
                    s["end_us"] = e["ts_us"]
                    break
    graph["tasks"] = sorted(
        (t for t in tasks.values() if t.get("finish_us") is not None),
        key=lambda t: (t["finish_us"], t["task_id"]))
    graph["stages"] = [s for s in graph["stages"] if s["end_us"] is not None]
    return graph


def stage_resource(name):
    if "repartition" in name or "aggregat" in name:
        return "shuffle"
    if "multiply" in name:
        return "compute"
    return "overhead"


def analyze(graph):
    """Mirror of AnalyzeCriticalPath. Returns the analysis dict."""
    out = {
        "wall_us": graph["run_finish_us"] - graph["run_start_us"],
        "path_us": 0,
        "run_ok": graph["run_ok"],
        "planned_tasks": graph["planned_tasks"],
        "hops": [],
        "tasks": [],
        "attribution_us": {},
        "stage_us": {},
        "aggregate_us": {},
    }
    run_start = graph["run_start_us"]
    run_finish = graph["run_finish_us"]
    if run_finish <= run_start:
        return out

    ready_base = run_start
    for s in graph["stages"]:
        if "multiply" in s["name"]:
            ready_base = s["begin_us"]
            break

    agg = out["aggregate_us"]
    for t in graph["tasks"]:
        start, finish = t["start_us"], t["finish_us"]
        ready = max(run_start, min(ready_base, start))
        dur = max(0, finish - start)
        fetch = max(0, min(t.get("fetch_wait_us", 0), dur))
        gpu = max(0, min(t.get("gpu_wait_us", 0), dur - fetch))
        b = {
            "task_id": t["task_id"], "node": t.get("node", -1),
            "slot": t.get("slot", -1), "ready_us": ready,
            "start_us": start, "finish_us": finish,
            "slot_wait_us": start - ready, "fetch_wait_us": fetch,
            "gpu_wait_us": gpu, "exec_us": dur - fetch - gpu,
        }
        out["tasks"].append(b)
        for k in ("slot_wait", "fetch_wait", "gpu_wait", "exec"):
            agg[k] = agg.get(k, 0) + b[k + "_us"]
    for s in graph["stages"]:
        out["stage_us"][s["name"]] = (out["stage_us"].get(s["name"], 0) +
                                      s["end_us"] - s["begin_us"])

    # Same-slot predecessor chains.
    by_slot = {}
    for i, b in enumerate(out["tasks"]):
        by_slot.setdefault((b["node"], b["slot"]), []).append(i)
    pred_finish = [None] * len(out["tasks"])
    pred_index = [None] * len(out["tasks"])
    for indices in by_slot.values():
        indices.sort(key=lambda i: out["tasks"][i]["start_us"])
        for k in range(1, len(indices)):
            prev, cur = out["tasks"][indices[k - 1]], out["tasks"][indices[k]]
            if prev["finish_us"] <= cur["start_us"]:
                pred_finish[indices[k]] = prev["finish_us"]
                pred_index[indices[k]] = indices[k - 1]

    rev = []

    def add_hop(label, resource, task_id, begin, end):
        if end > begin:
            rev.append({"label": label, "resource": resource,
                        "task_id": task_id, "begin_us": begin,
                        "end_us": end, "duration_us": end - begin})

    def latest_finished_before(cursor):
        best = None
        for i, b in enumerate(out["tasks"]):
            if b["finish_us"] <= cursor:
                best = i
        return best

    cursor = run_finish
    while cursor > run_start:
        ti = latest_finished_before(cursor)
        if ti is not None and out["tasks"][ti]["finish_us"] == cursor:
            i = ti
            while i is not None:
                t = out["tasks"][i]
                tid = t["task_id"]
                fetch_end = t["start_us"] + t["fetch_wait_us"]
                gpu_end = fetch_end + t["gpu_wait_us"]
                add_hop(f"task {tid} exec", "compute", tid, gpu_end,
                        t["finish_us"])
                add_hop(f"task {tid} gpu_wait", "gpu", tid, fetch_end,
                        gpu_end)
                add_hop(f"task {tid} fetch_wait", "shuffle", tid,
                        t["start_us"], fetch_end)
                pf = pred_finish[i]
                bind = max(t["ready_us"], pf) if pf is not None \
                    else t["ready_us"]
                add_hop(f"task {tid} slot_wait", "scheduling", tid, bind,
                        t["start_us"])
                cursor = bind
                i = pred_index[i] if (pf is not None and pf >= t["ready_us"]
                                      and pf == bind) else None
            continue
        stage = None
        for s in graph["stages"]:
            if s["begin_us"] < cursor <= s["end_us"] and \
                    (stage is None or s["begin_us"] > stage["begin_us"]):
                stage = s
        t_finish = out["tasks"][ti]["finish_us"] if ti is not None else None
        if stage is not None:
            lo = max(stage["begin_us"], run_start)
            if t_finish is not None:
                lo = max(lo, t_finish)
            if lo < cursor:
                add_hop("stage " + stage["name"],
                        stage_resource(stage["name"]), None, lo, cursor)
                cursor = lo
                continue
        lo = run_start if t_finish is None else max(run_start, t_finish)
        for s in graph["stages"]:
            if lo < s["end_us"] < cursor:
                lo = s["end_us"]
        if lo >= cursor:
            lo = run_start  # force progress
        add_hop("overhead", "overhead", None, lo, cursor)
        cursor = lo

    rev.reverse()
    out["hops"] = rev
    for hop in rev:
        out["attribution_us"][hop["resource"]] = (
            out["attribution_us"].get(hop["resource"], 0) +
            hop["duration_us"])
        out["path_us"] += hop["duration_us"]
    return out


def bottleneck(analysis):
    attr = analysis["attribution_us"]
    if not attr or analysis["path_us"] <= 0:
        return "", 0.0
    top = max(sorted(attr), key=lambda k: attr[k])
    return top, attr[top] / analysis["path_us"]


def fmt_us(us):
    if us >= 1_000_000:
        return f"{us / 1e6:.2f} s"
    if us >= 1_000:
        return f"{us / 1e3:.2f} ms"
    return f"{us} us"


def fmt_pct(num, den):
    return f"{100.0 * num / den:.0f}%" if den > 0 else "-"


def wall_anchor_line(header):
    epoch = header.get("wall_epoch_us")
    if epoch is None:
        return "  recorded: (no wall-clock anchor; schema 1 dump)"
    stamp = datetime.datetime.fromtimestamp(epoch / 1e6,
                                            tz=datetime.timezone.utc)
    return f"  recorded: ring created {stamp.isoformat()} (schema " \
           f"{header.get('schema')})"


def print_report(path, header, analysis, top_k):
    top, frac = bottleneck(analysis)
    outcome = "ok" if analysis["run_ok"] else "FAILED"
    print(f"distme_analyze: {path}")
    print(wall_anchor_line(header))
    print(f"  run: {outcome}, {analysis['planned_tasks']} planned tasks, "
          f"{len(analysis['tasks'])} observed, wall {fmt_us(analysis['wall_us'])} "
          f"(critical path {fmt_us(analysis['path_us'])}, "
          f"{fmt_pct(analysis['path_us'], analysis['wall_us'])} of wall)")
    if top:
        print(f"  bottleneck: {top} "
              f"({fmt_pct(analysis['attribution_us'][top], analysis['path_us'])} "
              f"of critical path)")
    if analysis["attribution_us"]:
        parts = " | ".join(
            f"{k} {fmt_pct(v, analysis['path_us'])}"
            for k, v in sorted(analysis["attribution_us"].items(),
                               key=lambda kv: -kv[1]))
        print(f"  path attribution: {parts}")
    if analysis["stage_us"]:
        parts = " | ".join(f"{k} {fmt_us(v)}"
                           for k, v in analysis["stage_us"].items())
        print(f"  stages: {parts}")
    if analysis["aggregate_us"]:
        total = sum(analysis["aggregate_us"].values())
        parts = " | ".join(
            f"{k} {fmt_pct(v, total)}"
            for k, v in sorted(analysis["aggregate_us"].items(),
                               key=lambda kv: -kv[1]))
        print(f"  fleet blocked time: {parts}")
    hops = sorted(analysis["hops"], key=lambda h: -h["duration_us"])[:top_k]
    if hops:
        print("  top hops:")
        for i, h in enumerate(hops, 1):
            print(f"    {i}. {h['label']} [{h['resource']}] "
                  f"{fmt_us(h['duration_us'])}")


def diff_analyses(a, b):
    """Structural run-diff between two analyses of the same workload."""
    top_a, frac_a = bottleneck(a)
    top_b, frac_b = bottleneck(b)
    d = {
        "wall_us": {"before": a["wall_us"], "after": b["wall_us"],
                    "delta_us": b["wall_us"] - a["wall_us"]},
        "bottleneck": {"before": top_a, "after": top_b,
                       "stable": top_a == top_b,
                       "before_fraction": frac_a, "after_fraction": frac_b},
        "attribution_delta_us": {},
        "stage_delta_us": {},
        "path_changes": [],
    }
    for k in sorted(set(a["attribution_us"]) | set(b["attribution_us"])):
        d["attribution_delta_us"][k] = (b["attribution_us"].get(k, 0) -
                                        a["attribution_us"].get(k, 0))
    for k in sorted(set(a["stage_us"]) | set(b["stage_us"])):
        d["stage_delta_us"][k] = (b["stage_us"].get(k, 0) -
                                  a["stage_us"].get(k, 0))
    # Structural path change: hop labels entering/leaving the top ranks.
    def top_labels(analysis, n=10):
        hops = sorted(analysis["hops"], key=lambda h: -h["duration_us"])
        return [h["label"] for h in hops[:n]]
    la, lb = top_labels(a), top_labels(b)
    for label in lb:
        if label not in la:
            d["path_changes"].append({"label": label, "change": "entered"})
    for label in la:
        if label not in lb:
            d["path_changes"].append({"label": label, "change": "left"})
    return d


def print_diff(path_a, path_b, a, b, d):
    wall = d["wall_us"]
    rel = (wall["delta_us"] / wall["before"] * 100.0
           if wall["before"] > 0 else float("inf"))
    print(f"distme_analyze: diff {path_a} -> {path_b}")
    print(f"  wall: {fmt_us(wall['before'])} -> {fmt_us(wall['after'])} "
          f"({rel:+.1f}%)")
    bn = d["bottleneck"]
    verdict = "stable" if bn["stable"] else "CHANGED"
    print(f"  bottleneck: {bn['before']} ({bn['before_fraction']:.0%}) -> "
          f"{bn['after']} ({bn['after_fraction']:.0%}) [{verdict}]")
    moved = sorted(d["attribution_delta_us"].items(),
                   key=lambda kv: -abs(kv[1]))
    if moved:
        parts = " | ".join(f"{k} {v:+d} us" for k, v in moved if v != 0)
        print(f"  attribution deltas: {parts or 'none'}")
    regressed = [(k, v) for k, v in d["stage_delta_us"].items() if v > 0]
    if regressed:
        parts = " | ".join(f"{k} +{fmt_us(v)}"
                           for k, v in sorted(regressed,
                                              key=lambda kv: -kv[1]))
        print(f"  stage regressions: {parts}")
    for change in d["path_changes"]:
        print(f"  path change: {change['label']} {change['change']} "
              f"the top hops")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="flight-recorder JSON dump")
    parser.add_argument("dump_b", nargs="?", default=None,
                        help="second dump: diff the two runs")
    parser.add_argument("--diff", action="store_true",
                        help="run-diff mode (implied by a second dump)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--top", type=int, default=5,
                        help="hops to show in the report (default 5)")
    args = parser.parse_args()

    if args.diff and args.dump_b is None:
        print("distme_analyze: --diff needs two dumps", file=sys.stderr)
        return 1

    loaded = load_dump(args.dump)
    if loaded is None:
        return 1
    header, events = loaded
    graph = build_graph(events)
    if graph is None:
        print(f"distme_analyze: {args.dump} holds no complete run",
              file=sys.stderr)
        return 1
    analysis = analyze(graph)

    if args.dump_b is None:
        if args.json:
            top, frac = bottleneck(analysis)
            analysis["bottleneck"] = top
            analysis["bottleneck_fraction"] = frac
            analysis["wall_epoch_us"] = header.get("wall_epoch_us")
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print_report(args.dump, header, analysis, args.top)
        return 0

    loaded_b = load_dump(args.dump_b)
    if loaded_b is None:
        return 1
    header_b, events_b = loaded_b
    graph_b = build_graph(events_b)
    if graph_b is None:
        print(f"distme_analyze: {args.dump_b} holds no complete run",
              file=sys.stderr)
        return 1
    analysis_b = analyze(graph_b)
    d = diff_analyses(analysis, analysis_b)
    if args.json:
        print(json.dumps(d, indent=2, sort_keys=True))
    else:
        print_diff(args.dump, args.dump_b, analysis, analysis_b, d)
    return 0


if __name__ == "__main__":
    sys.exit(main())
