#!/usr/bin/env python3
"""Bottleneck analysis of DistME flight-recorder dumps.

One dump -> a critical-path / bottleneck report; two dumps -> a structural
run-diff (wall and per-resource attribution deltas, per-stage regressions,
bottleneck stability). The analysis mirrors src/obs/causal_graph.cc and
src/obs/critical_path.cc: reconstruct the last complete run from the event
stream, decompose each task's span into slot_wait / fetch_wait / gpu_wait /
exec, then walk binding predecessors backwards from run-finish so the path
tiles the run exactly (path length == flight wall time).

  scripts/distme_analyze.py run.json                 # bottleneck report
  scripts/distme_analyze.py before.json after.json   # run-diff
  scripts/distme_analyze.py run.json --json          # machine-readable
  scripts/distme_analyze.py run.json --gpu           # GPU overlap report
  scripts/distme_analyze.py run.json --timeline t.json  # Chrome trace

The --gpu mode mirrors src/obs/gpu_timeline.cc with the same integer-µs
arithmetic, so its numbers match the session's GET /gpu route and the
explain report's "gpu" section for the same run. --timeline exports the
schema-3 device interval events (gpu_h2d/gpu_d2h/gpu_kernel pairs) as
Chrome trace-event JSON: one process per node, three engine tracks per
device (load in chrome://tracing or https://ui.perfetto.dev).

Exit status: 0 = analysis produced, 1 = no complete run in the dump /
unreadable input (for --gpu/--timeline: no device interval events).
"""

import argparse
import datetime
import json
import sys

TASK_EDGE_KINDS = ("fetch_wait", "gpu_wait")

# Flight schema 3 device interval events (see src/obs/gpu_timeline.h).
GPU_BEGIN = {"gpu_h2d_begin": "h2d", "gpu_d2h_begin": "d2h",
             "gpu_kernel_begin": "kernel"}
GPU_END = {"gpu_h2d_end": "h2d", "gpu_d2h_end": "d2h",
           "gpu_kernel_end": "kernel"}
GPU_ENGINES = ("h2d", "d2h", "kernel")
GPU_NO_CUBOID = (1 << 24) - 1  # kGpuNoCuboidId sentinel


def unpack_gpu_tag(packed):
    """Mirror of obs::UnpackGpuTag: ordinal bits 48-55, cuboid 24-47,
    sub-index 0-23."""
    cuboid_field = (packed >> 24) & GPU_NO_CUBOID
    return {
        "ordinal": (packed >> 48) & 0xFF,
        "cuboid_id": -1 if cuboid_field == GPU_NO_CUBOID else cuboid_field,
        "sub_index": packed & GPU_NO_CUBOID,
    }


def gpu_device_builds(events):
    """Mirror of AnalyzeGpuTimeline's bracketing + FIFO pairing: returns
    {(node, ordinal): {"intervals": [...], "high_water": int}} for the last
    complete run (or the whole snapshot when it holds no run bracket)."""
    finish_seq = 0
    for e in events:
        if e.get("type") == "run_finish" and e.get("seq", 0) > finish_seq:
            finish_seq = e["seq"]
    start_seq = 0
    if finish_seq != 0:
        for e in events:
            if (e.get("type") == "run_start" and
                    start_seq < e.get("seq", 0) < finish_seq):
                start_seq = e["seq"]
    bracketed = finish_seq != 0 and start_seq != 0

    gpu_events = []
    for e in events:
        seq = e.get("seq", 0)
        if bracketed and (seq <= start_seq or seq >= finish_seq):
            continue
        etype = e.get("type")
        if etype in GPU_BEGIN or etype in GPU_END or etype == "gpu_alloc":
            gpu_events.append(e)
    gpu_events.sort(key=lambda e: e.get("seq", 0))

    builds = {}
    pending = {}
    for e in gpu_events:
        tag = unpack_gpu_tag(e.get("b", 0))
        key = (e.get("node", -1), tag["ordinal"])
        etype = e.get("type")
        if etype == "gpu_alloc":
            b = builds.setdefault(key, {"intervals": [], "high_water": 0})
            b["high_water"] = max(b["high_water"], e.get("a", 0))
            continue
        if etype in GPU_BEGIN:
            pending.setdefault(key + (GPU_BEGIN[etype],), []).append(e)
            continue
        engine = GPU_END.get(etype)
        if engine is None:
            continue
        queue = pending.setdefault(key + (engine,), [])
        if not queue:
            continue  # orphan end: its begin fell off the ring
        begin = queue.pop(0)
        b = builds.setdefault(key, {"intervals": [], "high_water": 0})
        b["intervals"].append({
            "engine": engine,
            "stream": begin.get("slot", -1),
            "begin_us": begin["ts_us"],
            "end_us": max(e["ts_us"], begin["ts_us"]),
            "payload": begin.get("a", 0),
            "cuboid_id": tag["cuboid_id"],
            "sub_index": tag["sub_index"],
        })
    for b in builds.values():
        b["intervals"].sort(key=lambda iv: (iv["begin_us"], iv["end_us"]))
    return builds


def gpu_overlap_report(intervals, pcie_peak):
    """Mirror of ComputeReport: boundary sweep in integer µs; the four
    exclusive buckets (priority kernel > h2d > d2h > bubble) tile the
    window exactly and overlapped <= min(copy, kernel) by construction."""
    r = {"window_begin_us": 0, "window_end_us": 0, "window_us": 0,
         "h2d_busy_us": 0, "d2h_busy_us": 0, "kernel_busy_us": 0,
         "copy_busy_us": 0, "overlapped_us": 0, "kernel_bound_us": 0,
         "h2d_bound_us": 0, "d2h_bound_us": 0, "bubble_us": 0,
         "bubble_count": 0, "bubbles": [], "h2d_bytes": 0, "d2h_bytes": 0,
         "kernel_flops": 0, "h2d_copies": 0, "d2h_copies": 0,
         "kernel_launches": 0, "overlap_ratio": 0.0,
         "kernel_utilization": 0.0, "effective_pcie_bytes_per_sec": 0.0,
         "pcie_peak_bytes_per_sec": pcie_peak}
    if not intervals:
        return r

    r["window_begin_us"] = min(iv["begin_us"] for iv in intervals)
    r["window_end_us"] = max(iv["end_us"] for iv in intervals)
    for iv in intervals:
        if iv["engine"] == "h2d":
            r["h2d_copies"] += 1
            r["h2d_bytes"] += iv["payload"]
        elif iv["engine"] == "d2h":
            r["d2h_copies"] += 1
            r["d2h_bytes"] += iv["payload"]
        else:
            r["kernel_launches"] += 1
            r["kernel_flops"] += iv["payload"]

    edges = []
    for iv in intervals:
        edges.append((iv["begin_us"], iv["engine"], +1))
        edges.append((iv["end_us"], iv["engine"], -1))
    edges.sort(key=lambda e: e[0])

    active = {"h2d": 0, "d2h": 0, "kernel": 0}
    bubbles = []
    prev = edges[0][0]
    i = 0
    while i < len(edges):
        t = edges[i][0]
        length = t - prev
        if length > 0:
            h, d = active["h2d"] > 0, active["d2h"] > 0
            k = active["kernel"] > 0
            if h:
                r["h2d_busy_us"] += length
            if d:
                r["d2h_busy_us"] += length
            if k:
                r["kernel_busy_us"] += length
            if h or d:
                r["copy_busy_us"] += length
            if (h or d) and k:
                r["overlapped_us"] += length
            if k:
                r["kernel_bound_us"] += length
            elif h:
                r["h2d_bound_us"] += length
            elif d:
                r["d2h_bound_us"] += length
            else:
                r["bubble_us"] += length
                if bubbles and bubbles[-1][1] == prev:
                    bubbles[-1][1] = t  # zero-length op split the gap
                else:
                    bubbles.append([prev, t])
        while i < len(edges) and edges[i][0] == t:
            active[edges[i][1]] += edges[i][2]
            i += 1
        prev = t

    r["bubble_count"] = len(bubbles)
    r["bubbles"] = bubbles[:64]
    r["window_us"] = r["window_end_us"] - r["window_begin_us"]
    cap = min(r["copy_busy_us"], r["kernel_busy_us"])
    if cap > 0:
        r["overlap_ratio"] = r["overlapped_us"] / cap
    if r["window_us"] > 0:
        r["kernel_utilization"] = r["kernel_busy_us"] / r["window_us"]
    if r["copy_busy_us"] > 0:
        r["effective_pcie_bytes_per_sec"] = (
            (r["h2d_bytes"] + r["d2h_bytes"]) / (r["copy_busy_us"] * 1e-6))
    return r


def analyze_gpu(events, pcie_peak=0.0):
    """Mirror of AnalyzeGpuTimeline: per-device and per-cuboid overlap
    reports plus the whole-run aggregate. None when the dump holds no
    device interval events."""
    builds = gpu_device_builds(events)
    devices = []
    for key in sorted(builds):
        build = builds[key]
        if not build["intervals"] and build["high_water"] == 0:
            continue
        by_cuboid = {}
        for iv in build["intervals"]:
            if iv["cuboid_id"] >= 0:
                by_cuboid.setdefault(iv["cuboid_id"], []).append(iv)
        devices.append({
            "node": key[0], "ordinal": key[1],
            "occupancy_high_water_bytes": build["high_water"],
            "report": gpu_overlap_report(build["intervals"], pcie_peak),
            "cuboids": [{"cuboid_id": cid,
                         "report": gpu_overlap_report(ivs, pcie_peak)}
                        for cid, ivs in sorted(by_cuboid.items())],
        })
    if not devices:
        return None

    # Whole-run aggregate: sums over devices, window = sum of device
    # windows (a duration, not a wall interval).
    run = gpu_overlap_report([], pcie_peak)
    high_water = 0
    for device in devices:
        r = device["report"]
        run["window_end_us"] += r["window_us"]
        for k in ("h2d_busy_us", "d2h_busy_us", "kernel_busy_us",
                  "copy_busy_us", "overlapped_us", "kernel_bound_us",
                  "h2d_bound_us", "d2h_bound_us", "bubble_us",
                  "bubble_count", "h2d_bytes", "d2h_bytes", "kernel_flops",
                  "h2d_copies", "d2h_copies", "kernel_launches"):
            run[k] += r[k]
        high_water = max(high_water, device["occupancy_high_water_bytes"])
    run["window_us"] = run["window_end_us"] - run["window_begin_us"]
    cap = min(run["copy_busy_us"], run["kernel_busy_us"])
    if cap > 0:
        run["overlap_ratio"] = run["overlapped_us"] / cap
    if run["window_us"] > 0:
        run["kernel_utilization"] = run["kernel_busy_us"] / run["window_us"]
    if run["copy_busy_us"] > 0:
        run["effective_pcie_bytes_per_sec"] = (
            (run["h2d_bytes"] + run["d2h_bytes"]) /
            (run["copy_busy_us"] * 1e-6))
    return {"devices": devices, "run": run,
            "occupancy_high_water_bytes": high_water}


def fmt_bytes_per_sec(value):
    if value >= 1 << 30:
        return f"{value / (1 << 30):.2f} GiB/s"
    if value >= 1 << 20:
        return f"{value / (1 << 20):.2f} MiB/s"
    return f"{value:.0f} B/s"


def print_gpu_report(path, gpu):
    run = gpu["run"]
    print(f"distme_analyze: gpu {path}")
    print(f"  gpu: {len(gpu['devices'])} device(s) | window "
          f"{fmt_us(run['window_us'])} | kernel busy "
          f"{fmt_pct(run['kernel_busy_us'], run['window_us'])} | overlap "
          f"{run['overlap_ratio']:.0%} of copies | {run['bubble_count']} "
          f"bubble(s) ({fmt_us(run['bubble_us'])})")
    print(f"  window split: kernel-bound "
          f"{fmt_pct(run['kernel_bound_us'], run['window_us'])} | h2d-bound "
          f"{fmt_pct(run['h2d_bound_us'], run['window_us'])} | d2h-bound "
          f"{fmt_pct(run['d2h_bound_us'], run['window_us'])} | bubble "
          f"{fmt_pct(run['bubble_us'], run['window_us'])}")
    pcie = f"  pcie: {fmt_bytes_per_sec(run['effective_pcie_bytes_per_sec'])} effective"
    if run["pcie_peak_bytes_per_sec"] > 0:
        pcie += (f" of {fmt_bytes_per_sec(run['pcie_peak_bytes_per_sec'])} "
                 f"peak ({fmt_pct(run['effective_pcie_bytes_per_sec'], run['pcie_peak_bytes_per_sec'])})")
    print(pcie + f" | occupancy high-water "
          f"{gpu['occupancy_high_water_bytes']} bytes")
    for device in gpu["devices"]:
        r = device["report"]
        print(f"  device node {device['node']} gpu {device['ordinal']}: "
              f"window {fmt_us(r['window_us'])} | h2d {fmt_us(r['h2d_busy_us'])} "
              f"| d2h {fmt_us(r['d2h_busy_us'])} | kernel "
              f"{fmt_us(r['kernel_busy_us'])} | overlapped "
              f"{fmt_us(r['overlapped_us'])} | {len(device['cuboids'])} "
              f"cuboid(s)")


def write_timeline(out_path, builds):
    """Exports device intervals as Chrome trace-event JSON (the PR 1
    exporter format): one process per node, one track per device engine.
    Returns the number of spans written."""
    engine_index = {e: i for i, e in enumerate(GPU_ENGINES)}
    events = []
    spans = 0
    for (node, ordinal) in sorted(builds):
        pid = node
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "args": {"name": f"node{node}"}})
        for engine in GPU_ENGINES:
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": ordinal * 3 + engine_index[engine],
                           "args": {"name": f"gpu{ordinal} {engine}"}})
        for iv in builds[(node, ordinal)]["intervals"]:
            name = iv["engine"]
            if iv["cuboid_id"] >= 0:
                name += f" c{iv['cuboid_id']}.{iv['sub_index']}"
            payload_key = ("flops" if iv["engine"] == "kernel" else "bytes")
            events.append({
                "name": name, "ph": "X", "ts": iv["begin_us"],
                "dur": iv["end_us"] - iv["begin_us"], "pid": pid,
                "tid": ordinal * 3 + engine_index[iv["engine"]],
                "args": {payload_key: iv["payload"], "stream": iv["stream"],
                         "cuboid": iv["cuboid_id"],
                         "sub": iv["sub_index"]},
            })
            spans += 1
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, f)
    return spans


def load_dump(path):
    """Reads a flight dump; returns (header dict, events list) or None."""
    try:
        with open(path) as f:
            dump = json.load(f)
    except (OSError, ValueError) as e:
        print(f"distme_analyze: cannot read {path}: {e}", file=sys.stderr)
        return None
    events = dump.get("events")
    if not isinstance(events, list):
        print(f"distme_analyze: {path} has no 'events' array",
              file=sys.stderr)
        return None
    header = {
        "schema": dump.get("schema", 1),
        "wall_epoch_us": dump.get("wall_epoch_us"),
        "total_recorded": dump.get("total_recorded", len(events)),
        "capacity": dump.get("capacity"),
    }
    return header, events


def build_graph(events):
    """Mirror of BuildCausalGraph: the last complete run as a dict, or
    None when the dump holds no run_start...run_finish pair."""
    finish_idx = None
    for i in range(len(events) - 1, -1, -1):
        if events[i].get("type") == "run_finish":
            finish_idx = i
            break
    if finish_idx is None:
        return None
    start_idx = None
    for i in range(finish_idx - 1, -1, -1):
        if events[i].get("type") == "run_start":
            start_idx = i
            break
    if start_idx is None:
        return None

    run_start = events[start_idx]
    run_finish = events[finish_idx]
    graph = {
        "run_start_us": run_start["ts_us"],
        "run_finish_us": run_finish["ts_us"],
        "planned_tasks": run_start.get("a", 0),
        "run_ok": run_finish.get("b", 0) == 0,
        "tasks": [],
        "stages": [],
    }
    tasks = {}
    for e in events[start_idx:finish_idx + 1]:
        etype = e.get("type")
        if etype == "task_start":
            t = tasks.setdefault(e["a"], {})
            t.update(task_id=e["a"], node=e.get("node", -1),
                     slot=e.get("slot", -1), start_us=e["ts_us"],
                     fetch_wait_us=0, gpu_wait_us=0, finish_us=None,
                     attempts=t.get("attempts", 0) + 1)
        elif etype == "task_finish":
            t = tasks.setdefault(e["a"], {"task_id": e["a"], "attempts": 0,
                                          "fetch_wait_us": 0,
                                          "gpu_wait_us": 0})
            t.setdefault("node", e.get("node", -1))
            t.setdefault("slot", e.get("slot", -1))
            t["finish_us"] = e["ts_us"]
            if t["attempts"] == 0:
                # Start overwritten by ring wrap: task_finish carries the
                # attempt duration in `b`.
                t["start_us"] = e["ts_us"] - e.get("b", 0)
                t["attempts"] = 1
        elif etype == "dep_edge":
            kind = e.get("detail")
            if kind in TASK_EDGE_KINDS:
                t = tasks.setdefault(e["a"], {"task_id": e["a"],
                                              "attempts": 0,
                                              "fetch_wait_us": 0,
                                              "gpu_wait_us": 0})
                t[kind + "_us"] = t.get(kind + "_us", 0) + e.get("b", 0)
        elif etype == "stage_begin":
            graph["stages"].append({"name": e.get("detail", "stage"),
                                    "begin_us": e["ts_us"], "end_us": None})
        elif etype == "stage_end":
            name = e.get("detail", "stage")
            for s in reversed(graph["stages"]):
                if s["name"] == name and s["end_us"] is None:
                    s["end_us"] = e["ts_us"]
                    break
    graph["tasks"] = sorted(
        (t for t in tasks.values() if t.get("finish_us") is not None),
        key=lambda t: (t["finish_us"], t["task_id"]))
    graph["stages"] = [s for s in graph["stages"] if s["end_us"] is not None]
    return graph


def stage_resource(name):
    if "repartition" in name or "aggregat" in name:
        return "shuffle"
    if "multiply" in name:
        return "compute"
    return "overhead"


def analyze(graph):
    """Mirror of AnalyzeCriticalPath. Returns the analysis dict."""
    out = {
        "wall_us": graph["run_finish_us"] - graph["run_start_us"],
        "path_us": 0,
        "run_ok": graph["run_ok"],
        "planned_tasks": graph["planned_tasks"],
        "hops": [],
        "tasks": [],
        "attribution_us": {},
        "stage_us": {},
        "aggregate_us": {},
    }
    run_start = graph["run_start_us"]
    run_finish = graph["run_finish_us"]
    if run_finish <= run_start:
        return out

    ready_base = run_start
    for s in graph["stages"]:
        if "multiply" in s["name"]:
            ready_base = s["begin_us"]
            break

    agg = out["aggregate_us"]
    for t in graph["tasks"]:
        start, finish = t["start_us"], t["finish_us"]
        ready = max(run_start, min(ready_base, start))
        dur = max(0, finish - start)
        fetch = max(0, min(t.get("fetch_wait_us", 0), dur))
        gpu = max(0, min(t.get("gpu_wait_us", 0), dur - fetch))
        b = {
            "task_id": t["task_id"], "node": t.get("node", -1),
            "slot": t.get("slot", -1), "ready_us": ready,
            "start_us": start, "finish_us": finish,
            "slot_wait_us": start - ready, "fetch_wait_us": fetch,
            "gpu_wait_us": gpu, "exec_us": dur - fetch - gpu,
        }
        out["tasks"].append(b)
        for k in ("slot_wait", "fetch_wait", "gpu_wait", "exec"):
            agg[k] = agg.get(k, 0) + b[k + "_us"]
    for s in graph["stages"]:
        out["stage_us"][s["name"]] = (out["stage_us"].get(s["name"], 0) +
                                      s["end_us"] - s["begin_us"])

    # Same-slot predecessor chains.
    by_slot = {}
    for i, b in enumerate(out["tasks"]):
        by_slot.setdefault((b["node"], b["slot"]), []).append(i)
    pred_finish = [None] * len(out["tasks"])
    pred_index = [None] * len(out["tasks"])
    for indices in by_slot.values():
        indices.sort(key=lambda i: out["tasks"][i]["start_us"])
        for k in range(1, len(indices)):
            prev, cur = out["tasks"][indices[k - 1]], out["tasks"][indices[k]]
            if prev["finish_us"] <= cur["start_us"]:
                pred_finish[indices[k]] = prev["finish_us"]
                pred_index[indices[k]] = indices[k - 1]

    rev = []

    def add_hop(label, resource, task_id, begin, end):
        if end > begin:
            rev.append({"label": label, "resource": resource,
                        "task_id": task_id, "begin_us": begin,
                        "end_us": end, "duration_us": end - begin})

    def latest_finished_before(cursor):
        best = None
        for i, b in enumerate(out["tasks"]):
            if b["finish_us"] <= cursor:
                best = i
        return best

    cursor = run_finish
    while cursor > run_start:
        ti = latest_finished_before(cursor)
        if ti is not None and out["tasks"][ti]["finish_us"] == cursor:
            i = ti
            while i is not None:
                t = out["tasks"][i]
                tid = t["task_id"]
                fetch_end = t["start_us"] + t["fetch_wait_us"]
                gpu_end = fetch_end + t["gpu_wait_us"]
                add_hop(f"task {tid} exec", "compute", tid, gpu_end,
                        t["finish_us"])
                add_hop(f"task {tid} gpu_wait", "gpu", tid, fetch_end,
                        gpu_end)
                add_hop(f"task {tid} fetch_wait", "shuffle", tid,
                        t["start_us"], fetch_end)
                pf = pred_finish[i]
                bind = max(t["ready_us"], pf) if pf is not None \
                    else t["ready_us"]
                add_hop(f"task {tid} slot_wait", "scheduling", tid, bind,
                        t["start_us"])
                cursor = bind
                i = pred_index[i] if (pf is not None and pf >= t["ready_us"]
                                      and pf == bind) else None
            continue
        stage = None
        for s in graph["stages"]:
            if s["begin_us"] < cursor <= s["end_us"] and \
                    (stage is None or s["begin_us"] > stage["begin_us"]):
                stage = s
        t_finish = out["tasks"][ti]["finish_us"] if ti is not None else None
        if stage is not None:
            lo = max(stage["begin_us"], run_start)
            if t_finish is not None:
                lo = max(lo, t_finish)
            if lo < cursor:
                add_hop("stage " + stage["name"],
                        stage_resource(stage["name"]), None, lo, cursor)
                cursor = lo
                continue
        lo = run_start if t_finish is None else max(run_start, t_finish)
        for s in graph["stages"]:
            if lo < s["end_us"] < cursor:
                lo = s["end_us"]
        if lo >= cursor:
            lo = run_start  # force progress
        add_hop("overhead", "overhead", None, lo, cursor)
        cursor = lo

    rev.reverse()
    out["hops"] = rev
    for hop in rev:
        out["attribution_us"][hop["resource"]] = (
            out["attribution_us"].get(hop["resource"], 0) +
            hop["duration_us"])
        out["path_us"] += hop["duration_us"]
    return out


def bottleneck(analysis):
    attr = analysis["attribution_us"]
    if not attr or analysis["path_us"] <= 0:
        return "", 0.0
    top = max(sorted(attr), key=lambda k: attr[k])
    return top, attr[top] / analysis["path_us"]


def fmt_us(us):
    if us >= 1_000_000:
        return f"{us / 1e6:.2f} s"
    if us >= 1_000:
        return f"{us / 1e3:.2f} ms"
    return f"{us} us"


def fmt_pct(num, den):
    return f"{100.0 * num / den:.0f}%" if den > 0 else "-"


def wall_anchor_line(header):
    epoch = header.get("wall_epoch_us")
    if epoch is None:
        return "  recorded: (no wall-clock anchor; schema 1 dump)"
    stamp = datetime.datetime.fromtimestamp(epoch / 1e6,
                                            tz=datetime.timezone.utc)
    return f"  recorded: ring created {stamp.isoformat()} (schema " \
           f"{header.get('schema')})"


def print_report(path, header, analysis, top_k):
    top, frac = bottleneck(analysis)
    outcome = "ok" if analysis["run_ok"] else "FAILED"
    print(f"distme_analyze: {path}")
    print(wall_anchor_line(header))
    print(f"  run: {outcome}, {analysis['planned_tasks']} planned tasks, "
          f"{len(analysis['tasks'])} observed, wall {fmt_us(analysis['wall_us'])} "
          f"(critical path {fmt_us(analysis['path_us'])}, "
          f"{fmt_pct(analysis['path_us'], analysis['wall_us'])} of wall)")
    if top:
        print(f"  bottleneck: {top} "
              f"({fmt_pct(analysis['attribution_us'][top], analysis['path_us'])} "
              f"of critical path)")
    if analysis["attribution_us"]:
        parts = " | ".join(
            f"{k} {fmt_pct(v, analysis['path_us'])}"
            for k, v in sorted(analysis["attribution_us"].items(),
                               key=lambda kv: -kv[1]))
        print(f"  path attribution: {parts}")
    if analysis["stage_us"]:
        parts = " | ".join(f"{k} {fmt_us(v)}"
                           for k, v in analysis["stage_us"].items())
        print(f"  stages: {parts}")
    if analysis["aggregate_us"]:
        total = sum(analysis["aggregate_us"].values())
        parts = " | ".join(
            f"{k} {fmt_pct(v, total)}"
            for k, v in sorted(analysis["aggregate_us"].items(),
                               key=lambda kv: -kv[1]))
        print(f"  fleet blocked time: {parts}")
    hops = sorted(analysis["hops"], key=lambda h: -h["duration_us"])[:top_k]
    if hops:
        print("  top hops:")
        for i, h in enumerate(hops, 1):
            print(f"    {i}. {h['label']} [{h['resource']}] "
                  f"{fmt_us(h['duration_us'])}")


def diff_analyses(a, b):
    """Structural run-diff between two analyses of the same workload."""
    top_a, frac_a = bottleneck(a)
    top_b, frac_b = bottleneck(b)
    d = {
        "wall_us": {"before": a["wall_us"], "after": b["wall_us"],
                    "delta_us": b["wall_us"] - a["wall_us"]},
        "bottleneck": {"before": top_a, "after": top_b,
                       "stable": top_a == top_b,
                       "before_fraction": frac_a, "after_fraction": frac_b},
        "attribution_delta_us": {},
        "stage_delta_us": {},
        "path_changes": [],
    }
    for k in sorted(set(a["attribution_us"]) | set(b["attribution_us"])):
        d["attribution_delta_us"][k] = (b["attribution_us"].get(k, 0) -
                                        a["attribution_us"].get(k, 0))
    for k in sorted(set(a["stage_us"]) | set(b["stage_us"])):
        d["stage_delta_us"][k] = (b["stage_us"].get(k, 0) -
                                  a["stage_us"].get(k, 0))
    # Structural path change: hop labels entering/leaving the top ranks.
    def top_labels(analysis, n=10):
        hops = sorted(analysis["hops"], key=lambda h: -h["duration_us"])
        return [h["label"] for h in hops[:n]]
    la, lb = top_labels(a), top_labels(b)
    for label in lb:
        if label not in la:
            d["path_changes"].append({"label": label, "change": "entered"})
    for label in la:
        if label not in lb:
            d["path_changes"].append({"label": label, "change": "left"})
    return d


def print_diff(path_a, path_b, a, b, d):
    wall = d["wall_us"]
    rel = (wall["delta_us"] / wall["before"] * 100.0
           if wall["before"] > 0 else float("inf"))
    print(f"distme_analyze: diff {path_a} -> {path_b}")
    print(f"  wall: {fmt_us(wall['before'])} -> {fmt_us(wall['after'])} "
          f"({rel:+.1f}%)")
    bn = d["bottleneck"]
    verdict = "stable" if bn["stable"] else "CHANGED"
    print(f"  bottleneck: {bn['before']} ({bn['before_fraction']:.0%}) -> "
          f"{bn['after']} ({bn['after_fraction']:.0%}) [{verdict}]")
    moved = sorted(d["attribution_delta_us"].items(),
                   key=lambda kv: -abs(kv[1]))
    if moved:
        parts = " | ".join(f"{k} {v:+d} us" for k, v in moved if v != 0)
        print(f"  attribution deltas: {parts or 'none'}")
    regressed = [(k, v) for k, v in d["stage_delta_us"].items() if v > 0]
    if regressed:
        parts = " | ".join(f"{k} +{fmt_us(v)}"
                           for k, v in sorted(regressed,
                                              key=lambda kv: -kv[1]))
        print(f"  stage regressions: {parts}")
    for change in d["path_changes"]:
        print(f"  path change: {change['label']} {change['change']} "
              f"the top hops")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dump", help="flight-recorder JSON dump")
    parser.add_argument("dump_b", nargs="?", default=None,
                        help="second dump: diff the two runs")
    parser.add_argument("--diff", action="store_true",
                        help="run-diff mode (implied by a second dump)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--top", type=int, default=5,
                        help="hops to show in the report (default 5)")
    parser.add_argument("--gpu", action="store_true",
                        help="GPU engine-timeline overlap report (mirrors "
                             "the session's GET /gpu route)")
    parser.add_argument("--timeline", metavar="PATH", default=None,
                        help="export device interval events as Chrome "
                             "trace-event JSON to PATH")
    parser.add_argument("--pcie-peak-gib", type=float, default=0.0,
                        help="configured PCI-E peak (GiB/s) for the --gpu "
                             "roofline comparison (not in the dump)")
    args = parser.parse_args()

    if args.diff and args.dump_b is None:
        print("distme_analyze: --diff needs two dumps", file=sys.stderr)
        return 1

    loaded = load_dump(args.dump)
    if loaded is None:
        return 1
    header, events = loaded

    if args.gpu or args.timeline is not None:
        builds = gpu_device_builds(events)
        if not any(b["intervals"] or b["high_water"] for b in
                   builds.values()):
            print(f"distme_analyze: {args.dump} holds no GPU device "
                  f"interval events", file=sys.stderr)
            return 1
        if args.timeline is not None:
            spans = write_timeline(args.timeline, builds)
            print(f"distme_analyze: wrote {spans} device spans to "
                  f"{args.timeline}")
        if args.gpu:
            gpu = analyze_gpu(events,
                              args.pcie_peak_gib * float(1 << 30))
            if args.json:
                print(json.dumps(gpu, indent=2))
            else:
                print_gpu_report(args.dump, gpu)
        return 0

    graph = build_graph(events)
    if graph is None:
        print(f"distme_analyze: {args.dump} holds no complete run",
              file=sys.stderr)
        return 1
    analysis = analyze(graph)

    if args.dump_b is None:
        if args.json:
            top, frac = bottleneck(analysis)
            analysis["bottleneck"] = top
            analysis["bottleneck_fraction"] = frac
            analysis["wall_epoch_us"] = header.get("wall_epoch_us")
            print(json.dumps(analysis, indent=2, sort_keys=True))
        else:
            print_report(args.dump, header, analysis, args.top)
        return 0

    loaded_b = load_dump(args.dump_b)
    if loaded_b is None:
        return 1
    header_b, events_b = loaded_b
    graph_b = build_graph(events_b)
    if graph_b is None:
        print(f"distme_analyze: {args.dump_b} holds no complete run",
              file=sys.stderr)
        return 1
    analysis_b = analyze(graph_b)
    d = diff_analyses(analysis, analysis_b)
    if args.json:
        print(json.dumps(d, indent=2, sort_keys=True))
    else:
        print_diff(args.dump, args.dump_b, analysis, analysis_b, d)
    return 0


if __name__ == "__main__":
    sys.exit(main())
