#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by the obs exporters.

Usage: trace_lint.py <trace.json> [<trace.json> ...]

Checks the invariants a trace viewer (chrome://tracing, Perfetto) relies on:
the document shape, the required keys per event phase, monotone-sane
timestamps, and that every complete event lands on a named-or-numeric track.
Exits non-zero on the first malformed file.
"""

import json
import sys

REQUIRED_X_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")
REQUIRED_M_KEYS = ("name", "ph", "pid")
KNOWN_PHASES = {"X", "M", "B", "E", "i", "C"}


def fail(path, message):
    print(f"trace_lint: {path}: {message}", file=sys.stderr)
    sys.exit(1)


def lint(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")

    if not isinstance(doc, dict):
        fail(path, "top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, 'missing "traceEvents" array')
    if doc.get("displayTimeUnit") not in (None, "ms", "ns"):
        fail(path, f'bad displayTimeUnit {doc.get("displayTimeUnit")!r}')

    n_complete = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"event #{i} is not an object")
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            fail(path, f"event #{i} has unknown phase {ph!r}")
        required = REQUIRED_X_KEYS if ph == "X" else REQUIRED_M_KEYS
        for key in required:
            if key not in event:
                fail(path, f'event #{i} (ph={ph}) missing "{key}"')
        if ph == "X":
            n_complete += 1
            if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
                fail(path, f"event #{i} has bad ts {event['ts']!r}")
            if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
                fail(path, f"event #{i} has bad dur {event['dur']!r}")
            if not isinstance(event["pid"], int) or not isinstance(
                event["tid"], int
            ):
                fail(path, f"event #{i} has non-integer pid/tid")
            if not event["name"]:
                fail(path, f"event #{i} has an empty name")
        elif ph == "M":
            if event["name"] not in ("process_name", "thread_name"):
                fail(path, f"event #{i} has unknown metadata {event['name']!r}")
            if "name" not in event.get("args", {}):
                fail(path, f"metadata event #{i} missing args.name")

    print(f"trace_lint: {path}: OK ({n_complete} spans, "
          f"{len(events) - n_complete} metadata events)")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        lint(path)


if __name__ == "__main__":
    main()
