// Distributed least squares via the normal equations — the Cholesky-based
// workflow the paper's introduction motivates. The expensive part, the
// Gram matrix AᵀA of a tall-skinny design matrix, runs as a distributed
// multiplication (the planner picks a k-axis-heavy CuboidMM partitioning,
// exactly the "common large dimension" regime of Figure 6(b)); the small
// f×f factorization then happens locally.
//
//   x* = argmin ‖A·x − b‖₂  ⇔  (AᵀA) x* = Aᵀb

#include <cmath>
#include <cstdio>

#include "blas/cholesky.h"
#include "blas/gemm.h"
#include "common/random.h"
#include "core/session.h"

using namespace distme;

int main() {
  const int64_t samples = 4096;  // rows of A (tall)
  const int64_t features = 24;   // cols of A (skinny)
  const int64_t block = 64;

  core::Session::Options options;
  options.cluster = ClusterConfig::Local(3, 2);
  options.mode = engine::ComputeMode::kGpuStreaming;
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session session(std::move(options));

  // Design matrix A and a ground-truth coefficient vector x_true; observe
  // b = A·x_true + noise.
  GeneratorOptions gen;
  gen.rows = samples;
  gen.cols = features;
  gen.block_size = block;
  gen.seed = 7;
  auto a = session.Generate(gen);
  DISTME_CHECK_OK(a.status());

  Rng rng(11);
  DenseMatrix x_true(features, 1);
  for (int64_t f = 0; f < features; ++f) {
    x_true.Set(f, 0, rng.NextUniform(-2.0, 2.0));
  }
  const DenseMatrix dense_a = a->Collect().ToDense();
  DenseMatrix b_dense = blas::Multiply(dense_a, x_true);
  for (int64_t r = 0; r < samples; ++r) {
    b_dense.Add(r, 0, rng.NextUniform(-0.01, 0.01));  // measurement noise
  }
  auto b = session.FromGrid(BlockGrid::FromDense(b_dense, block));
  DISTME_CHECK_OK(b.status());

  // Distributed: Aᵀ, then the two products of the normal equations.
  auto at = session.Transpose(*a);
  DISTME_CHECK_OK(at.status());
  auto gram = session.Multiply(*at, *a);  // AᵀA: f×f via a long k-axis
  auto rhs = session.Multiply(*at, *b);   // Aᵀb: f×1
  DISTME_CHECK_OK(gram.status());
  DISTME_CHECK_OK(rhs.status());
  std::printf("Gram matrix via %s over k = %lld samples\n",
              session.history()[0].method_name.c_str(),
              static_cast<long long>(samples));

  // Local: Cholesky-solve the f×f system.
  auto x = blas::CholeskySolve(gram->Collect().ToDense(),
                               rhs->Collect().ToDense());
  DISTME_CHECK_OK(x.status());

  const double err = DenseMatrix::MaxAbsDiff(*x, x_true);
  std::printf("recovered %lld coefficients, max |x - x_true| = %.2e\n",
              static_cast<long long>(features), err);

  // Residual check: ‖A·x − b‖ should be at the noise floor.
  DenseMatrix residual = blas::Multiply(dense_a, *x);
  double rss = 0;
  for (int64_t r = 0; r < samples; ++r) {
    const double d = residual.At(r, 0) - b_dense.At(r, 0);
    rss += d * d;
  }
  std::printf("residual RMS = %.2e (noise level 5.8e-03)\n",
              std::sqrt(rss / static_cast<double>(samples)));
  return err < 0.05 ? 0 : 1;
}
