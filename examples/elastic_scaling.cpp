// Elastic scaling: the core "elastic" claim of the paper — CuboidMM's
// (P*, Q*, R*) adapts to the matrices *and* the cluster. This example shows
// the optimizer's choice morphing between BMM-like, CPMM-like and RMM-like
// partitionings as the data shape and the resources change, and how the
// simulated elapsed time responds.

#include <cstdio>

#include "engine/sim_executor.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

using namespace distme;

namespace {

void ShowShapeSweep() {
  std::printf("--- (P*,Q*,R*) vs data shape (paper cluster: 9 nodes x 10 "
              "tasks, θt = 6 GB) ---\n");
  const ClusterConfig cluster = ClusterConfig::Paper();
  struct Shape {
    const char* label;
    int64_t i, k, j;
    const char* regime;
  };
  const Shape shapes[] = {
      {"square 70K x 70K x 70K", 70000, 70000, 70000,
       "balanced splits on every axis"},
      {"fat-inner 10K x 5M x 10K", 10000, 5000000, 10000,
       "k-axis splits only -> works like CPMM"},
      {"huge-output 500K x 1K x 500K", 500000, 1000, 500000,
       "i/j-axis splits only -> works like BMM/RMM hybrids"},
      {"tiny 4K x 4K x 4K", 4000, 4000, 4000,
       "fewer voxels than slots -> (I,J,K), works like RMM"},
  };
  for (const Shape& s : shapes) {
    mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(s.i, s.k, s.j, 1000);
    p.a.sparsity = p.b.sparsity = 0.5;
    mm::OptimizerOptions options;
    options.enforce_parallelism = s.k < 100000;  // Table 4 settings
    auto opt = mm::OptimizeCuboid(p, cluster, options);
    if (!opt.ok()) {
      std::printf("  %-32s -> %s\n", s.label, opt.status().ToString().c_str());
      continue;
    }
    std::printf("  %-32s -> (%lld,%lld,%lld)%s  [%s]\n", s.label,
                static_cast<long long>(opt->spec.P),
                static_cast<long long>(opt->spec.Q),
                static_cast<long long>(opt->spec.R),
                opt->max_parallelism_fallback ? " (fallback)" : "",
                s.regime);
  }
}

void ShowClusterSweep() {
  std::printf("\n--- elasticity vs cluster size (70K^3, sparsity 0.5, GPU "
              "on) ---\n");
  std::printf("  %-26s %-12s %-8s %-12s %-10s\n", "cluster", "(P*,Q*,R*)",
              "tasks", "comm", "elapsed");
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000,
                                                     1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  for (const int nodes : {3, 9, 18, 36}) {
    ClusterConfig cluster = ClusterConfig::Paper();
    cluster.num_nodes = nodes;
    cluster.timeout_seconds = 1e9;
    auto opt = mm::OptimizeCuboid(p, cluster);
    if (!opt.ok()) continue;
    engine::SimExecutor executor(cluster);
    engine::SimOptions gpu;
    gpu.mode = engine::ComputeMode::kGpuStreaming;
    auto report = executor.Run(p, mm::CuboidMethod(opt->spec), gpu);
    DISTME_CHECK_OK(report.status());
    char label[64], spec[32];
    std::snprintf(label, sizeof(label), "%d nodes x 10 tasks", nodes);
    std::snprintf(spec, sizeof(spec), "(%lld,%lld,%lld)",
                  static_cast<long long>(opt->spec.P),
                  static_cast<long long>(opt->spec.Q),
                  static_cast<long long>(opt->spec.R));
    std::printf("  %-26s %-12s %-8lld %-12s %-10s\n", label, spec,
                static_cast<long long>(opt->spec.num_cuboids()),
                FormatBytes(report->total_shuffle_bytes()).c_str(),
                report->OutcomeLabel().c_str());
  }
}

void ShowMemorySweep() {
  std::printf("\n--- elasticity vs task memory budget θt (70K^3) ---\n");
  std::printf("  %-10s %-12s %-14s %-14s\n", "θt", "(P*,Q*,R*)",
              "Cost() elems", "Mem()/θt");
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000,
                                                     1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  for (const int64_t gib : {2, 4, 6, 12, 48}) {
    ClusterConfig cluster = ClusterConfig::Paper();
    cluster.task_memory_bytes = gib * kGiB;
    auto opt = mm::OptimizeCuboid(p, cluster);
    if (!opt.ok()) {
      std::printf("  %-10lldGB %s\n", static_cast<long long>(gib),
                  opt.status().ToString().c_str());
      continue;
    }
    char spec[32], frac[16];
    std::snprintf(spec, sizeof(spec), "(%lld,%lld,%lld)",
                  static_cast<long long>(opt->spec.P),
                  static_cast<long long>(opt->spec.Q),
                  static_cast<long long>(opt->spec.R));
    std::snprintf(frac, sizeof(frac), "%.2f",
                  opt->memory_bytes /
                      static_cast<double>(cluster.task_memory_bytes));
    std::printf("  %-10s %-12s %-14s %-14s\n",
                (std::to_string(gib) + " GB").c_str(), spec,
                FormatCount(opt->cost_elements).c_str(), frac);
  }
  std::printf(
      "\nMore memory per task -> fewer, larger cuboids -> less replication.\n"
      "Less memory -> the same job still runs, just with more partitions.\n"
      "That is the elasticity BMM/CPMM (fixed layouts) cannot offer.\n");
}

}  // namespace

int main() {
  ShowShapeSweep();
  ShowClusterSweep();
  ShowMemorySweep();
  return 0;
}
