// Quickstart: create a DistME session, generate two distributed matrices,
// multiply them (the CuboidMM planner picks (P*,Q*,R*) automatically), and
// inspect the result and the execution report.

#include <cstdio>

#include "blas/gemm.h"
#include "core/session.h"

using namespace distme;

int main() {
  // A small in-process cluster: 3 nodes × 2 task slots, with the software
  // GPU enabled. ClusterConfig::Paper() would model the paper's testbed.
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(/*nodes=*/3, /*tasks=*/2);
  options.mode = engine::ComputeMode::kGpuStreaming;
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session session(std::move(options));

  // Generate A (200×160) and B (160×120), blocked 32×32, A 30% dense.
  GeneratorOptions gen_a;
  gen_a.rows = 200;
  gen_a.cols = 160;
  gen_a.block_size = 32;
  gen_a.sparsity = 0.3;
  gen_a.seed = 1;
  GeneratorOptions gen_b;
  gen_b.rows = 160;
  gen_b.cols = 120;
  gen_b.block_size = 32;
  gen_b.sparsity = 1.0;
  gen_b.seed = 2;

  auto a = session.Generate(gen_a);
  auto b = session.Generate(gen_b);
  DISTME_CHECK_OK(a.status());
  DISTME_CHECK_OK(b.status());

  // C = A × B. The planner runs the Section 3.2 optimizer and executes the
  // three steps (repartition, local multiply on the GPU, aggregation).
  auto c = session.Multiply(*a, *b);
  DISTME_CHECK_OK(c.status());

  const engine::MMReport& report = session.history().back();
  std::printf("multiplied %lldx%lld by %lldx%lld\n",
              static_cast<long long>(a->rows()),
              static_cast<long long>(a->cols()),
              static_cast<long long>(b->rows()),
              static_cast<long long>(b->cols()));
  std::printf("  method:         %s\n", report.method_name.c_str());
  std::printf("  mode:           %s\n", engine::ComputeModeName(report.mode));
  std::printf("  tasks:          %lld\n",
              static_cast<long long>(report.num_tasks));
  std::printf("  shuffle bytes:  %s\n",
              FormatBytes(report.total_shuffle_bytes()).c_str());
  std::printf("  PCI-E bytes:    %s\n", FormatBytes(report.pcie_bytes).c_str());
  std::printf("  wall time:      %.1f ms\n", report.elapsed_seconds * 1e3);

  // Verify against a local single-threaded multiply.
  DenseMatrix expected =
      blas::Multiply(a->Collect().ToDense(), b->Collect().ToDense());
  const double diff =
      DenseMatrix::MaxAbsDiff(c->Collect().ToDense(), expected);
  std::printf("  max |Δ| vs local reference: %.2e\n", diff);
  return diff < 1e-9 ? 0 : 1;
}
