// Method explorer: compare BMM / CPMM / RMM / SUMMA / CRMM / CuboidMM on a
// matrix-multiplication shape of your choosing, on the paper's simulated
// cluster.
//
// Usage: method_explorer [I K J [sparsity [block_size]]]
//   C(IxJ) = A(IxK) x B(KxJ), dimensions in elements.
// Defaults to 50000 50000 50000 at sparsity 1.0.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "engine/sim_executor.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

using namespace distme;

int main(int argc, char** argv) {
  int64_t i = 50000, k = 50000, j = 50000, block = 1000;
  double sparsity = 1.0;
  if (argc >= 4) {
    i = std::atoll(argv[1]);
    k = std::atoll(argv[2]);
    j = std::atoll(argv[3]);
  }
  if (argc >= 5) sparsity = std::atof(argv[4]);
  if (argc >= 6) block = std::atoll(argv[5]);

  mm::MMProblem problem = mm::MMProblem::DenseSquareBlocks(i, k, j, block);
  problem.a.sparsity = sparsity;
  problem.a.stored_dense = sparsity >= 0.4;
  DISTME_CHECK_OK(problem.Validate());

  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;
  engine::SimExecutor executor(cluster);

  std::printf("C(%lldx%lld) = A(%lldx%lld, sparsity %.3g) x B(%lldx%lld)\n",
              static_cast<long long>(i), static_cast<long long>(j),
              static_cast<long long>(i), static_cast<long long>(k), sparsity,
              static_cast<long long>(k), static_cast<long long>(j));
  std::printf("block %lld -> voxel grid I,J,K = %lld,%lld,%lld; cluster: "
              "%d nodes x %d tasks, θt=%s, θg=%s\n\n",
              static_cast<long long>(block),
              static_cast<long long>(problem.I()),
              static_cast<long long>(problem.J()),
              static_cast<long long>(problem.K()), cluster.num_nodes,
              cluster.tasks_per_node,
              FormatBytes(static_cast<double>(cluster.task_memory_bytes))
                  .c_str(),
              FormatBytes(static_cast<double>(cluster.gpu_task_memory_bytes))
                  .c_str());

  std::printf("%-18s %-10s %-10s %-12s %-12s %-10s %-8s\n", "method", "CPU",
              "GPU", "repartition", "aggregation", "mem/task", "tasks");

  auto show = [&](const mm::Method& method) {
    auto cpu = executor.Run(problem, method, {});
    engine::SimOptions gpu;
    gpu.mode = engine::ComputeMode::kGpuStreaming;
    auto accel = executor.Run(problem, method, gpu);
    if (!cpu.ok() || !accel.ok()) {
      std::printf("%-18s %s\n", method.name().c_str(),
                  cpu.ok() ? accel.status().ToString().c_str()
                           : cpu.status().ToString().c_str());
      return;
    }
    auto analytic = method.Analytic(problem, cluster);
    std::printf("%-18s %-10s %-10s %-12s %-12s %-10s %-8lld\n",
                method.name().c_str(), cpu->OutcomeLabel().c_str(),
                accel->OutcomeLabel().c_str(),
                FormatBytes(cpu->repartition_bytes).c_str(),
                FormatBytes(cpu->aggregation_bytes).c_str(),
                analytic.ok()
                    ? FormatBytes(analytic->memory_per_task_bytes).c_str()
                    : "-",
                static_cast<long long>(cpu->num_tasks));
  };

  show(mm::BmmMethod());
  show(mm::CpmmMethod());
  show(mm::RmmMethod());
  show(mm::SummaMethod());
  show(mm::CrmmMethod());
  show(mm::Summa25dMethod());

  auto opt = mm::OptimizeCuboid(problem, cluster);
  if (opt.ok()) {
    show(mm::CuboidMethod(opt->spec));
    std::printf("\noptimizer: (P*,Q*,R*) = (%lld,%lld,%lld), Cost() = %s "
                "effective elements, Mem() = %s per task\n",
                static_cast<long long>(opt->spec.P),
                static_cast<long long>(opt->spec.Q),
                static_cast<long long>(opt->spec.R),
                FormatCount(opt->cost_elements).c_str(),
                FormatBytes(opt->memory_bytes).c_str());
  } else {
    std::printf("CuboidMM optimizer: %s\n", opt.status().ToString().c_str());
  }
  return 0;
}
