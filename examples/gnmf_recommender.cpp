// GNMF recommender: factorizes a Netflix-shaped rating matrix V ≈ W × H
// (Appendix A of the paper), the workload of Section 6.4.
//
// Part 1 runs GNMF for real on a 1/1000-scale Netflix matrix and reports the
// reconstruction loss per iteration. Part 2 simulates the full-size dataset
// on the paper's 9-node GPU cluster across DistME / SystemML / MatFast.

#include <cstdio>

#include "core/gnmf.h"
#include "systems/profiles.h"

using namespace distme;

int main() {
  const RatingDataset netflix = Netflix();

  // ---- Part 1: real execution at reduced scale. ----
  core::Session::Options options;
  options.cluster = ClusterConfig::Local(3, 2);
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session session(std::move(options));

  GeneratorOptions gen = RatingMatrixOptions(netflix, /*block_size=*/64,
                                             /*scale=*/0.001);
  // Keep the sample dense enough to be meaningful at this tiny scale.
  gen.sparsity = std::max(gen.sparsity, 0.05);
  auto v = session.Generate(gen);
  DISTME_CHECK_OK(v.status());
  std::printf("scaled Netflix sample: %lld x %lld, %lld non-zeros\n",
              static_cast<long long>(v->rows()),
              static_cast<long long>(v->cols()),
              static_cast<long long>(v->Collect().TotalNnz()));

  core::GnmfOptions gnmf;
  gnmf.factor_dim = 16;
  gnmf.iterations = 8;
  gnmf.track_loss = true;
  auto result = core::RunGnmf(&session, *v, gnmf);
  DISTME_CHECK_OK(result.status());
  std::printf("\nGNMF reconstruction loss ||V - W*H||_F per iteration:\n");
  for (size_t i = 0; i < result->loss.size(); ++i) {
    std::printf("  iteration %2zu: %.4f\n", i + 1, result->loss[i]);
  }
  std::printf("factors: W %lldx%lld, H %lldx%lld, %zu multiplications run\n",
              static_cast<long long>(result->w.rows()),
              static_cast<long long>(result->w.cols()),
              static_cast<long long>(result->h.rows()),
              static_cast<long long>(result->h.cols()),
              session.history().size());

  // ---- Part 2: full-scale simulation on the paper's cluster. ----
  std::printf("\nfull-scale Netflix GNMF on the simulated 9-node GPU "
              "cluster (10 iterations, factor dim 200):\n");
  core::GnmfSimOptions sim;
  sim.v = mm::MatrixDescriptor::Sparse(
      netflix.users, netflix.items, 1000,
      static_cast<double>(netflix.ratings) /
          (static_cast<double>(netflix.users) * netflix.items));
  sim.factor_dim = 200;
  sim.iterations = 10;
  for (const auto& profile :
       {systems::DistME(true), systems::DistME(false), systems::SystemML(true),
        systems::MatFast(true), systems::DMac()}) {
    auto report = systems::RunGnmfSim(profile, sim);
    DISTME_CHECK_OK(report.status());
    if (report->outcome.ok()) {
      std::printf("  %-12s %10s  (shuffled %s)\n", profile.name.c_str(),
                  FormatSeconds(report->total_seconds).c_str(),
                  FormatBytes(report->total_shuffle_bytes).c_str());
    } else {
      std::printf("  %-12s %s\n", profile.name.c_str(),
                  report->outcome.ToString().c_str());
    }
  }
  return 0;
}
