// PageRank by power iteration on the distributed engine — a classic
// sparse-matrix × dense-vector workload (the graph-analytics family the
// paper's introduction motivates alongside factorization).
//
//   r ← d · M r + (1 − d)/N · 1
//
// where M is the column-stochastic link matrix. M is built from a synthetic
// scale-free-ish directed graph, distributed as a sparse blocked matrix,
// and each iteration runs one distributed multiplication (the planner picks
// the CuboidMM parameters for the 1-column operand) plus element-wise ops.

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/session.h"

using namespace distme;

namespace {

// A directed graph with preferential attachment: node v links to ~8 earlier
// nodes, biased toward low ids (hubs).
CsrMatrix MakeGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> edges;
  // Node 0 would otherwise be dangling (zero out-degree leaks rank mass);
  // give it a few outgoing links too.
  for (int e = 0; e < 4; ++e) {
    edges.push_back(
        {0, 1 + static_cast<int64_t>(rng.NextBounded(n - 1)), 1.0});
  }
  for (int64_t v = 1; v < n; ++v) {
    const int64_t degree = 2 + static_cast<int64_t>(rng.NextBounded(12));
    for (int64_t e = 0; e < degree; ++e) {
      // Quadratic bias toward small targets = hubs.
      const double u = rng.NextDouble();
      const int64_t target = static_cast<int64_t>(u * u * v);
      edges.push_back({v, target, 1.0});
    }
  }
  return *CsrMatrix::FromTriplets(n, n, edges);
}

}  // namespace

int main() {
  const int64_t n = 512;
  const int64_t block = 64;
  const double damping = 0.85;
  const int iterations = 25;

  // Column-stochastic M: M[u][v] = 1/outdeg(v) for each edge v→u.
  const CsrMatrix adjacency = MakeGraph(n, 2026);
  std::vector<double> outdeg(static_cast<size_t>(n), 0.0);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t k = adjacency.row_ptr()[v]; k < adjacency.row_ptr()[v + 1];
         ++k) {
      outdeg[static_cast<size_t>(v)] += adjacency.values()[k];
    }
  }
  std::vector<Triplet> link_entries;
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t k = adjacency.row_ptr()[v]; k < adjacency.row_ptr()[v + 1];
         ++k) {
      const int64_t u = adjacency.col_idx()[k];
      link_entries.push_back(
          {u, v, adjacency.values()[k] / outdeg[static_cast<size_t>(v)]});
    }
  }
  auto link = CsrMatrix::FromTriplets(n, n, link_entries);
  DISTME_CHECK_OK(link.status());

  core::Session::Options options;
  options.cluster = ClusterConfig::Local(3, 2);
  options.mode = engine::ComputeMode::kGpuStreaming;
  options.planner = std::make_shared<core::DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  core::Session session(std::move(options));

  auto m = session.FromGrid(BlockGrid::FromCsr(*link, block));
  DISTME_CHECK_OK(m.status());
  std::printf("graph: %lld nodes, %lld edges (sparsity %.4f)\n",
              static_cast<long long>(n),
              static_cast<long long>(link->nnz()),
              static_cast<double>(link->nnz()) / (n * n));

  // r0 = 1/N, teleport = (1-d)/N.
  BlockGrid r0(BlockedShape{n, 1, block});
  BlockGrid teleport_grid(BlockedShape{n, 1, block});
  for (int64_t bi = 0; bi < r0.block_rows(); ++bi) {
    DenseMatrix ones(r0.shape().BlockRowsAt(bi), 1);
    ones.Fill(1.0 / static_cast<double>(n));
    DISTME_CHECK_OK(r0.Put({bi, 0}, Block::Dense(ones)));
    DenseMatrix tele(r0.shape().BlockRowsAt(bi), 1);
    tele.Fill((1.0 - damping) / static_cast<double>(n));
    DISTME_CHECK_OK(teleport_grid.Put({bi, 0}, Block::Dense(tele)));
  }
  auto rank = session.FromGrid(r0);
  auto teleport = session.FromGrid(teleport_grid);
  DISTME_CHECK_OK(rank.status());
  DISTME_CHECK_OK(teleport.status());

  core::Matrix r = *rank;
  for (int iter = 0; iter < iterations; ++iter) {
    auto mr = session.Multiply(*m, r);
    DISTME_CHECK_OK(mr.status());
    auto damped = session.Scale(*mr, damping);
    DISTME_CHECK_OK(damped.status());
    auto next = session.ElementWise(blas::ElementWiseOp::kAdd, *damped,
                                    *teleport);
    DISTME_CHECK_OK(next.status());
    // Convergence: ||r' − r||₁ via Sum of |difference| — approximate with
    // the Frobenius norm of the difference.
    auto diff = session.ElementWise(blas::ElementWiseOp::kSub, *next, r);
    DISTME_CHECK_OK(diff.status());
    auto delta = session.FrobeniusNorm(*diff);
    DISTME_CHECK_OK(delta.status());
    r = *next;
    if ((iter + 1) % 5 == 0 || *delta < 1e-10) {
      std::printf("  iteration %2d: ||Δr||_F = %.3e\n", iter + 1, *delta);
    }
    if (*delta < 1e-10) break;
  }

  // Mass conservation: ranks sum to 1.
  auto total = session.Sum(r);
  DISTME_CHECK_OK(total.status());
  std::printf("rank mass: %.6f (should be 1.0)\n", *total);

  // Top 5 pages.
  const DenseMatrix final_rank = r.Collect().ToDense();
  std::vector<std::pair<double, int64_t>> scored;
  for (int64_t v = 0; v < n; ++v) scored.emplace_back(final_rank.At(v, 0), v);
  std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                    std::greater<>());
  std::printf("top pages:\n");
  for (int i = 0; i < 5; ++i) {
    std::printf("  node %3lld  rank %.5f\n",
                static_cast<long long>(scored[i].second), scored[i].first);
  }
  std::printf("%zu distributed multiplications executed (method: %s)\n",
              session.history().size(),
              session.history().back().method_name.c_str());
  return std::abs(*total - 1.0) < 1e-6 ? 0 : 1;
}
