// Figure 6(b)/(e): two matrices with a common large dimension,
// 10K × N × 10K, N ∈ {100K, 500K, 1M, 5M}, sparsity 0.5.

#include "fig6_common.h"

int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  using distme::bench::Fig6Point;
  using distme::bench::PaperValue;
  const auto n = PaperValue::Num;
  const auto approx = PaperValue::Approx;
  const auto oom = PaperValue::Oom;
  std::vector<Fig6Point> points = {
      {"100K", 10000, 100000, 10000,
       n(37), n(26), n(28), n(19),
       n(1232), n(428), approx(401), approx(291)},
      {"500K", 10000, 500000, 10000,
       n(153), n(94), approx(63), n(63),
       n(5982), n(1872), oom(), n(512)},
      {"1M", 10000, 1000000, 10000,
       n(382), n(251), oom(), n(75),
       n(35728), n(27893), oom(), n(1235)},
      {"5M", 10000, 5000000, 10000,
       n(2292), n(1281), oom(), n(327),
       n(440983), n(350973), oom(), n(5812)},
  };
  // Table 4's published parameters for this shape skip the parallelism
  // pruning (R* = 9..176 < M·Tc); match that setting.
  distme::bench::RunFig6("(b)/(e)",
                         "common large dimension (10K x N x 10K)", points,
                         /*prune_parallelism=*/false, &obs);
  return 0;
}
