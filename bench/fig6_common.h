// Shared driver for the Figure 6 reproductions: runs BMM, CPMM, RMM and
// CuboidMM on the simulated paper cluster (GPU on, as in Section 6.2) and
// prints elapsed time + communication volume against the paper's values.

#pragma once

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "engine/sim_executor.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme::bench {

struct Fig6Point {
  const char* label;  // e.g. "70K"
  int64_t i, k, j;    // element dimensions
  // Paper values per method: elapsed seconds and transferred MB.
  PaperValue rmm_s, cpmm_s, bmm_s, cuboid_s;
  PaperValue rmm_mb, cpmm_mb, bmm_mb, cuboid_mb;
};

inline void RunFig6(const char* figure, const char* shape_label,
                    const std::vector<Fig6Point>& points,
                    bool prune_parallelism = true, BenchObs* obs = nullptr) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  if (obs != nullptr) obs->Wire(&gpu);

  Banner(std::string("Figure 6 ") + figure + " — " + shape_label +
         " (sparsity 0.5, GPU on)");
  Table elapsed({"N", "RMM", "CPMM", "BMM", "CuboidMM"});
  Table comm({"N", "RMM", "CPMM", "BMM", "CuboidMM"});

  for (const Fig6Point& pt : points) {
    mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(pt.i, pt.k, pt.j, 1000);
    p.a.sparsity = p.b.sparsity = 0.5;

    auto run = [&](const mm::Method& method) {
      auto report = executor.Run(p, method, gpu);
      if (!report.ok()) {
        engine::MMReport bad;
        bad.outcome = report.status();
        return bad;
      }
      return *report;
    };

    const engine::MMReport rmm = run(mm::RmmMethod());
    const engine::MMReport cpmm = run(mm::CpmmMethod());
    const engine::MMReport bmm = run(mm::BmmMethod());

    mm::OptimizerOptions opt_options;
    opt_options.enforce_parallelism = prune_parallelism;
    auto opt = mm::OptimizeCuboid(p, cluster, opt_options);
    engine::MMReport cuboid;
    if (opt.ok()) {
      cuboid = run(mm::CuboidMethod(opt->spec));
    } else {
      cuboid.outcome = opt.status();
    }

    elapsed.AddRow({pt.label, Compare(rmm, pt.rmm_s),
                    Compare(cpmm, pt.cpmm_s), Compare(bmm, pt.bmm_s),
                    Compare(cuboid, pt.cuboid_s)});
    auto mb = [](const engine::MMReport& r) {
      if (!r.outcome.ok() && r.total_shuffle_bytes() == 0) {
        return std::string(r.OutcomeLabel());
      }
      return FormatBytes(r.total_shuffle_bytes());
    };
    comm.AddRow({pt.label, mb(rmm) + " [paper " + pt.rmm_mb.ToString("MB") + "]",
                 mb(cpmm) + " [paper " + pt.cpmm_mb.ToString("MB") + "]",
                 mb(bmm) + " [paper " + pt.bmm_mb.ToString("MB") + "]",
                 mb(cuboid) + " [paper " + pt.cuboid_mb.ToString("MB") + "]"});
  }
  std::printf("\nElapsed time:\n");
  elapsed.Print();
  std::printf(
      "\nCommunication (our raw shuffled bytes vs the paper's reported\n"
      "post-serialization shuffle volume — compare ratios between methods,\n"
      "not absolute magnitudes; see EXPERIMENTS.md):\n");
  comm.Print();
}

}  // namespace distme::bench
