// Table 2 reproduction: the analytic communication / memory / parallelism
// comparison of BMM, CPMM, RMM and CuboidMM, evaluated on representative
// shapes (and symbolically verified by tests/cost_model_test.cc).

#include <cstdio>

#include "bench_util.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme {
namespace {

using bench::Banner;
using bench::Table;

void PrintForShape(const char* label, const mm::MMProblem& problem,
                   bench::BenchObs* obs) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  Banner(std::string("Table 2 — ") + label);
  std::printf("A: %lldx%lld, B: %lldx%lld, block %lld, I,J,K = %lld,%lld,%lld\n",
              static_cast<long long>(problem.a.shape.rows),
              static_cast<long long>(problem.a.shape.cols),
              static_cast<long long>(problem.b.shape.rows),
              static_cast<long long>(problem.b.shape.cols),
              static_cast<long long>(problem.a.shape.block_size),
              static_cast<long long>(problem.I()),
              static_cast<long long>(problem.J()),
              static_cast<long long>(problem.K()));

  auto opt = mm::OptimizeCuboid(problem, cluster);
  Table table({"method", "repartition (elems)", "aggregation (elems)",
               "memory/task", "max tasks"});

  auto add = [&](const mm::Method& method) {
    auto cost = method.Analytic(problem, cluster);
    if (!cost.ok()) return;
    table.AddRow({method.name(), FormatCount(cost->repartition_elements),
                  FormatCount(cost->aggregation_elements),
                  FormatBytes(cost->memory_per_task_bytes),
                  FormatCount(cost->max_tasks)});
    const std::string key_prefix =
        std::string("table2/") + label + "/" + method.name() + "/";
    obs->AddResult(key_prefix + "comm_elements",
                   cost->total_comm_elements());
    obs->AddResult(key_prefix + "memory_per_task_bytes",
                   cost->memory_per_task_bytes);
  };
  add(mm::BmmMethod());
  add(mm::CpmmMethod());
  add(mm::RmmMethod());
  if (opt.ok()) {
    add(mm::CuboidMethod(opt->spec));
  } else {
    std::printf("CuboidMM: %s\n", opt.status().ToString().c_str());
  }
  table.Print();
}

}  // namespace
}  // namespace distme

int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  using distme::mm::MMProblem;
  distme::PrintForShape(
      "two general matrices (70K x 70K x 70K, sparsity 0.5)", [] {
        MMProblem p = MMProblem::DenseSquareBlocks(70000, 70000, 70000, 1000);
        p.a.sparsity = p.b.sparsity = 0.5;
        return p;
      }(),
      &obs);
  distme::PrintForShape(
      "common large dimension (10K x 1M x 10K)",
      MMProblem::DenseSquareBlocks(10000, 1000000, 10000, 1000), &obs);
  distme::PrintForShape(
      "two large dimensions (250K x 1K x 250K)",
      MMProblem::DenseSquareBlocks(250000, 1000, 250000, 1000), &obs);
  return 0;
}
