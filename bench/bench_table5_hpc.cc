// Table 5 reproduction: DistME(C) vs the HPC systems ScaLAPACK and SciDB on
// three dense dataset types.

#include <cstdio>

#include "bench_util.h"
#include "systems/profiles.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;  // Table 5 reports runs up to 70 minutes

  struct Row {
    const char* type;
    const char* n_label;
    mm::MMProblem problem;
    bench::PaperValue scalapack, scidb, distme;
  };
  auto dense = [](int64_t i, int64_t k, int64_t j) {
    return mm::MMProblem::DenseSquareBlocks(i, k, j, 1000);
  };
  const auto n = bench::PaperValue::Num;
  const auto oom = bench::PaperValue::Oom;
  const Row rows[] = {
      {"N x N x N", "10K", dense(10000, 10000, 10000), n(31), n(33), n(42)},
      {"N x N x N", "50K", dense(50000, 50000, 50000), n(1865), n(1998),
       n(1663)},
      {"5K x N x 5K", "1M", dense(5000, 1000000, 5000), n(995), n(1069),
       n(326)},
      {"5K x N x 5K", "5M", dense(5000, 5000000, 5000), n(70 * 60), oom(),
       n(27 * 60)},
      {"N x 1K x N", "100K", dense(100000, 1000, 100000), n(248), n(332),
       n(122)},
      {"N x 1K x N", "500K", dense(500000, 1000, 500000), oom(), oom(),
       n(57 * 60)},
  };

  bench::Banner("Table 5 — comparison with ScaLAPACK and SciDB (CPU only)");
  bench::Table table({"type", "N", "ScaLAPACK", "SciDB", "DistME(C)"});
  systems::SystemProfile profiles[3] = {
      systems::ScaLAPACK(), systems::SciDB(), systems::DistME(false)};
  for (auto& profile : profiles) obs.Wire(&profile.sim);
  for (const Row& row : rows) {
    std::vector<std::string> cells = {row.type, row.n_label};
    const bench::PaperValue* paper[3] = {&row.scalapack, &row.scidb,
                                         &row.distme};
    for (int s = 0; s < 3; ++s) {
      auto report = systems::RunMultiply(profiles[s], row.problem, cluster);
      if (!report.ok()) {
        cells.push_back(report.status().ToString());
        continue;
      }
      cells.push_back(bench::Compare(*report, *paper[s]));
    }
    table.AddRow(cells);
  }
  table.Print();
  return 0;
}
