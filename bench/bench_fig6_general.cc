// Figure 6(a)/(d): two general matrices, N × N × N, N ∈ {70K..100K},
// sparsity 0.5 — elapsed time and communication for the four methods.

#include "fig6_common.h"

int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  using distme::bench::Fig6Point;
  using distme::bench::PaperValue;
  const auto n = PaperValue::Num;
  const auto oom = PaperValue::Oom;
  std::vector<Fig6Point> points = {
      {"70K", 70000, 70000, 70000,
       n(796), n(434), n(390), n(206),
       n(22253), n(17285), n(39921), n(1730)},
      {"80K", 80000, 80000, 80000,
       n(1185), n(594), oom(), n(247),
       n(59651) /* per-figure ordering is approximate */, n(27379), oom(),
       n(2751)},
      {"90K", 90000, 90000, 90000,
       n(1757), n(797), oom(), n(329),
       n(84731), n(35637), oom(), n(3602)},
      {"100K", 100000, 100000, 100000,
       n(2712), n(1236), oom(), n(444),
       n(116231), n(48786), oom(), n(5974)},
  };
  distme::bench::RunFig6("(a)/(d)", "two general matrices (N x N x N)",
                         points, /*prune_parallelism=*/true, &obs);
  return 0;
}
