// Figure 8(a)-(c): accumulated GNMF execution time over 10 iterations on the
// three (synthesized) rating datasets, across the seven systems of
// Section 6.4 (factor dimension 200).

#include <cstdio>

#include "bench_util.h"
#include "systems/profiles.h"

namespace distme {
namespace {

core::GnmfSimOptions MakeOptions(const RatingDataset& dataset,
                                 int64_t factor_dim) {
  core::GnmfSimOptions options;
  options.v = mm::MatrixDescriptor::Sparse(
      dataset.users, dataset.items, 1000,
      static_cast<double>(dataset.ratings) /
          (static_cast<double>(dataset.users) * dataset.items));
  options.factor_dim = factor_dim;
  options.iterations = 10;
  options.cluster = ClusterConfig::Paper();
  options.cluster.timeout_seconds = 1e9;
  return options;
}

void RunDataset(const char* figure, const RatingDataset& dataset,
                double paper_distme_vs_matfast,
                double paper_distme_vs_systemml, bench::BenchObs* obs) {
  bench::Banner(std::string("Figure 8") + figure + " — GNMF on " +
                dataset.name + " (factor dim 200, 10 iterations)");
  std::printf("dataset: %lld ratings, %lld users, %lld items\n",
              static_cast<long long>(dataset.ratings),
              static_cast<long long>(dataset.users),
              static_cast<long long>(dataset.items));

  const systems::SystemProfile profiles[] = {
      systems::MatFast(false), systems::MatFast(true),
      systems::SystemML(false), systems::SystemML(true),
      systems::DMac(),         systems::DistME(false),
      systems::DistME(true)};
  core::GnmfSimOptions options = MakeOptions(dataset, 200);
  obs->Wire(&options.sim);

  bench::Table table(
      {"system", "iter 1", "iter 5", "iter 10 (total)", "vs DistME(G)"});
  double distme_g_total = 0;
  std::vector<core::GnmfSimReport> reports;
  std::vector<std::string> names;
  for (const auto& profile : profiles) {
    auto report = systems::RunGnmfSim(profile, options);
    if (!report.ok()) continue;
    if (profile.name == "DistME(G)" && report->outcome.ok()) {
      distme_g_total = report->total_seconds;
    }
    reports.push_back(*report);
    names.push_back(profile.name);
  }
  for (size_t s = 0; s < reports.size(); ++s) {
    const auto& r = reports[s];
    if (!r.outcome.ok()) {
      engine::MMReport proxy;
      proxy.outcome = r.outcome;
      table.AddRow({names[s], proxy.OutcomeLabel(), "-", "-", "-"});
      continue;
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2fx",
                  distme_g_total > 0 ? r.total_seconds / distme_g_total : 0.0);
    table.AddRow({names[s], FormatSeconds(r.AccumulatedSeconds(1)),
                  FormatSeconds(r.AccumulatedSeconds(5)),
                  FormatSeconds(r.total_seconds), ratio});
  }
  table.Print();
  std::printf(
      "paper: DistME(G) outperforms MatFast(G) by %.2fx and SystemML(G) by "
      "%.2fx\n",
      paper_distme_vs_matfast, paper_distme_vs_systemml);
}

}  // namespace
}  // namespace distme

int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  distme::RunDataset("(a)", distme::MovieLens(), 1.56, 1.20, &obs);
  distme::RunDataset("(b)", distme::Netflix(), 3.50, 1.70, &obs);
  distme::RunDataset("(c)", distme::YahooMusic(), 3.45, 1.92, &obs);
  return 0;
}
