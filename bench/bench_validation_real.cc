// Real-execution validation at reduced scale: every distributed method and
// compute mode actually computes C = A × B on the in-process cluster and is
// checked bit-for-bit against the single-node reference, with measured
// shuffle bytes alongside the analytic model's prediction.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);

  GeneratorOptions ga;
  ga.rows = 96;
  ga.cols = 80;
  ga.block_size = 16;
  ga.sparsity = 1.0;
  ga.seed = 7;
  GeneratorOptions gb;
  gb.rows = 80;
  gb.cols = 64;
  gb.block_size = 16;
  gb.sparsity = 1.0;
  gb.seed = 8;
  BlockGrid grid_a = GenerateUniform(ga);
  BlockGrid grid_b = GenerateUniform(gb);
  auto reference = blas::LocalMultiply(grid_a, grid_b);
  DISTME_CHECK_OK(reference.status());

  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(grid_a, 3);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(grid_b, 3);
  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};

  bench::Banner("Real-execution validation (96x80 x 80x64, block 16, "
                "3 nodes x 2 tasks)");
  bench::Table table({"method", "mode", "correct", "tasks", "shuffle bytes",
                      "sim-model bytes", "wall"});

  engine::RealExecutor executor(cluster);
  engine::SimExecutor sim(cluster);

  auto run = [&](const mm::Method& method, engine::ComputeMode mode) {
    engine::RealOptions options;
    options.mode = mode;
    obs.Wire(&options);
    auto result = executor.Run(a, b, method, options);
    if (!result.ok() || !result->report.outcome.ok()) {
      table.AddRow({method.name(), engine::ComputeModeName(mode),
                    result.ok() ? result->report.outcome.ToString()
                                : result.status().ToString(),
                    "-", "-", "-", "-"});
      return;
    }
    const bool correct = DenseMatrix::ApproxEquals(
        result->output->Collect().ToDense(), reference->ToDense(), 1e-9);
    auto sim_report = sim.Run(problem, method, {});
    const std::string key_prefix = std::string("validation/") +
                                   method.name() + "/" +
                                   engine::ComputeModeName(mode) + "/";
    obs.AddResult(key_prefix + "shuffle_bytes",
                  result->report.total_shuffle_bytes());
    obs.AddResult(key_prefix + "num_tasks",
                  static_cast<double>(result->report.num_tasks));
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.1fms",
                  result->report.elapsed_seconds * 1e3);
    table.AddRow(
        {method.name(), engine::ComputeModeName(mode),
         correct ? "yes" : "NO!", std::to_string(result->report.num_tasks),
         FormatBytes(result->report.total_shuffle_bytes()),
         sim_report.ok() ? FormatBytes(sim_report->total_shuffle_bytes())
                         : "-",
         wall});
    if (!correct) std::exit(1);
  };

  mm::OptimizerOptions opt_options;
  opt_options.enforce_parallelism = false;
  auto opt = mm::OptimizeCuboid(problem, cluster, opt_options);
  DISTME_CHECK_OK(opt.status());

  std::unique_ptr<mm::Method> methods[] = {
      std::make_unique<mm::BmmMethod>(),
      std::make_unique<mm::CpmmMethod>(),
      std::make_unique<mm::RmmMethod>(),
      std::make_unique<mm::CuboidMethod>(opt->spec),
      std::make_unique<mm::SummaMethod>(),
      std::make_unique<mm::CrmmMethod>(2),
  };
  for (const auto& method : methods) {
    run(*method, engine::ComputeMode::kCpu);
    run(*method, method->SupportsGpuStreaming()
                     ? engine::ComputeMode::kGpuStreaming
                     : engine::ComputeMode::kGpuBlock);
  }
  table.Print();
  std::printf("\nAll products match the single-node reference.\n");
  return 0;
}
