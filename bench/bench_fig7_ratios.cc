// Figure 7(e): time ratios of the three distributed multiplication steps
// (matrix repartition / local multiplication / matrix aggregation) for
// MatFast, SystemML and DistME — CPU variants on 40K³, GPU variants on
// 5K × 5M × 5K.

#include <cstdio>

#include "bench_util.h"
#include "systems/profiles.h"

namespace distme {
namespace {

void PrintRatios(const char* label, systems::SystemProfile profile,
                 const mm::MMProblem& problem, const ClusterConfig& cluster,
                 bench::Table* table, const char* paper,
                 bench::BenchObs* obs) {
  obs->Wire(&profile.sim);
  auto report = systems::RunMultiply(profile, problem, cluster);
  if (!report.ok() || !report->outcome.ok()) {
    table->AddRow({label,
                   report.ok() ? report->OutcomeLabel()
                               : report.status().ToString(),
                   "-", "-", paper});
    return;
  }
  const double total = report->steps.total();
  char rep[32], mul[32], agg[32];
  std::snprintf(rep, sizeof(rep), "%.1f%%",
                100.0 * report->steps.repartition_seconds / total);
  std::snprintf(mul, sizeof(mul), "%.1f%%",
                100.0 * report->steps.multiply_seconds / total);
  std::snprintf(agg, sizeof(agg), "%.1f%%",
                100.0 * report->steps.aggregation_seconds / total);
  table->AddRow({label, rep, mul, agg, paper});
}

}  // namespace
}  // namespace distme

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;

  bench::Banner("Figure 7(e) — time ratio of the three steps");
  bench::Table table({"system", "repartition", "local multiply",
                      "aggregation", "paper (rep/mul/agg)"});

  // CPU panel: 40K x 40K x 40K dense (MatFast O.O.M.s here in both the
  // paper and our run; its row reports that).
  const mm::MMProblem cpu_problem =
      mm::MMProblem::DenseSquareBlocks(40000, 40000, 40000, 1000);
  PrintRatios("MatFast(C) 40K^3", systems::MatFast(false), cpu_problem,
              cluster, &table, "2.6 / 77.7 / 19.7", &obs);
  PrintRatios("SystemML(C) 40K^3", systems::SystemML(false), cpu_problem,
              cluster, &table, "2.3 / 77.9 / 19.8", &obs);
  PrintRatios("DistME(C) 40K^3", systems::DistME(false), cpu_problem,
              cluster, &table, "5.5 / 90.8 / 3.7", &obs);

  // GPU panel: 5K x 5M x 5K dense.
  const mm::MMProblem gpu_problem =
      mm::MMProblem::DenseSquareBlocks(5000, 5000000, 5000, 1000);
  PrintRatios("MatFast(G) 5Kx5Mx5K", systems::MatFast(true), gpu_problem,
              cluster, &table, "4.6 / 58.3 / 37.1", &obs);
  PrintRatios("SystemML(G) 5Kx5Mx5K", systems::SystemML(true), gpu_problem,
              cluster, &table, "5.6 / 48.1 / 46.3", &obs);
  PrintRatios("DistME(G) 5Kx5Mx5K", systems::DistME(true), gpu_problem,
              cluster, &table, "27.2 / 54.3 / 18.5", &obs);
  table.Print();
  return 0;
}
