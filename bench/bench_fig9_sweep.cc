// Figure 9 reproduction: sweeping (P, Q, R) around the optimum for the
// 70K × 70K × 70K sparsity-0.5 dataset — (a) elapsed time and (b)
// communication volume vs the analytic Cost() function.

#include <cstdio>

#include "bench_util.h"
#include "engine/sim_executor.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  obs.Wire(&gpu);

  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000,
                                                     1000);
  p.a.sparsity = p.b.sparsity = 0.5;

  // Figure 9(a): (P, R) sweep at Q ∈ {7, 10, 14}.
  bench::Banner("Figure 9(a) — elapsed time while varying (P, Q, R)");
  struct PaperA {
    int64_t p, r;
    double q7, q10, q14;
  };
  const PaperA paper_a[] = {
      {10, 4, 237, 244, 269}, {8, 4, 232, 243, 266}, {6, 4, 223, 232, 256},
      {4, 4, 206, 220, 232},  {4, 5, 215, 232, 243}, {4, 6, 232, 239, 251},
      {4, 7, 239, 240, 255},
  };
  bench::Table ta({"(P,R)", "Q=7", "Q=7 paper", "Q=10", "Q=10 paper", "Q=14",
                   "Q=14 paper"});
  for (const PaperA& row : paper_a) {
    std::vector<std::string> cells;
    char label[32];
    std::snprintf(label, sizeof(label), "(%lld,%lld)",
                  static_cast<long long>(row.p),
                  static_cast<long long>(row.r));
    cells.push_back(label);
    const double papers[3] = {row.q7, row.q10, row.q14};
    const int64_t qs[3] = {7, 10, 14};
    for (int i = 0; i < 3; ++i) {
      mm::CuboidMethod method(mm::CuboidSpec{row.p, qs[i], row.r});
      auto report = executor.Run(p, method, gpu);
      cells.push_back(report.ok() ? report->OutcomeLabel()
                                  : report.status().ToString());
      char pv[32];
      std::snprintf(pv, sizeof(pv), "%.0fs", papers[i]);
      cells.push_back(pv);
    }
    ta.AddRow(cells);
  }
  ta.Print();

  // The optimizer's pick must be the sweep's minimum (paper: (4,7,4)).
  auto opt = mm::OptimizeCuboid(p, cluster);
  if (opt.ok()) {
    std::printf("\noptimizer choice: (%lld,%lld,%lld), Cost() = %s elems\n",
                static_cast<long long>(opt->spec.P),
                static_cast<long long>(opt->spec.Q),
                static_cast<long long>(opt->spec.R),
                FormatCount(opt->cost_elements).c_str());
  }

  // Figure 9(b): communication and Cost() along the (P,7,4)/(4,7,R) path.
  bench::Banner("Figure 9(b) — transferred data and Cost() while varying "
                "(P, Q, R)");
  struct PaperB {
    int64_t p, q, r;
    double gb;
    double cost_e9;
  };
  const PaperB paper_b[] = {
      {10, 7, 4, 5.6, 61.25}, {8, 7, 4, 4.7, 56.35}, {6, 7, 4, 2.5, 51.45},
      {4, 7, 4, 1.7, 46.55},  {4, 7, 5, 2.1, 51.45}, {4, 7, 6, 4.4, 56.35},
      {4, 7, 7, 5.5, 61.25},
  };
  bench::Table tb({"(P,Q,R)", "our bytes", "paper GB", "Cost() (ours)",
                   "Cost() (paper)"});
  for (const PaperB& row : paper_b) {
    const mm::CuboidSpec spec{row.p, row.q, row.r};
    mm::CuboidMethod method(spec);
    auto report = executor.Run(p, method, gpu);
    char label[32], cost_ours[32], cost_paper[32], paper_gb[32];
    std::snprintf(label, sizeof(label), "(%lld,%lld,%lld)",
                  static_cast<long long>(row.p),
                  static_cast<long long>(row.q),
                  static_cast<long long>(row.r));
    std::snprintf(cost_ours, sizeof(cost_ours), "%.2fe9",
                  mm::CuboidCostElements(p, spec) / 1e9);
    std::snprintf(cost_paper, sizeof(cost_paper), "%.2fe9", row.cost_e9);
    std::snprintf(paper_gb, sizeof(paper_gb), "%.1fGB", row.gb);
    tb.AddRow({label,
               report.ok() ? FormatBytes(report->total_shuffle_bytes())
                           : report.status().ToString(),
               paper_gb, cost_ours, cost_paper});
  }
  tb.Print();
  std::printf(
      "\nOur Cost() reproduces the paper's red curve exactly; measured bytes\n"
      "differ in absolute magnitude (Spark's compressed shuffle) but follow\n"
      "the same U-shape around the optimum.\n");
  return 0;
}
