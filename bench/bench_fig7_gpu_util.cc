// Figure 7(g): GPU core utilization during the local multiplication step —
// DistME's cuboid-level streaming vs the block-level execution of the
// GPU-modified MatFast and SystemML, for dense and sparse inputs.

#include <cstdio>

#include "bench_util.h"
#include "systems/profiles.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;

  mm::MMProblem dense =
      mm::MMProblem::DenseSquareBlocks(40000, 40000, 40000, 1000);
  mm::MMProblem sparse =
      mm::MMProblem::DenseSquareBlocks(500000, 1000000, 1000, 1000);
  sparse.a.sparsity = 1e-3;
  sparse.a.stored_dense = false;

  struct PaperUtil {
    double dense_pct;
    double sparse_pct;
  };
  systems::SystemProfile profiles[3] = {
      systems::MatFast(true), systems::SystemML(true), systems::DistME(true)};
  for (auto& profile : profiles) obs.Wire(&profile.sim);
  const PaperUtil paper[3] = {{72.8, 40.2}, {69.2, 39.4}, {98.4, 79.7}};

  bench::Banner("Figure 7(g) — GPU core utilization (local multiply step)");
  bench::Table table({"system", "dense (measured)", "dense (paper)",
                      "sparse (measured)", "sparse (paper)"});
  for (int s = 0; s < 3; ++s) {
    auto dense_report = systems::RunMultiply(profiles[s], dense, cluster);
    auto sparse_report = systems::RunMultiply(profiles[s], sparse, cluster);
    auto cell = [](const Result<engine::MMReport>& r) -> std::string {
      if (!r.ok()) return r.status().ToString();
      if (!r->outcome.ok()) return r->OutcomeLabel();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * r->gpu_utilization);
      return buf;
    };
    char dp[32], sp[32];
    std::snprintf(dp, sizeof(dp), "%.1f%%", paper[s].dense_pct);
    std::snprintf(sp, sizeof(sp), "%.1f%%", paper[s].sparse_pct);
    table.AddRow({profiles[s].name, cell(dense_report), dp,
                  cell(sparse_report), sp});
  }
  table.Print();
  std::printf(
      "\nNote: MatFast(C/G) O.O.M.s on the dense 40K^3 input in both the\n"
      "paper's Figure 7(a) and our model; the paper's utilization bars were\n"
      "measured on the sizes it completed.\n");
  return 0;
}
