// Figure 7(g): GPU core utilization during the local multiplication step —
// DistME's cuboid-level streaming vs the block-level execution of the
// GPU-modified MatFast and SystemML, for dense and sparse inputs.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "gpu/device.h"
#include "gpumm/streaming.h"
#include "gpumm/subcuboid.h"
#include "matrix/generator.h"
#include "obs/flight_recorder.h"
#include "obs/gpu_timeline.h"
#include "systems/profiles.h"

namespace distme {
namespace {

// Consistency check: the analytic streaming model (EstimateStreamingTime,
// what the Figure 7(g) table above reports at paper scale) against the
// *measured* copy/compute overlap of an actual Algorithm-1 run, as
// reconstructed from the device's schema-3 flight events by
// obs::AnalyzeGpuTimeline. Three numbers must agree:
//   - modelled GPU utilization (kernel_seconds / elapsed_seconds),
//   - measured kernel_utilization from the engine-timeline sweep,
//   - the device's own counters (stats().kernel_seconds over the window).
// Runs at a block size (128) where one copy/kernel is tens of µs, so the
// 1-µs quantization of the virtual clock stays ~1% of any interval. Returns
// non-zero (CI-failing) when the model drifts from the measurement.
int RunConsistencyCheck(bench::BenchObs* obs) {
  const int64_t bs = 128;
  const int64_t blocks = 4;  // 4x4x4 blocks = 512^3 elements
  GeneratorOptions ga;
  ga.rows = ga.cols = blocks * bs;
  ga.block_size = bs;
  ga.sparsity = 1.0;
  ga.seed = 7;
  GeneratorOptions gb = ga;
  gb.seed = 8;
  const BlockGrid a = GenerateUniform(ga);
  const BlockGrid b = GenerateUniform(gb);
  const HardwareModel hw;
  const int64_t theta_g = 4 * kMiB;

  // Measured side: run the cuboid with a flight ring on the device and
  // rebuild the engine timelines from the interval events.
  gpumm::GridBlockSource source(&a, &b);
  gpu::Device device(GpuSpec{}, hw);
  obs::FlightRecorder flight(8192);
  device.AttachFlight(&flight, 0, 0);
  const auto box = mm::VoxelSet::Box(0, blocks, 0, blocks, 0, blocks);
  auto result = gpumm::RunCuboidOnGpu(box, a.shape(), b.shape(), &source,
                                      &device, theta_g);
  if (!result.ok()) {
    std::fprintf(stderr, "consistency run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const obs::GpuTimelineAnalysis analysis =
      obs::AnalyzeGpuTimeline(flight.Snapshot(), hw.pcie_bandwidth);
  if (analysis.empty() || analysis.run.window_us() <= 0) {
    std::fprintf(stderr, "consistency run emitted no device intervals\n");
    return 1;
  }
  const double measured = analysis.run.kernel_utilization();

  // Device-counter side: the same utilization from DeviceStats, which the
  // timeline must agree with (both derive from the same virtual schedule).
  const double window_seconds =
      static_cast<double>(analysis.run.window_us()) * 1e-6;
  const double counters = result->stats.kernel_seconds / window_seconds;

  // Modelled side: the same SubcuboidProblem the executor solved.
  gpumm::SubcuboidProblem sp;
  sp.i_blocks = sp.j_blocks = sp.k_blocks = blocks;
  sp.a_bytes = sp.b_bytes = sp.c_bytes =
      static_cast<double>(blocks * blocks * bs * bs * 8);
  sp.flops = 2.0 * static_cast<double>(box.size()) * static_cast<double>(bs) *
             static_cast<double>(bs) * static_cast<double>(bs);
  auto sub = gpumm::OptimizeSubcuboid(sp, theta_g);
  if (!sub.ok()) {
    std::fprintf(stderr, "subcuboid optimizer failed: %s\n",
                 sub.status().ToString().c_str());
    return 1;
  }
  const gpumm::GpuTaskTime est =
      gpumm::EstimateStreamingTime(sp, *sub, hw, /*sparse=*/false, 1.0, 1.0);
  const double modelled =
      est.elapsed_seconds > 0 ? est.kernel_seconds / est.elapsed_seconds : 0;

  std::printf(
      "\nConsistency (512^3, block %lld): modelled util %.1f%% | measured "
      "(timeline) %.1f%% | device counters %.1f%% | overlap %.1f%% of "
      "copies | %lld bubbles\n",
      static_cast<long long>(bs), 100.0 * modelled, 100.0 * measured,
      100.0 * counters, 100.0 * analysis.run.overlap_ratio(),
      static_cast<long long>(analysis.run.bubble_count));

  // The timeline and the device's own counters describe the same virtual
  // schedule; they may differ only by µs quantization (~2%).
  if (std::fabs(measured - counters) > 0.02) {
    std::fprintf(stderr,
                 "DRIFT: timeline utilization %.3f vs device counters %.3f "
                 "(> 0.02 apart)\n",
                 measured, counters);
    return 1;
  }
  // The analytic model abstracts chunking/launch boundaries; hold it to a
  // relative band rather than equality.
  if (modelled <= 0 ||
      std::fabs(measured - modelled) / modelled > 0.25) {
    std::fprintf(stderr,
                 "DRIFT: measured utilization %.3f vs modelled %.3f "
                 "(> 25%% apart)\n",
                 measured, modelled);
    return 1;
  }
  obs->AddResult("gpu_util_modelled", modelled);
  obs->AddResult("gpu_util_measured", measured);
  obs->AddResult("gpu_overlap_ratio", analysis.run.overlap_ratio());
  return 0;
}

}  // namespace
}  // namespace distme

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;

  mm::MMProblem dense =
      mm::MMProblem::DenseSquareBlocks(40000, 40000, 40000, 1000);
  mm::MMProblem sparse =
      mm::MMProblem::DenseSquareBlocks(500000, 1000000, 1000, 1000);
  sparse.a.sparsity = 1e-3;
  sparse.a.stored_dense = false;

  struct PaperUtil {
    double dense_pct;
    double sparse_pct;
  };
  systems::SystemProfile profiles[3] = {
      systems::MatFast(true), systems::SystemML(true), systems::DistME(true)};
  for (auto& profile : profiles) obs.Wire(&profile.sim);
  const PaperUtil paper[3] = {{72.8, 40.2}, {69.2, 39.4}, {98.4, 79.7}};

  bench::Banner("Figure 7(g) — GPU core utilization (local multiply step)");
  bench::Table table({"system", "dense (measured)", "dense (paper)",
                      "sparse (measured)", "sparse (paper)"});
  for (int s = 0; s < 3; ++s) {
    auto dense_report = systems::RunMultiply(profiles[s], dense, cluster);
    auto sparse_report = systems::RunMultiply(profiles[s], sparse, cluster);
    auto cell = [](const Result<engine::MMReport>& r) -> std::string {
      if (!r.ok()) return r.status().ToString();
      if (!r->outcome.ok()) return r->OutcomeLabel();
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * r->gpu_utilization);
      return buf;
    };
    char dp[32], sp[32];
    std::snprintf(dp, sizeof(dp), "%.1f%%", paper[s].dense_pct);
    std::snprintf(sp, sizeof(sp), "%.1f%%", paper[s].sparse_pct);
    table.AddRow({profiles[s].name, cell(dense_report), dp,
                  cell(sparse_report), sp});
  }
  table.Print();
  std::printf(
      "\nNote: MatFast(C/G) O.O.M.s on the dense 40K^3 input in both the\n"
      "paper's Figure 7(a) and our model; the paper's utilization bars were\n"
      "measured on the sizes it completed.\n");
  return distme::RunConsistencyCheck(&obs);
}
