// Figure 6(c)/(f): two matrices with two large dimensions, N × 1K × N,
// N ∈ {100K, 250K, 500K, 750K}, sparsity 0.5. Only CuboidMM completes the
// largest size (CPMM/BMM O.O.M., RMM times out).

#include "fig6_common.h"

int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  using distme::bench::Fig6Point;
  using distme::bench::PaperValue;
  const auto n = PaperValue::Num;
  const auto approx = PaperValue::Approx;
  const auto oom = PaperValue::Oom;
  const auto to = PaperValue::To;
  std::vector<Fig6Point> points = {
      {"100K", 100000, 1000, 100000,
       n(44), n(138), n(23), n(18),
       n(1102), approx(21), approx(7), approx(7)},
      {"250K", 250000, 1000, 250000,
       n(379), n(883), n(248), n(62),
       n(6983), approx(402), approx(231), n(231)},
      {"500K", 500000, 1000, 500000,
       n(1440), oom(), n(390), n(240),
       n(21903), oom(), approx(839), n(839)},
      {"750K", 750000, 1000, 750000,
       to(), oom(), oom(), n(357),
       to(), oom(), oom(), n(1814)},
  };
  distme::bench::RunFig6("(c)/(f)", "two large dimensions (N x 1K x N)",
                         points, /*prune_parallelism=*/true, &obs);
  return 0;
}
