// Ablation: the GPU acceleration design choices of Section 4 —
// (1) cuboid-level streaming vs naive block-level execution,
// (2) the Eq. (5)/(6) subcuboid optimizer vs fixed partitionings,
// (3) sensitivity to the per-task GPU memory budget θg.

#include <cstdio>

#include "bench_util.h"
#include "engine/sim_executor.h"
#include "gpumm/subcuboid.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);

  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(40000, 40000, 40000,
                                                     1000);
  auto opt = mm::OptimizeCuboid(p, cluster);
  DISTME_CHECK_OK(opt.status());
  mm::CuboidMethod method(opt->spec);

  bench::Banner("Ablation 1 — local-multiply execution strategy (40K^3)");
  {
    bench::Table table({"strategy", "elapsed", "multiply step", "PCI-E bytes",
                        "GPU util"});
    const std::pair<const char*, engine::ComputeMode> modes[] = {
        {"CPU (MKL-class kernels)", engine::ComputeMode::kCpu},
        {"GPU block-level (no streaming)", engine::ComputeMode::kGpuBlock},
        {"GPU cuboid streaming (Section 4)",
         engine::ComputeMode::kGpuStreaming},
    };
    for (const auto& [label, mode] : modes) {
      engine::SimOptions options;
      obs.Wire(&options);
      options.mode = mode;
      auto report = executor.Run(p, method, options);
      DISTME_CHECK_OK(report.status());
      char util[32];
      std::snprintf(util, sizeof(util), "%.1f%%",
                    100.0 * report->gpu_utilization);
      table.AddRow({label, report->OutcomeLabel(),
                    FormatSeconds(report->steps.multiply_seconds),
                    FormatBytes(report->pcie_bytes), util});
    }
    table.Print();
  }

  bench::Banner(
      "Ablation 2 — subcuboid partitioning for a (P,Q,R)=(1,1,K) cuboid "
      "(CPMM-like task, 70 blocks on each axis slice)");
  {
    gpumm::SubcuboidProblem sp;
    sp.i_blocks = 70;
    sp.j_blocks = 70;
    sp.k_blocks = 1;
    const double block_bytes = 8e6;
    sp.a_bytes = 70 * block_bytes;
    sp.b_bytes = 70 * block_bytes;
    sp.c_bytes = 70.0 * 70 * block_bytes;
    sp.flops = 2.0 * 70 * 70 * 1e9;
    bench::Table table({"partitioning", "PCI-E bytes (Eq.6)",
                        "fits θg=1GB?", "est. GPU time"});
    auto row = [&](const char* label, mm::CuboidSpec spec) {
      const double mem = gpumm::SubcuboidMemBytes(sp, spec);
      const bool fits = mem <= 1.0 * kGiB;
      gpumm::OptimizedSubcuboid sub;
      sub.spec = spec;
      sub.pcie_bytes = gpumm::SubcuboidCostBytes(sp, spec);
      sub.memory_bytes = mem;
      const auto t =
          gpumm::EstimateStreamingTime(sp, sub, cluster.hw, false, 10.0);
      table.AddRow({label, FormatBytes(sub.pcie_bytes), fits ? "yes" : "NO",
                    fits ? FormatSeconds(t.elapsed_seconds) : "-"});
    };
    row("(1,1,1) — whole cuboid at once", {1, 1, 1});
    row("(70,70,1) — one block pair at a time", {70, 70, 1});
    row("(7,10,1) — fixed square-ish grid", {7, 10, 1});
    auto best = gpumm::OptimizeSubcuboid(sp, cluster.gpu_task_memory_bytes);
    DISTME_CHECK_OK(best.status());
    char label[64];
    std::snprintf(label, sizeof(label), "(%lld,%lld,%lld) — Eq.(5) optimum",
                  static_cast<long long>(best->spec.P),
                  static_cast<long long>(best->spec.Q),
                  static_cast<long long>(best->spec.R));
    row(label, best->spec);
    table.Print();
  }

  bench::Banner("Ablation 3 — sensitivity to θg (GPU memory per task)");
  {
    bench::Table table({"θg", "multiply step", "PCI-E bytes"});
    for (const int64_t theta_g :
         {int64_t{256} * kMiB, int64_t{1} * kGiB, int64_t{4} * kGiB}) {
      ClusterConfig c = cluster;
      c.gpu_task_memory_bytes = theta_g;
      engine::SimExecutor e(c);
      engine::SimOptions options;
      obs.Wire(&options);
      options.mode = engine::ComputeMode::kGpuStreaming;
      auto report = e.Run(p, method, options);
      DISTME_CHECK_OK(report.status());
      table.AddRow({FormatBytes(static_cast<double>(theta_g)),
                    FormatSeconds(report->steps.multiply_seconds),
                    FormatBytes(report->pcie_bytes)});
    }
    table.Print();
  }
  return 0;
}
