// Table 4 reproduction: the optimal (P*, Q*, R*) CuboidMM parameters chosen
// for the paper's twelve synthetic input shapes, plus the Cost()/Mem()
// values our optimizer achieves. Exact triples can differ from the paper's
// because many candidates tie on Cost() (the paper's own Figure 9(b) shows
// cost-equal neighbours); EXPERIMENTS.md discusses the deviations.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "mm/optimizer.h"

namespace distme {
namespace {

struct Row {
  const char* type;
  int64_t i, k, j;
  const char* paper;  // (P*,Q*,R*) reported in Table 4
  bool prune;         // whether the paper's value satisfies P·Q·R ≥ M·Tc
};

const Row kRows[] = {
    {"two general (NxNxN)", 70000, 70000, 70000, "(4,7,4)", true},
    {"two general (NxNxN)", 80000, 80000, 80000, "(6,7,4)", true},
    {"two general (NxNxN)", 90000, 90000, 90000, "(10,5,5)", true},
    {"two general (NxNxN)", 100000, 100000, 100000, "(7,9,5)", true},
    {"common large dim (10KxNx10K)", 10000, 100000, 10000, "(1,1,9)", false},
    {"common large dim (10KxNx10K)", 10000, 500000, 10000, "(1,1,18)", false},
    {"common large dim (10KxNx10K)", 10000, 1000000, 10000, "(1,1,36)", false},
    {"common large dim (10KxNx10K)", 10000, 5000000, 10000, "(1,1,176)",
     false},
    {"two large dims (Nx1KxN)", 100000, 1000, 100000, "(9,10,1)", true},
    {"two large dims (Nx1KxN)", 250000, 1000, 250000, "(8,13,1)", true},
    {"two large dims (Nx1KxN)", 500000, 1000, 500000, "(17,24,1)", true},
    {"two large dims (Nx1KxN)", 750000, 1000, 750000, "(26,35,1)", true},
};

}  // namespace
}  // namespace distme

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  const ClusterConfig cluster = ClusterConfig::Paper();
  bench::Banner(
      "Table 4 — optimal CuboidMM parameters (M=9, Tc=10, θt=6GB, "
      "block 1000², sparsity 0.5)");
  bench::Table table({"input (I x K x J elems)", "paper (P*,Q*,R*)",
                      "ours (P*,Q*,R*)", "Cost() elems", "Mem() / θt",
                      "search time"});
  for (const auto& row : kRows) {
    mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(row.i, row.k, row.j,
                                                       1000);
    p.a.sparsity = p.b.sparsity = 0.5;
    mm::OptimizerOptions options;
    // Table 4's common-large-dimension rows violate the parallelism pruning
    // the paper states; match the published setting per row.
    options.enforce_parallelism = row.prune;
    Stopwatch watch;
    auto opt = mm::OptimizeCuboid(p, cluster, options);
    const double ms = watch.ElapsedMillis();
    if (!opt.ok()) {
      table.AddRow({std::string(FormatCount(row.i)) + " x " +
                        FormatCount(row.k) + " x " + FormatCount(row.j),
                    row.paper, opt.status().ToString(), "-", "-", "-"});
      continue;
    }
    char ours[64];
    std::snprintf(ours, sizeof(ours), "(%lld,%lld,%lld)",
                  static_cast<long long>(opt->spec.P),
                  static_cast<long long>(opt->spec.Q),
                  static_cast<long long>(opt->spec.R));
    char mem[64];
    std::snprintf(mem, sizeof(mem), "%.2f",
                  opt->memory_bytes /
                      static_cast<double>(cluster.task_memory_bytes));
    table.AddRow({std::string(FormatCount(row.i)) + " x " +
                      FormatCount(row.k) + " x " + FormatCount(row.j),
                  row.paper, ours, FormatCount(opt->cost_elements), mem,
                  FormatSeconds(ms / 1e3)});
  }
  table.Print();
  std::printf(
      "\nNote: ties on Cost() are broken differently than the paper's\n"
      "implementation; the achieved Cost() is the quantity to compare.\n");
  return 0;
}
