// Ablation: CuboidMM design choices — (1) the communication-sharing
// decomposition of Figure 3(b) (what each axis of sharing buys), (2) cubic
// logical blocks (CRMM/Marlin) vs optimally-shaped cuboids, (3) elasticity:
// how (P*,Q*,R*) adapts to cluster resources.

#include <cstdio>

#include "bench_util.h"
#include "engine/sim_executor.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  obs.Wire(&gpu);

  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000,
                                                     1000);
  p.a.sparsity = p.b.sparsity = 0.5;

  bench::Banner(
      "Ablation 1 — communication sharing per axis (70K^3, Figure 3(b))");
  {
    // Start from RMM-like (I,J,K) and enable sharing one axis at a time.
    const int64_t big = 70;
    struct Step {
      const char* label;
      mm::CuboidSpec spec;
    };
    auto opt = mm::OptimizeCuboid(p, cluster);
    DISTME_CHECK_OK(opt.status());
    const Step steps[] = {
        {"(I,J,K) voxel granularity (RMM-like)", {big, big, big}},
        {"share along j only (case 1)", {big, 7, big}},
        {"share along i and j (cases 1+2)", {4, 7, big}},
        {"share all axes — optimal cuboid", opt->spec},
    };
    bench::Table table({"partitioning", "repartition bytes",
                        "aggregation bytes", "elapsed"});
    for (const Step& step : steps) {
      auto report = executor.Run(p, mm::CuboidMethod(step.spec), gpu);
      DISTME_CHECK_OK(report.status());
      table.AddRow({step.label, FormatBytes(report->repartition_bytes),
                    FormatBytes(report->aggregation_bytes),
                    report->OutcomeLabel()});
    }
    table.Print();
  }

  bench::Banner("Ablation 2 — CRMM's cubic logical blocks vs CuboidMM "
                "(Section 7, Marlin comparison)");
  {
    bench::Table table({"shape", "CRMM comm", "CuboidMM comm", "CRMM elapsed",
                        "CuboidMM elapsed"});
    const struct {
      const char* label;
      int64_t i, k, j;
    } shapes[] = {
        {"70K x 70K x 70K", 70000, 70000, 70000},
        {"10K x 1M x 10K", 10000, 1000000, 10000},
        {"250K x 1K x 250K", 250000, 1000, 250000},
    };
    for (const auto& shape : shapes) {
      mm::MMProblem q =
          mm::MMProblem::DenseSquareBlocks(shape.i, shape.k, shape.j, 1000);
      q.a.sparsity = q.b.sparsity = 0.5;
      auto crmm = executor.Run(q, mm::CrmmMethod(), gpu);
      mm::OptimizerOptions oo;
      oo.enforce_parallelism = false;
      auto opt = mm::OptimizeCuboid(q, cluster, oo);
      DISTME_CHECK_OK(crmm.status());
      DISTME_CHECK_OK(opt.status());
      auto cuboid = executor.Run(q, mm::CuboidMethod(opt->spec), gpu);
      DISTME_CHECK_OK(cuboid.status());
      table.AddRow({shape.label, FormatBytes(crmm->total_shuffle_bytes()),
                    FormatBytes(cuboid->total_shuffle_bytes()),
                    crmm->OutcomeLabel(), cuboid->OutcomeLabel()});
    }
    table.Print();
    std::printf(
        "\nCubes cannot reach the cuboid optimum on skewed shapes — the\n"
        "paper's argument against CRMM (Section 7).\n");
  }

  bench::Banner("Ablation 3 — the HPC lineage: SUMMA (c=1) vs 2.5D "
                "replication vs CuboidMM (70K^3, sparsity 0.5)");
  {
    bench::Table table(
        {"method", "grid", "repartition", "aggregation", "elapsed (CPU)"});
    ClusterConfig patient = cluster;
    patient.timeout_seconds = 1e9;
    engine::SimExecutor hpc(patient);
    auto add = [&](const mm::Method& method, const mm::CuboidSpec& grid) {
      auto report = hpc.Run(p, method, {});
      DISTME_CHECK_OK(report.status());
      char label[48];
      std::snprintf(label, sizeof(label), "(%lld,%lld,%lld)",
                    static_cast<long long>(grid.P),
                    static_cast<long long>(grid.Q),
                    static_cast<long long>(grid.R));
      table.AddRow({method.name(), label,
                    FormatBytes(report->repartition_bytes),
                    FormatBytes(report->aggregation_bytes),
                    report->OutcomeLabel()});
    };
    for (const int64_t c : {1, 2, 5, 10}) {
      mm::Summa25dMethod method(c);
      add(method, method.GridFor(p, patient));
    }
    auto opt = mm::OptimizeCuboid(p, patient);
    DISTME_CHECK_OK(opt.status());
    add(mm::CuboidMethod(opt->spec), opt->spec);
    table.Print();
    std::printf(
        "2.5D trades replication for plane communication at a fixed grid;\n"
        "CuboidMM additionally shapes all three axes per input.\n");
  }

  bench::Banner("Ablation 4 — elasticity: (P*,Q*,R*) vs cluster resources "
                "(70K^3)");
  {
    bench::Table table(
        {"cluster", "θt", "(P*,Q*,R*)", "tasks", "Cost() elems"});
    const struct {
      const char* label;
      int nodes;
      int64_t theta_gib;
    } configs[] = {
        {"3 nodes x 10 tasks", 3, 6},  {"9 nodes x 10 tasks", 9, 6},
        {"27 nodes x 10 tasks", 27, 6}, {"9 nodes, θt=2GB", 9, 2},
        {"9 nodes, θt=24GB", 9, 24},
    };
    for (const auto& config : configs) {
      ClusterConfig c = cluster;
      c.num_nodes = config.nodes;
      c.task_memory_bytes = config.theta_gib * kGiB;
      auto opt = mm::OptimizeCuboid(p, c);
      if (!opt.ok()) {
        table.AddRow({config.label, FormatBytes(1.0 * c.task_memory_bytes),
                      opt.status().ToString(), "-", "-"});
        continue;
      }
      char spec[48];
      std::snprintf(spec, sizeof(spec), "(%lld,%lld,%lld)",
                    static_cast<long long>(opt->spec.P),
                    static_cast<long long>(opt->spec.Q),
                    static_cast<long long>(opt->spec.R));
      table.AddRow({config.label,
                    FormatBytes(static_cast<double>(c.task_memory_bytes)),
                    spec, std::to_string(opt->spec.num_cuboids()),
                    FormatCount(opt->cost_elements)});
    }
    table.Print();
  }
  return 0;
}
