// Figure 8(d): GNMF on YahooMusic while varying the factor dimension
// (200 / 500 / 1000). MatFast O.O.M.s for factor dimensions ≥ 500.

#include <cstdio>

#include "bench_util.h"
#include "systems/profiles.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  const RatingDataset dataset = YahooMusic();

  bench::Banner("Figure 8(d) — GNMF on YahooMusic, varying factor dimension");
  bench::Table table({"system", "fd=200", "fd=500", "fd=1000"});

  struct PaperRow {
    const char* name;
    bench::PaperValue v[3];
  };
  const auto n = bench::PaperValue::Num;
  const auto oom = bench::PaperValue::Oom;
  const PaperRow paper[] = {
      {"MatFast(C)", {n(1802), oom(), oom()}},
      {"MatFast(G)", {n(889), oom(), oom()}},
      {"SystemML(C)", {n(1042), n(2296), n(6619)}},
      {"SystemML(G)", {n(582), n(976), n(3240)}},
      {"DistME(C)", {n(741), n(1578), n(3255)}},
      {"DistME(G)", {n(302), n(526), n(836)}},
  };
  const systems::SystemProfile profiles[] = {
      systems::MatFast(false), systems::MatFast(true),
      systems::SystemML(false), systems::SystemML(true),
      systems::DistME(false),  systems::DistME(true)};
  const int64_t dims[3] = {200, 500, 1000};

  for (int s = 0; s < 6; ++s) {
    std::vector<std::string> row = {profiles[s].name};
    for (int d = 0; d < 3; ++d) {
      core::GnmfSimOptions options;
      options.v = mm::MatrixDescriptor::Sparse(
          dataset.users, dataset.items, 1000,
          static_cast<double>(dataset.ratings) /
              (static_cast<double>(dataset.users) * dataset.items));
      options.factor_dim = dims[d];
      options.iterations = 10;
      options.cluster = ClusterConfig::Paper();
      options.cluster.timeout_seconds = 1e9;
      obs.Wire(&options.sim);
      auto report = systems::RunGnmfSim(profiles[s], options);
      if (!report.ok()) {
        row.push_back(report.status().ToString());
        continue;
      }
      engine::MMReport proxy;
      proxy.outcome = report->outcome;
      proxy.elapsed_seconds = report->total_seconds;
      row.push_back(bench::Compare(proxy, paper[s].v[d]));
    }
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
