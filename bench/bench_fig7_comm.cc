// Figure 7(f): shuffled data volume of MatFast, SystemML and DistME on four
// representative inputs. Our raw bytes vs the paper's post-serialization
// report — compare cross-system ratios.
//
// Doubles as the comm-matrix consistency check: for every run, the per-link
// CommMatrix totals must match the report's shuffle bytes, and DistME's
// measured volume must agree with its planner's Table-2 analytic cost.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "systems/profiles.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  ClusterConfig cluster = ClusterConfig::Paper();
  cluster.timeout_seconds = 1e9;

  struct Point {
    const char* label;
    mm::MMProblem problem;
    // Paper GB for MatFast / SystemML / DistME (approximate bar readings).
    bench::PaperValue paper[3];
  };
  auto dense = [](int64_t i, int64_t k, int64_t j) {
    return mm::MMProblem::DenseSquareBlocks(i, k, j, 1000);
  };
  mm::MMProblem sparse = dense(500000, 1000000, 1000);
  sparse.a.sparsity = 1e-4;
  sparse.a.stored_dense = false;

  const auto n = bench::PaperValue::Approx;
  const auto oom = bench::PaperValue::Oom;
  Point points[] = {
      {"40Kx40Kx40K", dense(40000, 40000, 40000),
       {oom(), n(962), n(168)}},
      {"5Kx5Mx5K", dense(5000, 5000000, 5000), {n(1306), n(576), n(391)}},
      {"1Mx1Kx1M", dense(1000000, 1000, 1000000),
       {oom(), n(2170), n(682)}},
      {"500Kx1Mx1K (1e-4)", sparse, {n(493), n(296), n(102)}},
  };

  bench::Banner("Figure 7(f) — shuffled data volume");
  bench::Table table({"input", "MatFast", "SystemML", "DistME",
                      "SystemML/DistME ratio (paper)"});
  systems::SystemProfile profiles[3] = {
      systems::MatFast(false), systems::SystemML(false),
      systems::DistME(false)};
  for (auto& profile : profiles) obs.Wire(&profile.sim);

  bool consistent = true;
  for (const Point& pt : points) {
    std::vector<std::string> row = {pt.label};
    double values[3] = {0, 0, 0};
    for (int s = 0; s < 3; ++s) {
      const obs::CommMatrixSnapshot comm_before = obs.comm()->Snapshot();
      auto report = systems::RunMultiply(profiles[s], pt.problem, cluster);
      if (!report.ok()) {
        row.push_back(report.status().ToString());
        continue;
      }
      values[s] = report->total_shuffle_bytes();
      const std::string key_prefix = std::string("fig7f/") + pt.label + "/" +
                                     profiles[s].name + "/";
      obs.AddResult(key_prefix + "shuffle_bytes", values[s]);
      if (report->outcome.ok()) {
        obs.AddResult(key_prefix + "elapsed_seconds",
                      report->elapsed_seconds);
      }

      // Comm-matrix consistency: the per-link spread must add back up to
      // the report's shuffle totals (the spread rounds per node, hence the
      // small absolute slack).
      const obs::CommMatrixSnapshot comm =
          obs.comm()->Snapshot().Delta(comm_before);
      const double comm_total = static_cast<double>(comm.TotalBytes());
      const double slack =
          0.01 * values[s] +
          static_cast<double>(report->num_tasks + 1) * cluster.num_nodes;
      if (std::abs(comm_total - values[s]) > slack) {
        std::printf("comm-model check FAILED: %s/%s comm matrix %s vs "
                    "report %s\n",
                    pt.label, profiles[s].name.c_str(),
                    FormatBytes(comm_total).c_str(),
                    FormatBytes(values[s]).c_str());
        consistent = false;
      }
      if (s == 2) {  // DistME(C)
        // DistME's measured volume vs its planner's Table-2 closed form.
        auto method = profiles[s].planner->Choose(pt.problem, cluster);
        if (method.ok()) {
          auto cost = (*method)->Analytic(pt.problem, cluster);
          if (cost.ok()) {
            // Aggregation shuffle only happens when the method needs the
            // aggregation step (Eq. 4's R·|C| term is charged even for
            // R = 1, where C is written in place).
            const double predicted =
                (cost->repartition_elements +
                 ((*method)->NeedsAggregation(pt.problem)
                      ? cost->aggregation_elements
                      : 0.0)) *
                kElementBytes;
            if (predicted > 0 && comm_total > 0 &&
                (comm_total / predicted > 3.0 ||
                 predicted / comm_total > 3.0)) {
              std::printf("comm-model check FAILED: %s DistME comm %s vs "
                          "Table-2 prediction %s\n",
                          pt.label, FormatBytes(comm_total).c_str(),
                          FormatBytes(predicted).c_str());
              consistent = false;
            }
          }
        }
        std::printf("%s DistME comm: total %s | max link %s | "
                    "%d active links | skew %.2f\n",
                    pt.label,
                    FormatBytes(comm_total).c_str(),
                    FormatBytes(static_cast<double>(comm.MaxLinkBytes()))
                        .c_str(),
                    comm.ActiveLinks(), comm.SkewRatio());
      }
      std::string cell = report->outcome.ok()
                             ? FormatBytes(values[s])
                             : report->OutcomeLabel();
      row.push_back(cell + " [paper " + pt.paper[s].ToString("GB") + "]");
    }
    char ratio[64];
    if (values[1] > 0 && values[2] > 0) {
      std::snprintf(ratio, sizeof(ratio), "%.2fx", values[1] / values[2]);
    } else {
      std::snprintf(ratio, sizeof(ratio), "-");
    }
    std::string paper_ratio =
        pt.paper[1].kind == bench::PaperValue::Kind::kApprox &&
                pt.paper[2].kind == bench::PaperValue::Kind::kApprox
            ? std::to_string(pt.paper[1].value / pt.paper[2].value)
            : std::string("-");
    row.push_back(std::string(ratio) + " (paper " +
                  paper_ratio.substr(0, 4) + "x)");
    table.AddRow(row);
  }
  table.Print();
  if (!consistent) return 1;
  std::printf("\ncomm-model check: OK\n");
  return 0;
}
