// google-benchmark microbenchmarks for the engine substrate: block
// serialization, the (P,Q,R) optimizer, plan enumeration, and the simulated
// executor itself.

#include <benchmark/benchmark.h>

#include <algorithm>

#include <chrono>
#include <cstdlib>
#include <string_view>

#include "bench_util.h"
#include "obs/sampler.h"
#include "common/random.h"
#include "engine/real_executor.h"
#include "engine/sim_executor.h"
#include "gpu/device.h"
#include "gpumm/streaming.h"
#include "matrix/generator.h"
#include "matrix/serialize.h"
#include "mm/methods.h"
#include "mm/optimizer.h"
#include "obs/causal_graph.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/gpu_timeline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme {
namespace {

void BM_SerializeDenseBlock(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Block block = Block::Dense(DenseMatrix::Random(n, n, &rng));
  for (auto _ : state) {
    auto buffer = SerializeBlock(block);
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_SerializeDenseBlock)->Arg(256)->Arg(1000);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Block block = Block::Dense(DenseMatrix::Random(n, n, &rng));
  for (auto _ : state) {
    auto restored = DeserializeBlock(SerializeBlock(block));
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(256)->Arg(1000);

void BM_OptimizeCuboid(benchmark::State& state) {
  // The paper reports 0.3 s single-threaded for 100K x 100K x 100K inputs
  // (I = J = K = 100); our closed-form-R search is far below that.
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  for (auto _ : state) {
    auto opt = mm::OptimizeCuboid(p, cluster);
    benchmark::DoNotOptimize(opt);
  }
}
BENCHMARK(BM_OptimizeCuboid)->Arg(100000)->Arg(500000);

void BM_OptimizeCuboidBruteForce(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  const ClusterConfig cluster = ClusterConfig::Paper();
  for (auto _ : state) {
    auto opt = mm::OptimizeCuboidBruteForce(p, cluster);
    benchmark::DoNotOptimize(opt);
  }
}
BENCHMARK(BM_OptimizeCuboidBruteForce)->Arg(50000)->Arg(100000);

void BM_PlanEnumerationRmm(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  const ClusterConfig cluster = ClusterConfig::Paper();
  mm::RmmMethod rmm;
  for (auto _ : state) {
    int64_t voxels = 0;
    Status st = rmm.ForEachTask(p, cluster, [&](const mm::LocalTask& t) {
      voxels += t.voxels.size();
      return Status::OK();
    });
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(voxels);
  }
}
BENCHMARK(BM_PlanEnumerationRmm)->Arg(50000)->Arg(100000);

void BM_SimExecutorCuboid(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  auto opt = mm::OptimizeCuboid(p, cluster);
  if (!opt.ok()) {
    state.SkipWithError("optimizer failed");
    return;
  }
  mm::CuboidMethod method(opt->spec);
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  for (auto _ : state) {
    auto report = executor.Run(p, method, gpu);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SimExecutorCuboid)->Arg(70000)->Arg(100000);

// The same simulated run with the observability sinks wired but the tracer
// left disabled — the default configuration of every executor. Comparing
// against BM_SimExecutorCuboid bounds the disabled-path overhead (<2%).
void BM_SimExecutorCuboidObsWiredOff(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  auto opt = mm::OptimizeCuboid(p, cluster);
  if (!opt.ok()) {
    state.SkipWithError("optimizer failed");
    return;
  }
  mm::CuboidMethod method(opt->spec);
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;  // wired but disabled: spans cost one relaxed load
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  gpu.metrics = &metrics;
  gpu.tracer = &tracer;
  for (auto _ : state) {
    auto report = executor.Run(p, method, gpu);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SimExecutorCuboidObsWiredOff)->Arg(70000)->Arg(100000);

// --- Observability hot-path costs (Section "Observability" in DESIGN.md).

void BM_TraceSpanNullTracer(benchmark::State& state) {
  for (auto _ : state) {
    obs::TraceSpan span(nullptr, "noop");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_TraceSpanNullTracer);

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // present but disabled — the default executor path
  for (auto _ : state) {
    obs::TraceSpan span(&tracer, "noop");
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_TraceSpanDisabled);

void BM_TraceSpanEnabled(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  int64_t pending = 0;
  for (auto _ : state) {
    { obs::TraceSpan span(&tracer, "noop"); }
    // Drain in batches so the buffer stays bounded without timing the
    // drain on every iteration.
    if (++pending == 65536) {
      state.PauseTiming();
      auto events = tracer.Drain();
      benchmark::DoNotOptimize(events);
      pending = 0;
      state.ResumeTiming();
    }
  }
  auto events = tracer.Drain();
  benchmark::DoNotOptimize(events);
}
BENCHMARK(BM_TraceSpanEnabled);

void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder flight(512);
  int64_t task = 0;
  for (auto _ : state) {
    flight.Record(obs::FlightEventType::kTaskStart, 0, 0, task++, 0);
  }
  benchmark::DoNotOptimize(flight.TotalRecorded());
}
BENCHMARK(BM_FlightRecorderRecord);

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Add(1);
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.GetHistogram("bench.histogram");
  double v = 1e-6;
  for (auto _ : state) {
    histogram->Observe(v);
    v = v < 1e3 ? v * 1.001 : 1e-6;
  }
  benchmark::DoNotOptimize(histogram->Count());
}
BENCHMARK(BM_HistogramObserve);

// Deterministic sampler-overhead measurement for the bench baseline
// (scripts/bench_baseline.py). Runs the same simulated-executor workload
// twice — sampler off, then sampler on at 1 ms — and records the elapsed
// ratio. The ratio centres on 1.0 (the sampler only takes registry
// snapshots on its own thread), which keeps it stable under the baseline's
// relative tolerance where absolute per-iteration times would not be.
int RunSamplerOverheadOnly(bench::BenchObs* obs) {
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  auto opt = mm::OptimizeCuboid(p, cluster);
  if (!opt.ok()) {
    std::fprintf(stderr, "optimizer failed: %s\n",
                 opt.status().ToString().c_str());
    return 1;
  }
  mm::CuboidMethod method(opt->spec);
  engine::SimOptions options;
  options.mode = engine::ComputeMode::kGpuStreaming;
  obs->Wire(&options);

  auto run_batch = [&](int64_t iters) -> Result<double> {
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      DISTME_ASSIGN_OR_RETURN(engine::MMReport report,
                              executor.Run(p, method, options));
      benchmark::DoNotOptimize(report);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  // Calibrate the iteration count to >= ~0.2 s per batch so a batch
  // dominates per-call overhead without making the repetitions slow.
  int64_t iters = 1;
  for (;;) {
    auto elapsed = run_batch(iters);
    if (!elapsed.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   elapsed.status().ToString().c_str());
      return 1;
    }
    if (*elapsed >= 0.2 || iters >= (int64_t{1} << 24)) break;
    iters *= 2;
  }

  // Alternate off/on batches and keep the best (minimum) time per side:
  // the minimum is the run least disturbed by unrelated machine noise, so
  // the ratio isolates the sampler's own cost instead of scheduler luck.
  // 10 ms is already 100x a scrape-style period; it bounds the overhead
  // from above while staying out of the degenerate busy-loop regime.
  obs::Sampler sampler(obs->metrics(), obs->comm(),
                       obs::SamplerOptions{/*period_ms=*/10,
                                           /*max_samples=*/100000});
  constexpr int kReps = 5;
  double best_off = 0;
  double best_on = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto off = run_batch(iters);
    if (!off.ok()) return 1;
    sampler.Start();
    auto on = run_batch(iters);
    sampler.Stop();
    if (!on.ok()) return 1;
    if (rep == 0 || *off < best_off) best_off = *off;
    if (rep == 0 || *on < best_on) best_on = *on;
  }

  const double ratio = best_on / best_off;
  std::printf("sampler overhead: %lld iters x %d reps, best off %.3fs, "
              "best on %.3fs (ratio %.4f, %lld samples)\n",
              static_cast<long long>(iters), kReps, best_off, best_on, ratio,
              static_cast<long long>(sampler.total_samples()));
  obs->AddResult("sampler_overhead_ratio", ratio);
  return 0;
}

// Analyzer-overhead measurement, same min-of-alternating-reps shape as
// RunSamplerOverheadOnly. The "on" side wires a flight ring into the real
// executor, which then emits the full causal timeline (task start/finish,
// fetch/gpu dependency edges, block fetch/emit, stage barriers) — the cost
// every real multiplication pays once the analyzer is enabled. The workload
// is a real CPU multiply (384x384, block 64, RMM on 3x2 slots) so the ratio
// compares emission against genuine task work, not against the simulator's
// microsecond-scale cost model. The snapshot + BuildCausalGraph +
// AnalyzeCriticalPath pass runs once per explain, off the per-task hot
// path, so it is validated after the timed region (the critical path must
// tile the run's wall time) but not timed. The bench baseline gates the
// recorded ratio at <= 1.03.
int RunAnalyzerOverheadOnly(bench::BenchObs* obs) {
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  GeneratorOptions ga;
  ga.rows = ga.cols = 384;
  ga.block_size = 64;
  ga.sparsity = 1.0;
  ga.seed = 11;
  GeneratorOptions gb = ga;
  gb.seed = 12;
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(GenerateUniform(ga), 3);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(GenerateUniform(gb), 3);
  mm::RmmMethod method;
  engine::RealExecutor executor(cluster);
  engine::RealOptions options;
  options.mode = engine::ComputeMode::kCpu;
  obs->Wire(&options);
  obs::FlightRecorder flight(2048);

  auto run_batch = [&](int64_t iters, bool analyzer) -> Result<double> {
    options.flight = analyzer ? &flight : nullptr;
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      DISTME_ASSIGN_OR_RETURN(engine::RealRunResult result,
                              executor.Run(a, b, method, options));
      DISTME_RETURN_NOT_OK(result.report.outcome);
      benchmark::DoNotOptimize(result.report.num_tasks);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  int64_t iters = 1;
  for (;;) {
    auto elapsed = run_batch(iters, /*analyzer=*/false);
    if (!elapsed.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   elapsed.status().ToString().c_str());
      return 1;
    }
    if (*elapsed >= 0.2 || iters >= (int64_t{1} << 20)) break;
    iters *= 2;
  }

  // Calibration only exercised the analyzer-off path; warm the analyzer-on
  // path too (ring pages, fetch-event branches) so rep 0 is not biased.
  if (auto warm = run_batch(iters, /*analyzer=*/true); !warm.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }

  constexpr int kReps = 5;
  double best_off = 0;
  double best_on = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto off = run_batch(iters, /*analyzer=*/false);
    if (!off.ok()) return 1;
    auto on = run_batch(iters, /*analyzer=*/true);
    if (!on.ok()) return 1;
    if (rep == 0 || *off < best_off) best_off = *off;
    if (rep == 0 || *on < best_on) best_on = *on;
  }

  // Sanity-check the analysis the timeline feeds: the last run in the ring
  // must yield a critical path that tiles its wall time.
  const obs::CausalGraph graph = obs::BuildCausalGraph(flight.Snapshot());
  const obs::CriticalPathAnalysis analysis = obs::AnalyzeCriticalPath(graph);
  if (analysis.path_us <= 0 || analysis.path_us != analysis.wall_us) {
    std::fprintf(stderr,
                 "analyzer self-check failed: path %lld us vs wall %lld us\n",
                 static_cast<long long>(analysis.path_us),
                 static_cast<long long>(analysis.wall_us));
    return 1;
  }

  // Real-executor wall times wobble a few percent with thread scheduling;
  // a measured ratio below 1.0 is that noise (emitting events cannot make
  // the run faster), so the recorded ratio is floored at 1.0 — the
  // baseline's one-sided question is only "did emission get expensive".
  const double raw_ratio = best_on / best_off;
  const double ratio = std::max(1.0, raw_ratio);
  std::printf("analyzer overhead: %lld iters x %d reps, best off %.3fs, "
              "best on %.3fs (ratio %.4f raw %.4f, path %lld us over "
              "%zu tasks)\n",
              static_cast<long long>(iters), kReps, best_off, best_on, ratio,
              raw_ratio, static_cast<long long>(analysis.path_us),
              analysis.tasks.size());
  obs->AddResult("analyzer_overhead_ratio", ratio);
  return 0;
}

// Prefetch-pipeline overlap: how much of the fleet's fetch-wait time does
// the async pipeline hide? Each measurement runs the analyzer workload
// (384x384, block 64, RMM on 3x2 slots, serialized transfers) with a fresh
// flight ring and reads the critical-path analyzer's fleet-wide
// aggregate_us["fetch_wait"] — at depth 0 that is every attempt's full
// synchronous fetch; pipelined (depth 4 by default, --prefetch-depth=<k>
// overrides) it is only the residual stall where a compute worker outran
// its fetch stage. The recorded key is the ratio
// depth-4 / depth-0 fetch-wait, floored at 0.35: the baseline gate (1.00
// relative tolerance on a 0.35 base) fails exactly when the ratio exceeds
// 0.70, i.e. when the pipeline stops hiding at least 30% of fetch waits.
// Outputs of the two modes are also checked bit-identical here, so the
// perf gate can never pass on a run that changed result bits.
int RunPipelineOverlapOnly(bench::BenchObs* obs, int prefetch_depth) {
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  GeneratorOptions ga;
  ga.rows = ga.cols = 384;
  ga.block_size = 64;
  ga.sparsity = 1.0;
  ga.seed = 13;
  GeneratorOptions gb = ga;
  gb.seed = 14;
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(GenerateUniform(ga), 3);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(GenerateUniform(gb), 3);
  mm::RmmMethod method;
  engine::RealExecutor executor(cluster);

  struct Measured {
    int64_t fetch_wait_us = 0;
    DenseMatrix dense;
  };
  auto run_once = [&](int depth) -> Result<Measured> {
    obs::FlightRecorder flight(4096);
    engine::RealOptions options;
    options.mode = engine::ComputeMode::kCpu;
    options.prefetch_depth = depth;
    obs->Wire(&options);
    options.flight = &flight;  // Wire installs the shared ring; this bench
                               // needs a fresh per-run ring to analyze
    DISTME_ASSIGN_OR_RETURN(engine::RealRunResult result,
                            executor.Run(a, b, method, options));
    DISTME_RETURN_NOT_OK(result.report.outcome);
    const obs::CausalGraph graph = obs::BuildCausalGraph(flight.Snapshot());
    const obs::CriticalPathAnalysis analysis =
        obs::AnalyzeCriticalPath(graph);
    if (analysis.path_us <= 0 || analysis.path_us != analysis.wall_us) {
      return Status::Internal("critical-path self-check failed");
    }
    Measured m;
    const auto it = analysis.aggregate_us.find("fetch_wait");
    m.fetch_wait_us = it == analysis.aggregate_us.end() ? 0 : it->second;
    m.dense = result.output->Collect().ToDense();
    return m;
  };

  // Warm both paths, then alternate reps and keep each side's best (the
  // fetch-wait floor): scheduling noise only ever adds stall time.
  constexpr int kReps = 5;
  int64_t best0 = 0;
  int64_t best4 = 0;
  for (int rep = -1; rep < kReps; ++rep) {
    auto m0 = run_once(/*depth=*/0);
    auto m4 = run_once(prefetch_depth);
    if (!m0.ok() || !m4.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   (!m0.ok() ? m0.status() : m4.status()).ToString().c_str());
      return 1;
    }
    if (m0->dense.rows() != m4->dense.rows() ||
        m0->dense.cols() != m4->dense.cols() ||
        DenseMatrix::MaxAbsDiff(m0->dense, m4->dense) != 0.0) {
      std::fprintf(stderr,
                   "pipeline self-check failed: depth-4 output differs from "
                   "depth-0\n");
      return 1;
    }
    if (rep < 0) continue;  // warm-up
    if (rep == 0 || m0->fetch_wait_us < best0) best0 = m0->fetch_wait_us;
    if (rep == 0 || m4->fetch_wait_us < best4) best4 = m4->fetch_wait_us;
  }
  if (best0 <= 0) {
    std::fprintf(stderr,
                 "pipeline self-check failed: depth-0 run recorded no "
                 "fetch-wait time\n");
    return 1;
  }

  const double raw_ratio =
      static_cast<double>(best4) / static_cast<double>(best0);
  const double ratio = std::max(0.35, raw_ratio);
  std::printf("pipeline overlap: %d reps, best fetch-wait depth0 %lld us, "
              "depth%d %lld us (ratio %.4f raw %.4f)\n",
              kReps, static_cast<long long>(best0), prefetch_depth,
              static_cast<long long>(best4), ratio, raw_ratio);
  obs->AddResult("pipeline_fetch_wait_ratio", ratio);
  return 0;
}

// GPU-observability overhead, same min-of-alternating-reps shape as the
// sampler/analyzer measurements. The workload is Algorithm 1 itself
// (RunCuboidOnGpu on a software device); the "on" side attaches a flight
// ring to the device so every H2D chunk, B-block copy, kernel launch, and
// D2H writeback emits a schema-3 begin/end interval pair — two relaxed ring
// slots per device op, the full instrumentation cost of the GPU timeline.
// Block size 32 is the smallest paper-representative tile: the per-op
// kernel body must carry real work or the ratio measures ring writes
// against an empty enqueue loop instead of against a run (at bs=8 the
// 1 KiB-block torture config reads ~1.06 from that effect alone). The
// bench baseline gates the recorded ratio at <= 1.05 (ISSUE: device
// interval emission must stay under 5% of a representative run).
int RunGpuObsOverheadOnly(bench::BenchObs* obs) {
  const int64_t bs = 32;
  GeneratorOptions ga;
  ga.rows = 128;
  ga.cols = 192;
  ga.block_size = bs;
  ga.sparsity = 1.0;
  ga.seed = 21;
  GeneratorOptions gb;
  gb.rows = 192;
  gb.cols = 128;
  gb.block_size = bs;
  gb.sparsity = 1.0;
  gb.seed = 22;
  const BlockGrid a = GenerateUniform(ga);
  const BlockGrid b = GenerateUniform(gb);
  gpumm::GridBlockSource source(&a, &b);
  gpu::Device device(GpuSpec{}, HardwareModel{});
  obs::FlightRecorder flight(4096);
  const auto box = mm::VoxelSet::Box(0, 4, 0, 4, 0, 6);

  auto run_batch = [&](int64_t iters, bool attached) -> Result<double> {
    device.AttachFlight(attached ? &flight : nullptr, 0, 0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int64_t i = 0; i < iters; ++i) {
      DISTME_ASSIGN_OR_RETURN(
          gpumm::GpuCuboidResult result,
          gpumm::RunCuboidOnGpu(box, a.shape(), b.shape(), &source, &device,
                                4 * kMiB));
      benchmark::DoNotOptimize(result.stats.kernel_calls);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };

  int64_t iters = 1;
  for (;;) {
    auto elapsed = run_batch(iters, /*attached=*/false);
    if (!elapsed.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   elapsed.status().ToString().c_str());
      return 1;
    }
    if (*elapsed >= 0.2 || iters >= (int64_t{1} << 20)) break;
    iters *= 2;
  }
  if (auto warm = run_batch(iters, /*attached=*/true); !warm.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }

  constexpr int kReps = 5;
  double best_off = 0;
  double best_on = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto off = run_batch(iters, /*attached=*/false);
    if (!off.ok()) return 1;
    auto on = run_batch(iters, /*attached=*/true);
    if (!on.ok()) return 1;
    if (rep == 0 || *off < best_off) best_off = *off;
    if (rep == 0 || *on < best_on) best_on = *on;
  }

  // Sanity-check what the instrumentation produced: the snapshot must yield
  // a non-empty per-device timeline whose four window buckets tile the
  // device-active window exactly (the overlap invariant the analysis
  // guarantees by construction).
  const obs::GpuTimelineAnalysis analysis =
      obs::AnalyzeGpuTimeline(flight.Snapshot(), HardwareModel{}.pcie_bandwidth);
  if (analysis.empty()) {
    std::fprintf(stderr, "gpu-obs self-check failed: no device intervals\n");
    return 1;
  }
  for (const obs::GpuDeviceTimeline& dev : analysis.devices) {
    const obs::OverlapReport& r = dev.report;
    if (r.kernel_bound_us + r.h2d_bound_us + r.d2h_bound_us + r.bubble_us !=
        r.window_us()) {
      std::fprintf(stderr, "gpu-obs self-check failed: buckets do not tile "
                           "the window\n");
      return 1;
    }
  }

  // Floored at 1.0 like the analyzer ratio: emission cannot speed up the
  // run, so a sub-1.0 measurement is scheduler noise.
  const double raw_ratio = best_on / best_off;
  const double ratio = std::max(1.0, raw_ratio);
  std::printf("gpu-obs overhead: %lld iters x %d reps, best off %.3fs, "
              "best on %.3fs (ratio %.4f raw %.4f, %zu devices)\n",
              static_cast<long long>(iters), kReps, best_off, best_on, ratio,
              raw_ratio, analysis.devices.size());
  obs->AddResult("gpu_obs_overhead_ratio", ratio);
  return 0;
}

// Runs one real GPU-streaming multiplication with the flight ring wired and
// dumps it to `path` — a deterministic dump carrying schema-3 device
// interval events bracketed by run_start/run_finish, for CI to smoke
// scripts/distme_analyze.py --gpu / --timeline against.
int RunGpuFlightDump(const std::string& path) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  GeneratorOptions ga;
  ga.rows = ga.cols = 256;
  ga.block_size = 64;
  ga.sparsity = 1.0;
  ga.seed = 31;
  GeneratorOptions gb = ga;
  gb.seed = 32;
  engine::DistributedMatrix a =
      engine::DistributedMatrix::FromGridHashed(GenerateUniform(ga), 2);
  engine::DistributedMatrix b =
      engine::DistributedMatrix::FromGridHashed(GenerateUniform(gb), 2);
  // CuboidMM rather than RMM: cuboid tasks stream through RunCuboidOnGpu,
  // so the dump carries tagged per-cuboid intervals and occupancy marks.
  mm::CuboidMethod method(mm::CuboidSpec{2, 2, 2});
  engine::RealExecutor executor(cluster);
  engine::RealOptions options;
  options.mode = engine::ComputeMode::kGpuStreaming;
  obs::FlightRecorder flight(8192);
  options.flight = &flight;
  auto result = executor.Run(a, b, method, options);
  if (!result.ok()) {
    std::fprintf(stderr, "gpu run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result->report.outcome.ok()) {
    std::fprintf(stderr, "gpu run failed: %s\n",
                 result->report.outcome.ToString().c_str());
    return 1;
  }
  const obs::GpuTimelineAnalysis analysis = obs::AnalyzeGpuTimeline(
      flight.Snapshot(), cluster.hw.pcie_bandwidth);
  if (analysis.empty()) {
    std::fprintf(stderr, "gpu dump has no device interval events\n");
    return 1;
  }
  const Status dumped = flight.DumpToFile(path);
  if (!dumped.ok()) {
    std::fprintf(stderr, "flight dump failed: %s\n",
                 dumped.ToString().c_str());
    return 1;
  }
  // Print the C++ run aggregate so CI can cross-check the Python mirror
  // (scripts/distme_analyze.py --gpu) number for number.
  std::printf("gpu flight timeline (%lld tasks, %zu devices) dumped to %s\n",
              static_cast<long long>(result->report.num_tasks),
              analysis.devices.size(), path.c_str());
  std::printf("gpu run aggregate: %s\n", analysis.ToJson().c_str());
  return 0;
}

// Runs the simulated CuboidMM workload once with the per-task causal
// timeline enabled and dumps the flight ring to `path` — a deterministic
// dump for scripts/distme_analyze.py (CI smokes the analyzer against it).
int RunSimFlightDump(const std::string& path) {
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(70000, 70000, 70000, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  auto opt = mm::OptimizeCuboid(p, cluster);
  if (!opt.ok()) {
    std::fprintf(stderr, "optimizer failed: %s\n",
                 opt.status().ToString().c_str());
    return 1;
  }
  mm::CuboidMethod method(opt->spec);
  obs::FlightRecorder flight(4096);
  engine::SimOptions options;
  options.mode = engine::ComputeMode::kGpuStreaming;
  options.flight = &flight;
  options.flight_task_events = true;
  auto report = executor.Run(p, method, options);
  if (!report.ok()) {
    std::fprintf(stderr, "sim run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const Status dumped = flight.DumpToFile(path);
  if (!dumped.ok()) {
    std::fprintf(stderr, "flight dump failed: %s\n",
                 dumped.ToString().c_str());
    return 1;
  }
  std::printf("sim flight timeline (%lld tasks, %.3fs simulated) dumped "
              "to %s\n",
              static_cast<long long>(report->num_tasks),
              report->elapsed_seconds, path.c_str());
  return 0;
}

}  // namespace
}  // namespace distme

// BENCHMARK_MAIN with the shared --trace-out= flag stripped out before
// benchmark::Initialize (which rejects flags it does not recognize). The
// micro benches do not emit spans themselves; the flag still produces a
// valid (metadata-only) trace file so every bench binary accepts it.
//
// --sampler-overhead-only / --analyzer-overhead-only /
// --gpu-obs-overhead-only / --pipeline-overlap-only bypass google-benchmark
// entirely and run the deterministic on/off comparisons (recorded via
// --bench-json=). The flags compose: one invocation records all ratios into
// the same bench-json results map. --prefetch-depth=<k> sets the pipelined
// depth the overlap comparison uses (default 4). --sim-flight-dump=<path> and --gpu-flight-dump=<path> (also
// google-benchmark-free) write deterministic flight dumps — the simulated
// causal timeline and a real GPU-streaming run with schema-3 device
// interval events — for scripts/distme_analyze.py.
int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  std::vector<char*> args = distme::bench::BenchObs::StripFlags(argc, argv);
  bool sampler_overhead_only = false;
  bool analyzer_overhead_only = false;
  bool gpu_obs_overhead_only = false;
  bool pipeline_overlap_only = false;
  int prefetch_depth = 4;
  std::string sim_flight_dump;
  std::string gpu_flight_dump;
  constexpr std::string_view kDumpFlag = "--sim-flight-dump=";
  constexpr std::string_view kGpuDumpFlag = "--gpu-flight-dump=";
  constexpr std::string_view kDepthFlag = "--prefetch-depth=";
  for (auto it = args.begin(); it != args.end();) {
    if (*it != nullptr &&
        std::string_view(*it) == "--sampler-overhead-only") {
      sampler_overhead_only = true;
      it = args.erase(it);
    } else if (*it != nullptr &&
               std::string_view(*it) == "--analyzer-overhead-only") {
      analyzer_overhead_only = true;
      it = args.erase(it);
    } else if (*it != nullptr &&
               std::string_view(*it) == "--gpu-obs-overhead-only") {
      gpu_obs_overhead_only = true;
      it = args.erase(it);
    } else if (*it != nullptr &&
               std::string_view(*it) == "--pipeline-overlap-only") {
      pipeline_overlap_only = true;
      it = args.erase(it);
    } else if (*it != nullptr &&
               std::string_view(*it).starts_with(kDepthFlag)) {
      prefetch_depth = std::atoi(*it + kDepthFlag.size());
      it = args.erase(it);
    } else if (*it != nullptr &&
               std::string_view(*it).starts_with(kDumpFlag)) {
      sim_flight_dump = std::string_view(*it).substr(kDumpFlag.size());
      it = args.erase(it);
    } else if (*it != nullptr &&
               std::string_view(*it).starts_with(kGpuDumpFlag)) {
      gpu_flight_dump = std::string_view(*it).substr(kGpuDumpFlag.size());
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (sampler_overhead_only || analyzer_overhead_only ||
      gpu_obs_overhead_only || pipeline_overlap_only ||
      !sim_flight_dump.empty() || !gpu_flight_dump.empty()) {
    int rc = 0;
    if (sampler_overhead_only) rc |= distme::RunSamplerOverheadOnly(&obs);
    if (analyzer_overhead_only) rc |= distme::RunAnalyzerOverheadOnly(&obs);
    if (gpu_obs_overhead_only) rc |= distme::RunGpuObsOverheadOnly(&obs);
    if (pipeline_overlap_only) {
      rc |= distme::RunPipelineOverlapOnly(&obs, prefetch_depth);
    }
    if (!sim_flight_dump.empty()) {
      rc |= distme::RunSimFlightDump(sim_flight_dump);
    }
    if (!gpu_flight_dump.empty()) {
      rc |= distme::RunGpuFlightDump(gpu_flight_dump);
    }
    return rc;
  }
  int rest = static_cast<int>(args.size());
  benchmark::Initialize(&rest, args.data());
  if (benchmark::ReportUnrecognizedArguments(rest, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
