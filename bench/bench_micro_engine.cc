// google-benchmark microbenchmarks for the engine substrate: block
// serialization, the (P,Q,R) optimizer, plan enumeration, and the simulated
// executor itself.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "engine/sim_executor.h"
#include "matrix/serialize.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme {
namespace {

void BM_SerializeDenseBlock(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Block block = Block::Dense(DenseMatrix::Random(n, n, &rng));
  for (auto _ : state) {
    auto buffer = SerializeBlock(block);
    benchmark::DoNotOptimize(buffer);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_SerializeDenseBlock)->Arg(256)->Arg(1000);

void BM_SerializeRoundTrip(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Block block = Block::Dense(DenseMatrix::Random(n, n, &rng));
  for (auto _ : state) {
    auto restored = DeserializeBlock(SerializeBlock(block));
    benchmark::DoNotOptimize(restored);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(256)->Arg(1000);

void BM_OptimizeCuboid(benchmark::State& state) {
  // The paper reports 0.3 s single-threaded for 100K x 100K x 100K inputs
  // (I = J = K = 100); our closed-form-R search is far below that.
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  for (auto _ : state) {
    auto opt = mm::OptimizeCuboid(p, cluster);
    benchmark::DoNotOptimize(opt);
  }
}
BENCHMARK(BM_OptimizeCuboid)->Arg(100000)->Arg(500000);

void BM_OptimizeCuboidBruteForce(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  const ClusterConfig cluster = ClusterConfig::Paper();
  for (auto _ : state) {
    auto opt = mm::OptimizeCuboidBruteForce(p, cluster);
    benchmark::DoNotOptimize(opt);
  }
}
BENCHMARK(BM_OptimizeCuboidBruteForce)->Arg(50000)->Arg(100000);

void BM_PlanEnumerationRmm(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  const ClusterConfig cluster = ClusterConfig::Paper();
  mm::RmmMethod rmm;
  for (auto _ : state) {
    int64_t voxels = 0;
    Status st = rmm.ForEachTask(p, cluster, [&](const mm::LocalTask& t) {
      voxels += t.voxels.size();
      return Status::OK();
    });
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(voxels);
  }
}
BENCHMARK(BM_PlanEnumerationRmm)->Arg(50000)->Arg(100000);

void BM_SimExecutorCuboid(benchmark::State& state) {
  const int64_t n = state.range(0);
  mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(n, n, n, 1000);
  p.a.sparsity = p.b.sparsity = 0.5;
  const ClusterConfig cluster = ClusterConfig::Paper();
  engine::SimExecutor executor(cluster);
  auto opt = mm::OptimizeCuboid(p, cluster);
  if (!opt.ok()) {
    state.SkipWithError("optimizer failed");
    return;
  }
  mm::CuboidMethod method(opt->spec);
  engine::SimOptions gpu;
  gpu.mode = engine::ComputeMode::kGpuStreaming;
  for (auto _ : state) {
    auto report = executor.Run(p, method, gpu);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SimExecutorCuboid)->Arg(70000)->Arg(100000);

}  // namespace
}  // namespace distme

BENCHMARK_MAIN();
