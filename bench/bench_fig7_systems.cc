// Figure 7(a)-(d): DistME vs MatFast vs SystemML, CPU and GPU variants, on
// the four dataset types of Section 6.3.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "systems/profiles.h"

namespace distme {
namespace {

using bench::Banner;
using bench::Compare;
using bench::PaperValue;
using bench::Table;

struct SystemPoint {
  const char* label;
  mm::MMProblem problem;
  // Paper values in seconds: MatFast(C), MatFast(G), SystemML(C),
  // SystemML(G), DistME(C), DistME(G).
  PaperValue paper[6];
};

void RunPanel(const char* title, const std::vector<SystemPoint>& points,
              bench::BenchObs* obs) {
  ClusterConfig cluster = ClusterConfig::Paper();
  // Figure 7 runs exceed Figure 6's 4000 s cap (values up to hours).
  cluster.timeout_seconds = 1e9;

  systems::SystemProfile profiles[6] = {
      systems::MatFast(false), systems::MatFast(true),
      systems::SystemML(false), systems::SystemML(true),
      systems::DistME(false),  systems::DistME(true)};
  for (auto& profile : profiles) obs->Wire(&profile.sim);

  Banner(title);
  Table table({"input", "MatFast(C)", "MatFast(G)", "SystemML(C)",
               "SystemML(G)", "DistME(C)", "DistME(G)"});
  for (const SystemPoint& pt : points) {
    std::vector<std::string> row = {pt.label};
    for (int s = 0; s < 6; ++s) {
      auto report = systems::RunMultiply(profiles[s], pt.problem, cluster);
      if (!report.ok()) {
        row.push_back(report.status().ToString());
        continue;
      }
      row.push_back(Compare(*report, pt.paper[s]));
    }
    table.AddRow(row);
  }
  table.Print();
}

mm::MMProblem Dense(int64_t i, int64_t k, int64_t j) {
  return mm::MMProblem::DenseSquareBlocks(i, k, j, 1000);
}

mm::MMProblem SparseDense(int64_t i, int64_t k, int64_t j, double sparsity) {
  mm::MMProblem p = Dense(i, k, j);
  p.a.sparsity = sparsity;
  p.a.stored_dense = false;
  return p;
}

}  // namespace
}  // namespace distme

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);
  using bench::PaperValue;
  const auto n = PaperValue::Num;
  const auto oom = PaperValue::Oom;
  const auto edc = PaperValue::Edc;
  const auto none = PaperValue::None;

  RunPanel("Figure 7(a) — two large matrices (N x N x N, dense)",
           {{"30K^3", Dense(30000, 30000, 30000),
             {n(1232), n(324), n(647), n(270), n(397), n(71)}},
            {"40K^3", Dense(40000, 40000, 40000),
             {oom(), oom(), n(2193), n(1839) /* approx */, n(863), n(156)}},
            {"50K^3", Dense(50000, 50000, 50000),
             {oom(), oom(), edc(), edc(), n(1663), n(326)}}},
           &obs);

  RunPanel(
      "Figure 7(b) — common large dimension (5K x N x 5K, dense)",
      {{"5M", Dense(5000, 5000000, 5000),
        {n(3182), n(1525), n(2048), n(1207), n(1627), n(488)}},
       {"10M", Dense(5000, 10000000, 5000),
        {n(6428), n(2430), n(4207), n(3182), n(3639), n(1116)}},
       {"20M", Dense(5000, 20000000, 5000),
        {edc(), edc(), edc(), edc(), n(7240), n(2121)}}},
           &obs);

  RunPanel("Figure 7(c) — two large dimensions (N x 1K x 1M, dense; paper "
           "values in minutes)",
           {{"1M", Dense(1000000, 1000, 1000000),
             {oom(), oom(), n(1158 * 60), n(1122 * 60), n(235 * 60),
              n(169 * 60)}},
            {"1.5M", Dense(1500000, 1000, 1000000),
             {oom(), oom(), edc(), edc(), n(346 * 60), n(269 * 60)}},
            {"2M", Dense(2000000, 1000, 1000000),
             {oom(), oom(), edc(), edc(), n(439 * 60), n(345 * 60)}}},
           &obs);

  RunPanel(
      "Figure 7(d) — sparse x dense (500K x 1M x 1K, varying sparsity)",
      {{"1e-4", SparseDense(500000, 1000000, 1000, 1e-4),
        {n(1201), n(1080), n(1265), n(1076), n(618), n(196)}},
       {"1e-3", SparseDense(500000, 1000000, 1000, 1e-3),
        {n(2756), n(2300), n(3131), n(2522), n(758), n(251)}},
       {"1e-2", SparseDense(500000, 1000000, 1000, 1e-2),
        {none(), none(), none(), none(), n(910), n(341)}}},
           &obs);
  return 0;
}
