// Ablation: the future-work extensions beyond the paper — multiple GPUs per
// node, LPT load-balanced scheduling under skew, and the binary matrix
// store vs MatrixMarket text.

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "engine/sim_executor.h"
#include "matrix/generator.h"
#include "matrix/io.h"
#include "matrix/store.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

int main(int argc, char** argv) {
  using namespace distme;
  bench::BenchObs obs(argc, argv);

  bench::Banner("Extension 1 — multiple GPUs per node (40K^3 dense, "
                "paper's future work)");
  {
    mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(40000, 40000, 40000,
                                                       1000);
    bench::Table table({"GPUs/node", "multiply step", "speedup vs 1",
                        "PCI-E bytes"});
    double base = 0;
    for (const int devices : {1, 2, 4, 8}) {
      ClusterConfig cluster = ClusterConfig::Paper();
      cluster.gpu.devices_per_node = devices;
      engine::SimExecutor executor(cluster);
      auto opt = mm::OptimizeCuboid(p, cluster);
      DISTME_CHECK_OK(opt.status());
      engine::SimOptions gpu;
      gpu.mode = engine::ComputeMode::kGpuStreaming;
      obs.Wire(&gpu);
      auto report = executor.Run(p, mm::CuboidMethod(opt->spec), gpu);
      DISTME_CHECK_OK(report.status());
      if (devices == 1) base = report->steps.multiply_seconds;
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    base / report->steps.multiply_seconds);
      table.AddRow({std::to_string(devices),
                    FormatSeconds(report->steps.multiply_seconds), speedup,
                    FormatBytes(report->pcie_bytes)});
    }
    table.Print();
    std::printf("Scaling tapers once PCI-E (shared per node) binds.\n");
  }

  bench::Banner("Extension 2 — LPT scheduling under task skew "
                "(uneven cuboid splits, 37K x 41K x 53K)");
  {
    mm::MMProblem p = mm::MMProblem::DenseSquareBlocks(37000, 41000, 53000,
                                                       1000);
    const ClusterConfig cluster = ClusterConfig::Paper();
    engine::SimExecutor executor(cluster);
    bench::Table table({"(P,Q,R)", "plan order", "LPT", "improvement"});
    for (const mm::CuboidSpec spec :
         {mm::CuboidSpec{7, 11, 3}, mm::CuboidSpec{4, 9, 7},
          mm::CuboidSpec{13, 2, 5}}) {
      mm::CuboidMethod method(spec);
      engine::SimOptions plain;
      engine::SimOptions lpt;
      lpt.lpt_scheduling = true;
      obs.Wire(&plain);
      obs.Wire(&lpt);
      auto base = executor.Run(p, method, plain);
      auto balanced = executor.Run(p, method, lpt);
      DISTME_CHECK_OK(base.status());
      DISTME_CHECK_OK(balanced.status());
      char label[32], gain[32];
      std::snprintf(label, sizeof(label), "(%lld,%lld,%lld)",
                    static_cast<long long>(spec.P),
                    static_cast<long long>(spec.Q),
                    static_cast<long long>(spec.R));
      std::snprintf(gain, sizeof(gain), "%.1f%%",
                    100.0 * (1.0 - balanced->steps.multiply_seconds /
                                       base->steps.multiply_seconds));
      table.AddRow({label, FormatSeconds(base->steps.multiply_seconds),
                    FormatSeconds(balanced->steps.multiply_seconds), gain});
    }
    table.Print();
  }

  bench::Banner("Extension 3 — binary matrix store vs MatrixMarket text");
  {
    GeneratorOptions g;
    g.rows = 2000;
    g.cols = 2000;
    g.block_size = 200;
    g.sparsity = 0.2;
    g.seed = 123;
    BlockGrid grid = GenerateUniform(g);
    const std::string bin_path = "/tmp/distme_bench.dmx";
    const std::string txt_path = "/tmp/distme_bench.mtx";

    Stopwatch w1;
    DISTME_CHECK_OK(WriteBinaryMatrix(grid, bin_path));
    const double bin_write = w1.ElapsedMillis();
    Stopwatch w2;
    DISTME_CHECK_OK(WriteMatrixMarket(grid, txt_path));
    const double txt_write = w2.ElapsedMillis();
    Stopwatch r1;
    auto bin = ReadBinaryMatrix(bin_path);
    const double bin_read = r1.ElapsedMillis();
    Stopwatch r2;
    auto txt = ReadMatrixMarket(txt_path, 200);
    const double txt_read = r2.ElapsedMillis();
    DISTME_CHECK_OK(bin.status());
    DISTME_CHECK_OK(txt.status());

    auto file_size = [](const std::string& path) {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      std::fseek(f, 0, SEEK_END);
      const long size = std::ftell(f);
      std::fclose(f);
      return static_cast<double>(size);
    };
    bench::Table table({"format", "write", "read", "file size"});
    char bw[32], br_buf[32], tw[32], tr[32];
    std::snprintf(bw, sizeof(bw), "%.1fms", bin_write);
    std::snprintf(br_buf, sizeof(br_buf), "%.1fms", bin_read);
    std::snprintf(tw, sizeof(tw), "%.1fms", txt_write);
    std::snprintf(tr, sizeof(tr), "%.1fms", txt_read);
    table.AddRow({"binary (.dmx)", bw, br_buf,
                  FormatBytes(file_size(bin_path))});
    table.AddRow({"MatrixMarket", tw, tr, FormatBytes(file_size(txt_path))});
    table.Print();
    std::remove(bin_path.c_str());
    std::remove(txt_path.c_str());
  }
  return 0;
}
