// google-benchmark microbenchmarks for the local kernels: tiled DGEMM vs the
// naive reference, the sparse kernels, and block-level dispatch.

#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "blas/block_ops.h"
#include "blas/gemm.h"
#include "blas/spmm.h"
#include "common/random.h"

namespace distme::blas {
namespace {

DenseMatrix RandomDense(int64_t n, uint64_t seed) {
  Rng rng(seed);
  return DenseMatrix::Random(n, n, &rng);
}

CsrMatrix RandomCsr(int64_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> t;
  const int64_t target = static_cast<int64_t>(density * n * n);
  for (int64_t i = 0; i < target; ++i) {
    t.push_back({static_cast<int64_t>(rng.NextBounded(n)),
                 static_cast<int64_t>(rng.NextBounded(n)), rng.NextDouble()});
  }
  return *CsrMatrix::FromTriplets(n, n, t);
}

void BM_DgemmTiled(benchmark::State& state) {
  const int64_t n = state.range(0);
  DenseMatrix a = RandomDense(n, 1);
  DenseMatrix b = RandomDense(n, 2);
  DenseMatrix c(n, n);
  for (auto _ : state) {
    Dgemm(1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.mutable_data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DgemmTiled)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_DgemmReference(benchmark::State& state) {
  const int64_t n = state.range(0);
  DenseMatrix a = RandomDense(n, 1);
  DenseMatrix b = RandomDense(n, 2);
  DenseMatrix c(n, n);
  for (auto _ : state) {
    DgemmReference(1.0, a, b, 0.0, &c);
    benchmark::DoNotOptimize(c.mutable_data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_DgemmReference)->Arg(64)->Arg(128)->Arg(256);

void BM_DcsrMm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const double density = 1.0 / static_cast<double>(state.range(1));
  CsrMatrix a = RandomCsr(n, density, 3);
  DenseMatrix b = RandomDense(n, 4);
  DenseMatrix c(n, n);
  for (auto _ : state) {
    c.Fill(0.0);
    DcsrMm(a, b, &c);
    benchmark::DoNotOptimize(c.mutable_data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * a.nnz() * n);
}
BENCHMARK(BM_DcsrMm)->Args({256, 10})->Args({256, 100})->Args({512, 100});

void BM_BlockMultiplyAccumulate(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = Block::Dense(RandomDense(n, 5));
  Block b = Block::Dense(RandomDense(n, 6));
  DenseMatrix acc(n, n);
  for (auto _ : state) {
    Status st = MultiplyAccumulate(a, b, &acc);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_BlockMultiplyAccumulate)->Arg(128)->Arg(256);

void BM_TransposeBlock(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = Block::Dense(RandomDense(n, 7));
  for (auto _ : state) {
    Block t = TransposeBlock(a);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8);
}
BENCHMARK(BM_TransposeBlock)->Arg(256)->Arg(512);

void BM_ElementWiseMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Block a = Block::Dense(RandomDense(n, 8));
  Block b = Block::Dense(RandomDense(n, 9));
  for (auto _ : state) {
    auto r = ElementWise(ElementWiseOp::kMul, a, b);
    benchmark::DoNotOptimize(r);
  }
  state.SetBytesProcessed(state.iterations() * n * n * 8 * 3);
}
BENCHMARK(BM_ElementWiseMul)->Arg(256)->Arg(512);

}  // namespace
}  // namespace distme::blas

// BENCHMARK_MAIN with the shared --trace-out= flag stripped out before
// benchmark::Initialize (which rejects flags it does not recognize).
int main(int argc, char** argv) {
  distme::bench::BenchObs obs(argc, argv);
  std::vector<char*> args = distme::bench::BenchObs::StripFlags(argc, argv);
  int rest = static_cast<int>(args.size());
  benchmark::Initialize(&rest, args.data());
  if (benchmark::ReportUnrecognizedArguments(rest, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
