// Shared helpers for the figure/table reproduction benches: aligned table
// printing with paper-reported reference values next to measured ones.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/units.h"
#include "engine/report.h"
#include "obs/comm_matrix.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/prom_export.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace distme::bench {

/// \brief Prints a section banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// \brief Per-binary observability wiring, shared by every bench binary.
///
/// Parses three flags from argv:
///   --trace-out=<path>    enable the owned tracer; on destruction the
///                         Chrome trace-event JSON is written to <path>
///                         (load in chrome://tracing or ui.perfetto.dev —
///                         one process track per simulated node, one thread
///                         track per task slot);
///   --metrics-out=<path>  on destruction, dump the owned metrics registry
///                         as a JSON array of metric points;
///   --bench-json=<path>   on destruction, write the results registered via
///                         AddResult() as machine-readable JSON (consumed
///                         by scripts/bench_baseline.py).
///
/// Live-telemetry flags:
///   --http-port=<port>        serve Prometheus text at
///                             http://127.0.0.1:<port>/metrics while the
///                             bench runs (0 = ephemeral, printed at start);
///   --sample-period-ms=<ms>   snapshot metrics + comm matrix every <ms>
///                             into an in-memory series (count printed at
///                             exit);
///   --flight-dump=<path>      on destruction, dump the flight-recorder
///                             ring (JSON) to <path>; failed executor runs
///                             also dump there immediately.
/// Without the flags the tracer stays disabled (one branch per span) and
/// nothing is written; the flight recorder itself is always on.
class BenchObs {
 public:
  BenchObs(int argc, char** argv) : bench_name_(BaseName(argc, argv)) {
    std::string http_port;
    std::string sample_period_ms;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      MatchFlag(arg, "--trace-out=", &trace_out_);
      MatchFlag(arg, "--metrics-out=", &metrics_out_);
      MatchFlag(arg, "--bench-json=", &bench_json_out_);
      MatchFlag(arg, "--http-port=", &http_port);
      MatchFlag(arg, "--sample-period-ms=", &sample_period_ms);
      MatchFlag(arg, "--flight-dump=", &flight_dump_);
    }
    if (!trace_out_.empty()) tracer_.SetEnabled(true);
    flight_.InstallFatalDump();
    if (!sample_period_ms.empty()) {
      obs::SamplerOptions so;
      so.period_ms = std::atoll(sample_period_ms.c_str());
      sampler_ = std::make_unique<obs::Sampler>(&metrics_, &comm_, so);
      sampler_->Start();
    }
    if (!http_port.empty()) {
      endpoint_ = std::make_unique<obs::HttpEndpoint>(
          [this](const std::string& path) {
            obs::HttpResponse r;
            if (path == "/metrics" || path == "/") {
              r.content_type = "text/plain; version=0.0.4; charset=utf-8";
              r.body = obs::PrometheusText(metrics_.Snapshot());
            } else if (path == "/flight") {
              r.content_type = "application/json";
              r.body = flight_.ToJson();
            } else if (path == "/healthz") {
              r.body = "ok\n";
            } else {
              r.status = 404;
              r.body = "not found\n";
            }
            return r;
          });
      const Status st = endpoint_->Start(std::atoi(http_port.c_str()));
      if (st.ok()) {
        std::printf("telemetry: curl http://127.0.0.1:%d/metrics\n",
                    endpoint_->port());
      } else {
        std::printf("telemetry endpoint disabled: %s\n",
                    st.ToString().c_str());
        endpoint_.reset();
      }
    }
  }

  ~BenchObs() {
    // Consumers of the registry/ring stop before anything is torn down
    // (same ordering contract as core::Session).
    if (endpoint_ != nullptr) endpoint_->Stop();
    if (sampler_ != nullptr) {
      sampler_->Stop();
      std::printf("\nsampler: %lld samples at %lld ms\n",
                  static_cast<long long>(sampler_->total_samples()),
                  static_cast<long long>(sampler_->options().period_ms));
    }
    if (!flight_dump_.empty()) {
      const Status st = flight_.DumpToFile(flight_dump_);
      if (st.ok()) {
        std::printf("\nflight recorder dumped to %s\n", flight_dump_.c_str());
      } else {
        std::printf("\nflight dump failed: %s\n", st.ToString().c_str());
      }
    }
    flight_.UninstallFatalDump();
    if (!trace_out_.empty()) {
      const Status st = obs::WriteChromeTrace(tracer_, trace_out_);
      if (st.ok()) {
        std::printf("\ntrace written to %s (open in chrome://tracing or "
                    "ui.perfetto.dev)\n",
                    trace_out_.c_str());
      } else {
        std::printf("\ntrace write failed: %s\n", st.ToString().c_str());
      }
    }
    if (!metrics_out_.empty()) {
      const Status st = obs::WriteTextFile(
          metrics_out_, obs::MetricsJson(metrics_.Snapshot()));
      if (st.ok()) {
        std::printf("\nmetrics written to %s\n", metrics_out_.c_str());
      } else {
        std::printf("\nmetrics write failed: %s\n", st.ToString().c_str());
      }
    }
    if (!bench_json_out_.empty()) {
      const Status st = obs::WriteTextFile(bench_json_out_, ResultsJson());
      if (st.ok()) {
        std::printf("\nbench results written to %s\n",
                    bench_json_out_.c_str());
      } else {
        std::printf("\nbench results write failed: %s\n",
                    st.ToString().c_str());
      }
    }
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::Tracer* tracer() { return &tracer_; }
  obs::CommMatrix* comm() { return &comm_; }
  obs::FlightRecorder* flight() { return &flight_; }
  obs::Sampler* sampler() { return sampler_.get(); }
  /// \brief Bound scrape port, or -1 when --http-port was not given.
  int http_port() const {
    return endpoint_ != nullptr ? endpoint_->port() : -1;
  }
  bool tracing() const { return !trace_out_.empty(); }

  /// \brief Registers one named measurement for --bench-json output. Keys
  /// should be stable across runs (they become baseline-comparison keys).
  void AddResult(const std::string& key, double value) {
    results_.emplace_back(key, value);
  }

  /// \brief {"bench": <name>, "results": {key: value, ...}}.
  std::string ResultsJson() const {
    obs::JsonWriter w;
    w.BeginObject();
    w.Key("bench");
    w.Value(bench_name_);
    w.Key("results");
    w.BeginObject();
    for (const auto& [key, value] : results_) {
      w.Key(key);
      w.Value(value);
    }
    w.EndObject();
    w.EndObject();
    return w.str();
  }

  /// \brief Copies the obs sinks into an executor options struct (any type
  /// with `metrics` / `tracer` / `comm` / `flight` members, i.e.
  /// RealOptions and SimOptions). RealOptions additionally gets the
  /// --flight-dump path so a failed run drops its post-mortem immediately.
  template <typename Options>
  void Wire(Options* options) {
    options->metrics = &metrics_;
    options->tracer = &tracer_;
    options->comm = &comm_;
    if constexpr (requires { options->flight; }) {
      options->flight = &flight_;
    }
    if constexpr (requires { options->flight_dump_path; }) {
      options->flight_dump_path = flight_dump_;
    }
  }

  /// \brief argv with the obs flags removed, for delegating the rest to a
  /// flag parser that rejects unknown flags (google-benchmark).
  static std::vector<char*> StripFlags(int argc, char** argv) {
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (i > 0 && (IsFlag(arg, "--trace-out=") ||
                    IsFlag(arg, "--metrics-out=") ||
                    IsFlag(arg, "--bench-json=") ||
                    IsFlag(arg, "--http-port=") ||
                    IsFlag(arg, "--sample-period-ms=") ||
                    IsFlag(arg, "--flight-dump="))) {
        continue;
      }
      args.push_back(argv[i]);
    }
    return args;
  }

 private:
  static bool IsFlag(std::string_view arg, std::string_view flag) {
    return arg.substr(0, flag.size()) == flag;
  }

  static void MatchFlag(std::string_view arg, std::string_view flag,
                        std::string* out) {
    if (IsFlag(arg, flag)) *out = std::string(arg.substr(flag.size()));
  }

  static std::string BaseName(int argc, char** argv) {
    if (argc < 1 || argv[0] == nullptr) return "bench";
    const std::string_view path = argv[0];
    const size_t slash = path.find_last_of('/');
    return std::string(slash == std::string_view::npos
                           ? path
                           : path.substr(slash + 1));
  }

  std::string bench_name_;
  std::string trace_out_;
  std::string metrics_out_;
  std::string bench_json_out_;
  std::string flight_dump_;
  std::vector<std::pair<std::string, double>> results_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::CommMatrix comm_;
  obs::FlightRecorder flight_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::HttpEndpoint> endpoint_;
};

/// \brief A paper-reported cell: a number, a failure label, or absent.
struct PaperValue {
  enum class Kind { kNumber, kOom, kTimeout, kEdc, kNone, kApprox };
  Kind kind = Kind::kNone;
  double value = 0;

  static PaperValue Num(double v) { return {Kind::kNumber, v}; }
  /// Approximate reading from a log-scale figure.
  static PaperValue Approx(double v) { return {Kind::kApprox, v}; }
  static PaperValue Oom() { return {Kind::kOom, 0}; }
  static PaperValue To() { return {Kind::kTimeout, 0}; }
  static PaperValue Edc() { return {Kind::kEdc, 0}; }
  static PaperValue None() { return {Kind::kNone, 0}; }

  std::string ToString(const char* unit = "s") const {
    char buf[64];
    switch (kind) {
      case Kind::kNumber:
        std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
        return buf;
      case Kind::kApprox:
        std::snprintf(buf, sizeof(buf), "~%.0f%s", value, unit);
        return buf;
      case Kind::kOom:
        return "O.O.M.";
      case Kind::kTimeout:
        return "T.O.";
      case Kind::kEdc:
        return "E.D.C.";
      case Kind::kNone:
        return "-";
    }
    return "-";
  }

  /// \brief True when the measured outcome agrees in kind (ran vs failed the
  /// same way, numbers within a factor `tolerance`).
  bool Matches(const engine::MMReport& report, double measured,
               double tolerance = 3.0) const {
    switch (kind) {
      case Kind::kNumber:
      case Kind::kApprox:
        return report.outcome.ok() && measured > 0 &&
               measured / value < tolerance && value / measured < tolerance;
      case Kind::kOom:
        return report.outcome.IsOutOfMemory();
      case Kind::kTimeout:
        return report.outcome.IsTimeout();
      case Kind::kEdc:
        return report.outcome.IsExceedsDiskCapacity();
      case Kind::kNone:
        return true;
    }
    return false;
  }
};

/// \brief Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("| ");
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf("%-*s | ", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a measured report cell: elapsed time or failure label.
inline std::string MeasuredCell(const engine::MMReport& report) {
  return report.OutcomeLabel();
}

/// \brief "123.4s (paper ~206s)" composite cell.
inline std::string Compare(const engine::MMReport& report,
                           const PaperValue& paper, const char* unit = "s") {
  return MeasuredCell(report) + " [paper " + paper.ToString(unit) + "]";
}

}  // namespace distme::bench
