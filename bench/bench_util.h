// Shared helpers for the figure/table reproduction benches: aligned table
// printing with paper-reported reference values next to measured ones.

#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.h"
#include "engine/report.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace distme::bench {

/// \brief Prints a section banner.
inline void Banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// \brief Per-binary observability wiring, shared by every bench binary.
///
/// Parses `--trace-out=<path>` from argv; when present, the owned tracer is
/// enabled and, on destruction, the Chrome trace-event JSON is written to
/// `<path>` (load it in chrome://tracing or https://ui.perfetto.dev — one
/// process track per simulated node, one thread track per task slot).
/// Without the flag the tracer stays disabled and costs one branch per span.
class BenchObs {
 public:
  BenchObs(int argc, char** argv) {
    constexpr std::string_view kFlag = "--trace-out=";
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg.substr(0, kFlag.size()) == kFlag) {
        trace_out_ = std::string(arg.substr(kFlag.size()));
      }
    }
    if (!trace_out_.empty()) tracer_.SetEnabled(true);
  }

  ~BenchObs() {
    if (trace_out_.empty()) return;
    const Status st = obs::WriteChromeTrace(tracer_, trace_out_);
    if (st.ok()) {
      std::printf("\ntrace written to %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  trace_out_.c_str());
    } else {
      std::printf("\ntrace write failed: %s\n", st.ToString().c_str());
    }
  }

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  obs::MetricsRegistry* metrics() { return &metrics_; }
  obs::Tracer* tracer() { return &tracer_; }
  bool tracing() const { return !trace_out_.empty(); }

  /// \brief Copies the obs sinks into an executor options struct (any type
  /// with `metrics` / `tracer` members, i.e. RealOptions and SimOptions).
  template <typename Options>
  void Wire(Options* options) {
    options->metrics = &metrics_;
    options->tracer = &tracer_;
  }

  /// \brief argv with the obs flags removed, for delegating the rest to a
  /// flag parser that rejects unknown flags (google-benchmark).
  static std::vector<char*> StripFlags(int argc, char** argv) {
    constexpr std::string_view kFlag = "--trace-out=";
    std::vector<char*> args;
    for (int i = 0; i < argc; ++i) {
      if (i > 0 && std::string_view(argv[i]).substr(0, kFlag.size()) ==
                       kFlag) {
        continue;
      }
      args.push_back(argv[i]);
    }
    return args;
  }

 private:
  std::string trace_out_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
};

/// \brief A paper-reported cell: a number, a failure label, or absent.
struct PaperValue {
  enum class Kind { kNumber, kOom, kTimeout, kEdc, kNone, kApprox };
  Kind kind = Kind::kNone;
  double value = 0;

  static PaperValue Num(double v) { return {Kind::kNumber, v}; }
  /// Approximate reading from a log-scale figure.
  static PaperValue Approx(double v) { return {Kind::kApprox, v}; }
  static PaperValue Oom() { return {Kind::kOom, 0}; }
  static PaperValue To() { return {Kind::kTimeout, 0}; }
  static PaperValue Edc() { return {Kind::kEdc, 0}; }
  static PaperValue None() { return {Kind::kNone, 0}; }

  std::string ToString(const char* unit = "s") const {
    char buf[64];
    switch (kind) {
      case Kind::kNumber:
        std::snprintf(buf, sizeof(buf), "%.0f%s", value, unit);
        return buf;
      case Kind::kApprox:
        std::snprintf(buf, sizeof(buf), "~%.0f%s", value, unit);
        return buf;
      case Kind::kOom:
        return "O.O.M.";
      case Kind::kTimeout:
        return "T.O.";
      case Kind::kEdc:
        return "E.D.C.";
      case Kind::kNone:
        return "-";
    }
    return "-";
  }

  /// \brief True when the measured outcome agrees in kind (ran vs failed the
  /// same way, numbers within a factor `tolerance`).
  bool Matches(const engine::MMReport& report, double measured,
               double tolerance = 3.0) const {
    switch (kind) {
      case Kind::kNumber:
      case Kind::kApprox:
        return report.outcome.ok() && measured > 0 &&
               measured / value < tolerance && value / measured < tolerance;
      case Kind::kOom:
        return report.outcome.IsOutOfMemory();
      case Kind::kTimeout:
        return report.outcome.IsTimeout();
      case Kind::kEdc:
        return report.outcome.IsExceedsDiskCapacity();
      case Kind::kNone:
        return true;
    }
    return false;
  }
};

/// \brief Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& row : rows_) widen(row);

    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("| ");
      for (size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf("%-*s | ", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::printf("|");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Formats a measured report cell: elapsed time or failure label.
inline std::string MeasuredCell(const engine::MMReport& report) {
  return report.OutcomeLabel();
}

/// \brief "123.4s (paper ~206s)" composite cell.
inline std::string Compare(const engine::MMReport& report,
                           const PaperValue& paper, const char* unit = "s") {
  return MeasuredCell(report) + " [paper " + paper.ToString(unit) + "]";
}

}  // namespace distme::bench
