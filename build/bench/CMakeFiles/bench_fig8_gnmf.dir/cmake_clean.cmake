file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gnmf.dir/bench_fig8_gnmf.cc.o"
  "CMakeFiles/bench_fig8_gnmf.dir/bench_fig8_gnmf.cc.o.d"
  "bench_fig8_gnmf"
  "bench_fig8_gnmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gnmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
