file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_comm.dir/bench_fig7_comm.cc.o"
  "CMakeFiles/bench_fig7_comm.dir/bench_fig7_comm.cc.o.d"
  "bench_fig7_comm"
  "bench_fig7_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
