# Empty dependencies file for bench_fig7_comm.
# This may be replaced when dependencies are built.
