file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_general.dir/bench_fig6_general.cc.o"
  "CMakeFiles/bench_fig6_general.dir/bench_fig6_general.cc.o.d"
  "bench_fig6_general"
  "bench_fig6_general.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
