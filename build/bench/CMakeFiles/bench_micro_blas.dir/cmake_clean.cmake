file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_blas.dir/bench_micro_blas.cc.o"
  "CMakeFiles/bench_micro_blas.dir/bench_micro_blas.cc.o.d"
  "bench_micro_blas"
  "bench_micro_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
