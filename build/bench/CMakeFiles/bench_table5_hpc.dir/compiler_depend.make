# Empty compiler generated dependencies file for bench_table5_hpc.
# This may be replaced when dependencies are built.
