file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hpc.dir/bench_table5_hpc.cc.o"
  "CMakeFiles/bench_table5_hpc.dir/bench_table5_hpc.cc.o.d"
  "bench_table5_hpc"
  "bench_table5_hpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
