file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_systems.dir/bench_fig7_systems.cc.o"
  "CMakeFiles/bench_fig7_systems.dir/bench_fig7_systems.cc.o.d"
  "bench_fig7_systems"
  "bench_fig7_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
