# Empty dependencies file for bench_fig7_systems.
# This may be replaced when dependencies are built.
