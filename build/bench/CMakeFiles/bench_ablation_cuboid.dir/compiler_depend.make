# Empty compiler generated dependencies file for bench_ablation_cuboid.
# This may be replaced when dependencies are built.
