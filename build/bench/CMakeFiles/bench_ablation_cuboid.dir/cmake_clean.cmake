file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cuboid.dir/bench_ablation_cuboid.cc.o"
  "CMakeFiles/bench_ablation_cuboid.dir/bench_ablation_cuboid.cc.o.d"
  "bench_ablation_cuboid"
  "bench_ablation_cuboid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cuboid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
