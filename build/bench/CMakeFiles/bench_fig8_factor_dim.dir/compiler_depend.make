# Empty compiler generated dependencies file for bench_fig8_factor_dim.
# This may be replaced when dependencies are built.
