file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_factor_dim.dir/bench_fig8_factor_dim.cc.o"
  "CMakeFiles/bench_fig8_factor_dim.dir/bench_fig8_factor_dim.cc.o.d"
  "bench_fig8_factor_dim"
  "bench_fig8_factor_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_factor_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
