file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_common_dim.dir/bench_fig6_common_dim.cc.o"
  "CMakeFiles/bench_fig6_common_dim.dir/bench_fig6_common_dim.cc.o.d"
  "bench_fig6_common_dim"
  "bench_fig6_common_dim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_common_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
