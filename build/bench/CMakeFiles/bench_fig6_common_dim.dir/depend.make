# Empty dependencies file for bench_fig6_common_dim.
# This may be replaced when dependencies are built.
