file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_ratios.dir/bench_fig7_ratios.cc.o"
  "CMakeFiles/bench_fig7_ratios.dir/bench_fig7_ratios.cc.o.d"
  "bench_fig7_ratios"
  "bench_fig7_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
