file(REMOVE_RECURSE
  "CMakeFiles/bench_validation_real.dir/bench_validation_real.cc.o"
  "CMakeFiles/bench_validation_real.dir/bench_validation_real.cc.o.d"
  "bench_validation_real"
  "bench_validation_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_validation_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
