# Empty dependencies file for bench_validation_real.
# This may be replaced when dependencies are built.
