file(REMOVE_RECURSE
  "CMakeFiles/distme_mm.dir/cost_model.cc.o"
  "CMakeFiles/distme_mm.dir/cost_model.cc.o.d"
  "CMakeFiles/distme_mm.dir/descriptor.cc.o"
  "CMakeFiles/distme_mm.dir/descriptor.cc.o.d"
  "CMakeFiles/distme_mm.dir/methods.cc.o"
  "CMakeFiles/distme_mm.dir/methods.cc.o.d"
  "CMakeFiles/distme_mm.dir/optimizer.cc.o"
  "CMakeFiles/distme_mm.dir/optimizer.cc.o.d"
  "libdistme_mm.a"
  "libdistme_mm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_mm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
