
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mm/cost_model.cc" "src/mm/CMakeFiles/distme_mm.dir/cost_model.cc.o" "gcc" "src/mm/CMakeFiles/distme_mm.dir/cost_model.cc.o.d"
  "/root/repo/src/mm/descriptor.cc" "src/mm/CMakeFiles/distme_mm.dir/descriptor.cc.o" "gcc" "src/mm/CMakeFiles/distme_mm.dir/descriptor.cc.o.d"
  "/root/repo/src/mm/methods.cc" "src/mm/CMakeFiles/distme_mm.dir/methods.cc.o" "gcc" "src/mm/CMakeFiles/distme_mm.dir/methods.cc.o.d"
  "/root/repo/src/mm/optimizer.cc" "src/mm/CMakeFiles/distme_mm.dir/optimizer.cc.o" "gcc" "src/mm/CMakeFiles/distme_mm.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/distme_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/distme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
