file(REMOVE_RECURSE
  "libdistme_mm.a"
)
