# Empty compiler generated dependencies file for distme_mm.
# This may be replaced when dependencies are built.
