# Empty dependencies file for distme_gpu.
# This may be replaced when dependencies are built.
