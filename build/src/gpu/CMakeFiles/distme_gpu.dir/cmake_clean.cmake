file(REMOVE_RECURSE
  "CMakeFiles/distme_gpu.dir/device.cc.o"
  "CMakeFiles/distme_gpu.dir/device.cc.o.d"
  "libdistme_gpu.a"
  "libdistme_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
