file(REMOVE_RECURSE
  "libdistme_gpu.a"
)
