file(REMOVE_RECURSE
  "libdistme_gpumm.a"
)
