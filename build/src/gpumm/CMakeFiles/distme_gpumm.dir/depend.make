# Empty dependencies file for distme_gpumm.
# This may be replaced when dependencies are built.
