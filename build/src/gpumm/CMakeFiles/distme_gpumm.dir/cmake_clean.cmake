file(REMOVE_RECURSE
  "CMakeFiles/distme_gpumm.dir/streaming.cc.o"
  "CMakeFiles/distme_gpumm.dir/streaming.cc.o.d"
  "CMakeFiles/distme_gpumm.dir/subcuboid.cc.o"
  "CMakeFiles/distme_gpumm.dir/subcuboid.cc.o.d"
  "libdistme_gpumm.a"
  "libdistme_gpumm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_gpumm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
