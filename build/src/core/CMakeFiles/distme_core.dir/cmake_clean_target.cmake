file(REMOVE_RECURSE
  "libdistme_core.a"
)
