file(REMOVE_RECURSE
  "CMakeFiles/distme_core.dir/expr.cc.o"
  "CMakeFiles/distme_core.dir/expr.cc.o.d"
  "CMakeFiles/distme_core.dir/gnmf.cc.o"
  "CMakeFiles/distme_core.dir/gnmf.cc.o.d"
  "CMakeFiles/distme_core.dir/planner.cc.o"
  "CMakeFiles/distme_core.dir/planner.cc.o.d"
  "CMakeFiles/distme_core.dir/session.cc.o"
  "CMakeFiles/distme_core.dir/session.cc.o.d"
  "CMakeFiles/distme_core.dir/sim_query.cc.o"
  "CMakeFiles/distme_core.dir/sim_query.cc.o.d"
  "libdistme_core.a"
  "libdistme_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
