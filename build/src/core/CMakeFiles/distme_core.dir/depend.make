# Empty dependencies file for distme_core.
# This may be replaced when dependencies are built.
