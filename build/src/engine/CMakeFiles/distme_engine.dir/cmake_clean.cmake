file(REMOVE_RECURSE
  "CMakeFiles/distme_engine.dir/distributed_matrix.cc.o"
  "CMakeFiles/distme_engine.dir/distributed_matrix.cc.o.d"
  "CMakeFiles/distme_engine.dir/partitioner.cc.o"
  "CMakeFiles/distme_engine.dir/partitioner.cc.o.d"
  "CMakeFiles/distme_engine.dir/real_executor.cc.o"
  "CMakeFiles/distme_engine.dir/real_executor.cc.o.d"
  "CMakeFiles/distme_engine.dir/report.cc.o"
  "CMakeFiles/distme_engine.dir/report.cc.o.d"
  "CMakeFiles/distme_engine.dir/sim_executor.cc.o"
  "CMakeFiles/distme_engine.dir/sim_executor.cc.o.d"
  "libdistme_engine.a"
  "libdistme_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
