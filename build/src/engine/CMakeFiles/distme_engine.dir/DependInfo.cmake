
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/distributed_matrix.cc" "src/engine/CMakeFiles/distme_engine.dir/distributed_matrix.cc.o" "gcc" "src/engine/CMakeFiles/distme_engine.dir/distributed_matrix.cc.o.d"
  "/root/repo/src/engine/partitioner.cc" "src/engine/CMakeFiles/distme_engine.dir/partitioner.cc.o" "gcc" "src/engine/CMakeFiles/distme_engine.dir/partitioner.cc.o.d"
  "/root/repo/src/engine/real_executor.cc" "src/engine/CMakeFiles/distme_engine.dir/real_executor.cc.o" "gcc" "src/engine/CMakeFiles/distme_engine.dir/real_executor.cc.o.d"
  "/root/repo/src/engine/report.cc" "src/engine/CMakeFiles/distme_engine.dir/report.cc.o" "gcc" "src/engine/CMakeFiles/distme_engine.dir/report.cc.o.d"
  "/root/repo/src/engine/sim_executor.cc" "src/engine/CMakeFiles/distme_engine.dir/sim_executor.cc.o" "gcc" "src/engine/CMakeFiles/distme_engine.dir/sim_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mm/CMakeFiles/distme_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/gpumm/CMakeFiles/distme_gpumm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distme_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/distme_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/distme_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/distme_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/distme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
