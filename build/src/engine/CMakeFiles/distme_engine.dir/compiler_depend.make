# Empty compiler generated dependencies file for distme_engine.
# This may be replaced when dependencies are built.
