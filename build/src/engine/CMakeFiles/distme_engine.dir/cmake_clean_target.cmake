file(REMOVE_RECURSE
  "libdistme_engine.a"
)
