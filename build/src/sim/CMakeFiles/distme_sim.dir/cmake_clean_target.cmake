file(REMOVE_RECURSE
  "libdistme_sim.a"
)
