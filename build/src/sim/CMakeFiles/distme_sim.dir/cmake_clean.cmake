file(REMOVE_RECURSE
  "CMakeFiles/distme_sim.dir/timeline.cc.o"
  "CMakeFiles/distme_sim.dir/timeline.cc.o.d"
  "libdistme_sim.a"
  "libdistme_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
