# Empty compiler generated dependencies file for distme_sim.
# This may be replaced when dependencies are built.
