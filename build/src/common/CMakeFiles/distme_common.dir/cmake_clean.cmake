file(REMOVE_RECURSE
  "CMakeFiles/distme_common.dir/logging.cc.o"
  "CMakeFiles/distme_common.dir/logging.cc.o.d"
  "CMakeFiles/distme_common.dir/random.cc.o"
  "CMakeFiles/distme_common.dir/random.cc.o.d"
  "CMakeFiles/distme_common.dir/status.cc.o"
  "CMakeFiles/distme_common.dir/status.cc.o.d"
  "CMakeFiles/distme_common.dir/units.cc.o"
  "CMakeFiles/distme_common.dir/units.cc.o.d"
  "libdistme_common.a"
  "libdistme_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
