file(REMOVE_RECURSE
  "libdistme_common.a"
)
