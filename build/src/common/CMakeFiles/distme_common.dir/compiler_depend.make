# Empty compiler generated dependencies file for distme_common.
# This may be replaced when dependencies are built.
