file(REMOVE_RECURSE
  "libdistme_systems.a"
)
