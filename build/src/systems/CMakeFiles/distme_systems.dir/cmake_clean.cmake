file(REMOVE_RECURSE
  "CMakeFiles/distme_systems.dir/profiles.cc.o"
  "CMakeFiles/distme_systems.dir/profiles.cc.o.d"
  "libdistme_systems.a"
  "libdistme_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
