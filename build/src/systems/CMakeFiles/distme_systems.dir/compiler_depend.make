# Empty compiler generated dependencies file for distme_systems.
# This may be replaced when dependencies are built.
