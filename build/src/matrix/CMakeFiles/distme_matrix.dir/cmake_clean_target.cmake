file(REMOVE_RECURSE
  "libdistme_matrix.a"
)
