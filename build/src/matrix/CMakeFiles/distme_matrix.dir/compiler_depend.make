# Empty compiler generated dependencies file for distme_matrix.
# This may be replaced when dependencies are built.
