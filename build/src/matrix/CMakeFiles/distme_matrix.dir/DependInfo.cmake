
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/block.cc" "src/matrix/CMakeFiles/distme_matrix.dir/block.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/block.cc.o.d"
  "/root/repo/src/matrix/block_grid.cc" "src/matrix/CMakeFiles/distme_matrix.dir/block_grid.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/block_grid.cc.o.d"
  "/root/repo/src/matrix/dense_matrix.cc" "src/matrix/CMakeFiles/distme_matrix.dir/dense_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/dense_matrix.cc.o.d"
  "/root/repo/src/matrix/generator.cc" "src/matrix/CMakeFiles/distme_matrix.dir/generator.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/generator.cc.o.d"
  "/root/repo/src/matrix/io.cc" "src/matrix/CMakeFiles/distme_matrix.dir/io.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/io.cc.o.d"
  "/root/repo/src/matrix/serialize.cc" "src/matrix/CMakeFiles/distme_matrix.dir/serialize.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/serialize.cc.o.d"
  "/root/repo/src/matrix/sparse_matrix.cc" "src/matrix/CMakeFiles/distme_matrix.dir/sparse_matrix.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/sparse_matrix.cc.o.d"
  "/root/repo/src/matrix/store.cc" "src/matrix/CMakeFiles/distme_matrix.dir/store.cc.o" "gcc" "src/matrix/CMakeFiles/distme_matrix.dir/store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/distme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
