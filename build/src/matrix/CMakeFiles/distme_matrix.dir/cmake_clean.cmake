file(REMOVE_RECURSE
  "CMakeFiles/distme_matrix.dir/block.cc.o"
  "CMakeFiles/distme_matrix.dir/block.cc.o.d"
  "CMakeFiles/distme_matrix.dir/block_grid.cc.o"
  "CMakeFiles/distme_matrix.dir/block_grid.cc.o.d"
  "CMakeFiles/distme_matrix.dir/dense_matrix.cc.o"
  "CMakeFiles/distme_matrix.dir/dense_matrix.cc.o.d"
  "CMakeFiles/distme_matrix.dir/generator.cc.o"
  "CMakeFiles/distme_matrix.dir/generator.cc.o.d"
  "CMakeFiles/distme_matrix.dir/io.cc.o"
  "CMakeFiles/distme_matrix.dir/io.cc.o.d"
  "CMakeFiles/distme_matrix.dir/serialize.cc.o"
  "CMakeFiles/distme_matrix.dir/serialize.cc.o.d"
  "CMakeFiles/distme_matrix.dir/sparse_matrix.cc.o"
  "CMakeFiles/distme_matrix.dir/sparse_matrix.cc.o.d"
  "CMakeFiles/distme_matrix.dir/store.cc.o"
  "CMakeFiles/distme_matrix.dir/store.cc.o.d"
  "libdistme_matrix.a"
  "libdistme_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
