file(REMOVE_RECURSE
  "libdistme_blas.a"
)
