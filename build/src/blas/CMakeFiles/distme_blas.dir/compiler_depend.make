# Empty compiler generated dependencies file for distme_blas.
# This may be replaced when dependencies are built.
