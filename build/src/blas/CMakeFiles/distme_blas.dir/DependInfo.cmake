
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/block_ops.cc" "src/blas/CMakeFiles/distme_blas.dir/block_ops.cc.o" "gcc" "src/blas/CMakeFiles/distme_blas.dir/block_ops.cc.o.d"
  "/root/repo/src/blas/cholesky.cc" "src/blas/CMakeFiles/distme_blas.dir/cholesky.cc.o" "gcc" "src/blas/CMakeFiles/distme_blas.dir/cholesky.cc.o.d"
  "/root/repo/src/blas/gemm.cc" "src/blas/CMakeFiles/distme_blas.dir/gemm.cc.o" "gcc" "src/blas/CMakeFiles/distme_blas.dir/gemm.cc.o.d"
  "/root/repo/src/blas/local_mm.cc" "src/blas/CMakeFiles/distme_blas.dir/local_mm.cc.o" "gcc" "src/blas/CMakeFiles/distme_blas.dir/local_mm.cc.o.d"
  "/root/repo/src/blas/spmm.cc" "src/blas/CMakeFiles/distme_blas.dir/spmm.cc.o" "gcc" "src/blas/CMakeFiles/distme_blas.dir/spmm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matrix/CMakeFiles/distme_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/distme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
