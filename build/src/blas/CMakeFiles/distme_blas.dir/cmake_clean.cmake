file(REMOVE_RECURSE
  "CMakeFiles/distme_blas.dir/block_ops.cc.o"
  "CMakeFiles/distme_blas.dir/block_ops.cc.o.d"
  "CMakeFiles/distme_blas.dir/cholesky.cc.o"
  "CMakeFiles/distme_blas.dir/cholesky.cc.o.d"
  "CMakeFiles/distme_blas.dir/gemm.cc.o"
  "CMakeFiles/distme_blas.dir/gemm.cc.o.d"
  "CMakeFiles/distme_blas.dir/local_mm.cc.o"
  "CMakeFiles/distme_blas.dir/local_mm.cc.o.d"
  "CMakeFiles/distme_blas.dir/spmm.cc.o"
  "CMakeFiles/distme_blas.dir/spmm.cc.o.d"
  "libdistme_blas.a"
  "libdistme_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distme_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
