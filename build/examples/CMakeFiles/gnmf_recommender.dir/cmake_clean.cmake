file(REMOVE_RECURSE
  "CMakeFiles/gnmf_recommender.dir/gnmf_recommender.cpp.o"
  "CMakeFiles/gnmf_recommender.dir/gnmf_recommender.cpp.o.d"
  "gnmf_recommender"
  "gnmf_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnmf_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
