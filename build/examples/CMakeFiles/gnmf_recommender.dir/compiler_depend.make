# Empty compiler generated dependencies file for gnmf_recommender.
# This may be replaced when dependencies are built.
