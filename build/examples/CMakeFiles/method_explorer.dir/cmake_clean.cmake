file(REMOVE_RECURSE
  "CMakeFiles/method_explorer.dir/method_explorer.cpp.o"
  "CMakeFiles/method_explorer.dir/method_explorer.cpp.o.d"
  "method_explorer"
  "method_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
