# Empty dependencies file for subcuboid_test.
# This may be replaced when dependencies are built.
