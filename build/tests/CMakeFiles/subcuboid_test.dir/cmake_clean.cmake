file(REMOVE_RECURSE
  "CMakeFiles/subcuboid_test.dir/subcuboid_test.cc.o"
  "CMakeFiles/subcuboid_test.dir/subcuboid_test.cc.o.d"
  "subcuboid_test"
  "subcuboid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subcuboid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
