
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/properties_test.cc" "tests/CMakeFiles/properties_test.dir/properties_test.cc.o" "gcc" "tests/CMakeFiles/properties_test.dir/properties_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systems/CMakeFiles/distme_systems.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/distme_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/distme_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/gpumm/CMakeFiles/distme_gpumm.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/distme_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mm/CMakeFiles/distme_mm.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/distme_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/matrix/CMakeFiles/distme_matrix.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/distme_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/distme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
