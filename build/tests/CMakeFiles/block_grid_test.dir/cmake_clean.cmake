file(REMOVE_RECURSE
  "CMakeFiles/block_grid_test.dir/block_grid_test.cc.o"
  "CMakeFiles/block_grid_test.dir/block_grid_test.cc.o.d"
  "block_grid_test"
  "block_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
