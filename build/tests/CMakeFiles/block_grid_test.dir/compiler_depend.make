# Empty compiler generated dependencies file for block_grid_test.
# This may be replaced when dependencies are built.
