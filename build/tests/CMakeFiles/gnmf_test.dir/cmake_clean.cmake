file(REMOVE_RECURSE
  "CMakeFiles/gnmf_test.dir/gnmf_test.cc.o"
  "CMakeFiles/gnmf_test.dir/gnmf_test.cc.o.d"
  "gnmf_test"
  "gnmf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnmf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
