# Empty dependencies file for gnmf_test.
# This may be replaced when dependencies are built.
