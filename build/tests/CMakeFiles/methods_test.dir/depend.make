# Empty dependencies file for methods_test.
# This may be replaced when dependencies are built.
