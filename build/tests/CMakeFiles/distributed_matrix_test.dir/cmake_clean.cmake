file(REMOVE_RECURSE
  "CMakeFiles/distributed_matrix_test.dir/distributed_matrix_test.cc.o"
  "CMakeFiles/distributed_matrix_test.dir/distributed_matrix_test.cc.o.d"
  "distributed_matrix_test"
  "distributed_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
