# Empty dependencies file for voxelset_test.
# This may be replaced when dependencies are built.
