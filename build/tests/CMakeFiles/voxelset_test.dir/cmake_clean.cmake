file(REMOVE_RECURSE
  "CMakeFiles/voxelset_test.dir/voxelset_test.cc.o"
  "CMakeFiles/voxelset_test.dir/voxelset_test.cc.o.d"
  "voxelset_test"
  "voxelset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voxelset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
