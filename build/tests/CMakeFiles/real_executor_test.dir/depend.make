# Empty dependencies file for real_executor_test.
# This may be replaced when dependencies are built.
