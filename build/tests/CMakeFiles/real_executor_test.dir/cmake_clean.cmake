file(REMOVE_RECURSE
  "CMakeFiles/real_executor_test.dir/real_executor_test.cc.o"
  "CMakeFiles/real_executor_test.dir/real_executor_test.cc.o.d"
  "real_executor_test"
  "real_executor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/real_executor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
