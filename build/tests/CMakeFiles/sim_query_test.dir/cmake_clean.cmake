file(REMOVE_RECURSE
  "CMakeFiles/sim_query_test.dir/sim_query_test.cc.o"
  "CMakeFiles/sim_query_test.dir/sim_query_test.cc.o.d"
  "sim_query_test"
  "sim_query_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
