# Empty dependencies file for sim_query_test.
# This may be replaced when dependencies are built.
