file(REMOVE_RECURSE
  "CMakeFiles/sim_timeline_test.dir/sim_timeline_test.cc.o"
  "CMakeFiles/sim_timeline_test.dir/sim_timeline_test.cc.o.d"
  "sim_timeline_test"
  "sim_timeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
