#include <gtest/gtest.h>

#include "systems/profiles.h"

namespace distme::systems {
namespace {

using mm::MMProblem;

MMProblem DenseProblem(int64_t i, int64_t k, int64_t j, double sparsity = 1.0) {
  MMProblem p = MMProblem::DenseSquareBlocks(i, k, j, 1000);
  p.a.sparsity = sparsity;
  p.b.sparsity = sparsity;
  return p;
}

const ClusterConfig kPaper = ClusterConfig::Paper();

TEST(SystemsTest, Figure7aOrdering) {
  // 40K×40K×40K dense: DistME(C) beats SystemML(C); MatFast(C) O.O.M.s.
  const MMProblem p = DenseProblem(40000, 40000, 40000);
  auto distme = RunMultiply(DistME(false), p, kPaper);
  auto systemml = RunMultiply(SystemML(false), p, kPaper);
  auto matfast = RunMultiply(MatFast(false), p, kPaper);
  ASSERT_TRUE(distme.ok() && systemml.ok() && matfast.ok());
  ASSERT_TRUE(distme->outcome.ok()) << distme->outcome;
  ASSERT_TRUE(systemml->outcome.ok()) << systemml->outcome;
  EXPECT_TRUE(matfast->outcome.IsOutOfMemory()) << matfast->outcome;
  EXPECT_LT(distme->elapsed_seconds, systemml->elapsed_seconds);
}

TEST(SystemsTest, Figure7aGpuSpeedups) {
  // GPU variants improve on CPU variants, and DistME(G) stays well ahead of
  // SystemML(G). (The paper additionally reports a *larger relative*
  // speedup for DistME than SystemML; in our substrate SystemML's CPU
  // baseline is parallelism-starved, which inflates its relative gain —
  // see EXPERIMENTS.md. The absolute ordering is the preserved result.)
  const MMProblem p = DenseProblem(40000, 40000, 40000);
  auto distme_c = RunMultiply(DistME(false), p, kPaper);
  auto distme_g = RunMultiply(DistME(true), p, kPaper);
  auto systemml_c = RunMultiply(SystemML(false), p, kPaper);
  auto systemml_g = RunMultiply(SystemML(true), p, kPaper);
  ASSERT_TRUE(distme_c->outcome.ok() && distme_g->outcome.ok());
  ASSERT_TRUE(systemml_c->outcome.ok() && systemml_g->outcome.ok());
  const double distme_speedup =
      distme_c->elapsed_seconds / distme_g->elapsed_seconds;
  const double systemml_speedup =
      systemml_c->elapsed_seconds / systemml_g->elapsed_seconds;
  EXPECT_GT(distme_speedup, 1.5);
  EXPECT_GT(systemml_speedup, 1.5);
  EXPECT_LT(distme_g->elapsed_seconds, systemml_g->elapsed_seconds);
  EXPECT_LT(distme_c->elapsed_seconds, systemml_c->elapsed_seconds);
}

TEST(SystemsTest, Figure7cMatFastOomSystemMLPicksRmm) {
  // N×1K×1M with huge |C|: MatFast's CPMM O.O.M.s at every size; SystemML
  // falls back to RMM and survives at N = 1M.
  const MMProblem p = DenseProblem(1000000, 1000, 1000000);
  auto matfast = RunMultiply(MatFast(false), p, kPaper);
  ASSERT_TRUE(matfast.ok());
  EXPECT_TRUE(matfast->outcome.IsOutOfMemory()) << matfast->outcome;

  ClusterConfig patient = kPaper;
  patient.timeout_seconds = 1e9;  // Figure 7(c) is measured in minutes
  auto systemml = RunMultiply(SystemML(false), p, patient);
  ASSERT_TRUE(systemml.ok());
  ASSERT_TRUE(systemml->outcome.ok()) << systemml->outcome;
  EXPECT_EQ(systemml->method_name, "RMM");

  auto distme = RunMultiply(DistME(false), p, patient);
  ASSERT_TRUE(distme.ok());
  ASSERT_TRUE(distme->outcome.ok()) << distme->outcome;
  // Figure 7(c): DistME(C) wins (paper: 4.9×; our model reproduces
  // DistME's absolute minutes but under-models the JVM collapse SystemML
  // suffers at 10^6 RMM tasks — see EXPERIMENTS.md).
  EXPECT_GT(systemml->elapsed_seconds / distme->elapsed_seconds, 1.25);
}

TEST(SystemsTest, Figure7cSystemMLEdcAtLargerN) {
  // SystemML's RMM exceeds disk capacity at N = 1.5M (E.D.C.).
  const MMProblem p = DenseProblem(1500000, 1000, 1000000);
  ClusterConfig patient = kPaper;
  patient.timeout_seconds = 1e9;
  auto systemml = RunMultiply(SystemML(false), p, patient);
  ASSERT_TRUE(systemml.ok());
  EXPECT_TRUE(systemml->outcome.IsExceedsDiskCapacity()) << systemml->outcome;
  auto distme = RunMultiply(DistME(false), p, patient);
  ASSERT_TRUE(distme.ok());
  EXPECT_TRUE(distme->outcome.ok()) << distme->outcome;
}

TEST(SystemsTest, Figure7dSparseDense) {
  // 500K×1M×1K, sparse A: everyone runs; DistME(G) is fastest.
  MMProblem p = DenseProblem(500000, 1000000, 1000);
  p.a.sparsity = 1e-3;
  p.a.stored_dense = false;
  auto distme_g = RunMultiply(DistME(true), p, kPaper);
  auto systemml_g = RunMultiply(SystemML(true), p, kPaper);
  auto matfast_g = RunMultiply(MatFast(true), p, kPaper);
  ASSERT_TRUE(distme_g.ok() && systemml_g.ok() && matfast_g.ok());
  ASSERT_TRUE(distme_g->outcome.ok()) << distme_g->outcome;
  ASSERT_TRUE(systemml_g->outcome.ok()) << systemml_g->outcome;
  ASSERT_TRUE(matfast_g->outcome.ok()) << matfast_g->outcome;
  EXPECT_LT(distme_g->elapsed_seconds, systemml_g->elapsed_seconds);
  EXPECT_LT(distme_g->elapsed_seconds, matfast_g->elapsed_seconds);
}

TEST(SystemsTest, Table5CommonLargeDimension) {
  // 5K×1M×5K: DistME(C) ≈3× faster than ScaLAPACK (995s vs 326s).
  const MMProblem p = DenseProblem(5000, 1000000, 5000);
  ClusterConfig patient = kPaper;
  patient.timeout_seconds = 1e9;
  auto scalapack = RunMultiply(ScaLAPACK(), p, patient);
  auto scidb = RunMultiply(SciDB(), p, patient);
  auto distme = RunMultiply(DistME(false), p, patient);
  ASSERT_TRUE(scalapack.ok() && scidb.ok() && distme.ok());
  ASSERT_TRUE(scalapack->outcome.ok()) << scalapack->outcome;
  ASSERT_TRUE(distme->outcome.ok()) << distme->outcome;
  // Paper: 3.05x. Our MPI model lacks some of ScaLAPACK's redistribution
  // overheads, so the margin is smaller but the winner is the same.
  EXPECT_GT(scalapack->elapsed_seconds / distme->elapsed_seconds, 1.2);
  // SciDB is never faster than raw ScaLAPACK (it wraps it).
  if (scidb->outcome.ok()) {
    EXPECT_GE(scidb->elapsed_seconds, scalapack->elapsed_seconds);
  }
}

TEST(SystemsTest, Table5HpcOomOnTwoLargeDimensions) {
  // 500K×1K×500K: ScaLAPACK and SciDB O.O.M.; only DistME completes.
  const MMProblem p = DenseProblem(500000, 1000, 500000);
  ClusterConfig patient = kPaper;
  patient.timeout_seconds = 1e9;
  auto scalapack = RunMultiply(ScaLAPACK(), p, patient);
  auto scidb = RunMultiply(SciDB(), p, patient);
  auto distme = RunMultiply(DistME(false), p, patient);
  ASSERT_TRUE(scalapack.ok() && scidb.ok() && distme.ok());
  EXPECT_TRUE(scalapack->outcome.IsOutOfMemory()) << scalapack->outcome;
  EXPECT_TRUE(scidb->outcome.IsOutOfMemory()) << scidb->outcome;
  EXPECT_TRUE(distme->outcome.ok()) << distme->outcome;
}

TEST(SystemsTest, Table5SmallMatricesCompetitive) {
  // 10K×10K×10K: the paper has ScaLAPACK (31s) slightly ahead of DistME(C)
  // (42s) because of Spark job startup and HDFS input loading, which our
  // substrate does not model; what must hold is that the two systems are
  // within noise of each other at small scale (they diverge at 50K+).
  const MMProblem p = DenseProblem(10000, 10000, 10000);
  auto scalapack = RunMultiply(ScaLAPACK(), p, kPaper);
  auto distme = RunMultiply(DistME(false), p, kPaper);
  ASSERT_TRUE(scalapack.ok() && distme.ok());
  ASSERT_TRUE(scalapack->outcome.ok() && distme->outcome.ok());
  const double ratio = scalapack->elapsed_seconds / distme->elapsed_seconds;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(SystemsTest, SciDbRepartitionsMore) {
  const MMProblem p = DenseProblem(20000, 20000, 20000);
  auto scalapack = RunMultiply(ScaLAPACK(), p, kPaper);
  auto scidb = RunMultiply(SciDB(), p, kPaper);
  ASSERT_TRUE(scalapack.ok() && scidb.ok());
  EXPECT_GT(scidb->repartition_bytes, scalapack->repartition_bytes);
}

TEST(SystemsTest, ProfileNames) {
  EXPECT_EQ(DistME(true).name, "DistME(G)");
  EXPECT_EQ(DistME(false).name, "DistME(C)");
  EXPECT_EQ(SystemML(true).name, "SystemML(G)");
  EXPECT_EQ(MatFast(false).name, "MatFast(C)");
  EXPECT_EQ(DMac().name, "DMac");
}

}  // namespace
}  // namespace distme::systems

namespace distme::systems {
namespace {

// Direct tests of the planner policies on canonical shapes.
TEST(PlannerPolicyTest, SystemMLObservedChoices) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  auto planner = SystemML(false).planner;
  // Figure 7(a) general matrices → CPMM or RMM (broadcast infeasible).
  {
    auto method = planner->Choose(DenseProblem(40000, 40000, 40000), cluster);
    ASSERT_TRUE(method.ok());
    EXPECT_NE((*method)->kind(), mm::MethodKind::kBmm);
  }
  // Figure 7(c) huge |C| → RMM.
  {
    auto method =
        planner->Choose(DenseProblem(1000000, 1000, 1000000), cluster);
    ASSERT_TRUE(method.ok());
    EXPECT_EQ((*method)->kind(), mm::MethodKind::kRmm);
  }
  // GNMF-style tall-times-thin with a tiny broadcastable side → BMM.
  {
    MMProblem p;
    p.a = mm::MatrixDescriptor::Sparse(480000, 18000, 1000, 0.01);
    p.b = mm::MatrixDescriptor::Dense(18000, 200, 1000);
    auto method = planner->Choose(p, cluster);
    ASSERT_TRUE(method.ok());
    EXPECT_EQ((*method)->kind(), mm::MethodKind::kBmm);
  }
  // Tall-thin Gram matrix WᵀW: BMM would serialize on one task → CPMM.
  {
    MMProblem p;
    p.a = mm::MatrixDescriptor::Dense(200, 480000, 1000);
    p.b = mm::MatrixDescriptor::Dense(480000, 200, 1000);
    auto method = planner->Choose(p, cluster);
    ASSERT_TRUE(method.ok());
    EXPECT_EQ((*method)->kind(), mm::MethodKind::kCpmm);
  }
}

TEST(PlannerPolicyTest, MatFastDefaultsToCpmm) {
  const ClusterConfig cluster = ClusterConfig::Paper();
  auto planner = MatFast(false).planner;
  auto method = planner->Choose(DenseProblem(30000, 30000, 30000), cluster);
  ASSERT_TRUE(method.ok());
  EXPECT_EQ((*method)->kind(), mm::MethodKind::kCpmm);
}

TEST(ReportLabelTest, OutcomeLabels) {
  engine::MMReport report;
  report.outcome = Status::OK();
  report.elapsed_seconds = 42.0;
  EXPECT_EQ(report.OutcomeLabel(), "42.0s");
  report.outcome = Status::OutOfMemory("x");
  EXPECT_EQ(report.OutcomeLabel(), "O.O.M.");
  report.outcome = Status::Timeout("x");
  EXPECT_EQ(report.OutcomeLabel(), "T.O.");
  report.outcome = Status::ExceedsDiskCapacity("x");
  EXPECT_EQ(report.OutcomeLabel(), "E.D.C.");
}

}  // namespace
}  // namespace distme::systems
