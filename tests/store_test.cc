#include <gtest/gtest.h>

#include <cstdio>

#include "matrix/generator.h"
#include "matrix/store.h"

namespace distme {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

BlockGrid TestGrid(double sparsity, uint64_t seed) {
  GeneratorOptions g;
  g.rows = 53;
  g.cols = 41;
  g.block_size = 10;
  g.sparsity = sparsity;
  g.seed = seed;
  return GenerateUniform(g);
}

TEST(BinaryStoreTest, DenseRoundTrip) {
  BlockGrid grid = TestGrid(1.0, 1);
  const std::string path = TempPath("dense.dmx");
  ASSERT_TRUE(WriteBinaryMatrix(grid, path).ok());
  auto restored = ReadBinaryMatrix(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->shape() == grid.shape());
  EXPECT_TRUE(
      DenseMatrix::ApproxEquals(restored->ToDense(), grid.ToDense(), 0.0));
  std::remove(path.c_str());
}

TEST(BinaryStoreTest, SparseRoundTripKeepsFormats) {
  BlockGrid grid = TestGrid(0.05, 2);
  const std::string path = TempPath("sparse.dmx");
  ASSERT_TRUE(WriteBinaryMatrix(grid, path).ok());
  auto restored = ReadBinaryMatrix(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_blocks(), grid.num_blocks());
  EXPECT_EQ(restored->TotalNnz(), grid.TotalNnz());
  for (const auto& [idx, block] : restored->blocks()) {
    EXPECT_TRUE(block.IsSparse());
  }
  std::remove(path.c_str());
}

TEST(BinaryStoreTest, InfoWithoutPayload) {
  BlockGrid grid = TestGrid(0.3, 3);
  const std::string path = TempPath("info.dmx");
  ASSERT_TRUE(WriteBinaryMatrix(grid, path).ok());
  auto info = ReadBinaryMatrixInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->shape.rows, 53);
  EXPECT_EQ(info->shape.cols, 41);
  EXPECT_EQ(info->num_blocks, grid.num_blocks());
  EXPECT_EQ(info->total_nnz, grid.TotalNnz());
  std::remove(path.c_str());
}

TEST(BinaryStoreTest, EmptyMatrix) {
  BlockGrid grid(BlockedShape{30, 30, 10});  // no materialized blocks
  const std::string path = TempPath("empty.dmx");
  ASSERT_TRUE(WriteBinaryMatrix(grid, path).ok());
  auto restored = ReadBinaryMatrix(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_blocks(), 0);
  std::remove(path.c_str());
}

TEST(BinaryStoreTest, RejectsWrongMagic) {
  const std::string path = TempPath("bad.dmx");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[128] = "this is not a matrix";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinaryMatrix(path).ok());
  EXPECT_FALSE(ReadBinaryMatrixInfo(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryStoreTest, RejectsTruncatedFile) {
  BlockGrid grid = TestGrid(1.0, 4);
  const std::string path = TempPath("trunc.dmx");
  ASSERT_TRUE(WriteBinaryMatrix(grid, path).ok());
  // Truncate to half.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  EXPECT_FALSE(ReadBinaryMatrix(path).ok());
  std::remove(path.c_str());
}

TEST(BinaryStoreTest, MissingFileFails) {
  EXPECT_FALSE(ReadBinaryMatrix("/nonexistent/m.dmx").ok());
}

TEST(BinaryStoreTest, MoreCompactThanMatrixMarketForDense) {
  // Binary payload ≈ 8 B/element; text ≈ 20+ B/element.
  BlockGrid grid = TestGrid(1.0, 5);
  const std::string path = TempPath("compact.dmx");
  ASSERT_TRUE(WriteBinaryMatrix(grid, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  const long binary_size = std::ftell(f);
  std::fclose(f);
  EXPECT_LT(binary_size, 53 * 41 * 12);  // < 12 B/element incl. index
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distme
