#include <gtest/gtest.h>

#include "blas/cholesky.h"
#include "blas/gemm.h"
#include "common/random.h"

namespace distme::blas {
namespace {

// A random SPD matrix: M·Mᵀ + n·I.
DenseMatrix RandomSpd(int64_t n, uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m = DenseMatrix::Random(n, n, &rng, -1.0, 1.0);
  DenseMatrix spd = Multiply(m, m.Transpose());
  for (int64_t i = 0; i < n; ++i) {
    spd.Add(i, i, static_cast<double>(n));
  }
  return spd;
}

TEST(CholeskyTest, FactorsReproduceTheMatrix) {
  for (const int64_t n : {1, 2, 5, 16, 33}) {
    const DenseMatrix a = RandomSpd(n, 10 + static_cast<uint64_t>(n));
    auto l = Cholesky(a);
    ASSERT_TRUE(l.ok()) << "n=" << n;
    // L is lower triangular with positive diagonal.
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_GT(l->At(i, i), 0.0);
      for (int64_t j = i + 1; j < n; ++j) EXPECT_EQ(l->At(i, j), 0.0);
    }
    const DenseMatrix reconstructed = Multiply(*l, l->Transpose());
    EXPECT_LT(DenseMatrix::MaxAbsDiff(reconstructed, a), 1e-8) << "n=" << n;
  }
}

TEST(CholeskyTest, KnownFactorization) {
  // [[4, 2], [2, 5]] = [[2, 0], [1, 2]] · [[2, 1], [0, 2]].
  DenseMatrix a(2, 2);
  a.Set(0, 0, 4);
  a.Set(0, 1, 2);
  a.Set(1, 0, 2);
  a.Set(1, 1, 5);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ(l->At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l->At(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(l->At(1, 1), 2.0);
}

TEST(CholeskyTest, RejectsNonSpd) {
  DenseMatrix negative(2, 2);
  negative.Set(0, 0, -1.0);
  negative.Set(1, 1, 1.0);
  EXPECT_FALSE(Cholesky(negative).ok());

  DenseMatrix rectangular(2, 3);
  EXPECT_FALSE(Cholesky(rectangular).ok());

  // Singular (rank 1) matrix fails the pivot test.
  DenseMatrix singular(2, 2);
  singular.Set(0, 0, 1.0);
  singular.Set(0, 1, 1.0);
  singular.Set(1, 0, 1.0);
  singular.Set(1, 1, 1.0);
  EXPECT_FALSE(Cholesky(singular).ok());
}

TEST(CholeskyTest, TriangularSolves) {
  const DenseMatrix a = RandomSpd(12, 99);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  Rng rng(5);
  const DenseMatrix b = DenseMatrix::Random(12, 3, &rng, -1.0, 1.0);
  auto y = SolveLowerTriangular(*l, b);
  ASSERT_TRUE(y.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(Multiply(*l, *y), b), 1e-9);
  auto x = SolveUpperTriangularFromLower(*l, *y);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(Multiply(l->Transpose(), *x), *y), 1e-9);
}

TEST(CholeskyTest, SolveRecoversSolution) {
  const int64_t n = 20;
  const DenseMatrix a = RandomSpd(n, 7);
  Rng rng(8);
  const DenseMatrix x_true = DenseMatrix::Random(n, 2, &rng, -3.0, 3.0);
  const DenseMatrix b = Multiply(a, x_true);
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(*x, x_true), 1e-7);
}

TEST(CholeskyTest, DimensionMismatchRejected) {
  const DenseMatrix a = RandomSpd(4, 1);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  DenseMatrix wrong(5, 1);
  EXPECT_FALSE(SolveLowerTriangular(*l, wrong).ok());
  EXPECT_FALSE(SolveUpperTriangularFromLower(*l, wrong).ok());
}

}  // namespace
}  // namespace distme::blas
