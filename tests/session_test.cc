#include <gtest/gtest.h>

#include <cmath>

#include "blas/gemm.h"
#include "blas/local_mm.h"
#include "core/session.h"

namespace distme::core {
namespace {

Session::Options TestOptions() {
  Session::Options options;
  options.cluster = ClusterConfig::Local(2, 2);
  // Small matrices rarely satisfy the parallelism pruning; relax it.
  options.planner = std::make_shared<DistmePlanner>(
      mm::OptimizerOptions{.enforce_parallelism = false});
  return options;
}

GeneratorOptions Gen(int64_t rows, int64_t cols, double sparsity,
                     uint64_t seed) {
  GeneratorOptions g;
  g.rows = rows;
  g.cols = cols;
  g.block_size = 8;
  g.sparsity = sparsity;
  g.seed = seed;
  return g;
}

TEST(SessionTest, GenerateAndCollect) {
  Session session(TestOptions());
  auto m = session.Generate(Gen(30, 20, 1.0, 1));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->rows(), 30);
  EXPECT_EQ(m->cols(), 20);
  // Generation matches the local generator exactly.
  BlockGrid expected = GenerateUniform(Gen(30, 20, 1.0, 1));
  EXPECT_TRUE(DenseMatrix::ApproxEquals(m->Collect().ToDense(),
                                        expected.ToDense(), 0.0));
}

TEST(SessionTest, MultiplyMatchesReference) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(32, 24, 1.0, 2));
  auto b = session.Generate(Gen(24, 16, 1.0, 3));
  ASSERT_TRUE(a.ok() && b.ok());
  auto c = session.Multiply(*a, *b);
  ASSERT_TRUE(c.ok());
  DenseMatrix expected =
      blas::Multiply(a->Collect().ToDense(), b->Collect().ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c->Collect().ToDense(), expected), 1e-9);
  // A report was recorded, and the planner chose a cuboid method.
  ASSERT_EQ(session.history().size(), 1u);
  EXPECT_TRUE(session.history()[0].outcome.ok());
  EXPECT_NE(session.history()[0].method_name.find("CuboidMM"),
            std::string::npos);
}

TEST(SessionTest, TransposeCorrect) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(20, 36, 0.5, 4));
  ASSERT_TRUE(a.ok());
  auto t = session.Transpose(*a);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->rows(), 36);
  EXPECT_EQ(t->cols(), 20);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(t->Collect().ToDense(),
                                    a->Collect().ToDense().Transpose()),
            1e-15);
}

TEST(SessionTest, ElementWiseOps) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(16, 16, 1.0, 5));
  auto b = session.Generate(Gen(16, 16, 1.0, 6));
  ASSERT_TRUE(a.ok() && b.ok());
  auto sum = session.ElementWise(blas::ElementWiseOp::kAdd, *a, *b);
  ASSERT_TRUE(sum.ok());
  DenseMatrix da = a->Collect().ToDense();
  DenseMatrix db = b->Collect().ToDense();
  DenseMatrix ds = sum->Collect().ToDense();
  for (int64_t r = 0; r < 16; ++r) {
    for (int64_t c = 0; c < 16; ++c) {
      EXPECT_NEAR(ds.At(r, c), da.At(r, c) + db.At(r, c), 1e-12);
    }
  }
}

TEST(SessionTest, ElementWiseShapeMismatchRejected) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(16, 16, 1.0, 7));
  auto b = session.Generate(Gen(16, 8, 1.0, 8));
  EXPECT_FALSE(session.ElementWise(blas::ElementWiseOp::kAdd, *a, *b).ok());
}

TEST(SessionTest, ScaleMultipliesEveryElement) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(12, 12, 0.5, 9));
  ASSERT_TRUE(a.ok());
  auto scaled = session.Scale(*a, 2.5);
  ASSERT_TRUE(scaled.ok());
  DenseMatrix da = a->Collect().ToDense();
  DenseMatrix ds = scaled->Collect().ToDense();
  for (int64_t r = 0; r < 12; ++r) {
    for (int64_t c = 0; c < 12; ++c) {
      EXPECT_NEAR(ds.At(r, c), 2.5 * da.At(r, c), 1e-12);
    }
  }
}

TEST(SessionTest, ChainedExpression) {
  // (A × B)ᵀ ∘ C — a small pipeline through the public API.
  Session session(TestOptions());
  auto a = session.Generate(Gen(16, 24, 1.0, 10));
  auto b = session.Generate(Gen(24, 16, 1.0, 11));
  auto ab = session.Multiply(*a, *b);
  ASSERT_TRUE(ab.ok());
  auto abt = session.Transpose(*ab);
  ASSERT_TRUE(abt.ok());
  auto c = session.Generate(Gen(16, 16, 1.0, 12));
  auto result = session.ElementWise(blas::ElementWiseOp::kMul, *abt, *c);
  ASSERT_TRUE(result.ok());
  DenseMatrix expected = blas::Multiply(a->Collect().ToDense(),
                                        b->Collect().ToDense())
                             .Transpose();
  DenseMatrix dc = c->Collect().ToDense();
  DenseMatrix got = result->Collect().ToDense();
  for (int64_t r = 0; r < 16; ++r) {
    for (int64_t col = 0; col < 16; ++col) {
      EXPECT_NEAR(got.At(r, col), expected.At(r, col) * dc.At(r, col), 1e-9);
    }
  }
}

TEST(SessionTest, FromGridRoundTrip) {
  Session session(TestOptions());
  BlockGrid grid = GenerateUniform(Gen(20, 20, 0.3, 13));
  auto m = session.FromGrid(grid);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(DenseMatrix::ApproxEquals(m->Collect().ToDense(),
                                        grid.ToDense(), 0.0));
}

TEST(SessionTest, MultiplyWithExplicitMethod) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(24, 24, 1.0, 14));
  auto b = session.Generate(Gen(24, 24, 1.0, 15));
  mm::RmmMethod rmm;
  auto c = session.MultiplyWith(*a, *b, rmm);
  ASSERT_TRUE(c.ok());
  DenseMatrix expected =
      blas::Multiply(a->Collect().ToDense(), b->Collect().ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c->Collect().ToDense(), expected), 1e-9);
  EXPECT_EQ(session.history().back().method_name, "RMM");
}

}  // namespace
}  // namespace distme::core

namespace distme::core {
namespace {

TEST(SessionReductionsTest, RowAndColSums) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(24, 20, 0.5, 20));
  ASSERT_TRUE(a.ok());
  const DenseMatrix da = a->Collect().ToDense();

  auto rows = session.RowSums(*a);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows(), 24);
  EXPECT_EQ(rows->cols(), 1);
  const DenseMatrix dr = rows->Collect().ToDense();
  for (int64_t r = 0; r < 24; ++r) {
    double expected = 0;
    for (int64_t c = 0; c < 20; ++c) expected += da.At(r, c);
    EXPECT_NEAR(dr.At(r, 0), expected, 1e-10);
  }

  auto cols = session.ColSums(*a);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->rows(), 1);
  EXPECT_EQ(cols->cols(), 20);
  const DenseMatrix dc = cols->Collect().ToDense();
  for (int64_t c = 0; c < 20; ++c) {
    double expected = 0;
    for (int64_t r = 0; r < 24; ++r) expected += da.At(r, c);
    EXPECT_NEAR(dc.At(0, c), expected, 1e-10);
  }
}

TEST(SessionReductionsTest, SumAndFrobenius) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(16, 16, 0.3, 21));
  ASSERT_TRUE(a.ok());
  const DenseMatrix da = a->Collect().ToDense();
  double expected_sum = 0;
  double expected_sq = 0;
  for (int64_t i = 0; i < da.num_elements(); ++i) {
    expected_sum += da.data()[i];
    expected_sq += da.data()[i] * da.data()[i];
  }
  auto sum = session.Sum(*a);
  auto norm = session.FrobeniusNorm(*a);
  ASSERT_TRUE(sum.ok() && norm.ok());
  EXPECT_NEAR(*sum, expected_sum, 1e-9);
  EXPECT_NEAR(*norm, std::sqrt(expected_sq), 1e-9);
}

TEST(SessionReductionsTest, RowSumsOfMatrixVectorProduct) {
  // RowSums(A) == A × ones, a cheap cross-check of two code paths.
  Session session(TestOptions());
  auto a = session.Generate(Gen(24, 16, 1.0, 22));
  ASSERT_TRUE(a.ok());
  BlockGrid ones_grid(BlockedShape{16, 1, 8});
  for (int64_t bi = 0; bi < ones_grid.block_rows(); ++bi) {
    DenseMatrix block(ones_grid.shape().BlockRowsAt(bi), 1);
    block.Fill(1.0);
    ASSERT_TRUE(ones_grid.Put({bi, 0}, Block::Dense(std::move(block))).ok());
  }
  auto ones = session.FromGrid(ones_grid);
  ASSERT_TRUE(ones.ok());
  auto product = session.Multiply(*a, *ones);
  auto sums = session.RowSums(*a);
  ASSERT_TRUE(product.ok() && sums.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(product->Collect().ToDense(),
                                    sums->Collect().ToDense()),
            1e-9);
}

}  // namespace
}  // namespace distme::core

namespace distme::core {
namespace {

TEST(SessionCheckpointTest, SaveLoadRoundTrip) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(28, 36, 0.4, 30));
  ASSERT_TRUE(a.ok());
  const std::string path = testing::TempDir() + "/checkpoint.dmx";
  ASSERT_TRUE(session.Save(*a, path).ok());
  auto restored = session.Load(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(DenseMatrix::ApproxEquals(restored->Collect().ToDense(),
                                        a->Collect().ToDense(), 0.0));
  std::remove(path.c_str());
}

TEST(SessionCheckpointTest, LoadMissingFails) {
  Session session(TestOptions());
  EXPECT_FALSE(session.Load("/nonexistent/checkpoint.dmx").ok());
}

TEST(SessionCheckpointTest, ComputeOnLoadedMatrix) {
  Session session(TestOptions());
  auto a = session.Generate(Gen(24, 24, 1.0, 31));
  auto b = session.Generate(Gen(24, 24, 1.0, 32));
  ASSERT_TRUE(a.ok() && b.ok());
  const std::string path = testing::TempDir() + "/operand.dmx";
  ASSERT_TRUE(session.Save(*a, path).ok());
  auto loaded = session.Load(path);
  ASSERT_TRUE(loaded.ok());
  auto c1 = session.Multiply(*a, *b);
  auto c2 = session.Multiply(*loaded, *b);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c1->Collect().ToDense(),
                                    c2->Collect().ToDense()),
            1e-9);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace distme::core
