#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "blas/local_mm.h"
#include "engine/real_executor.h"
#include "matrix/generator.h"
#include "mm/methods.h"
#include "mm/optimizer.h"

namespace distme::engine {
namespace {

struct Inputs {
  BlockGrid a;
  BlockGrid b;
};

Inputs MakeInputs(int64_t i, int64_t k, int64_t j, int64_t bs,
                  double sa = 1.0, double sb = 1.0, uint64_t seed = 1000) {
  GeneratorOptions ga;
  ga.rows = i;
  ga.cols = k;
  ga.block_size = bs;
  ga.sparsity = sa;
  ga.seed = seed;
  GeneratorOptions gb;
  gb.rows = k;
  gb.cols = j;
  gb.block_size = bs;
  gb.sparsity = sb;
  gb.seed = seed + 1;
  return {GenerateUniform(ga), GenerateUniform(gb)};
}

std::unique_ptr<mm::Method> MakeMethodForTest(mm::MethodKind kind,
                                              const mm::MMProblem& problem,
                                              const ClusterConfig& cluster) {
  switch (kind) {
    case mm::MethodKind::kBmm:
      return std::make_unique<mm::BmmMethod>();
    case mm::MethodKind::kCpmm:
      return std::make_unique<mm::CpmmMethod>();
    case mm::MethodKind::kRmm:
      return std::make_unique<mm::RmmMethod>();
    case mm::MethodKind::kCuboid: {
      mm::OptimizerOptions opts;
      opts.enforce_parallelism = false;
      auto opt = mm::OptimizeCuboid(problem, cluster, opts);
      if (!opt.ok()) return nullptr;
      return std::make_unique<mm::CuboidMethod>(opt->spec);
    }
    case mm::MethodKind::kSumma:
      return std::make_unique<mm::SummaMethod>();
    case mm::MethodKind::kSumma25d:
      return std::make_unique<mm::Summa25dMethod>(2);
    case mm::MethodKind::kCrmm:
      return std::make_unique<mm::CrmmMethod>(2);
  }
  return nullptr;
}

// The central correctness property: every distributed method, on CPU and on
// the software GPU, computes exactly the same product as the single-node
// reference.
class MethodCorrectnessTest
    : public ::testing::TestWithParam<std::tuple<mm::MethodKind, ComputeMode>> {
};

TEST_P(MethodCorrectnessTest, MatchesLocalReference) {
  const auto [kind, mode] = GetParam();
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  Inputs in = MakeInputs(44, 36, 28, 8, 1.0, 1.0);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 3);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 3);

  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
  auto method = MakeMethodForTest(kind, problem, cluster);
  ASSERT_NE(method, nullptr);

  RealExecutor executor(cluster);
  RealOptions options;
  options.mode = mode;
  auto run = executor.Run(a, b, *method, options);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok()) << run->report.outcome;

  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9)
      << method->name() << " mode=" << ComputeModeName(mode);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAllModes, MethodCorrectnessTest,
    ::testing::Combine(::testing::Values(mm::MethodKind::kBmm,
                                         mm::MethodKind::kCpmm,
                                         mm::MethodKind::kRmm,
                                         mm::MethodKind::kCuboid,
                                         mm::MethodKind::kSumma,
                                         mm::MethodKind::kSumma25d,
                                         mm::MethodKind::kCrmm),
                       ::testing::Values(ComputeMode::kCpu,
                                         ComputeMode::kGpuStreaming,
                                         ComputeMode::kGpuBlock)));

TEST(RealExecutorTest, SparseTimesDenseCorrect) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(50, 60, 20, 10, 0.08, 1.0, 77);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  mm::MMProblem problem{a.Descriptor(), b.Descriptor()};
  auto opt = mm::OptimizeCuboid(problem, cluster,
                                {.enforce_parallelism = false});
  ASSERT_TRUE(opt.ok());
  mm::CuboidMethod method(opt->spec);
  RealExecutor executor(cluster);
  auto run = executor.Run(a, b, method, {});
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok());
  auto expected = blas::LocalMultiply(in.a, in.b);
  ASSERT_TRUE(expected.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(run->output->Collect().ToDense(),
                                    expected->ToDense()),
            1e-9);
}

TEST(RealExecutorTest, MeasuredCommunicationOrdersLikeTable2) {
  // RMM replicates per voxel; CuboidMM shares within cuboids — the
  // measured shuffle bytes must reflect that (Figure 6(d)).
  const ClusterConfig cluster = ClusterConfig::Local(3, 2);
  Inputs in = MakeInputs(48, 48, 48, 8);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 3);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 3);
  RealExecutor executor(cluster);

  mm::RmmMethod rmm;
  auto rmm_run = executor.Run(a, b, rmm, {});
  ASSERT_TRUE(rmm_run.ok());

  mm::CuboidMethod cuboid(mm::CuboidSpec{2, 2, 2});
  auto cuboid_run = executor.Run(a, b, cuboid, {});
  ASSERT_TRUE(cuboid_run.ok());

  EXPECT_LT(cuboid_run->report.total_shuffle_bytes(),
            rmm_run->report.total_shuffle_bytes());
  EXPECT_GT(rmm_run->report.total_shuffle_bytes(), 0.0);
}

TEST(RealExecutorTest, TaskMemoryEnforcementTriggersOom) {
  ClusterConfig cluster = ClusterConfig::Local(2, 2);
  cluster.task_memory_bytes = 4 * 1024;  // absurdly tight
  Inputs in = MakeInputs(40, 40, 40, 8);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions options;
  options.enforce_task_memory = true;
  auto run = executor.Run(a, b, mm::CpmmMethod(), options);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(run->report.outcome.IsOutOfMemory()) << run->report.outcome;
}

TEST(RealExecutorTest, SerializationRoundTripPreservesResult) {
  const ClusterConfig cluster = ClusterConfig::Local(4, 1);
  Inputs in = MakeInputs(30, 30, 30, 6, 0.3, 0.7, 55);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 4);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 4);
  RealExecutor executor(cluster);
  RealOptions with_serialization;
  with_serialization.serialize_transfers = true;
  RealOptions without;
  without.serialize_transfers = false;
  auto run1 = executor.Run(a, b, mm::CpmmMethod(), with_serialization);
  auto run2 = executor.Run(a, b, mm::CpmmMethod(), without);
  ASSERT_TRUE(run1.ok() && run2.ok());
  // Aggregation reduces partial blocks in arrival order, so bit-exact
  // equality across runs is not guaranteed — only numerical equality.
  EXPECT_TRUE(DenseMatrix::ApproxEquals(run1->output->Collect().ToDense(),
                                        run2->output->Collect().ToDense(),
                                        1e-9));
}

TEST(RealExecutorTest, SingleNodeClusterHasNoNetworkTraffic) {
  const ClusterConfig cluster = ClusterConfig::Local(1, 4);
  Inputs in = MakeInputs(24, 24, 24, 8);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 1);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 1);
  RealExecutor executor(cluster);
  auto run = executor.Run(a, b, mm::RmmMethod(), {});
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->report.repartition_bytes, 0.0);
  EXPECT_EQ(run->report.aggregation_bytes, 0.0);
}

TEST(RealExecutorTest, GpuRunReportsDeviceCounters) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(32, 32, 32, 8);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  DistributedMatrix b = DistributedMatrix::FromGridHashed(in.b, 2);
  RealExecutor executor(cluster);
  RealOptions options;
  options.mode = ComputeMode::kGpuStreaming;
  auto run = executor.Run(a, b, mm::CuboidMethod(mm::CuboidSpec{2, 2, 2}),
                          options);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->report.outcome.ok());
  EXPECT_GT(run->report.pcie_bytes, 0.0);
  EXPECT_GT(run->report.gpu_utilization, 0.0);
}

TEST(RealExecutorTest, MismatchedInputsRejected) {
  const ClusterConfig cluster = ClusterConfig::Local(2, 2);
  Inputs in = MakeInputs(24, 24, 24, 8);
  DistributedMatrix a = DistributedMatrix::FromGridHashed(in.a, 2);
  // Wrong inner dimension.
  GeneratorOptions g;
  g.rows = 30;
  g.cols = 24;
  g.block_size = 8;
  DistributedMatrix bad =
      DistributedMatrix::FromGridHashed(GenerateUniform(g), 2);
  RealExecutor executor(cluster);
  EXPECT_FALSE(executor.Run(a, bad, mm::CpmmMethod(), {}).ok());
}

}  // namespace
}  // namespace distme::engine
