#include <gtest/gtest.h>

#include <cmath>

#include <tuple>

#include "blas/block_ops.h"
#include "blas/gemm.h"
#include "blas/local_mm.h"
#include "blas/spmm.h"
#include "common/random.h"
#include "matrix/generator.h"

namespace distme::blas {
namespace {

DenseMatrix RandomDense(int64_t r, int64_t c, uint64_t seed) {
  Rng rng(seed);
  return DenseMatrix::Random(r, c, &rng, -1.0, 1.0);
}

CsrMatrix RandomSparse(int64_t r, int64_t c, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  const int64_t target = static_cast<int64_t>(density * r * c);
  for (int64_t i = 0; i < target; ++i) {
    triplets.push_back({static_cast<int64_t>(rng.NextBounded(r)),
                        static_cast<int64_t>(rng.NextBounded(c)),
                        rng.NextUniform(-1.0, 1.0)});
  }
  return *CsrMatrix::FromTriplets(r, c, triplets);
}

// ---- Tiled GEMM vs naive reference over a shape sweep. ----

class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapeTest, MatchesReference) {
  const auto [m, k, n] = GetParam();
  DenseMatrix a = RandomDense(m, k, 1);
  DenseMatrix b = RandomDense(k, n, 2);
  DenseMatrix c_fast = RandomDense(m, n, 3);
  DenseMatrix c_ref = c_fast;  // same initial C for beta accumulation
  Dgemm(0.5, a, b, 0.25, &c_fast);
  DgemmReference(0.5, a, b, 0.25, &c_ref);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c_fast, c_ref), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                      std::make_tuple(64, 64, 64), std::make_tuple(65, 63, 130),
                      std::make_tuple(128, 300, 70), std::make_tuple(1, 300, 1),
                      std::make_tuple(257, 1, 257)));

TEST(GemmTest, BetaZeroIgnoresGarbage) {
  DenseMatrix a = RandomDense(4, 4, 1);
  DenseMatrix b = RandomDense(4, 4, 2);
  DenseMatrix c(4, 4);
  c.Fill(std::numeric_limits<double>::quiet_NaN());
  Dgemm(1.0, a, b, 0.0, &c);
  // beta = 0 must overwrite, not multiply, so no NaN survives.
  EXPECT_FALSE(std::isnan(c.At(0, 0)));
}

TEST(GemmTest, AlphaZeroLeavesBetaScaledC) {
  DenseMatrix a = RandomDense(3, 3, 4);
  DenseMatrix b = RandomDense(3, 3, 5);
  DenseMatrix c(3, 3);
  c.Fill(2.0);
  Dgemm(0.0, a, b, 0.5, &c);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 1.0);
}

TEST(GemmTest, IdentityIsNeutral) {
  DenseMatrix a = RandomDense(9, 9, 6);
  DenseMatrix c = Multiply(a, DenseMatrix::Identity(9));
  EXPECT_LT(DenseMatrix::MaxAbsDiff(a, c), 1e-12);
}

// ---- Sparse kernels vs densified reference. ----

TEST(SpmmTest, CsrTimesDense) {
  CsrMatrix a = RandomSparse(20, 30, 0.15, 7);
  DenseMatrix b = RandomDense(30, 25, 8);
  DenseMatrix c(20, 25);
  DcsrMm(a, b, &c);
  DenseMatrix expected = Multiply(a.ToDense(), b);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected), 1e-10);
}

TEST(SpmmTest, DenseTimesCsr) {
  DenseMatrix a = RandomDense(15, 20, 9);
  CsrMatrix b = RandomSparse(20, 18, 0.2, 10);
  DenseMatrix c(15, 18);
  DgeCsrMm(a, b, &c);
  DenseMatrix expected = Multiply(a, b.ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected), 1e-10);
}

TEST(SpmmTest, CsrTimesCsr) {
  CsrMatrix a = RandomSparse(12, 16, 0.25, 11);
  CsrMatrix b = RandomSparse(16, 14, 0.25, 12);
  DenseMatrix c(12, 14);
  DcsrCsrMm(a, b, &c);
  DenseMatrix expected = Multiply(a.ToDense(), b.ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c, expected), 1e-10);
}

TEST(SpmmTest, AccumulatesIntoC) {
  CsrMatrix a = RandomSparse(5, 5, 0.4, 13);
  DenseMatrix b = RandomDense(5, 5, 14);
  DenseMatrix c(5, 5);
  c.Fill(1.0);
  DcsrMm(a, b, &c);
  DenseMatrix expected = Multiply(a.ToDense(), b);
  for (int64_t r = 0; r < 5; ++r) {
    for (int64_t col = 0; col < 5; ++col) {
      EXPECT_NEAR(c.At(r, col), expected.At(r, col) + 1.0, 1e-10);
    }
  }
}

// ---- Block-level dispatch across all four format combinations. ----

class BlockFormatTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(BlockFormatTest, MultiplyAccumulateDispatches) {
  const auto [a_sparse, b_sparse] = GetParam();
  DenseMatrix da = RandomDense(10, 12, 20);
  DenseMatrix db = RandomDense(12, 9, 21);
  Block a = a_sparse ? Block::Sparse(CsrMatrix::FromDense(da))
                     : Block::Dense(da);
  Block b = b_sparse ? Block::Sparse(CsrMatrix::FromDense(db))
                     : Block::Dense(db);
  DenseMatrix acc(10, 9);
  ASSERT_TRUE(MultiplyAccumulate(a, b, &acc).ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(acc, Multiply(da, db)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Formats, BlockFormatTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(BlockOpsTest, MultiplyRejectsBadShapes) {
  Block a = Block::Dense(RandomDense(3, 4, 1));
  Block b = Block::Dense(RandomDense(5, 3, 2));
  DenseMatrix acc(3, 3);
  EXPECT_FALSE(MultiplyAccumulate(a, b, &acc).ok());
}

TEST(BlockOpsTest, ElementWiseAddSubMulDiv) {
  DenseMatrix da = RandomDense(6, 6, 30);
  DenseMatrix db = RandomDense(6, 6, 31);
  Block a = Block::Dense(da);
  Block b = Block::Dense(db);
  auto add = ElementWise(ElementWiseOp::kAdd, a, b);
  auto sub = ElementWise(ElementWiseOp::kSub, a, b);
  auto mul = ElementWise(ElementWiseOp::kMul, a, b);
  auto div = ElementWise(ElementWiseOp::kDiv, a, b, 1e-30);
  ASSERT_TRUE(add.ok() && sub.ok() && mul.ok() && div.ok());
  for (int64_t r = 0; r < 6; ++r) {
    for (int64_t c = 0; c < 6; ++c) {
      EXPECT_NEAR(add->At(r, c), da.At(r, c) + db.At(r, c), 1e-12);
      EXPECT_NEAR(sub->At(r, c), da.At(r, c) - db.At(r, c), 1e-12);
      EXPECT_NEAR(mul->At(r, c), da.At(r, c) * db.At(r, c), 1e-12);
      EXPECT_NEAR(div->At(r, c), da.At(r, c) / db.At(r, c), 1e-6);
    }
  }
}

TEST(BlockOpsTest, SparseElementWiseMulStaysSparse) {
  Block sparse = Block::Sparse(RandomSparse(10, 10, 0.1, 40));
  Block dense = Block::Dense(RandomDense(10, 10, 41));
  auto result = ElementWise(ElementWiseOp::kMul, sparse, dense);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->IsSparse());
  DenseMatrix expected(10, 10);
  DenseMatrix ds = sparse.ToDense();
  DenseMatrix dd = dense.ToDense();
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = 0; c < 10; ++c) {
      expected.Set(r, c, ds.At(r, c) * dd.At(r, c));
    }
  }
  EXPECT_LT(DenseMatrix::MaxAbsDiff(result->ToDense(), expected), 1e-12);
}

TEST(BlockOpsTest, AddBlocksHandlesZeroFastPath) {
  Block z = Block::Zero(4, 4);
  Block d = Block::Dense(RandomDense(4, 4, 50));
  auto sum = AddBlocks(z, d);
  ASSERT_TRUE(sum.ok());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(sum->ToDense(), d.ToDense()), 0.0 + 1e-15);
}

TEST(BlockOpsTest, AddBlocksSparseSparse) {
  Block a = Block::Sparse(RandomSparse(8, 8, 0.2, 51));
  Block b = Block::Sparse(RandomSparse(8, 8, 0.2, 52));
  auto sum = AddBlocks(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE(sum->IsSparse());
  DenseMatrix expected = a.ToDense();
  DenseMatrix db = b.ToDense();
  for (int64_t r = 0; r < 8; ++r) {
    for (int64_t c = 0; c < 8; ++c) {
      expected.Add(r, c, db.At(r, c));
    }
  }
  EXPECT_LT(DenseMatrix::MaxAbsDiff(sum->ToDense(), expected), 1e-12);
}

TEST(BlockOpsTest, TransposeBlockBothFormats) {
  Block dense = Block::Dense(RandomDense(5, 7, 60));
  Block sparse = Block::Sparse(RandomSparse(5, 7, 0.3, 61));
  EXPECT_LT(DenseMatrix::MaxAbsDiff(TransposeBlock(dense).ToDense(),
                                    dense.ToDense().Transpose()),
            1e-15);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(TransposeBlock(sparse).ToDense(),
                                    sparse.ToDense().Transpose()),
            1e-15);
}

TEST(BlockOpsTest, ScaleBlock) {
  Block dense = Block::Dense(RandomDense(4, 4, 62));
  Block scaled = ScaleBlock(dense, -2.0);
  EXPECT_NEAR(scaled.At(1, 1), -2.0 * dense.At(1, 1), 1e-15);
  Block sparse = Block::Sparse(RandomSparse(6, 6, 0.3, 63));
  Block sscaled = ScaleBlock(sparse, 3.0);
  EXPECT_TRUE(sscaled.IsSparse());
  EXPECT_NEAR(sscaled.ToDense().At(0, 0), 3.0 * sparse.ToDense().At(0, 0),
              1e-15);
}

TEST(BlockOpsTest, MultiplyFlops) {
  EXPECT_EQ(MultiplyFlops(10, 20, 30), 2 * 10 * 20 * 30);
}

// ---- Local blocked multiply: the ground-truth reference. ----

TEST(LocalMmTest, MatchesDenseMultiply) {
  GeneratorOptions ga;
  ga.rows = 27;
  ga.cols = 33;
  ga.block_size = 10;
  ga.sparsity = 1.0;
  ga.seed = 70;
  GeneratorOptions gb = ga;
  gb.rows = 33;
  gb.cols = 21;
  gb.seed = 71;
  BlockGrid a = GenerateUniform(ga);
  BlockGrid b = GenerateUniform(gb);
  auto c = LocalMultiply(a, b);
  ASSERT_TRUE(c.ok());
  DenseMatrix expected = Multiply(a.ToDense(), b.ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c->ToDense(), expected), 1e-9);
}

TEST(LocalMmTest, SparseTimesDense) {
  GeneratorOptions ga;
  ga.rows = 40;
  ga.cols = 50;
  ga.block_size = 16;
  ga.sparsity = 0.05;
  ga.seed = 80;
  GeneratorOptions gb;
  gb.rows = 50;
  gb.cols = 30;
  gb.block_size = 16;
  gb.sparsity = 1.0;
  gb.seed = 81;
  BlockGrid a = GenerateUniform(ga);
  BlockGrid b = GenerateUniform(gb);
  auto c = LocalMultiply(a, b);
  ASSERT_TRUE(c.ok());
  DenseMatrix expected = Multiply(a.ToDense(), b.ToDense());
  EXPECT_LT(DenseMatrix::MaxAbsDiff(c->ToDense(), expected), 1e-9);
}

TEST(LocalMmTest, RejectsMismatchedShapes) {
  BlockGrid a(BlockedShape{10, 20, 5});
  BlockGrid b(BlockedShape{30, 10, 5});
  EXPECT_FALSE(LocalMultiply(a, b).ok());
  BlockGrid c(BlockedShape{20, 10, 4});  // different block size
  EXPECT_FALSE(LocalMultiply(a, c).ok());
}

TEST(LocalMmTest, TransposeGrid) {
  GeneratorOptions g;
  g.rows = 23;
  g.cols = 31;
  g.block_size = 10;
  g.sparsity = 0.4;
  g.seed = 90;
  BlockGrid a = GenerateUniform(g);
  BlockGrid t = LocalTranspose(a);
  EXPECT_EQ(t.shape().rows, 31);
  EXPECT_EQ(t.shape().cols, 23);
  EXPECT_LT(DenseMatrix::MaxAbsDiff(t.ToDense(), a.ToDense().Transpose()),
            1e-15);
}

}  // namespace
}  // namespace distme::blas
