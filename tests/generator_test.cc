#include <gtest/gtest.h>

#include "matrix/generator.h"

namespace distme {
namespace {

TEST(GeneratorTest, Deterministic) {
  GeneratorOptions options;
  options.rows = 50;
  options.cols = 40;
  options.block_size = 16;
  options.sparsity = 0.5;
  options.seed = 99;
  BlockGrid a = GenerateUniform(options);
  BlockGrid b = GenerateUniform(options);
  EXPECT_TRUE(DenseMatrix::ApproxEquals(a.ToDense(), b.ToDense(), 0.0));
}

TEST(GeneratorTest, PerBlockMatchesWholeMatrix) {
  GeneratorOptions options;
  options.rows = 33;
  options.cols = 29;
  options.block_size = 10;
  options.sparsity = 1.0;
  options.seed = 123;
  BlockGrid whole = GenerateUniform(options);
  for (int64_t i = 0; i < whole.block_rows(); ++i) {
    for (int64_t j = 0; j < whole.block_cols(); ++j) {
      Block blk = GenerateUniformBlock(options, i, j);
      EXPECT_TRUE(DenseMatrix::ApproxEquals(blk.ToDense(),
                                            whole.Get({i, j}).ToDense(), 0.0))
          << "block (" << i << "," << j << ")";
    }
  }
}

TEST(GeneratorTest, SparsityStatistics) {
  GeneratorOptions options;
  options.rows = 200;
  options.cols = 200;
  options.block_size = 50;
  options.sparsity = 0.3;
  options.seed = 7;
  BlockGrid grid = GenerateUniform(options);
  const double measured =
      static_cast<double>(grid.TotalNnz()) / (200.0 * 200.0);
  EXPECT_NEAR(measured, 0.3, 0.03);
}

TEST(GeneratorTest, FullyDenseHasNoZeros) {
  GeneratorOptions options;
  options.rows = 30;
  options.cols = 30;
  options.block_size = 10;
  options.sparsity = 1.0;
  BlockGrid grid = GenerateUniform(options);
  EXPECT_EQ(grid.TotalNnz(), 900);
}

TEST(GeneratorTest, VerySparseUsesCsrBlocks) {
  GeneratorOptions options;
  options.rows = 100;
  options.cols = 100;
  options.block_size = 50;
  options.sparsity = 0.01;
  BlockGrid grid = GenerateUniform(options);
  for (const auto& [idx, block] : grid.blocks()) {
    EXPECT_TRUE(block.IsSparse());
  }
}

TEST(GeneratorTest, DenseThresholdControlsFormat) {
  GeneratorOptions options;
  options.rows = 40;
  options.cols = 40;
  options.block_size = 20;
  options.sparsity = 0.5;  // above the default 0.4 threshold → dense
  BlockGrid grid = GenerateUniform(options);
  for (const auto& [idx, block] : grid.blocks()) {
    EXPECT_TRUE(block.IsDense());
  }
}

TEST(GeneratorTest, ZeroSparsityIsEmpty) {
  GeneratorOptions options;
  options.rows = 10;
  options.cols = 10;
  options.block_size = 5;
  options.sparsity = 0.0;
  EXPECT_EQ(GenerateUniform(options).num_blocks(), 0);
}

TEST(RatingDatasetTest, Table3Statistics) {
  // The exact published dataset shapes (Table 3).
  EXPECT_EQ(MovieLens().ratings, 27753444);
  EXPECT_EQ(MovieLens().users, 283228);
  EXPECT_EQ(MovieLens().items, 58098);
  EXPECT_EQ(Netflix().ratings, 100480507);
  EXPECT_EQ(Netflix().users, 480189);
  EXPECT_EQ(Netflix().items, 17770);
  EXPECT_EQ(YahooMusic().ratings, 717872016);
  EXPECT_EQ(YahooMusic().users, 1823179);
  EXPECT_EQ(YahooMusic().items, 136736);
}

TEST(RatingDatasetTest, OptionsPreserveDensity) {
  const RatingDataset netflix = Netflix();
  GeneratorOptions full = RatingMatrixOptions(netflix);
  const double density = static_cast<double>(netflix.ratings) /
                         (static_cast<double>(netflix.users) * netflix.items);
  EXPECT_DOUBLE_EQ(full.sparsity, density);
  EXPECT_EQ(full.rows, netflix.users);

  GeneratorOptions scaled = RatingMatrixOptions(netflix, 100, 0.001);
  EXPECT_DOUBLE_EQ(scaled.sparsity, density);  // density is scale-invariant
  EXPECT_EQ(scaled.rows, 480);
  EXPECT_EQ(scaled.block_size, 100);
}

}  // namespace
}  // namespace distme
