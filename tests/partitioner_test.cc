#include <gtest/gtest.h>

#include <set>

#include "engine/partitioner.h"

namespace distme::engine {
namespace {

TEST(PartitionerTest, RowSchemeGroupsByBlockRow) {
  Partitioner p = Partitioner::Row(4);
  // Blocks in the same block-row land in the same partition (Figure 1(a)).
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(p.PartitionOf({2, j}), p.PartitionOf({2, 0}));
  }
  EXPECT_NE(p.PartitionOf({0, 0}), p.PartitionOf({1, 0}));
  EXPECT_EQ(p.PartitionOf({5, 0}), 1);  // 5 mod 4
}

TEST(PartitionerTest, ColumnSchemeGroupsByBlockColumn) {
  Partitioner p = Partitioner::Column(4);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(p.PartitionOf({i, 3}), p.PartitionOf({0, 3}));
  }
  EXPECT_NE(p.PartitionOf({0, 0}), p.PartitionOf({0, 1}));
}

TEST(PartitionerTest, HashSchemeSpreadsEvenly) {
  Partitioner p = Partitioner::Hash(4);
  std::vector<int64_t> counts(4, 0);
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      ++counts[static_cast<size_t>(p.PartitionOf({i, j}))];
    }
  }
  // 256 blocks over 4 partitions: each should get 64 ± 50%.
  for (int64_t c : counts) {
    EXPECT_GT(c, 32);
    EXPECT_LT(c, 96);
  }
}

TEST(PartitionerTest, HashIsDeterministic) {
  Partitioner a = Partitioner::Hash(7);
  Partitioner b = Partitioner::Hash(7);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(a.PartitionOf({i, i * 3}), b.PartitionOf({i, i * 3}));
  }
}

TEST(PartitionerTest, GridSchemeKeepsTilesTogether) {
  // 2×2-block tiles (Figure 1(d)).
  Partitioner p = Partitioner::Grid(4, 2, 2);
  EXPECT_EQ(p.PartitionOf({0, 0}), p.PartitionOf({1, 1}));
  EXPECT_EQ(p.PartitionOf({0, 0}), p.PartitionOf({0, 1}));
  EXPECT_EQ(p.PartitionOf({2, 2}), p.PartitionOf({3, 3}));
  EXPECT_NE(p.PartitionOf({0, 0}), p.PartitionOf({0, 2}));
}

TEST(PartitionerTest, PartitionsWithinRange) {
  for (const Partitioner& p :
       {Partitioner::Row(5), Partitioner::Column(5), Partitioner::Hash(5),
        Partitioner::Grid(5, 3, 2)}) {
    for (int64_t i = 0; i < 12; ++i) {
      for (int64_t j = 0; j < 12; ++j) {
        const int64_t part = p.PartitionOf({i, j});
        EXPECT_GE(part, 0);
        EXPECT_LT(part, 5);
      }
    }
  }
}

TEST(PartitionerTest, ToStringNames) {
  EXPECT_EQ(Partitioner::Row(3).ToString(), "Row(3)");
  EXPECT_EQ(Partitioner::Grid(4, 2, 3).ToString(), "Grid(4,2x3)");
}

}  // namespace
}  // namespace distme::engine
